"""Virtual warping tests (Section III of the paper)."""

import numpy as np
import pytest

from repro.core.host import gpu_peel
from repro.core.variants import EXTENSION_VARIANTS, VariantConfig, get_variant
from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen
from tests.conftest import assert_cores_equal


@pytest.mark.parametrize("variant", ["vw2", "vw4"])
def test_battery(battery_graph, variant):
    graph, reference = battery_graph
    result = gpu_peel(graph, variant=variant)
    assert_cores_equal(result.core, reference, variant)


def test_extension_registry():
    assert set(EXTENSION_VARIANTS) == {"vw2", "vw4"}
    assert get_variant("VW4").virtual_warps == 4


def test_virtual_warps_validated():
    with pytest.raises(ValueError):
        VariantConfig("bad", virtual_warps=3)


def test_orthogonality_enforced():
    """The paper calls virtual warping orthogonal to its techniques;
    combining it with compaction/buffering is rejected."""
    with pytest.raises(ValueError):
        VariantConfig("bad", virtual_warps=2, compaction="ballot")
    with pytest.raises(ValueError):
        VariantConfig("bad", virtual_warps=2, prefetch=True)


def test_wins_on_low_degree_graphs():
    """Section III: "this technique is mainly for those graphs with a
    low average degree"."""
    tree = gen.random_tree(2000, seed=9)
    ours = gpu_peel(tree)
    vw4 = gpu_peel(tree, variant="vw4")
    assert np.array_equal(vw4.core, ours.core)
    assert vw4.simulated_ms < ours.simulated_ms


def test_no_benefit_on_dense_graphs():
    dense = gen.erdos_renyi(400, 60.0, seed=2)
    ours = gpu_peel(dense)
    vw4 = gpu_peel(dense, variant="vw4")
    assert np.array_equal(vw4.core, ours.core)
    assert vw4.simulated_ms >= ours.simulated_ms


def test_shared_neighbor_within_batch():
    """Two same-batch vertices hitting a common neighbor must not
    double-collect it (the in-warp analogue of Fig. 6)."""
    from repro.graph.csr import CSRGraph

    # many leaves around one hub: leaves are batched together and all
    # decrement the hub concurrently
    graph = CSRGraph.from_edges([(0, i) for i in range(1, 33)])
    reference = bz_core_numbers(graph)
    result = gpu_peel(graph, variant="vw4")
    assert_cores_equal(result.core, reference, "vw4 star")


def test_fuzzed_schedules():
    from repro.core.host import GpuPeelOptions

    graph = gen.power_law_configuration(300, 2.5, d_min=1, seed=4)
    reference = bz_core_numbers(graph)
    for seed in range(3):
        result = gpu_peel(
            graph, variant="vw4",
            options=GpuPeelOptions(preempt_prob=0.3, seed=seed),
        )
        assert_cores_equal(result.core, reference, f"vw4 fuzz {seed}")
