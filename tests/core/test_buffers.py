"""Block-buffer addressing tests: plain, ring, and shared-memory modes."""

import numpy as np
import pytest

from repro.core.buffers import BlockBufferView
from repro.errors import BufferOverflowError
from repro.gpusim.context import BlockState, WarpContext
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device
from repro.gpusim.spec import DeviceSpec


def make_view(capacity=16, ring=False, shared=0, block_idx=0):
    spec = DeviceSpec()
    dev = Device(spec=spec)
    buf = dev.malloc("buf", spec.default_grid_dim * capacity)
    block = BlockState(block_idx, 4, spec)
    ctx = WarpContext(block, 0, spec.default_grid_dim,
                      spec.default_block_dim, spec, CostModel())
    view = BlockBufferView(ctx, buf, capacity, ring=ring,
                           use_shared=shared > 0, shared_capacity=shared)
    return view, ctx, buf


class TestPlainBuffer:
    def test_write_then_read(self):
        view, ctx, buf = make_view()
        view.write(np.array([0, 1, 2]), np.array([7, 8, 9]))
        assert view.read(1) == 8
        assert view.read_batch(np.array([0, 2])).tolist() == [7, 9]

    def test_block_offset_isolation(self):
        """Block 1's logical position 0 is physically after block 0's
        slice (Fig. 4's partitioning)."""
        view1, ctx, buf = make_view(capacity=16, block_idx=1)
        view1.write(np.array([0]), np.array([42]))
        assert buf.data[16] == 42
        assert buf.data[0] != 42

    def test_overflow_raises(self):
        view, ctx, buf = make_view(capacity=4)
        with pytest.raises(BufferOverflowError):
            view.write(np.array([4]), np.array([1]))

    def test_overflow_mentions_block(self):
        view, ctx, buf = make_view(capacity=4, block_idx=2)
        with pytest.raises(BufferOverflowError) as exc:
            view.write(np.array([9]), np.array([1]))
        assert exc.value.block == 2

    def test_read_out_of_capacity_raises(self):
        view, ctx, buf = make_view(capacity=4)
        with pytest.raises(BufferOverflowError):
            view.read(7)


class TestRingBuffer:
    def test_positions_wrap(self):
        view, ctx, buf = make_view(capacity=4, ring=True)
        ctx.block.scalars["s"] = 3  # head advanced: slots recyclable
        view.write(np.array([5]), np.array([99]))  # 5 mod 4 = 1
        assert buf.data[1] == 99
        assert view.read(5) == 99

    def test_wraparound_overflow_detected(self):
        """The tail must not lap the unprocessed head."""
        view, ctx, buf = make_view(capacity=4, ring=True)
        ctx.block.scalars["s"] = 0  # nothing consumed yet
        with pytest.raises(BufferOverflowError):
            view.write(np.array([4]), np.array([1]))  # would clobber pos 0

    def test_recycling_extends_effective_capacity(self):
        """With the head advanced, a ring buffer accepts more total
        appends than its raw capacity — the point of Section IV-C."""
        view, ctx, buf = make_view(capacity=4, ring=True)
        for i in range(10):  # 10 appends through a 4-slot buffer
            ctx.block.scalars["s"] = i  # consume as we go
            view.write(np.array([i]), np.array([i * 11]))
            assert view.read(i) == i * 11


class TestSharedMemoryBuffer:
    def test_fig7_translation(self):
        """The paper's Fig. 7 walk-through: e_init = 6, |B| = 8.

        Position 3 reads buf[3]; position 7 reads B[1]; position 14
        reads buf[6] (global again, shifted by |B|).
        """
        view, ctx, buf = make_view(capacity=16, shared=8)
        ctx.smem_set("e_init", 6)
        # scan phase seeded buf[0..5]; appends go to positions 6..13 (B)
        # then 14+ (global, shifted)
        view.write(np.arange(6), 100 + np.arange(6))     # seeds: global
        view.write(np.array([7]), np.array([777]))       # B[1]
        view.write(np.array([14]), np.array([888]))      # buf[14 - 8] = buf[6]
        assert view.read(3) == 103
        assert view.read(7) == 777
        shared = ctx.smem_array("B", 8)
        assert shared[1] == 777
        assert buf.data[6] == 888
        assert view.read(14) == 888

    def test_wrong_positions_do_not_alias(self):
        view, ctx, buf = make_view(capacity=16, shared=4)
        ctx.smem_set("e_init", 2)
        view.write(np.array([0, 1]), np.array([10, 11]))    # global seeds
        view.write(np.array([2, 3, 4, 5]), np.array([20, 21, 22, 23]))  # B
        view.write(np.array([6, 7]), np.array([30, 31]))    # global tail
        got = view.read_batch(np.arange(8))
        assert got.tolist() == [10, 11, 20, 21, 22, 23, 30, 31]

    def test_effective_capacity_includes_shared(self):
        view, ctx, buf = make_view(capacity=4, shared=4)
        ctx.smem_set("e_init", 0)
        view.write(np.arange(8), np.arange(8))  # 4 shared + 4 global
        with pytest.raises(BufferOverflowError):
            view.write(np.array([8]), np.array([1]))

    def test_translation_charges_instructions(self):
        """The Fig. 7 case analysis is not free — the reason SM loses
        the ablation."""
        plain, pctx, _ = make_view(capacity=16)
        shared, sctx, _ = make_view(capacity=16, shared=8)
        sctx.smem_set("e_init", 0)
        plain.write(np.array([0]), np.array([1]))
        shared.write(np.array([0]), np.array([1]))
        assert sctx.issued > pctx.issued
