"""Public-API front-end tests."""

import numpy as np
import pytest

from repro.core.decomposer import KCoreDecomposer
from repro.errors import ReproError


def test_fast_mode_default(fig1):
    graph, expected = fig1
    result = KCoreDecomposer().decompose(graph)
    for v, c in expected.items():
        assert result.core[v] == c


def test_simulate_mode(fig1):
    graph, expected = fig1
    result = KCoreDecomposer(mode="simulate", variant="bc").decompose(graph)
    assert result.algorithm == "gpu-bc"
    assert result.simulated_ms > 0


def test_modes_agree(er_graph):
    graph, _ = er_graph
    fast = KCoreDecomposer(mode="fast").decompose(graph)
    sim = KCoreDecomposer(mode="simulate").decompose(graph)
    assert np.array_equal(fast.core, sim.core)


def test_core_numbers_shortcut(fig1):
    graph, expected = fig1
    core = KCoreDecomposer().core_numbers(graph)
    assert core[0] == 3


def test_invalid_mode():
    with pytest.raises(ReproError):
        KCoreDecomposer(mode="quantum")


def test_reusable_across_graphs(fig1, er_graph):
    decomposer = KCoreDecomposer(mode="simulate")
    r1 = decomposer.decompose(fig1[0])
    r2 = decomposer.decompose(er_graph[0])
    assert r1.num_vertices != r2.num_vertices


class TestResultType:
    def test_shell_and_core_queries(self, fig1):
        graph, _ = fig1
        result = KCoreDecomposer().decompose(graph)
        assert result.kmax == 3
        assert set(result.shell(3).tolist()) == {0, 1, 2, 3}
        assert result.core_vertices(2).size == 9
        assert result.shell_sizes().tolist() == [0, 3, 5, 4]

    def test_agrees_with(self, fig1):
        graph, _ = fig1
        a = KCoreDecomposer().decompose(graph)
        b = KCoreDecomposer(mode="simulate").decompose(graph)
        assert a.agrees_with(b)

    def test_core_number_of(self, fig1):
        graph, _ = fig1
        result = KCoreDecomposer().decompose(graph)
        assert result.core_number_of(4) == 2  # vertex A
