"""Variant-registry tests (the Table II matrix)."""

import pytest

from repro.core.variants import VARIANTS, VariantConfig, get_variant, variant_names
from repro.errors import UnknownAlgorithmError


def test_nine_table2_variants():
    assert variant_names() == (
        "ours", "sm", "vp", "bc", "bc+sm", "bc+vp", "ec", "ec+sm", "ec+vp"
    )


def test_ours_is_the_plain_config():
    cfg = get_variant("ours")
    assert cfg.compaction == "none"
    assert not cfg.shared_buffer
    assert not cfg.prefetch
    assert not cfg.ring_buffer


def test_combination_flags():
    cfg = get_variant("ec+vp")
    assert cfg.compaction == "block"
    assert cfg.prefetch
    assert not cfg.shared_buffer


def test_lookup_case_insensitive():
    assert get_variant("BC+SM") is VARIANTS["bc+sm"]


def test_unknown_variant_raises():
    with pytest.raises(UnknownAlgorithmError):
        get_variant("turbo")


def test_sm_and_vp_mutually_exclusive():
    with pytest.raises(ValueError):
        VariantConfig("bad", shared_buffer=True, prefetch=True)


def test_invalid_compaction_mode():
    with pytest.raises(ValueError):
        VariantConfig("bad", compaction="quantum")


def test_with_ring_buffer():
    ringed = get_variant("bc").with_ring_buffer()
    assert ringed.ring_buffer
    assert ringed.name == "bc+ring"
    assert ringed.compaction == "ballot"
    assert not VARIANTS["bc"].ring_buffer  # original untouched


def test_configs_are_frozen():
    with pytest.raises(Exception):
        get_variant("ours").prefetch = True
