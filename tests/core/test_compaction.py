"""Stream-compaction primitive tests (Figs. 8-9)."""

import numpy as np
import pytest

from repro.core.compaction import (
    block_scan_offsets,
    hillis_steele_exclusive,
    warp_compact_ballot,
    warp_compact_hillis_steele,
)
from repro.gpusim.context import BlockState, WarpContext
from repro.gpusim.costmodel import CostModel
from repro.gpusim.spec import DeviceSpec


@pytest.fixture
def ctx():
    spec = DeviceSpec()
    block = BlockState(0, 4, spec)
    return WarpContext(block, 0, 1, 128, spec, CostModel())


class TestReferenceScan:
    def test_fig8_example(self):
        """The paper's Fig. 8(a): p = [1,0,0,1,1,1,0,1] gives
        a = [0,1,1,1,2,3,4,4] and 5 elements to insert."""
        flags = np.array([1, 0, 0, 1, 1, 1, 0, 1])
        exclusive, total = hillis_steele_exclusive(flags)
        assert exclusive.tolist() == [0, 1, 1, 1, 2, 3, 4, 4]
        assert total == 5

    def test_all_zeros(self):
        exclusive, total = hillis_steele_exclusive(np.zeros(8, dtype=int))
        assert total == 0
        assert (exclusive == 0).all()

    def test_all_ones(self):
        exclusive, total = hillis_steele_exclusive(np.ones(4, dtype=int))
        assert exclusive.tolist() == [0, 1, 2, 3]
        assert total == 4

    def test_empty(self):
        exclusive, total = hillis_steele_exclusive(np.array([], dtype=int))
        assert total == 0

    def test_offsets_are_write_locations(self):
        """Flagged elements written at exclusive offsets compact densely."""
        rng = np.random.default_rng(3)
        flags = (rng.random(32) < 0.4).astype(int)
        exclusive, total = hillis_steele_exclusive(flags)
        out = np.full(total, -1)
        values = np.arange(32)
        out[exclusive[flags == 1]] = values[flags == 1]
        assert (out >= 0).all()
        assert (np.diff(out) > 0).all()  # order preserved


class TestWarpLevel:
    @pytest.mark.parametrize("scan", [warp_compact_hillis_steele,
                                      warp_compact_ballot],
                             ids=["hillis-steele", "ballot"])
    def test_matches_reference(self, ctx, scan):
        rng = np.random.default_rng(1)
        for _ in range(10):
            flags = (rng.random(32) < 0.5).astype(np.int64)
            got_off, got_total = scan(ctx, flags)
            want_off, want_total = hillis_steele_exclusive(flags)
            assert got_total == want_total
            assert np.array_equal(got_off, want_off)

    def test_ballot_cheaper_than_hillis_steele(self, ctx):
        """Fig. 8(c)'s point: the ballot scan is constant-instruction
        while HS needs log2(32) rounds — the reason BC beats EC."""
        flags = np.ones(32, dtype=np.int64)
        i0 = ctx.issued
        warp_compact_ballot(ctx, flags)
        ballot_cost = ctx.issued - i0
        i1 = ctx.issued
        warp_compact_hillis_steele(ctx, flags)
        hs_cost = ctx.issued - i1
        assert ballot_cost < hs_cost


class TestBlockLevel:
    def test_block_scan_over_warp_counts(self, ctx):
        counts = ctx.smem_array("warp_counts", 4)
        counts[:] = [3, 0, 5, 2]
        exclusive, total = block_scan_offsets(ctx)
        assert exclusive.tolist() == [0, 3, 3, 8]
        assert total == 10

    def test_block_scan_charges_only_warp0(self, ctx):
        """The two-stage scan concentrates its cost on one warp — the
        structural serialisation the paper blames for EC."""
        counts = ctx.smem_array("warp_counts", 4)
        counts[:] = [1, 1, 1, 1]
        i0 = ctx.issued
        block_scan_offsets(ctx)
        assert ctx.issued > i0  # all cost landed on this (warp-0) context
