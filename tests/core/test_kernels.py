"""Direct kernel-level tests for the scan and loop kernels.

These drive single kernel launches (not the whole host loop) to pin
down the behaviours the paper describes: what the scan collects, how
the loop propagates a shell, and the Fig. 6 degree-restore outcome.
"""

import numpy as np
import pytest

from repro.core.loop_kernel import loop_kernel
from repro.core.scan_kernel import scan_kernel
from repro.core.variants import get_variant
from repro.gpusim.device import Device
from repro.graph.csr import CSRGraph
from repro.graph.examples import fig1_graph


def setup_device(graph: CSRGraph, capacity: int = 64):
    dev = Device()
    arrays = {
        "offsets": dev.malloc("offsets", graph.offsets),
        "neighbors": dev.malloc("neighbors", graph.neighbors),
        "deg": dev.malloc("deg", graph.degrees),
        "buf": dev.malloc("buf", dev.spec.default_grid_dim * capacity),
        "tails": dev.malloc("buf_tails", dev.spec.default_grid_dim),
        "count": dev.malloc("gpu_count", 1),
    }
    return dev, arrays, capacity


class TestScanKernel:
    def test_collects_exactly_the_degree_k_vertices(self):
        graph, _ = fig1_graph()
        dev, a, cap = setup_device(graph)
        dev.launch(scan_kernel, args=(
            1, a["deg"], a["buf"], a["tails"], graph.num_vertices, cap,
            get_variant("ours"),
        ))
        collected = []
        for b in range(dev.spec.default_grid_dim):
            tail = int(a["tails"].data[b])
            collected.extend(a["buf"].data[b * cap : b * cap + tail].tolist())
        expected = np.flatnonzero(graph.degrees == 1)
        assert sorted(collected) == expected.tolist()

    def test_collects_nothing_when_no_match(self):
        graph, _ = fig1_graph()
        dev, a, cap = setup_device(graph)
        dev.launch(scan_kernel, args=(
            0, a["deg"], a["buf"], a["tails"], graph.num_vertices, cap,
            get_variant("ours"),
        ))
        assert (a["tails"].data == 0).all()

    @pytest.mark.parametrize("variant", ["ours", "bc", "ec"])
    def test_append_schemes_collect_the_same_set(self, variant):
        graph, _ = fig1_graph()
        dev, a, cap = setup_device(graph)
        dev.launch(scan_kernel, args=(
            1, a["deg"], a["buf"], a["tails"], graph.num_vertices, cap,
            get_variant(variant),
        ))
        collected = []
        for b in range(dev.spec.default_grid_dim):
            tail = int(a["tails"].data[b])
            collected.extend(a["buf"].data[b * cap : b * cap + tail].tolist())
        assert sorted(collected) == np.flatnonzero(graph.degrees == 1).tolist()

    def test_vertex_range_restriction(self):
        """The multi-GPU partition parameter limits the scanned IDs."""
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(9)])
        dev, a, cap = setup_device(graph)
        # only vertices [5, 10) are scanned for degree-1 (endpoints 0, 9)
        dev.launch(scan_kernel, args=(
            1, a["deg"], a["buf"], a["tails"], 10, cap,
            get_variant("ours"), 5,
        ))
        collected = []
        for b in range(dev.spec.default_grid_dim):
            tail = int(a["tails"].data[b])
            collected.extend(a["buf"].data[b * cap : b * cap + tail].tolist())
        assert collected == [9]


class TestLoopKernel:
    def _run_round(self, graph, k, variant="ours"):
        dev, a, cap = setup_device(graph)
        cfg = get_variant(variant)
        dev.launch(scan_kernel, args=(
            k, a["deg"], a["buf"], a["tails"], graph.num_vertices, cap, cfg,
        ))
        dev.launch(loop_kernel, args=(
            k, a["offsets"], a["neighbors"], a["deg"], a["buf"],
            a["tails"], a["count"], cap, 0, cfg,
        ))
        return a["deg"].data.copy(), int(a["count"].data[0])

    def test_one_round_peels_the_full_shell(self):
        """Round 1 on Fig. 1 removes all three leaves and leaves the
        2-core degrees consistent."""
        graph, expected = fig1_graph()
        deg, count = self._run_round(graph, 1)
        leaves = [v for v, c in expected.items() if c == 1]
        assert count == len(leaves)
        for v in leaves:
            assert deg[v] == 1  # converged to core number

    def test_cascade_within_one_round(self):
        """A path peels entirely in round 1 via BFS propagation, even
        though only the two endpoints start with degree 1."""
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(7)])
        deg, count = self._run_round(graph, 1)
        assert count == graph.num_vertices
        assert (deg == 1).all()

    def test_fig6_overshoot_restored(self):
        """The Fig. 6 scenario: a vertex adjacent to many same-shell
        vertices is decremented concurrently; Line 24 must restore its
        degree to exactly k."""
        # vertex 0 at the centre of a 4-star, all leaves degree 1:
        # during round 1, all four leaves decrement vertex 0
        graph = CSRGraph.from_edges([(0, i) for i in range(1, 5)])
        deg, count = self._run_round(graph, 1)
        assert count == 5
        assert deg[0] == 1  # 4 decrements landed, restores brought it to k

    def test_count_accumulates_per_block(self):
        graph, _ = fig1_graph()
        deg, count = self._run_round(graph, 1)
        assert count == 3
