"""Multi-GPU extension tests (the paper's Section VII sketch)."""

import numpy as np
import pytest

from repro.core.multigpu import MultiGpuOptions, multi_gpu_peel, partition_ranges
from repro.cpu.bz import bz_core_numbers
from repro.errors import ReproError
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from tests.conftest import assert_cores_equal


class TestPartitioning:
    def test_ranges_cover_and_are_disjoint(self, er_graph):
        graph, _ = er_graph
        ranges = partition_ranges(graph, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == graph.num_vertices
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_edge_balance(self):
        graph = gen.erdos_renyi(500, 8.0, seed=3)
        ranges = partition_ranges(graph, 4)
        loads = [
            int(graph.offsets[hi] - graph.offsets[lo]) for lo, hi in ranges
        ]
        assert max(loads) < 2 * (sum(loads) / len(loads))

    def test_single_partition(self, fig1):
        graph, _ = fig1
        assert partition_ranges(graph, 1) == [(0, graph.num_vertices)]

    def test_invalid_parts(self, fig1):
        with pytest.raises(ReproError):
            partition_ranges(fig1[0], 0)

    def test_hub_graph_skewed_partitions(self):
        """Edge balancing gives the hub's partition fewer vertices."""
        graph = gen.hub_and_spokes(400, num_hubs=1, seed=1)
        ranges = partition_ranges(graph, 2)
        first = ranges[0][1] - ranges[0][0]
        second = ranges[1][1] - ranges[1][0]
        assert first < second  # hub is vertex 0


class TestCorrectness:
    @pytest.mark.parametrize("devices", [1, 2, 3, 4])
    def test_device_counts(self, er_graph, devices):
        graph, reference = er_graph
        result = multi_gpu_peel(graph, num_devices=devices)
        assert_cores_equal(result.core, reference, f"multi-{devices}")

    def test_battery_two_devices(self, battery_graph):
        graph, reference = battery_graph
        result = multi_gpu_peel(graph, num_devices=2)
        assert_cores_equal(result.core, reference, "multi-2")

    def test_variant_composition(self, er_graph):
        graph, reference = er_graph
        result = multi_gpu_peel(graph, num_devices=2, variant="bc")
        assert_cores_equal(result.core, reference, "multi-2-bc")
        assert result.algorithm == "gpu-multi2-bc"

    def test_empty_graph(self):
        result = multi_gpu_peel(CSRGraph.empty(0), num_devices=2)
        assert result.num_vertices == 0

    def test_border_heavy_graph(self):
        """A graph whose dense core straddles the partition boundary —
        maximum cross-device conflict on the shared neighbors."""
        clique = [(i, j) for i in range(20) for j in range(i + 1, 20)]
        graph = CSRGraph.from_edges(clique)
        reference = bz_core_numbers(graph)
        result = multi_gpu_peel(graph, num_devices=4)
        assert_cores_equal(result.core, reference, "multi-4 clique")


class TestReporting:
    def test_subrounds_at_least_rounds(self, fig1):
        graph, _ = fig1
        result = multi_gpu_peel(graph, num_devices=2)
        # every non-empty round needs at least one sub-round
        assert result.stats["sub_rounds"] >= result.kmax

    def test_per_device_metrics(self, er_graph):
        graph, _ = er_graph
        result = multi_gpu_peel(graph, num_devices=3)
        assert len(result.stats["per_device_ms"]) == 3
        assert result.peak_memory_bytes > 0

    def test_aggregation_costs_scale_with_devices(self, er_graph):
        """More devices, more transfer/merge work per sub-round — at
        this scale communication dominates (the reason the paper calls
        multi-GPU future work, not a free win)."""
        graph, _ = er_graph
        two = multi_gpu_peel(graph, num_devices=2)
        four = multi_gpu_peel(graph, num_devices=4)
        assert four.simulated_ms > two.simulated_ms

    def test_custom_options(self, fig1):
        graph, _ = fig1
        cheap = multi_gpu_peel(
            graph, num_devices=2,
            options=MultiGpuOptions(transfer_cycles_per_word=0.0,
                                    reduce_cycles_per_word=0.0),
        )
        costly = multi_gpu_peel(
            graph, num_devices=2,
            options=MultiGpuOptions(transfer_cycles_per_word=50.0,
                                    reduce_cycles_per_word=10.0),
        )
        assert costly.simulated_ms > cheap.simulated_ms

    def test_registry_entry(self, fig1):
        from repro.api import decompose

        graph, expected = fig1
        result = decompose(graph, "gpu-multi2")
        for v, c in expected.items():
            assert result.core[v] == c
