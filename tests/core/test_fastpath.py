"""Vectorised native-path tests."""

import numpy as np

from repro.core.fastpath import fast_decompose, peel_fast
from tests.conftest import assert_cores_equal


def test_battery(battery_graph):
    graph, reference = battery_graph
    assert_cores_equal(peel_fast(graph), reference, "fast")


def test_decompose_wrapper(fig1):
    graph, expected = fig1
    result = fast_decompose(graph)
    assert result.algorithm == "gpu-fast"
    assert result.rounds == 4
    for v, c in expected.items():
        assert result.core[v] == c


def test_cascade_chain():
    """A long dependency chain: removing one endpoint cascades the
    whole path in a single round's waves."""
    from repro.graph.examples import path_graph

    core = peel_fast(path_graph(500))
    assert (core == 1).all()


def test_overshoot_recovery():
    """A vertex whose degree is decremented below k within one wave
    still gets core number k (the fast path's analogue of the degree
    restore trick)."""
    from repro.graph.csr import CSRGraph

    # hub connected to 4 leaves: hub degree drops 4 -> 0 in one wave
    g = CSRGraph.from_edges([(0, i) for i in range(1, 5)])
    core = peel_fast(g)
    assert core.tolist() == [1, 1, 1, 1, 1]
