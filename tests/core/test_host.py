"""End-to-end tests of the GPU peeling host program (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import VariantConfig, get_variant, variant_names
from repro.errors import (
    BufferOverflowError,
    ReproError,
    SimulatedTimeLimitExceeded,
    UnknownAlgorithmError,
)
from repro.gpusim.device import Device
from repro.gpusim.spec import DeviceSpec
from tests.conftest import assert_cores_equal


class TestCorrectness:
    @pytest.mark.parametrize("variant", variant_names())
    def test_every_variant_on_fig1(self, fig1, variant):
        graph, expected = fig1
        result = gpu_peel(graph, variant=variant)
        for v, c in expected.items():
            assert result.core[v] == c, (variant, v)

    @pytest.mark.parametrize("variant", ["ours", "sm", "vp", "bc", "ec"])
    def test_variants_on_random_graph(self, er_graph, variant):
        graph, reference = er_graph
        result = gpu_peel(graph, variant=variant)
        assert_cores_equal(result.core, reference, variant)

    def test_battery(self, battery_graph):
        graph, reference = battery_graph
        result = gpu_peel(graph)
        assert_cores_equal(result.core, reference, "gpu-ours")

    def test_ring_buffer_variant(self, er_graph):
        graph, reference = er_graph
        cfg = get_variant("ours").with_ring_buffer()
        result = gpu_peel(graph, variant=cfg)
        assert_cores_equal(result.core, reference, "ours+ring")

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        result = gpu_peel(CSRGraph.empty(0))
        assert result.num_vertices == 0

    def test_isolated_vertices_core_zero(self):
        from repro.graph.csr import CSRGraph

        result = gpu_peel(CSRGraph.from_edges([(0, 1)], num_vertices=5))
        assert result.core.tolist() == [1, 1, 0, 0, 0]


class TestReporting:
    def test_rounds_is_kmax_plus_one(self, fig1):
        graph, _ = fig1
        result = gpu_peel(graph)
        assert result.rounds == result.kmax + 1 == 4

    def test_two_kernels_per_round(self, fig1):
        graph, _ = fig1
        result = gpu_peel(graph)
        assert result.stats["kernel_launches"] == 2 * result.rounds

    def test_simulated_time_positive_and_split(self, fig1):
        graph, _ = fig1
        result = gpu_peel(graph)
        assert result.simulated_ms > 0
        assert result.stats["scan_cycles"] > 0
        assert result.stats["loop_cycles"] > 0

    def test_peak_memory_includes_graph_and_buffers(self, fig1):
        graph, _ = fig1
        spec = DeviceSpec()
        result = gpu_peel(graph)
        floor = spec.context_overhead_bytes + (
            spec.default_grid_dim * spec.block_buffer_capacity * spec.id_bytes
        )
        assert result.peak_memory_bytes > floor

    def test_algorithm_name_includes_variant(self, fig1):
        graph, _ = fig1
        assert gpu_peel(graph, variant="bc+sm").algorithm == "gpu-bc+sm"


class TestOptionsAndErrors:
    def test_unknown_variant(self, fig1):
        with pytest.raises(UnknownAlgorithmError):
            gpu_peel(fig1[0], variant="warp9")

    def test_options_variant_used_when_argument_default(self, fig1):
        graph, _ = fig1
        result = gpu_peel(graph, options=GpuPeelOptions(variant="bc"))
        assert result.algorithm == "gpu-bc"

    def test_explicit_argument_wins_over_options(self, fig1):
        graph, _ = fig1
        result = gpu_peel(
            graph, variant="ec", options=GpuPeelOptions(variant="bc")
        )
        assert result.algorithm == "gpu-ec"

    def test_vp_requires_two_warps(self, fig1):
        spec = DeviceSpec(default_block_dim=32, default_grid_dim=2)
        with pytest.raises(ReproError):
            gpu_peel(fig1[0], variant="vp", spec=spec)

    def test_buffer_overflow_surfaces(self, er_graph):
        graph, _ = er_graph
        with pytest.raises(BufferOverflowError):
            gpu_peel(graph, options=GpuPeelOptions(buffer_capacity=2))

    def test_time_budget(self, er_graph):
        graph, _ = er_graph
        with pytest.raises(SimulatedTimeLimitExceeded):
            gpu_peel(graph, options=GpuPeelOptions(time_budget_ms=1e-6))

    def test_shared_device_reuse_rejected_on_name_clash(self, fig1):
        graph, _ = fig1
        device = Device()
        gpu_peel(graph, device=device)
        with pytest.raises(ValueError):
            gpu_peel(graph, device=device)  # arrays already allocated

    def test_custom_variant_config(self, fig1):
        graph, expected = fig1
        cfg = VariantConfig("custom", compaction="ballot", prefetch=True)
        result = gpu_peel(graph, variant=cfg)
        for v, c in expected.items():
            assert result.core[v] == c


class TestDeterminism:
    def test_same_run_same_time(self, fig1):
        graph, _ = fig1
        a = gpu_peel(graph)
        b = gpu_peel(graph)
        assert a.simulated_ms == b.simulated_ms
        assert np.array_equal(a.core, b.core)
