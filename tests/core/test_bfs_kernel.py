"""The frontier BFS kernel and its admission to the static pipeline.

``repro.core.bfs_kernel`` exists to prove the contract registry is
kernel-agnostic: a foreign (non-k-core) kernel must certify end to end
purely by registering a :class:`KernelContract` — zero edits to any
analyzer.  These tests pin both halves: the kernel computes correct BFS
levels on the simulated device, and every static-analysis surface
(bounds, dataflow certificate, differential checker, engine
preconditions) covers it through the registry alone.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.core.bfs_kernel import bfs_bounds, gpu_bfs
from repro.graph.csr import CSRGraph
from repro.graph.examples import fig1_graph, path_graph, triangle
from repro.graph.generators import erdos_renyi, random_tree


def reference_levels(graph: CSRGraph, source: int) -> np.ndarray:
    dist = np.full(graph.num_vertices, -1, dtype=np.int64)
    if graph.num_vertices:
        dist[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors_of(v):
                if dist[u] < 0:
                    dist[u] = dist[v] + 1
                    queue.append(int(u))
    return dist


@pytest.mark.parametrize("graph,source", [
    (path_graph(17), 0),
    (path_graph(17), 8),
    (triangle(), 0),
    (fig1_graph()[0], 0),
    (random_tree(120, seed=7), 0),
    (erdos_renyi(150, 4.0, seed=2), 3),
    (CSRGraph.empty(0), 0),
    (CSRGraph.empty(5), 2),
])
def test_gpu_bfs_matches_host_reference(graph, source) -> None:
    result = gpu_bfs(graph, source)
    assert np.array_equal(result.core, reference_levels(graph, source))
    assert result.algorithm == "gpu-bfs"


def test_gpu_bfs_counters_report_frontier_work() -> None:
    graph = path_graph(32)
    result = gpu_bfs(graph, 0)
    # 31 frontier levels plus the final launch that drains to empty
    assert result.counters["host.levels"] == 32
    assert result.counters["kernel.bfs.launches"] == 32
    assert result.counters["frontier.peak"] == 1
    assert result.counters["frontier.total"] == 32


def test_gpu_bfs_is_clean_under_every_checker() -> None:
    graph = erdos_renyi(200, 5.0, seed=9)
    result = gpu_bfs(graph, 0, sanitize=True, staticheck=True,
                     dataflow=True)
    assert result.sanitizer is not None and result.sanitizer.clean
    assert result.staticheck is not None
    assert not result.staticheck.findings
    assert result.staticheck.launches_checked > 0


def test_bfs_is_admitted_through_the_registry() -> None:
    from repro.staticheck import contracts

    contract = contracts.kernel_contract("bfs_kernel")
    assert contract.program == "bfs"
    assert contract.engine_module is None  # no vectorized fast path
    program = contracts.program_contract("bfs")
    assert program.kernels == ("bfs_kernel",)


def test_bfs_dataflow_certificate_is_race_free() -> None:
    from repro.staticheck.dataflow import analyze_kernel, predicted_tier

    cert = analyze_kernel("bfs_kernel", "bfs-base")
    assert cert.race_free
    assert not cert.unproven
    arguments = {p.argument for p in cert.proofs}
    assert "atomic-only" in arguments       # visited claims
    assert "reservation-disjoint" in arguments  # frontier appends
    # no vectorized executor is registered: the static prediction must
    # say the reference interpreter serves every launch
    cfg = cert_variant_config()
    assert predicted_tier("bfs_kernel", cfg) == "reference"


def cert_variant_config():
    from repro.staticheck import contracts

    return contracts.kernel_contract("bfs_kernel").variants()["bfs-base"]


def test_bfs_engine_prediction_matches_the_dynamic_table() -> None:
    from repro.core.bfs_kernel import bfs_kernel
    from repro.gpusim.engine import has_vectorized_impl

    # the contract declares engine_module=None ("always reference");
    # the dynamic dispatch table must agree
    assert not has_vectorized_impl(bfs_kernel)


def test_bfs_bounds_evaluate_and_scale() -> None:
    cfg = cert_variant_config()
    bounds = bfs_bounds(cfg)
    env = {"n": 100.0, "adj": 400.0, "dmax": 9.0, "G": 4.0, "W": 8.0,
           "S": 32.0, "cap": 16384.0}
    small = bounds.evaluate(env)
    big = bounds.evaluate({**env, "n": 1000.0, "adj": 4000.0})
    for event in ("issued", "mem_transactions"):
        assert small[event] > 0
        assert big[event] > small[event]
    assert small["barriers"] == env["G"] * 2
