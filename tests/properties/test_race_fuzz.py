"""Race-interleaving fuzz tests for the degree-restore logic (Fig. 6).

The loop kernel's correctness argument hinges on the atomicSub /
restore dance surviving arbitrary cross-warp and cross-block
interleavings.  ``preempt_prob`` injects extra scheduling points inside
the read -> atomicSub window; over many seeds this explores different
orders in which blocks claim shared neighbors.  Whatever the schedule,
core numbers must match BZ.
"""

import numpy as np
import pytest

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def contended_graph():
    """A graph with many shared neighbors across peel fronts."""
    return gen.planted_core(200, core_size=40, core_degree=12,
                            background_degree=4.0, seed=13)


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_schedules_agree_with_bz(contended_graph, seed):
    reference = bz_core_numbers(contended_graph)
    result = gpu_peel(
        contended_graph,
        options=GpuPeelOptions(preempt_prob=0.3, seed=seed),
    )
    assert np.array_equal(result.core, reference)


@pytest.mark.parametrize("variant", ["ours", "bc", "sm", "vp"])
def test_fuzzed_variants(contended_graph, variant):
    reference = bz_core_numbers(contended_graph)
    result = gpu_peel(
        contended_graph,
        variant=variant,
        options=GpuPeelOptions(preempt_prob=0.5, seed=99),
    )
    assert np.array_equal(result.core, reference)


def test_star_graph_overshoot_under_fuzz():
    """Many warps decrement one hub simultaneously — the exact Fig. 6
    scenario where deg may be driven below k and must be restored."""
    hub = gen.hub_and_spokes(300, num_hubs=1, hub_degree_fraction=0.9,
                             tail_degree=1.0, seed=3)
    reference = bz_core_numbers(hub)
    for seed in range(4):
        result = gpu_peel(hub, options=GpuPeelOptions(preempt_prob=0.4,
                                                      seed=seed))
        assert np.array_equal(result.core, reference)


def test_final_degrees_equal_cores_not_just_output():
    """After the run the device deg array itself must hold core numbers
    (the paper's Case 1-3 argument), not merely a corrected copy."""
    g = gen.erdos_renyi(150, 6.0, seed=5)
    result = gpu_peel(g, options=GpuPeelOptions(preempt_prob=0.3, seed=1))
    assert np.array_equal(result.core, bz_core_numbers(g))
