"""Determinism invariants of sanitizer-clean kernels (hypothesis).

The racecheck's value proposition is that a clean kernel is *schedule
independent*: whatever preemption schedule the scheduler draws,

* the core numbers are identical to the BZ reference, and
* a given ``(graph, seed, preempt_prob)`` triple replays to the exact
  same simulated time, bit for bit — including with the sanitizer
  attached, which must never perturb the run it is observing.

``elapsed_ms`` *does* legitimately vary across different schedules
(over-decremented degrees cost extra restore atomics), so the replay
property is per-seed, not across seeds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen

VARIANT_POOL = ("ours", "sm", "vp", "bc", "ec", "bc+sm", "vw2")


@st.composite
def peel_setups(draw):
    graph = gen.planted_core(
        120,
        core_size=draw(st.integers(min_value=10, max_value=30)),
        core_degree=8,
        background_degree=3.0,
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    variant = draw(st.sampled_from(VARIANT_POOL))
    options = GpuPeelOptions(
        variant=variant,
        preempt_prob=draw(st.sampled_from([0.0, 0.2, 0.5])),
        seed=draw(st.integers(min_value=0, max_value=1000)),
        sanitize=True,
    )
    return graph, options


@given(peel_setups())
@settings(max_examples=12, deadline=None)
def test_clean_kernels_match_bz_under_any_schedule(setup):
    graph, options = setup
    result = gpu_peel(graph, options=options)
    assert result.sanitizer.clean, result.sanitizer.summary()
    assert np.array_equal(result.core, bz_core_numbers(graph))


@given(peel_setups())
@settings(max_examples=8, deadline=None)
def test_same_schedule_replays_identically(setup):
    graph, options = setup
    first = gpu_peel(graph, options=options)
    second = gpu_peel(graph, options=options)
    assert np.array_equal(first.core, second.core)
    assert first.simulated_ms == second.simulated_ms
    assert first.rounds == second.rounds
    assert first.counters == second.counters


@given(peel_setups())
@settings(max_examples=8, deadline=None)
def test_sanitizer_never_perturbs_simulated_time(setup):
    graph, options = setup
    checked = gpu_peel(graph, options=options)
    plain = gpu_peel(graph, options=options, sanitize=False)
    assert plain.sanitizer is None
    assert checked.simulated_ms == plain.simulated_ms
    # `engine.served.*` legitimately differs: a monitored launch is
    # served by the reference interpreter regardless of the selected
    # engine.  Every simulated observable must still match exactly.
    strip = lambda c: {k: v for k, v in c.items()
                       if not k.startswith("engine.served.")}
    assert strip(checked.counters) == strip(plain.counters)
    assert np.array_equal(checked.core, plain.core)
