"""Full-stack telemetry is observability-only (hypothesis).

The run-report arc extends the byte-identity contract beyond the GPU:
whatever graph the strategy draws, turning on the multicore epoch
profiler, CPU memory telemetry, the semi-external disk counters, or
the whole unified report must leave the run itself byte-identical —
same cores, same simulated milliseconds, same counters, same peak
bytes.  And every report collected under a live tracer must satisfy
all cross-layer invariants exactly, whatever the inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import api
from repro.core.host import gpu_peel
from repro.graph import generators as gen
from repro.obs.runreport import collect_run_report

MULTICORE_POOL = ("pkc", "pkc-serial", "park", "mpm")


@st.composite
def graphs(draw):
    kind = draw(st.sampled_from(("er", "planted", "ba")))
    seed = draw(st.integers(min_value=0, max_value=50))
    if kind == "er":
        return gen.erdos_renyi(
            draw(st.integers(min_value=30, max_value=120)), 4.0, seed=seed
        )
    if kind == "planted":
        return gen.planted_core(
            100,
            core_size=draw(st.integers(min_value=8, max_value=20)),
            core_degree=6,
            seed=seed,
        )
    return gen.barabasi_albert(80, 3, seed=seed)


def _assert_byte_identical(plain, instrumented):
    assert instrumented.simulated_ms == plain.simulated_ms
    assert instrumented.rounds == plain.rounds
    assert dict(instrumented.counters) == dict(plain.counters)
    assert instrumented.peak_memory_bytes == plain.peak_memory_bytes
    assert np.array_equal(instrumented.core, plain.core)


@given(graphs(), st.sampled_from(MULTICORE_POOL))
@settings(max_examples=8, deadline=None)
def test_multicore_telemetry_never_perturbs_the_run(graph, name):
    plain = api.decompose(graph, name)
    traced = api.decompose(graph, name, profile=True, memtrace=True)
    assert plain.profile is None and plain.memtrace is None
    assert traced.profile is not None and traced.memtrace is not None
    _assert_byte_identical(plain, traced)


@given(graphs())
@settings(max_examples=6, deadline=None)
def test_disk_telemetry_never_perturbs_the_run(graph):
    plain = api.decompose(graph, "semi-external")
    traced = api.decompose(graph, "semi-external", memtrace=True)
    assert traced.memtrace is not None
    _assert_byte_identical(plain, traced)
    # the disk-I/O counters themselves are always-on observability
    for name in ("disk.passes", "disk.page_in_bytes",
                 "disk.resident_peak_bytes"):
        assert name in plain.counters


@given(graphs())
@settings(max_examples=6, deadline=None)
def test_gpu_report_is_attached_and_byte_identical(graph):
    plain = gpu_peel(graph)
    reported = gpu_peel(graph, report=True)
    assert plain.report is None
    assert reported.report is not None
    _assert_byte_identical(plain, reported)
    assert reported.report.validate() == []


@given(graphs(), st.sampled_from(("gpu-ours", "pkc", "semi-external")))
@settings(max_examples=6, deadline=None)
def test_collected_reports_validate_for_any_graph(graph, name):
    report, results = collect_run_report(graph, [name])
    assert report.validate() == []
    plain = api.decompose(graph, name)
    _assert_byte_identical(plain, results[0])
