"""Memtrace invariants under random graphs and schedules (hypothesis).

Memory telemetry shares the tracer/sanitizer/profiler contract: it is
*observability-only*.  Whatever graph, variant, and preemption schedule
the strategy draws, a traced run must be byte-identical in simulated
time, counters, core numbers, and peak bytes to an untraced one — and
the report must satisfy the ``repro.memtrace/v1`` arithmetic
invariants, above all that the peak attribution breakdown sums
*exactly* to the device's reported peak.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.graph import generators as gen
from repro.memtrace import validate_memtrace

VARIANT_POOL = ("ours", "sm", "vp", "bc", "ec", "ec+vp", "vw2")


@st.composite
def peel_setups(draw):
    graph = gen.planted_core(
        110,
        core_size=draw(st.integers(min_value=8, max_value=25)),
        core_degree=7,
        background_degree=3.0,
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    options = GpuPeelOptions(
        variant=draw(st.sampled_from(VARIANT_POOL)),
        preempt_prob=draw(st.sampled_from([0.0, 0.3])),
        seed=draw(st.integers(min_value=0, max_value=1000)),
    )
    return graph, options


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_memtrace_never_perturbs_the_run(setup):
    graph, options = setup
    traced = gpu_peel(graph, options=options, memtrace=True)
    plain = gpu_peel(graph, options=options)
    assert plain.memtrace is None
    assert traced.simulated_ms == plain.simulated_ms
    assert traced.rounds == plain.rounds
    assert traced.counters == plain.counters
    assert traced.peak_memory_bytes == plain.peak_memory_bytes
    assert np.array_equal(traced.core, plain.core)


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_memtrace_invariants_hold_for_any_run(setup):
    graph, options = setup
    result = gpu_peel(graph, options=options, memtrace=True)
    report = result.memtrace
    assert validate_memtrace(report.to_json()) == []
    assert report.peak_bytes == result.peak_memory_bytes
    assert sum(report.breakdown().values()) == result.peak_memory_bytes
    assert report.clean  # a traced peel frees everything it allocates
