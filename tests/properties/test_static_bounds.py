"""Static certificates dominate dynamic traces (hypothesis).

Two invariants, for random graphs across all eleven certified
variants:

* every traced launch stays under its static certificate — the
  differential checker (which compares per-launch ``KernelStats``
  against the symbolic ``issued`` / ``mem_transactions`` /
  ``barriers`` bounds) reports clean, having checked every launch;
* attaching the checker never perturbs the run it is observing —
  ``simulated_ms`` and the counters are byte-identical with and
  without ``staticheck``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import EXTENSION_VARIANTS, VARIANTS
from repro.graph import generators as gen

ALL_VARIANTS = tuple(VARIANTS) + tuple(EXTENSION_VARIANTS)


@st.composite
def peel_setups(draw):
    graph = gen.planted_core(
        110,
        core_size=draw(st.integers(min_value=8, max_value=28)),
        core_degree=7,
        background_degree=3.0,
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    variant = draw(st.sampled_from(ALL_VARIANTS))
    options = GpuPeelOptions(
        variant=variant,
        preempt_prob=draw(st.sampled_from([0.0, 0.3])),
        seed=draw(st.integers(min_value=0, max_value=1000)),
        staticheck=True,
    )
    return graph, options


@given(peel_setups())
@settings(max_examples=14, deadline=None)
def test_static_bounds_dominate_dynamic_stats(setup):
    graph, options = setup
    result = gpu_peel(graph, options=options)
    report = result.staticheck
    assert report is not None
    assert report.clean, report.summary(label="staticheck")
    # one scan + one loop launch per round, all of them checked
    assert report.launches_checked == 2 * result.rounds


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_staticheck_never_perturbs_simulated_time(setup):
    graph, options = setup
    checked = gpu_peel(graph, options=options)
    plain = gpu_peel(graph, options=options, staticheck=False)
    assert plain.staticheck is None
    assert checked.simulated_ms == plain.simulated_ms
    assert checked.counters == plain.counters
    assert np.array_equal(checked.core, plain.core)
