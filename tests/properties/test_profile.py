"""Profiler invariants under random graphs and schedules (hypothesis).

The profiler's contract mirrors the tracer's and sanitizer's: it is
*observability-only*.  Whatever graph, variant, and preemption schedule
the strategy draws, a profiled run must be byte-identical in simulated
time, counters, and core numbers to an unprofiled one — and the report
it produces must satisfy the ``repro.profile/v1`` arithmetic
invariants (the validator re-derives the partition of busy cycles that
``CostModel.block_cycles`` defines).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.graph import generators as gen
from repro.profile import validate_profile

VARIANT_POOL = ("ours", "sm", "vp", "bc", "ec", "ec+vp", "vw2")


@st.composite
def peel_setups(draw):
    graph = gen.planted_core(
        110,
        core_size=draw(st.integers(min_value=8, max_value=25)),
        core_degree=7,
        background_degree=3.0,
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    options = GpuPeelOptions(
        variant=draw(st.sampled_from(VARIANT_POOL)),
        preempt_prob=draw(st.sampled_from([0.0, 0.3])),
        seed=draw(st.integers(min_value=0, max_value=1000)),
    )
    return graph, options


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_profiling_never_perturbs_simulated_time(setup):
    graph, options = setup
    profiled = gpu_peel(graph, options=options, profile=True)
    plain = gpu_peel(graph, options=options)
    assert plain.profile is None
    assert profiled.simulated_ms == plain.simulated_ms
    assert profiled.rounds == plain.rounds
    assert profiled.counters == plain.counters
    assert np.array_equal(profiled.core, plain.core)


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_profile_invariants_hold_for_any_run(setup):
    graph, options = setup
    result = gpu_peel(graph, options=options, profile=True)
    report = result.profile
    assert validate_profile(report.to_json()) == []
    assert len(report.launches) == 2 * result.rounds
    # the summary's duration is the device's total kernel time
    assert report.summary().cycles == result.counters["device.cycles"]
