"""Property-based tests of incremental core maintenance.

For arbitrary small graphs and update streams, the maintainer must
always agree with a fresh BZ recomputation — the strongest statement
about the subcore traversal logic.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.maintenance import DynamicCoreMaintainer
from repro.cpu.bz import bz_core_numbers

MAX_N = 14


@st.composite
def update_streams(draw):
    n = draw(st.integers(min_value=2, max_value=MAX_N))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return n, ops


@given(update_streams())
@settings(max_examples=60, deadline=None)
def test_insert_stream_matches_recompute(stream):
    n, ops = stream
    maintainer = DynamicCoreMaintainer(num_vertices=n)
    for u, v in ops:
        maintainer.insert_edge(u, v)
    fresh = bz_core_numbers(maintainer.to_graph())
    assert np.array_equal(maintainer.core_numbers(), fresh)


@given(update_streams(), st.data())
@settings(max_examples=60, deadline=None)
def test_mixed_stream_matches_recompute(stream, data):
    n, ops = stream
    maintainer = DynamicCoreMaintainer(num_vertices=n)
    for u, v in ops:
        if u == v:
            continue
        if maintainer.has_edge(u, v) and data.draw(st.booleans()):
            maintainer.remove_edge(u, v)
        else:
            maintainer.insert_edge(u, v)
        fresh = bz_core_numbers(maintainer.to_graph())
        assert np.array_equal(maintainer.core_numbers(), fresh)


@given(update_streams())
@settings(max_examples=40, deadline=None)
def test_updates_change_cores_by_at_most_one(stream):
    n, ops = stream
    maintainer = DynamicCoreMaintainer(num_vertices=n)
    for u, v in ops:
        before = maintainer.core_numbers()
        maintainer.insert_edge(u, v)
        after = maintainer.core_numbers()
        assert (np.abs(after - before) <= 1).all()
        assert (after >= before).all()
