"""Property-based tests (hypothesis) of k-core invariants.

These check mathematical properties of the decomposition itself, with
BZ as the oracle and the fast path / kernels as subjects:

* degree bound: ``core(v) <= deg(v)``;
* k-core property: the induced k-core subgraph has min degree >= k;
* monotonicity: adding an edge never lowers any core number;
* permutation invariance: relabelling the graph permutes core numbers;
* h-index fixpoint: MPM's fixpoint equals the peeling result;
* subgraph bound: core numbers in a subgraph never exceed the host's.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.fastpath import peel_fast
from repro.cpu.bz import bz_core_numbers
from repro.cpu.mpm import mpm_core_numbers
from repro.graph.csr import CSRGraph

MAX_N = 24


@st.composite
def graphs(draw, max_n=MAX_N):
    """Random simple undirected graphs as CSRGraph."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n)
                 ) if possible else []
    return CSRGraph.from_edges(edges, num_vertices=n)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_fast_path_matches_bz(graph):
    assert np.array_equal(peel_fast(graph), bz_core_numbers(graph))


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_core_bounded_by_degree(graph):
    core = bz_core_numbers(graph)
    assert (core <= graph.degrees).all()


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_kcore_subgraph_min_degree(graph):
    core = bz_core_numbers(graph)
    kmax = int(core.max()) if core.size else 0
    for k in range(1, kmax + 1):
        members = np.flatnonzero(core >= k)
        sub = graph.induced_subgraph(members)
        if sub.num_vertices:
            assert sub.degrees.min() >= k


@given(graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_adding_edge_never_lowers_core(graph, data):
    n = graph.num_vertices
    if n < 2:
        return
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    if u == v:
        return
    before = bz_core_numbers(graph)
    extended = CSRGraph.from_edges(
        np.vstack([graph.edge_array().reshape(-1, 2), [[u, v]]]),
        num_vertices=n,
    )
    after = bz_core_numbers(extended)
    assert (after >= before).all()


@given(graphs(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_permutation_invariance(graph, rnd):
    n = graph.num_vertices
    perm = list(range(n))
    rnd.shuffle(perm)
    perm = np.asarray(perm)
    relabelled = CSRGraph.from_edges(
        np.column_stack([
            perm[graph.edge_array()[:, 0]],
            perm[graph.edge_array()[:, 1]],
        ]) if graph.num_edges else np.empty((0, 2), dtype=np.int64),
        num_vertices=n,
    )
    core = bz_core_numbers(graph)
    core_relabelled = bz_core_numbers(relabelled)
    assert np.array_equal(core_relabelled[perm], core)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_hindex_fixpoint_equals_peeling(graph):
    mpm_core, _ = mpm_core_numbers(graph)
    assert np.array_equal(mpm_core, bz_core_numbers(graph))


@given(graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_subgraph_cores_bounded_by_host(graph, data):
    n = graph.num_vertices
    if n < 2:
        return
    keep = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=n, unique=True)
    )
    keep = np.asarray(sorted(keep))
    sub = graph.induced_subgraph(keep)
    host_core = bz_core_numbers(graph)
    sub_core = bz_core_numbers(sub)
    assert (sub_core <= host_core[keep]).all()


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_shells_partition(graph):
    core = bz_core_numbers(graph)
    sizes = np.bincount(core) if core.size else np.array([0])
    assert sizes.sum() == graph.num_vertices


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_gpu_kernels_match_oracle(graph):
    """The simulated kernels themselves under hypothesis's graphs."""
    from repro.core.host import gpu_peel

    result = gpu_peel(graph)
    assert np.array_equal(result.core, bz_core_numbers(graph))
