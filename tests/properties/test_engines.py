"""Cross-engine byte-identity (hypothesis).

The execution-engine contract (``docs/SIMULATOR.md``): every engine
produces byte-identical simulated results — core numbers, simulated
milliseconds, rounds, memory peaks, counters and stats — and may
differ only in host wall-clock time.  The reference interpreter is
ground truth; these properties pin the vectorized engine (and the
gracefully-degrading jit tier) against it on generated graphs across
every kernel variant, including the ones the vectorized engine serves
via structural fallback (``vw2``/``vw4``, ring buffers).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.multigpu import multi_gpu_peel
from repro.core.variants import EXTENSION_VARIANTS, VARIANTS
from repro.graph import generators as gen

ALL_VARIANTS = tuple(VARIANTS) + tuple(EXTENSION_VARIANTS)


def _strip_engine(result):
    """A result's comparable payload, minus the engine attribution."""
    counters = {
        k: v for k, v in result.counters.items()
        if not k.startswith("engine.")
    }
    stats = {k: v for k, v in result.stats.items() if k != "engine"}
    return counters, stats


def assert_byte_identical(ref, other):
    assert np.array_equal(ref.core, other.core)
    assert ref.simulated_ms == other.simulated_ms  # bit-exact, no tolerance
    assert ref.rounds == other.rounds
    assert ref.peak_memory_bytes == other.peak_memory_bytes
    assert _strip_engine(ref) == _strip_engine(other)


@st.composite
def graphs(draw):
    kind = draw(st.sampled_from(("planted", "er", "ba")))
    seed = draw(st.integers(min_value=0, max_value=200))
    if kind == "planted":
        return gen.planted_core(
            draw(st.integers(min_value=40, max_value=160)),
            core_size=draw(st.integers(min_value=8, max_value=24)),
            core_degree=6,
            background_degree=2.5,
            seed=seed,
        )
    if kind == "er":
        return gen.erdos_renyi(
            draw(st.integers(min_value=30, max_value=200)),
            draw(st.floats(min_value=1.0, max_value=10.0)),
            seed=seed,
        )
    return gen.barabasi_albert(
        draw(st.integers(min_value=30, max_value=250)),
        draw(st.integers(min_value=2, max_value=6)),
        seed=seed,
    )


@given(graphs(), st.sampled_from(ALL_VARIANTS))
@settings(max_examples=25, deadline=None)
def test_vectorized_matches_reference_byte_for_byte(graph, variant):
    ref = gpu_peel(graph, variant=variant, engine="reference")
    vec = gpu_peel(graph, variant=variant, engine="vectorized")
    assert_byte_identical(ref, vec)
    assert "engine.reference" in ref.counters
    assert "engine.vectorized" in vec.counters


@given(graphs(), st.sampled_from(("ours", "sm", "vp", "ec", "bc+sm")))
@settings(max_examples=8, deadline=None)
def test_jit_engine_matches_reference(graph, variant):
    """jit degrades gracefully without numba; results stay identical."""
    ref = gpu_peel(graph, variant=variant, engine="reference")
    jit = gpu_peel(graph, variant=variant, engine="jit")
    assert_byte_identical(ref, jit)
    assert jit.stats["engine"] == "jit"


@given(graphs(), st.sampled_from(("ours", "vp", "ec+sm")))
@settings(max_examples=8, deadline=None)
def test_engines_agree_under_observability_hooks(graph, variant):
    """Hooks attach identically: profiled+memtraced runs stay equal."""
    ref = gpu_peel(graph, variant=variant, engine="reference",
                   profile=True, memtrace=True)
    vec = gpu_peel(graph, variant=variant, engine="vectorized",
                   profile=True, memtrace=True)
    assert_byte_identical(ref, vec)
    assert ref.profile is not None and vec.profile is not None
    assert ref.profile.to_json() == vec.profile.to_json()
    assert ref.memtrace.peak_bytes == vec.memtrace.peak_bytes


@given(graphs(), st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_multi_gpu_peel_is_engine_invariant(graph, num_devices):
    ref = multi_gpu_peel(graph, num_devices=num_devices,
                         engine="reference")
    vec = multi_gpu_peel(graph, num_devices=num_devices,
                         engine="vectorized")
    assert_byte_identical(ref, vec)


@given(graphs())
@settings(max_examples=6, deadline=None)
def test_options_engine_equals_argument_engine(graph):
    """GpuPeelOptions.engine and the gpu_peel argument are one knob."""
    via_options = gpu_peel(
        graph, options=GpuPeelOptions(engine="reference")
    )
    via_argument = gpu_peel(graph, engine="reference")
    assert_byte_identical(via_options, via_argument)
    assert via_options.stats["engine"] == "reference"
