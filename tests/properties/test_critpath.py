"""Critical-path analyzer invariants under random graphs (hypothesis).

The analyzer's contract has two halves.  It is *observability-only*:
whatever graph and variant the strategy draws, an analyzed run must be
byte-identical in simulated time, counters, and core numbers to a
plain one.  And its arithmetic is *exact*: the critical path never
exceeds the elapsed window, slack is never negative, and every what-if
projection sits between the static floor and the measured time — the
``repro.critpath/v1`` validator re-derives all of it with zero
tolerance.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.multigpu import multi_gpu_peel
from repro.graph import generators as gen
from repro.obs.critpath import ROUND_BOUND_CLASSES

VARIANT_POOL = ("ours", "sm", "vp", "bc", "ec", "ec+vp")


@st.composite
def peel_setups(draw):
    graph = gen.planted_core(
        110,
        core_size=draw(st.integers(min_value=8, max_value=25)),
        core_degree=7,
        background_degree=3.0,
        seed=draw(st.integers(min_value=0, max_value=50)),
    )
    options = GpuPeelOptions(
        variant=draw(st.sampled_from(VARIANT_POOL)),
        seed=draw(st.integers(min_value=0, max_value=1000)),
    )
    return graph, options


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_analysis_never_perturbs_the_run(setup):
    graph, options = setup
    analyzed = gpu_peel(graph, options=options, critpath=True)
    plain = gpu_peel(graph, options=options)
    assert plain.critpath is None
    assert analyzed.simulated_ms == plain.simulated_ms
    assert analyzed.rounds == plain.rounds
    assert analyzed.counters == plain.counters
    assert np.array_equal(analyzed.core, plain.core)


@given(peel_setups())
@settings(max_examples=10, deadline=None)
def test_record_invariants_hold_for_any_run(setup):
    graph, options = setup
    result = gpu_peel(graph, options=options, critpath=True)
    report = result.critpath
    assert report.validate() == []
    record = report.record

    # the critical path never exceeds the elapsed window: summing the
    # on-path node cycles (plus launch overhead and pre-window base
    # cycles) reproduces the elapsed time exactly
    clock = record["clock"]
    path_cycles = sum(
        record["nodes"][i]["cycles"] for i in record["critical_path"]
    )
    assert path_cycles <= record["accounting"]["total_cycles"]
    path_ms = (
        record["accounting"]["total_cycles"]
        / (clock["clock_ghz"] * 1e6)
        + record["kernel_launches"] * clock["kernel_launch_us"] / 1000.0
    )
    assert path_ms <= record["elapsed_ms"] or path_ms == record[
        "elapsed_ms"
    ]

    # slack is never negative, anywhere
    for node in record["nodes"]:
        assert node["slack_cycles"] >= 0.0
        assert node["lane_slack_cycles"] >= 0.0
        for lane in node["lanes"]:
            assert lane["slack_cycles"] >= 0.0

    # every projection is bracketed: floor <= projected <= measured
    for row in record["whatif"]:
        assert row["projected_ms"] <= row["measured_ms"]
        assert row["floor_ms"] <= row["projected_ms"]
        assert row["speedup_ceiling"] >= 1.0


@given(
    st.integers(min_value=8, max_value=20),
    st.integers(min_value=0, max_value=30),
    st.sampled_from([2, 4]),
)
@settings(max_examples=10, deadline=None)
def test_multi_gpu_rounds_always_classified(core_size, seed, devices):
    graph = gen.planted_core(
        110, core_size=core_size, core_degree=7,
        background_degree=3.0, seed=seed,
    )
    analyzed = multi_gpu_peel(graph, num_devices=devices, critpath=True)
    plain = multi_gpu_peel(graph, num_devices=devices)
    assert analyzed.simulated_ms == plain.simulated_ms
    assert analyzed.counters == plain.counters
    assert np.array_equal(analyzed.core, plain.core)

    report = analyzed.critpath
    assert report.validate() == []
    record = report.record
    assert record["num_devices"] == devices
    for rnd in record["rounds"]:
        assert rnd["bound"] in ROUND_BOUND_CLASSES
    assert sum(record["round_bounds"].values()) == len(record["rounds"])
    for row in record["whatif"]:
        assert row["floor_ms"] <= row["projected_ms"] <= row[
            "measured_ms"
        ]
