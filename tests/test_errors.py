"""Exception-hierarchy tests."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in (
        "GraphFormatError", "GraphValidationError", "UnknownDatasetError",
        "UnknownAlgorithmError", "DeviceError", "DeviceOutOfMemoryError",
        "BufferOverflowError", "SharedMemoryExhaustedError",
        "SimulatedTimeLimitExceeded", "KernelDeadlockError",
        "SanitizerFindingsError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError), name


def test_device_failures_derive_from_device_error():
    assert issubclass(errors.DeviceOutOfMemoryError, errors.DeviceError)
    assert issubclass(errors.BufferOverflowError, errors.DeviceError)
    assert issubclass(errors.SharedMemoryExhaustedError, errors.DeviceError)


def test_shared_memory_exhausted_fields():
    exc = errors.SharedMemoryExhaustedError(2, "tile", 4096, 1024, 3072)
    assert exc.block == 2
    assert exc.name == "tile"
    assert exc.requested == 4096
    assert "tile" in str(exc) and "4096" in str(exc) and "3072" in str(exc)
    # downstream code that catches MemoryError keeps working
    assert issubclass(errors.SharedMemoryExhaustedError, MemoryError)


def test_lookup_errors_are_key_errors():
    assert issubclass(errors.UnknownDatasetError, KeyError)
    assert issubclass(errors.UnknownAlgorithmError, KeyError)


def test_oom_message_carries_numbers():
    exc = errors.DeviceOutOfMemoryError(100, 200, 250)
    assert "100" in str(exc) and "250" in str(exc)
    assert exc.requested == 100


def test_buffer_overflow_fields():
    exc = errors.BufferOverflowError(3, 1024)
    assert exc.block == 3
    assert "1024" in str(exc)


def test_time_limit_fields():
    exc = errors.SimulatedTimeLimitExceeded(500.0, 400.0)
    assert exc.elapsed_ms == 500.0
    assert "400.0" in str(exc)


def test_catching_base_class_at_api_boundary():
    from repro import decompose
    from repro.graph.examples import triangle

    with pytest.raises(errors.ReproError):
        decompose(triangle(), "not-an-algorithm")
