"""Bench-harness unit tests: outcome classification and table rendering."""

import pytest

from repro.bench.runner import SIMULATED_HOUR_MS, BenchCache, Outcome, run_program
from repro.bench.tables import render_table


class TestOutcome:
    def test_ok_cell(self):
        o = Outcome("bz", "x", "ok", simulated_ms=1.2345)
        assert o.cell == "1.234" or o.cell == "1.235"

    def test_cell_with_std(self):
        o = Outcome("bz", "x", "ok", simulated_ms=1.0, simulated_ms_std=0.1)
        assert "±" in o.cell

    def test_failure_cells(self):
        assert Outcome("a", "x", "oom").cell == "OOM"
        assert Outcome("a", "x", "timeout").cell == "> 1hr"
        assert Outcome("a", "x", "load-timeout").cell == "LD > 1hr"

    def test_memory_cell(self):
        assert Outcome("a", "x", "oom").memory_cell == "N/A"
        ok = Outcome("a", "x", "ok", peak_memory_mb=1.5)
        assert ok.memory_cell == "1.50"


class TestRunProgram:
    def test_ok_run(self):
        outcome = run_program("bz", "amazon0601")
        assert outcome.status == "ok"
        assert outcome.simulated_ms > 0
        assert outcome.rounds > 0

    def test_oom_classified(self):
        outcome = run_program("medusa-peel", "it-2004")
        assert outcome.status == "oom"

    def test_load_timeout_classified(self):
        outcome = run_program("vetga", "it-2004")
        assert outcome.status == "load-timeout"

    def test_cpu_timeout_classified_post_hoc(self):
        outcome = run_program("networkx", "amazon0601", budget_ms=0.001)
        assert outcome.status == "timeout"

    def test_repeats_produce_spread(self):
        outcome = run_program("gpu-ours", "amazon0601", repeats=3)
        assert outcome.status == "ok"
        # schedule fuzzing may or may not shift cells around; std >= 0
        assert outcome.simulated_ms_std >= 0.0

    def test_no_budget(self):
        outcome = run_program("bz", "amazon0601", budget_ms=None)
        assert outcome.status == "ok"


class TestBenchCache:
    def test_memoisation(self):
        cache = BenchCache()
        a = cache.get("bz", "amazon0601")
        b = cache.get("bz", "amazon0601")
        assert a is b

    def test_default_budget_is_the_scaled_hour(self):
        assert BenchCache().budget_ms == SIMULATED_HOUR_MS


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table("T", ["d", "a", "b"], [["x", "1", "2"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[-1] and "2" in lines[-1]

    def test_highlight_min_marks_winner(self):
        text = render_table(
            "T", ["d", "a", "b", "c"],
            [["x", "3.0", "1.0", "OOM"]],
            highlight_min=True,
        )
        assert "1.0*" in text
        assert "3.0*" not in text

    def test_highlight_handles_all_failures(self):
        text = render_table(
            "T", ["d", "a"], [["x", "OOM"]], highlight_min=True
        )
        assert "*" not in text.splitlines()[-1]

    def test_highlight_parses_std_cells(self):
        text = render_table(
            "T", ["d", "a", "b"],
            [["x", "2.0±0.1", "5.0"]],
            highlight_min=True,
        )
        assert "2.0±0.1*" in text
