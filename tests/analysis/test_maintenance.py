"""Incremental core-maintenance tests (validated against full BZ)."""

import numpy as np
import pytest

from repro.analysis.maintenance import DynamicCoreMaintainer
from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.examples import fig1_graph


def check_against_recompute(maintainer: DynamicCoreMaintainer):
    fresh = bz_core_numbers(maintainer.to_graph())
    assert np.array_equal(maintainer.core_numbers(), fresh)


class TestInsertion:
    def test_single_insert_into_fig1(self):
        graph, _ = fig1_graph()
        m = DynamicCoreMaintainer(graph)
        # connect B (vertex 5) to R4 (vertex 3): B gains degree -> the
        # A/B pair may now join the 3-core
        m.insert_edge(5, 3)
        check_against_recompute(m)

    def test_insert_existing_edge_is_noop(self):
        graph, _ = fig1_graph()
        m = DynamicCoreMaintainer(graph)
        before = m.core_numbers()
        assert m.insert_edge(0, 1) == ()
        assert np.array_equal(m.core_numbers(), before)

    def test_self_loop_is_noop(self):
        m = DynamicCoreMaintainer(num_vertices=3)
        assert m.insert_edge(1, 1) == ()

    def test_insert_grows_vertex_set(self):
        m = DynamicCoreMaintainer(num_vertices=2)
        m.insert_edge(0, 5)
        assert m.num_vertices == 6
        assert m.core_of(5) == 1

    def test_core_rises_by_at_most_one(self):
        graph = gen.erdos_renyi(120, 5.0, seed=4)
        m = DynamicCoreMaintainer(graph)
        rng = np.random.default_rng(0)
        for _ in range(30):
            u, v = rng.integers(0, 120, size=2)
            before = m.core_numbers()
            changed = m.insert_edge(int(u), int(v))
            after = m.core_numbers()
            assert ((after - before)[list(changed)] == 1).all()
            assert (after >= before).all()

    def test_build_graph_from_scratch(self):
        """Insert the Fig. 1 graph edge by edge; final cores match."""
        graph, expected = fig1_graph()
        m = DynamicCoreMaintainer(num_vertices=graph.num_vertices)
        for u, v in graph.edges():
            m.insert_edge(u, v)
            check_against_recompute(m)
        for vertex, core in expected.items():
            assert m.core_of(vertex) == core

    def test_random_insert_stream(self):
        rng = np.random.default_rng(11)
        m = DynamicCoreMaintainer(num_vertices=40)
        for _ in range(120):
            u, v = rng.integers(0, 40, size=2)
            if u != v:
                m.insert_edge(int(u), int(v))
        check_against_recompute(m)


class TestDeletion:
    def test_single_delete_from_fig1(self):
        graph, _ = fig1_graph()
        m = DynamicCoreMaintainer(graph)
        m.remove_edge(0, 1)  # break the K4
        check_against_recompute(m)

    def test_delete_absent_edge_raises(self):
        graph, _ = fig1_graph()
        m = DynamicCoreMaintainer(graph)
        with pytest.raises(KeyError):
            m.remove_edge(0, 9)

    def test_core_falls_by_at_most_one(self):
        graph = gen.erdos_renyi(120, 6.0, seed=5)
        m = DynamicCoreMaintainer(graph)
        rng = np.random.default_rng(1)
        edges = list(graph.edges())
        rng.shuffle(edges)
        for u, v in edges[:30]:
            before = m.core_numbers()
            changed = m.remove_edge(u, v)
            after = m.core_numbers()
            assert ((before - after)[list(changed)] == 1).all()
            assert (after <= before).all()

    def test_dismantle_entirely(self):
        graph = gen.ring_of_cliques(2, 4)
        m = DynamicCoreMaintainer(graph)
        for u, v in list(graph.edges()):
            m.remove_edge(u, v)
            check_against_recompute(m)
        assert (m.core_numbers() == 0).all()


class TestMixedStream:
    def test_interleaved_inserts_and_deletes(self):
        rng = np.random.default_rng(2)
        graph = gen.erdos_renyi(60, 4.0, seed=6)
        m = DynamicCoreMaintainer(graph)
        for step in range(150):
            u, v = map(int, rng.integers(0, 60, size=2))
            if u == v:
                continue
            if m.has_edge(u, v) and rng.random() < 0.5:
                m.remove_edge(u, v)
            else:
                m.insert_edge(u, v)
            if step % 25 == 0:
                check_against_recompute(m)
        check_against_recompute(m)

    def test_insert_then_delete_roundtrip(self):
        graph = gen.planted_core(80, 20, 6, seed=7)
        m = DynamicCoreMaintainer(graph)
        before = m.core_numbers()
        m.insert_edge(0, 79)
        m.remove_edge(0, 79)
        assert np.array_equal(m.core_numbers(), before)

    def test_snapshot_is_csr(self):
        graph, _ = fig1_graph()
        m = DynamicCoreMaintainer(graph)
        assert m.to_graph() == graph
