"""Shell/core extraction tests."""

import numpy as np
import pytest

from repro.analysis.shells import (
    degeneracy,
    k_core_components,
    k_core_subgraph,
    k_core_vertices,
    k_shell,
    shell_sizes,
)
from repro.graph import generators as gen


def test_fig1_shells(fig1):
    graph, expected = fig1
    assert set(k_shell(graph, 3).tolist()) == {
        v for v, c in expected.items() if c == 3
    }
    assert k_shell(graph, 1).size == 3


def test_shells_partition_vertices(er_graph):
    graph, core = er_graph
    total = sum(
        k_shell(graph, k, core).size for k in range(int(core.max()) + 1)
    )
    assert total == graph.num_vertices


def test_k_core_is_union_of_deeper_shells(fig1):
    graph, _ = fig1
    two_core = set(k_core_vertices(graph, 2).tolist())
    assert two_core == set(k_shell(graph, 2)) | set(k_shell(graph, 3))


def test_k_core_subgraph_min_degree(er_graph):
    """The defining property: every vertex of the k-core has degree
    >= k *within* the k-core."""
    graph, core = er_graph
    for k in (1, 2, int(core.max())):
        sub, _ = k_core_subgraph(graph, k, core)
        if sub.num_vertices:
            assert sub.degrees.min() >= k


def test_k_core_subgraph_vertex_map(fig1):
    graph, expected = fig1
    sub, vmap = k_core_subgraph(graph, 3)
    assert set(vmap.tolist()) == {v for v, c in expected.items() if c == 3}
    assert sub.num_edges == 6  # the K4


def test_components_of_disconnected_core():
    """Two K4s joined through a low-core relay vertex: connected as a
    graph, but the 3-core splits into two components because the relay
    (core 2) is excluded from the induced 3-core."""
    from repro.graph.csr import CSRGraph

    k4a = [(i, j) for i in range(4) for j in range(i + 1, 4)]
    k4b = [(i + 10, j + 10) for i in range(4) for j in range(i + 1, 4)]
    relay = [(3, 20), (20, 10)]
    graph = CSRGraph.from_edges(k4a + k4b + relay)
    comps = k_core_components(graph, 3)
    assert len(comps) == 2
    assert all(len(c) == 4 for c in comps)


def test_components_sorted_largest_first():
    from repro.graph.csr import CSRGraph

    k5 = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    k3 = [(10, 11), (11, 12), (10, 12)]
    graph = CSRGraph.from_edges(k5 + k3)
    comps = k_core_components(graph, 2)
    assert len(comps[0]) == 5
    assert len(comps[1]) == 3


def test_shell_sizes_sum(er_graph):
    graph, core = er_graph
    sizes = shell_sizes(graph, core)
    assert sizes.sum() == graph.num_vertices
    assert sizes.size == int(core.max()) + 1


def test_degeneracy(fig1):
    assert degeneracy(fig1[0]) == 3


def test_core_argument_validated(fig1):
    graph, _ = fig1
    with pytest.raises(ValueError):
        k_shell(graph, 1, core=np.zeros(3))


def test_without_core_argument_computes(fig1):
    graph, _ = fig1
    assert k_shell(graph, 3).size == 4
