"""Fig. 10 case-study tests."""

import numpy as np
import pytest

from repro.analysis.case_study import (
    author_interaction_snapshot,
    compare_snapshots,
    synthesize_citation_corpus,
)


@pytest.fixture(scope="module")
def corpus():
    return synthesize_citation_corpus(
        num_authors=300, start_year=1984, end_year=2000,
        papers_per_year=60, era_split=1993, seed=5,
    )


def test_corpus_deterministic():
    a = synthesize_citation_corpus(num_authors=100, papers_per_year=20, seed=1)
    b = synthesize_citation_corpus(num_authors=100, papers_per_year=20, seed=1)
    assert a == b


def test_papers_cite_only_earlier_papers(corpus):
    by_id = {p.paper_id: p for p in corpus.papers}
    for paper in corpus.papers:
        for cited in paper.cites:
            assert by_id[cited].year <= paper.year
            assert cited < paper.paper_id


def test_author_names_unique(corpus):
    assert len(set(corpus.author_names)) == corpus.num_authors


def test_snapshot_grows_with_year(corpus):
    g1, _ = author_interaction_snapshot(corpus, 1990)
    g2, _ = author_interaction_snapshot(corpus, 2000)
    assert g2.num_edges > g1.num_edges


def test_snapshot_excludes_future_papers(corpus):
    g_empty, _ = author_interaction_snapshot(corpus, 1900)
    assert g_empty.num_vertices == 0


def test_cores_monotone_across_snapshots(corpus):
    """Edges only accumulate, so a vertex's core number can only grow
    from one snapshot to the next."""
    from repro.core.fastpath import peel_fast

    g1, r1 = author_interaction_snapshot(corpus, 1992)
    g2, r2 = author_interaction_snapshot(corpus, 2000)
    core1 = peel_fast(g1)
    core2 = peel_fast(g2)
    label2 = {r2.decode(i): core2[i] for i in range(g2.num_vertices)}
    for dense1 in range(g1.num_vertices):
        author = r1.decode(dense1)
        assert label2[author] >= core1[dense1]


def test_fig10_set_algebra(corpus):
    result = compare_snapshots(corpus, 1992, 2000)
    # the three Fig. 10 regions are all non-empty
    assert result.persistent, "no authors active in both eras"
    assert result.emerged, "no newly most-active authors"
    assert result.dropped, "no authors fell out of the core"
    # the later, denser snapshot has the deeper core
    assert result.kmax2 > result.kmax1
    # set identities
    assert result.persistent | result.dropped == result.core1
    assert result.persistent | result.emerged == result.core2


def test_summary_text(corpus):
    result = compare_snapshots(corpus, 1992, 2000)
    text = result.summary()
    assert "S1 n S2" in text
    assert str(result.kmax1) in text
    assert f"<= {result.year2}" in text


def test_default_corpus_reproduces_fig10_shape():
    corpus = synthesize_citation_corpus()
    result = compare_snapshots(corpus, 1992, 2000)
    assert result.dropped and result.emerged and result.persistent
