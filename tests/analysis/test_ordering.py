"""Degeneracy-ordering application tests."""

import numpy as np
import pytest

from repro.analysis.ordering import prune_for_clique_size, smallest_last_coloring
from repro.analysis.shells import degeneracy
from repro.graph import generators as gen
from repro.graph.examples import k_clique


def _is_proper(graph, colors):
    return all(colors[u] != colors[v] for u, v in graph.edges())


def test_coloring_is_proper(er_graph):
    graph, _ = er_graph
    colors = smallest_last_coloring(graph)
    assert _is_proper(graph, colors)


def test_coloring_uses_at_most_degeneracy_plus_one(er_graph):
    graph, _ = er_graph
    colors = smallest_last_coloring(graph)
    assert colors.max() + 1 <= degeneracy(graph) + 1


def test_clique_needs_exactly_k_colors():
    g = k_clique(6)
    colors = smallest_last_coloring(g)
    assert colors.max() + 1 == 6


def test_bipartite_needs_two():
    g = gen.grid_2d(4, 4)
    colors = smallest_last_coloring(g)
    assert _is_proper(g, colors)
    assert colors.max() + 1 <= 3  # grids are 2-colorable; bound allows 3


def test_prune_keeps_all_clique_vertices():
    """Soundness: no vertex of an actual q-clique may be pruned."""
    from repro.graph.generators import union_graphs
    from repro.graph.csr import CSRGraph

    clique = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    tail = [(4 + i, 5 + i) for i in range(20)]
    graph = CSRGraph.from_edges(clique + tail)
    kept = set(prune_for_clique_size(graph, 5).tolist())
    assert set(range(5)).issubset(kept)


def test_prune_removes_shallow_vertices():
    from repro.graph.csr import CSRGraph

    clique = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    graph = CSRGraph.from_edges(clique + [(0, 10), (10, 11)])
    kept = prune_for_clique_size(graph, 4)
    assert 10 not in kept
    assert 11 not in kept


def test_prune_accepts_precomputed_core(fig1):
    graph, _ = fig1
    from repro.core.fastpath import peel_fast

    core = peel_fast(graph)
    a = prune_for_clique_size(graph, 4, core=core)
    b = prune_for_clique_size(graph, 4)
    assert np.array_equal(a, b)
    assert set(a.tolist()) == {0, 1, 2, 3}
