"""(k, h)-core and D-core variant tests."""

import numpy as np
import pytest

from repro.analysis.variants import d_core, h_hop_degrees, kh_core_numbers
from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen
from repro.graph.examples import fig1_graph, k_clique, path_graph


class TestHHopDegrees:
    def test_h1_equals_degree(self, fig1):
        graph, _ = fig1
        assert np.array_equal(h_hop_degrees(graph, 1), graph.degrees)

    def test_path_two_hops(self):
        graph = path_graph(5)
        # middle vertex reaches everyone within 2 hops
        assert h_hop_degrees(graph, 2)[2] == 4

    def test_large_h_saturates_at_component_size(self):
        graph = path_graph(6)
        degs = h_hop_degrees(graph, 10)
        assert (degs == 5).all()

    def test_respects_alive_mask(self, fig1):
        graph, _ = fig1
        alive = np.ones(graph.num_vertices, dtype=bool)
        alive[0] = False
        degs = h_hop_degrees(graph, 1, alive)
        assert degs[0] == 0
        assert degs[1] == graph.degree(1) - 1  # lost neighbor 0


class TestKHCore:
    def test_h1_equals_ordinary_cores(self, battery_graph):
        graph, reference = battery_graph
        if graph.num_vertices > 200:
            pytest.skip("quadratic reference check kept small")
        assert np.array_equal(kh_core_numbers(graph, 1), reference)

    def test_h2_at_least_h1(self, fig1):
        """Larger h can only grow the h-hop neighborhood."""
        graph, _ = fig1
        one = kh_core_numbers(graph, 1)
        two = kh_core_numbers(graph, 2)
        assert (two >= one).all()

    def test_path_h2(self):
        """In a path, inner vertices reach >= 2 within 2 hops."""
        core = kh_core_numbers(path_graph(8), 2)
        assert core.max() >= 2

    def test_invalid_h(self, fig1):
        with pytest.raises(ValueError):
            kh_core_numbers(fig1[0], 0)

    def test_clique_kh(self):
        g = k_clique(5)
        assert (kh_core_numbers(g, 2) == 4).all()


class TestDCore:
    def test_directed_cycle_is_11_core(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        assert d_core(edges, 1, 1).tolist() == [0, 1, 2]
        assert d_core(edges, 2, 1).size == 0

    def test_complete_digraph(self):
        n = 4
        edges = np.array([[i, j] for i in range(n) for j in range(n) if i != j])
        assert d_core(edges, n - 1, n - 1).size == n

    def test_pendant_removed_and_cascades(self):
        # 0 -> 1 -> 2 -> 0 cycle plus a dangling 3 -> 0
        edges = np.array([[0, 1], [1, 2], [2, 0], [3, 0]])
        members = d_core(edges, 1, 1)
        assert members.tolist() == [0, 1, 2]

    def test_asymmetric_constraints(self):
        # star out of 0: leaves lack out-edges, so requiring out >= 1
        # cascades the whole star away
        star = np.array([[0, i] for i in range(1, 6)])
        assert d_core(star, 0, 1).size == 0
        # adding one back-edge keeps the 0 <-> 1 pair alive
        with_back = np.vstack([star, [[1, 0]]])
        assert d_core(with_back, 1, 1).tolist() == [0, 1]

    def test_self_loops_ignored(self):
        edges = np.array([[0, 0], [0, 1], [1, 0]])
        assert d_core(edges, 1, 1).tolist() == [0, 1]

    def test_empty(self):
        assert d_core(np.empty((0, 2)), 1, 1, num_vertices=3).size == 0


def test_kh_core_monotone_under_h(er_graph):
    graph, _ = er_graph
    sub = graph.induced_subgraph(np.arange(60))
    one = kh_core_numbers(sub, 1)
    two = kh_core_numbers(sub, 2)
    assert (two >= one).all()
