"""Hierarchical core decomposition tests."""

import numpy as np
import pytest

from repro.analysis.hierarchy import build_core_hierarchy
from repro.analysis.shells import k_core_components
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def test_fig1_hierarchy(fig1):
    graph, _ = fig1
    h = build_core_hierarchy(graph)
    # the K4 is the deepest component of vertex 0
    best = h.best_component_of(0)
    assert best.k == 3
    assert best.size == 4


def test_children_nested_in_parents(er_graph):
    graph, _ = er_graph
    h = build_core_hierarchy(graph)
    for node in h.nodes.values():
        for child_id in node.children:
            child = h.nodes[child_id]
            assert child.k > node.k
            assert set(child.vertices).issubset(set(node.vertices))


def test_roots_cover_all_vertices(er_graph):
    graph, _ = er_graph
    h = build_core_hierarchy(graph)
    covered = set()
    for root_id in h.roots:
        covered |= set(h.nodes[root_id].vertices.tolist())
    assert covered == set(range(graph.num_vertices))


def test_component_of_matches_direct_computation(fig1):
    graph, _ = fig1
    h = build_core_hierarchy(graph)
    for k in (1, 2, 3):
        comps = k_core_components(graph, k)
        for comp in comps:
            v = int(comp[0])
            node = h.component_of(v, k)
            assert node is not None
            assert set(node.vertices.tolist()) == set(comp.tolist())


def test_component_of_below_core_number_is_none(fig1):
    graph, _ = fig1
    h = build_core_hierarchy(graph)
    leaf = 9  # G1: core 1
    assert h.component_of(leaf, 2) is None


def test_two_separate_cores_two_leaves():
    """Two K4s joined through a degree-2 relay: separate 3-core
    components that merge into one component at k <= 2."""
    k4a = [(i, j) for i in range(4) for j in range(i + 1, 4)]
    k4b = [(i + 4, j + 4) for i in range(4) for j in range(i + 1, 4)]
    relay = [(0, 8), (8, 4)]
    graph = CSRGraph.from_edges(k4a + k4b + relay)
    h = build_core_hierarchy(graph)
    threes = h.components_at(3)
    assert len(threes) == 2
    # they merge into one component at k <= 2 through the relay
    merged = h.component_of(0, 2)
    assert merged.size == 9


def test_empty_graph():
    h = build_core_hierarchy(CSRGraph.empty(0))
    assert h.num_nodes == 0


def test_single_level_graph():
    g = gen.random_tree(30, seed=2)
    h = build_core_hierarchy(g)
    # a tree: every vertex core 1; one component at k=1 (and k=0)
    best = h.best_component_of(0)
    assert best.k == 1
    assert best.size == 30


def test_matches_components_on_random_graph(er_graph):
    graph, core = er_graph
    h = build_core_hierarchy(graph, core)
    kmax = int(core.max())
    direct = k_core_components(graph, kmax, core)
    via_hierarchy = {
        frozenset(h.component_of(int(c[0]), kmax).vertices.tolist())
        for c in direct
    }
    assert via_hierarchy == {frozenset(c.tolist()) for c in direct}
