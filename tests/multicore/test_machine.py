"""Simulated-multicore accounting tests."""

import pytest

from repro.multicore.costmodel import CpuCostModel
from repro.multicore.machine import SimulatedMulticore


def test_epoch_charges_straggler():
    cost = CpuCostModel(op_ns=10.0, sync_us=0.0)
    m = SimulatedMulticore(cost, threads=4)
    m.add_ops(0, 100)
    m.add_ops(1, 500)  # straggler
    m.barrier()
    assert m.elapsed_ms == pytest.approx(500 * 10.0 / 1e6)


def test_barrier_adds_sync_fee():
    cost = CpuCostModel(op_ns=0.0, sync_us=3.0)
    m = SimulatedMulticore(cost, threads=2)
    m.barrier()
    m.barrier()
    assert m.elapsed_ms == pytest.approx(0.006)
    assert m.barriers == 2


def test_spread_ops_balanced():
    cost = CpuCostModel(op_ns=10.0, sync_us=0.0)
    m = SimulatedMulticore(cost, threads=4)
    m.spread_ops(400)  # 100 each
    m.barrier()
    assert m.elapsed_ms == pytest.approx(100 * 10.0 / 1e6)


def test_atomics_cost_extra():
    cost = CpuCostModel(op_ns=10.0, atomic_ns=50.0, sync_us=0.0)
    m = SimulatedMulticore(cost, threads=1)
    m.add_ops(0, 10)
    m.add_atomics(0, 4)
    m.barrier()
    assert m.elapsed_ms == pytest.approx((10 * 10 + 4 * 50) / 1e6)


def test_finish_flushes_without_sync_fee():
    cost = CpuCostModel(op_ns=10.0, sync_us=100.0)
    m = SimulatedMulticore(cost, threads=1)
    m.add_ops(0, 100)
    total = m.finish()
    assert total == pytest.approx(100 * 10.0 / 1e6)
    assert m.barriers == 0


def test_totals_accumulate_across_epochs():
    m = SimulatedMulticore(CpuCostModel(), threads=2)
    m.add_ops(0, 5)
    m.barrier()
    m.add_ops(1, 7)
    m.finish()
    assert m.total_ops == 12


def test_serial_machine_single_thread():
    m = SimulatedMulticore(CpuCostModel(op_ns=1.0, sync_us=0.0), threads=1)
    m.add_ops(0, 1000)
    assert m.finish() == pytest.approx(1e-3)


def test_epochs_reset_after_barrier():
    cost = CpuCostModel(op_ns=10.0, sync_us=0.0)
    m = SimulatedMulticore(cost, threads=2)
    m.add_ops(0, 100)
    m.barrier()
    m.add_ops(1, 50)
    m.barrier()
    # 100 then 50, not 150
    assert m.elapsed_ms == pytest.approx((100 + 50) * 10.0 / 1e6)


def test_default_threads_from_cost_model():
    m = SimulatedMulticore(CpuCostModel(threads=48))
    assert m.threads == 48
