"""Memory-regression gate tests: passes fresh, fails on doctored input.

Loads ``scripts/check_memory_regression.py`` the same way CI runs it
and drives :func:`main` against small purpose-built baselines (three
variants + one system on the smallest dataset) so the failure modes
the acceptance criteria demand — an injected 2x peak and a flipped
Table V ordering — are demonstrated by tests, not just by hand.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GATE = REPO_ROOT / "scripts" / "check_memory_regression.py"
BASELINE = REPO_ROOT / "benchmarks" / "results" / "memory_baseline.json"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("memgate", GATE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def committed_baseline():
    return json.loads(BASELINE.read_text())


def small_baseline(committed, **overrides):
    """The committed baseline trimmed to a fast four-program subset."""
    record = {
        "schema": "repro.memory-baseline/v1",
        "dataset": committed["dataset"],
        "variants": {
            name: committed["variants"][name]
            for name in ("gpu-ours", "gpu-sm", "gpu-vp", "gpu-ec")
        },
        "systems": {"gswitch": committed["systems"]["gswitch"]},
        "ordering": {
            "minimal_tie": ["gpu-ours", "gpu-sm", "gpu-vp"],
            "above": ["gpu-ec"],
        },
    }
    record.update(overrides)
    return record


def write(tmp_path, record):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(record))
    return str(path)


def run(gate, path, *extra):
    return gate.main([path, "--quick", "--no-trajectory", *extra])


def test_committed_baseline_is_schema_valid(committed_baseline):
    from repro.bench.schema import SIBLING_SCHEMAS

    validator = SIBLING_SCHEMAS["repro.memory-baseline/v1"]
    assert validator(committed_baseline) == []
    assert set(committed_baseline["ordering"]["minimal_tie"]) == {
        "gpu-ours", "gpu-sm", "gpu-vp"
    }
    assert committed_baseline["oom"]["dataset"] == "it-2004"


def test_gate_passes_on_fresh_measurements(
    gate, committed_baseline, tmp_path, capsys
):
    path = write(tmp_path, small_baseline(committed_baseline))
    assert run(gate, path) == 0
    assert "OK" in capsys.readouterr().out


def test_gate_fails_on_injected_2x_peak(
    gate, committed_baseline, tmp_path, capsys
):
    record = small_baseline(committed_baseline)
    record["variants"]["gpu-ours"] *= 2
    assert run(gate, write(tmp_path, record)) == 1
    assert "peak" in capsys.readouterr().err


def test_gate_fails_on_flipped_ordering(
    gate, committed_baseline, tmp_path, capsys
):
    record = small_baseline(committed_baseline)
    record["ordering"] = {
        "minimal_tie": ["gpu-ours", "gpu-sm", "gpu-vp", "gpu-ec"],
        "above": [],
    }
    assert run(gate, write(tmp_path, record)) == 1
    assert "no longer tie" in capsys.readouterr().err


def test_gate_writes_artifacts(gate, committed_baseline, tmp_path):
    from repro.memtrace import validate_memtrace_file

    path = write(tmp_path, small_baseline(committed_baseline))
    report = tmp_path / "timelines.txt"
    memjson = tmp_path / "ours.json"
    assert run(gate, path, "--report", str(report),
               "--json", str(memjson)) == 0
    assert "Memory telemetry" in report.read_text()
    assert validate_memtrace_file(memjson) == []


def test_gate_appends_peaks_trajectory(gate, committed_baseline, tmp_path):
    from repro.bench.schema import SIBLING_SCHEMAS

    baseline = write(tmp_path, small_baseline(committed_baseline))
    trajectory = tmp_path / "trajectory.json"
    assert gate.main([baseline, "--quick",
                      "--trajectory", str(trajectory)]) == 0
    record = json.loads(trajectory.read_text())
    assert SIBLING_SCHEMAS["repro.bench-trajectory/v1"](record) == []
    (entry,) = record["records"]
    assert entry["peaks"]["gpu-ours"] > 0
    assert entry["ok"] is True


def test_gate_rejects_missing_or_invalid_baseline(gate, tmp_path):
    with pytest.raises(SystemExit) as exc:
        gate.main([str(tmp_path / "missing.json"), "--quick"])
    assert exc.value.code == 2
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    assert gate.main([str(bad), "--quick"]) == 2
