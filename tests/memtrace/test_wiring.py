"""End-to-end memtrace wiring: host, decomposer, systems, multi-GPU,
bench runner, and CLI."""

import numpy as np
import pytest

from repro.api import MEMTRACEABLE, decompose
from repro.core.decomposer import KCoreDecomposer
from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.multigpu import multi_gpu_peel
from repro.gpusim.device import Device
from repro.graph import generators as gen
from repro.memtrace import validate_memtrace


@pytest.fixture(scope="module")
def graph():
    return gen.planted_core(150, core_size=20, core_degree=6, seed=3)


def test_gpu_peel_memtrace_report(graph):
    result = gpu_peel(graph, memtrace=True)
    report = result.memtrace
    assert report is not None
    assert validate_memtrace(report.to_json()) == []
    assert report.peak_bytes == result.peak_memory_bytes
    assert sum(report.breakdown().values()) == result.peak_memory_bytes
    assert report.clean
    assert report.algorithm == "gpu-ours"
    assert report.variant == "ours"


def test_memtrace_off_by_default(graph):
    assert gpu_peel(graph).memtrace is None


def test_memtrace_via_options(graph):
    result = gpu_peel(graph, options=GpuPeelOptions(memtrace=True))
    assert result.memtrace is not None


def test_memtrace_records_rounds_and_kernel_scopes(graph):
    report = gpu_peel(graph, memtrace=True).memtrace
    worker = report.workers[0]
    assert worker.rounds  # per-round high-water marks
    assert all(high <= report.peak_bytes for _, high in worker.rounds)
    scopes = {a.scope for a in worker.allocations}
    assert "host" in scopes  # the CSR upload happens outside kernels


def test_memtrace_on_prebuilt_device(graph):
    device = Device()
    result = gpu_peel(graph, device=device, memtrace=True)
    assert result.memtrace is not None
    assert result.memtrace.peak_bytes == device.peak_memory_bytes


def test_decomposer_memtrace_flag(graph):
    result = KCoreDecomposer(mode="simulate", memtrace=True).decompose(graph)
    assert result.memtrace is not None
    assert result.memtrace.peak_bytes == result.peak_memory_bytes
    fast = KCoreDecomposer(mode="fast").decompose(graph)
    assert fast.memtrace is None


def test_every_memtraceable_algorithm_reports_exact_attribution(graph):
    for name in sorted(MEMTRACEABLE):
        result = decompose(graph, name, memtrace=True)
        report = result.memtrace
        assert report is not None, name
        assert validate_memtrace(report.to_json()) == [], name
        assert report.peak_bytes == result.peak_memory_bytes, name
        assert sum(report.breakdown().values()) == result.peak_memory_bytes


def test_memtraceable_covers_variants_and_systems():
    assert "gpu-ours" in MEMTRACEABLE
    assert "gpu-multi2" in MEMTRACEABLE
    assert {"vetga", "medusa-mpm", "medusa-peel", "gunrock",
            "gswitch"} <= MEMTRACEABLE
    assert "bz" not in MEMTRACEABLE  # CPU programs have no device


def test_system_emulation_attributes_init_scope(graph):
    report = decompose(graph, "gunrock", memtrace=True).memtrace
    scopes = {a.scope for a in report.workers[0].allocations}
    assert "gunrock.init" in scopes


def test_memtrace_identical_results(graph):
    plain = gpu_peel(graph)
    traced = gpu_peel(graph, memtrace=True)
    assert traced.simulated_ms == plain.simulated_ms
    assert traced.counters == plain.counters
    assert traced.peak_memory_bytes == plain.peak_memory_bytes
    assert np.array_equal(traced.core, plain.core)


# -- multi-GPU accounting -----------------------------------------------------


def test_multigpu_memtrace_worker_provenance(graph):
    result = multi_gpu_peel(graph, num_devices=2, memtrace=True)
    report = result.memtrace
    assert report is not None
    assert validate_memtrace(report.to_json()) == []
    assert [w.worker for w in report.workers] == ["gpu0", "gpu1"]
    assert report.algorithm == "gpu-multi2-ours"


def test_multigpu_per_device_peaks_sum_and_headline(graph):
    result = multi_gpu_peel(graph, num_devices=2, memtrace=True)
    per_device = result.stats["per_device_peak_bytes"]
    report = result.memtrace
    assert len(per_device) == 2
    assert [w.peak.bytes for w in report.workers] == per_device
    # the reported peak is the busiest single device, not the sum
    assert result.peak_memory_bytes == max(per_device)
    assert report.peak_bytes == max(per_device)
    # every device's attribution sums exactly to its own peak
    for worker in report.workers:
        assert sum(worker.breakdown().values()) == worker.peak.bytes


def test_multigpu_partition_smaller_than_single_device(graph):
    single = gpu_peel(graph, memtrace=True)
    multi = multi_gpu_peel(graph, num_devices=4, memtrace=True)
    assert multi.peak_memory_bytes < single.peak_memory_bytes
    assert np.array_equal(multi.core, single.core)


# -- bench runner -------------------------------------------------------------


def test_bench_outcome_carries_attribution():
    from repro.bench.runner import run_program

    outcome = run_program("gpu-ours", "amazon0601")
    assert outcome.status == "ok"
    assert outcome.peak_bytes is not None
    assert outcome.attribution is not None
    assert sum(outcome.attribution.values()) == outcome.peak_bytes
    assert outcome.peak_memory_mb == pytest.approx(
        outcome.peak_bytes / (1024 * 1024)
    )


def test_bench_outcome_no_attribution_for_cpu_programs():
    from repro.bench.runner import run_program

    outcome = run_program("bz", "amazon0601")
    assert outcome.status == "ok"
    assert outcome.peak_bytes is None
    assert outcome.attribution is None
