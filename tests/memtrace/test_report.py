"""MemtraceReport schema, rendering, and validator tests."""

import json

from repro.gpusim.device import Device
from repro.memtrace import (
    MemoryTracker,
    MemtraceReport,
    validate_memtrace,
    validate_memtrace_file,
)


def sample_report():
    device = Device(memtrace=True)
    tracker = device.memtracer
    tracker.annotate(variant="ours", algorithm="gpu-ours")
    tracker.set_round(0)
    device.malloc("deg", 128)
    device.malloc("frontier", 64)
    tracker.set_round(1)
    device.free_all()
    tracker.set_round(None)
    tracker.finish(device.elapsed_ms)
    return tracker.report()


def test_valid_report_passes_validator():
    report = sample_report()
    assert validate_memtrace(report.to_json()) == []


def test_json_round_trip_keeps_invariants(tmp_path):
    report = sample_report()
    path = tmp_path / "mt.json"
    report.write(path)
    assert validate_memtrace_file(path) == []
    record = json.loads(path.read_text())
    assert record["schema"] == "repro.memtrace/v1"
    assert record["algorithm"] == "gpu-ours"
    assert record["peak_bytes"] == report.peak_bytes


def test_breakdown_sums_to_peak():
    report = sample_report()
    assert sum(report.breakdown().values()) == report.peak_bytes


def test_render_names_every_peak_array():
    report = sample_report()
    text = report.render()
    assert "Memory telemetry: gpu-ours" in text
    assert "(context)" in text
    assert "deg" in text
    assert "frontier" in text
    assert "findings: clean" in text


def test_multi_worker_merge_keeps_provenance():
    trackers = [MemoryTracker(worker=f"gpu{d}") for d in range(2)]
    trackers[0].attach(100)
    trackers[1].attach(100)
    trackers[0].on_malloc("a", 500, 0.0)
    trackers[1].on_malloc("b", 50, 0.0)
    report = MemtraceReport.from_trackers(trackers, algorithm="gpu-multi2")
    assert [w.worker for w in report.workers] == ["gpu0", "gpu1"]
    assert report.peak_bytes == 600
    assert report.peak_worker.worker == "gpu0"
    assert report.breakdown() == {"(context)": 100, "a": 500}


def test_validator_rejects_inexact_breakdown():
    record = sample_report().to_json()
    record["workers"][0]["peak"]["breakdown"][0]["bytes"] += 1
    errors = validate_memtrace(record)
    assert any("attribution must be exact" in e or "disagrees" in e
               for e in errors)


def test_validator_rejects_wrong_headline_peak():
    record = sample_report().to_json()
    record["peak_bytes"] += 1
    errors = validate_memtrace(record)
    assert any("max worker peak" in e for e in errors)


def test_validator_rejects_breakdown_entry_freed_before_peak():
    record = sample_report().to_json()
    worker = record["workers"][0]
    worker["peak"]["ts_ms"] = 1e9  # claims the peak happened at the end
    errors = validate_memtrace(record)
    assert any("freed before the peak" in e for e in errors)


def test_validator_rejects_unknown_detector():
    record = sample_report().to_json()
    record["workers"][0]["findings"].append(
        {"detector": "nonsense", "severity": "error",
         "kernel": "host", "message": "x"}
    )
    errors = validate_memtrace(record)
    assert any("detector" in e for e in errors)


def test_validator_rejects_wrong_schema_and_shape():
    assert validate_memtrace([]) != []
    assert any(
        "schema" in e
        for e in validate_memtrace({"schema": "nope", "workers": []})
    )


def test_validate_file_reports_unreadable(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    (error,) = validate_memtrace_file(path)
    assert "unreadable" in error
