"""MemoryTracker unit tests: lifetimes, peaks, rounds, detectors."""

import pytest

from repro.errors import InvalidFreeError
from repro.gpusim.device import Device
from repro.memtrace.tracker import CONTEXT_NAME, HOST_SCOPE, MemoryTracker


def tracked_device(**kwargs):
    device = Device(memtrace=True, **kwargs)
    return device, device.memtracer


def test_attach_seeds_context_overhead():
    device, tracker = tracked_device()
    assert tracker.base_bytes == device.spec.context_overhead_bytes
    assert tracker.peak.bytes == device.memory.in_use
    assert dict(tracker.peak.breakdown) == {
        CONTEXT_NAME: device.spec.context_overhead_bytes
    }


def test_peak_mirrors_global_memory_exactly():
    device, tracker = tracked_device()
    device.malloc("a", 100)
    device.malloc("b", 200)
    device.free("a")
    device.malloc("c", 50)
    assert tracker.peak.bytes == device.memory.peak
    assert tracker.in_use_bytes == device.memory.in_use


def test_peak_breakdown_sums_exactly_and_names_live_arrays():
    device, tracker = tracked_device()
    device.malloc("big", 300)
    device.malloc("small", 10)
    device.free("small")
    peak = tracker.peak
    names = [name for name, _ in peak.breakdown]
    assert names == [CONTEXT_NAME, "big", "small"]
    assert sum(b for _, b in peak.breakdown) == peak.bytes
    shares = peak.shares()
    assert sum(shares.values()) == pytest.approx(1.0)


def test_allocation_lifetime_records_scope_round_and_timestamps():
    device, tracker = tracked_device()
    tracker.set_round(3)
    device.malloc("deg", 64)
    tracker.set_round(None)
    device.free("deg")
    (record,) = tracker.allocations()
    assert record.name == "deg"
    assert record.scope == HOST_SCOPE
    assert record.round_index == 3
    assert record.alloc_ms == 0.0
    assert record.free_ms is not None
    assert record.free_ms >= record.alloc_ms


def test_still_live_allocation_has_open_lifetime():
    device, tracker = tracked_device()
    device.malloc("leak", 16)
    (record,) = tracker.allocations()
    assert record.free_ms is None


def test_round_high_water_marks():
    device, tracker = tracked_device()
    tracker.set_round(0)
    device.malloc("a", 100)
    tracker.set_round(1)
    device.free("a")
    tracker.set_round(2)  # allocates nothing; still reports its level
    rounds = dict(tracker.rounds())
    assert set(rounds) == {0, 1, 2}
    assert rounds[0] == tracker.peak.bytes
    assert rounds[1] == tracker.peak.bytes  # opened before the free
    assert rounds[2] == device.memory.in_use


def test_leak_detected_at_finish():
    device, tracker = tracked_device()
    device.malloc("stale", 32)
    tracker.finish(device.elapsed_ms)
    (finding,) = tracker.findings
    assert finding.detector == "memory-leak"
    assert "stale" in finding.message


def test_finish_is_idempotent():
    device, tracker = tracked_device()
    device.malloc("stale", 32)
    tracker.finish(0.0)
    tracker.finish(0.0)
    assert len(tracker.findings) == 1


def test_clean_run_has_no_findings():
    device, tracker = tracked_device()
    device.malloc("a", 10)
    device.free("a")
    tracker.finish(device.elapsed_ms)
    assert tracker.findings == []


def test_double_free_finding_and_typed_error():
    device, tracker = tracked_device()
    device.malloc("a", 10)
    device.free("a")
    with pytest.raises(InvalidFreeError):
        device.free("a")
    (finding,) = tracker.findings
    assert finding.detector == "double-free"
    assert "freed again" in finding.message


def test_unknown_free_finding():
    device, tracker = tracked_device()
    with pytest.raises(InvalidFreeError):
        device.free("never")
    (finding,) = tracker.findings
    assert finding.detector == "double-free"
    assert "never allocated" in finding.message


def test_use_after_free_finding():
    device, tracker = tracked_device()
    array = device.malloc("a", 10)
    device.free("a")
    device.read_back(array)  # stale bytes, diagnosed
    (finding,) = tracker.findings
    assert finding.detector == "use-after-free"
    assert finding.severity == "error"


def test_annotate_labels_flow_into_report():
    tracker = MemoryTracker()
    tracker.attach(100)
    tracker.annotate(variant="ours", algorithm="gpu-ours")
    report = tracker.report()
    assert report.algorithm == "gpu-ours"
    assert report.variant == "ours"
