"""The master integration invariant: EVERY program in the repository
computes identical core numbers to BZ on every battery graph.

This is the repository's strongest correctness statement — one
parametrised matrix of (algorithm x graph) covering the nine kernel
variants, all CPU baselines, and all four system emulations.
"""

import numpy as np
import pytest

from repro.api import ALGORITHMS, decompose
from tests.conftest import BATTERY, BATTERY_IDS, assert_cores_equal
from repro.cpu.bz import bz_core_numbers

#: algorithms excluded from the dense matrix to keep runtime sane; they
#: are each exercised on a couple of graphs below instead
_SLOW = {"networkx", "medusa-mpm"}

FAST_ALGORITHMS = sorted(set(ALGORITHMS) - _SLOW)


@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
@pytest.mark.parametrize(
    "named_graph", BATTERY, ids=BATTERY_IDS
)
def test_matrix_agreement(algorithm, named_graph):
    name, graph = named_graph
    reference = bz_core_numbers(graph)
    result = decompose(graph, algorithm)
    assert_cores_equal(result.core, reference, f"{algorithm} on {name}")


@pytest.mark.parametrize("algorithm", sorted(_SLOW))
def test_slow_algorithms_spot_checked(algorithm, fig1, er_graph):
    for graph, reference in (
        (fig1[0], bz_core_numbers(fig1[0])),
        er_graph,
    ):
        result = decompose(graph, algorithm)
        assert_cores_equal(result.core, reference, algorithm)


def test_all_results_carry_algorithm_names(fig1):
    graph, _ = fig1
    for name in ("gpu-ours", "bz", "pkc", "gswitch"):
        assert decompose(graph, name).algorithm.startswith(name.split("-")[0])


def test_unknown_algorithm_raises(fig1):
    from repro.errors import UnknownAlgorithmError

    with pytest.raises(UnknownAlgorithmError):
        decompose(fig1[0], "quantum-peel")


def test_registry_covers_the_papers_tables():
    """Every column of Tables II, III and IV must be runnable."""
    table2 = {f"gpu-{v}" for v in (
        "ours", "sm", "vp", "bc", "bc+sm", "bc+vp", "ec", "ec+sm", "ec+vp")}
    table3 = {"gpu-ours", "vetga", "medusa-mpm", "medusa-peel",
              "gunrock", "gswitch"}
    table4 = {"gpu-ours", "networkx", "bz", "park-serial", "park",
              "pkc-o-serial", "pkc-o", "mpm", "pkc-serial", "pkc"}
    registered = set(ALGORITHMS)
    assert table2 <= registered
    assert table3 <= registered
    assert table4 <= registered
