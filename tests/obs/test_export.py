"""Live export surfaces: JSONL streaming, Prometheus text, /metrics.

The exporters are observability-only consumers of a tracer: the JSONL
sink must stream events *as they are recorded* (not at the end), the
Prometheus exposition must be deterministic and name-sanitised, and the
background ``/metrics`` endpoint must serve the live counter registry.
``write_artifact`` is the one shared writer every CLI/gate artifact
funnels through, so its error contract (one-line message, ``False``,
no traceback) is pinned here too.
"""

from __future__ import annotations

import json
import urllib.request

from repro.obs.export import (
    JsonlSink,
    events_to_jsonl,
    prometheus_text,
    start_metrics_server,
    write_artifact,
    write_jsonl,
)
from repro.obs.tracer import Tracer


def _fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.read().decode("utf-8")


# -- write_artifact ----------------------------------------------------------

def test_write_artifact_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "out.json"
    assert write_artifact(str(path), lambda p: open(p, "w").close())
    assert path.exists()


def test_write_artifact_error_is_one_clean_line(tmp_path, capsys):
    blocker = tmp_path / "file"
    blocker.write_text("not a directory")
    path = blocker / "out.json"
    ok = write_artifact(
        str(path), lambda p: open(p, "w").close(), label="run report"
    )
    assert ok is False
    err = capsys.readouterr().err
    assert err.startswith("error: cannot write run report")
    assert "Traceback" not in err


# -- JSONL -------------------------------------------------------------------

def test_events_to_jsonl_one_object_per_line():
    tracer = Tracer()
    tracer.span("scan_kernel", 0.0, 1.5, cat="kernel")
    tracer.sample("frontier", 1.5, 42.0)
    text = events_to_jsonl(tracer.events)
    lines = text.splitlines()
    assert text.endswith("\n") and len(lines) == 2
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["kind"] == "span"
    assert parsed[1] == {
        "kind": "counter", "name": "frontier", "track": "host",
        "ts": 1.5, "value": 42.0,
    }
    assert events_to_jsonl([]) == ""


def test_write_jsonl_dumps_all_events(tmp_path):
    tracer = Tracer()
    tracer.instant("launch", 0.0)
    tracer.instant("retire", 2.0)
    path = tmp_path / "events.jsonl"
    write_jsonl(tracer, str(path))
    lines = path.read_text(encoding="utf-8").splitlines()
    assert [json.loads(l)["name"] for l in lines] == ["launch", "retire"]


def test_jsonl_sink_streams_live(tmp_path):
    tracer = Tracer()
    tracer.instant("before", 0.0)  # recorded before the sink attaches
    path = tmp_path / "stream.jsonl"
    with JsonlSink(tracer, str(path)):
        tracer.instant("during", 1.0)
        # the event is on disk *now*, not at close time
        streamed = path.read_text(encoding="utf-8")
        assert json.loads(streamed)["name"] == "during"
        tracer.sample("disk.resident_bytes", 2.0, 4096.0)
    tracer.instant("after", 3.0)  # detached: must not be written
    names = [
        json.loads(line).get("name")
        for line in path.read_text(encoding="utf-8").splitlines()
    ]
    assert names == ["during", "disk.resident_bytes"]


def test_jsonl_sink_close_is_idempotent(tmp_path):
    tracer = Tracer()
    sink = JsonlSink(tracer, str(tmp_path / "s.jsonl")).open()
    sink.close()
    sink.close()
    tracer.instant("late", 0.0)  # no crash, nothing written


# -- Prometheus exposition ---------------------------------------------------

def test_prometheus_text_sanitises_and_sorts():
    text = prometheus_text({"device.cycles": 12.0, "cpu.barriers": 3.0})
    lines = text.splitlines()
    assert lines == [
        "# TYPE repro_cpu_barriers gauge",
        "repro_cpu_barriers 3.0",
        "# TYPE repro_device_cycles gauge",
        "repro_device_cycles 12.0",
    ]
    assert text.endswith("\n")


def test_prometheus_text_handles_leading_digit_and_empty():
    text = prometheus_text({"2phase.ops": 1.0}, prefix="")
    assert text.splitlines()[1].startswith("_2phase_ops ")
    assert prometheus_text({}) == ""


# -- /metrics endpoint -------------------------------------------------------

def test_metrics_server_serves_tracer_counters():
    tracer = Tracer()
    tracer.add("device.cycles", 99.0)
    with start_metrics_server(tracer) as server:
        status, body = _fetch(server.url)
        assert status == 200
        assert "repro_device_cycles 99.0" in body
        # counters recorded after startup are visible on the next scrape
        tracer.add("device.cycles", 1.0)
        _, body = _fetch(server.url)
        assert "repro_device_cycles 100.0" in body


def test_metrics_server_healthz_and_404():
    with start_metrics_server(Tracer()) as server:
        base = f"http://{server.host}:{server.port}"
        assert _fetch(f"{base}/healthz") == (200, "ok\n")
        try:
            urllib.request.urlopen(f"{base}/nope", timeout=5.0)
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:
            raise AssertionError("expected a 404")


def test_metrics_server_close_is_idempotent():
    server = start_metrics_server(Tracer())
    server.close()
    server.close()
