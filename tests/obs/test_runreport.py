"""The unified run report: schema, invariants, rendering, diffing.

A clean full-telemetry run must produce a ``repro.runreport/v1`` record
that validates with zero problems, and the validator must detect every
tampered cross-layer invariant — each test below breaks exactly one
figure and asserts the corresponding check fires.  The fixture runs the
same three-vertical matrix the CI gate uses (one GPU peel, one
multicore baseline, one semi-external disk run) on a small graph.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.graph import generators as gen
from repro.obs.runreport import (
    SCHEMA_VERSION,
    RunReport,
    collect_run_report,
    diff_runreports,
    render_runreport,
    validate_runreport,
)

ALGORITHMS = ("gpu-ours", "pkc", "semi-external")


@pytest.fixture(scope="module")
def full_report():
    """One report covering all three telemetry verticals, plus results."""
    graph = gen.planted_core(120, core_size=15, core_degree=7, seed=3)
    report, results = collect_run_report(
        graph, list(ALGORITHMS), dataset="planted-120"
    )
    return report, results


@pytest.fixture
def record(full_report):
    """A deep copy of the validated record, safe to tamper with."""
    report, _ = full_report
    return copy.deepcopy(report.to_json())


def _section(record, algorithm):
    for sec in record["sections"]:
        if sec["algorithm"] == algorithm:
            return sec
    raise AssertionError(f"no section for {algorithm!r}")


# -- the clean path ----------------------------------------------------------

def test_clean_report_validates(full_report):
    report, _ = full_report
    assert report.validate() == []


def test_report_shape_and_section_lookup(full_report):
    report, results = full_report
    assert len(report.sections) == len(results)
    record = report.to_json()
    assert record["schema"] == SCHEMA_VERSION
    assert record["dataset"] == "planted-120"
    for name in ALGORITHMS:
        sec = report.section(name)
        assert sec is not None and sec["algorithm"] == name
    assert report.section("nope") is None


def test_every_vertical_is_covered(full_report):
    report, _ = full_report
    gpu = report.section("gpu-ours")
    assert gpu["profile"] is not None and gpu["profile"]["kernels"]
    assert gpu["engine"] is not None
    multicore = report.section("pkc")
    assert multicore["multicore"] is not None
    assert multicore["multicore"]["epochs"]
    disk = report.section("semi-external")
    assert "disk.passes" in disk["counters"]
    for sec in report.sections:
        assert sec["memtrace"] is not None
        assert sec["trace"] is not None


def test_write_roundtrips_through_json(full_report, tmp_path):
    report, _ = full_report
    path = tmp_path / "report.json"
    report.write(str(path))
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded == report.to_json()
    assert validate_runreport(loaded) == []


def test_render_mentions_each_vertical(full_report):
    report, _ = full_report
    text = report.render()
    assert "Run report: planted-120" in text
    assert "[gpu-ours]" in text and "[pkc]" in text
    assert "kernel scan_kernel" in text
    assert "multicore:" in text
    assert "disk:" in text
    assert "memory: peak" in text
    assert "trace:" in text
    assert render_runreport(report.to_json()) == text


# -- validator failure modes (one tampered invariant each) -------------------

def _expect_problem(record, fragment):
    problems = validate_runreport(record)
    assert any(fragment in p for p in problems), (
        f"expected a problem mentioning {fragment!r}, got {problems!r}"
    )


def test_rejects_wrong_schema(record):
    record["schema"] = "repro.runreport/v0"
    _expect_problem(record, "schema")


def test_rejects_non_object_and_empty_sections(record):
    assert validate_runreport([]) == ["run report must be a JSON object"]
    record["sections"] = []
    _expect_problem(record, "non-empty")


def test_rejects_non_numeric_core_fields(record):
    _section(record, "gpu-ours")["simulated_ms"] = "fast"
    _expect_problem(record, "simulated_ms")


def test_rejects_non_numeric_counter(record):
    _section(record, "gpu-ours")["counters"]["device.cycles"] = "many"
    _expect_problem(record, "not numeric")


def test_detects_rounds_counter_mismatch(record):
    _section(record, "gpu-ours")["counters"]["host.rounds"] += 1
    _expect_problem(record, "host.rounds")


def test_detects_tampered_memtrace_peak(record):
    sec = _section(record, "gpu-ours")
    sec["memtrace"]["peak_bytes"] += 64
    _expect_problem(record, "memtrace peak_bytes")


def test_detects_tampered_kernel_cycles(record):
    sec = _section(record, "gpu-ours")
    sec["counters"]["kernel.scan.cycles"] += 1.0
    problems = validate_runreport(record)
    # both the profile and the trace disagree with the tampered counter
    assert any("profile cycles" in p for p in problems)
    assert any("traced span cycles" in p for p in problems)


def test_detects_tampered_launch_attribution(record):
    sec = _section(record, "gpu-ours")
    sec["counters"]["device.kernel_launches"] += 1.0
    problems = validate_runreport(record)
    assert any("device.kernel_launches" in p for p in problems)
    assert any("engine.served" in p for p in problems)


def test_detects_tampered_frontier_total(record):
    _section(record, "gpu-ours")["counters"]["frontier.total"] += 1.0
    _expect_problem(record, "frontier.total")


def test_detects_broken_epoch_tiling(record):
    sec = _section(record, "pkc")
    sec["multicore"]["epochs"][1]["start_ms"] += 0.25
    _expect_problem(record, "tile the timeline")


def test_detects_non_rederivable_epoch_end(record):
    sec = _section(record, "pkc")
    epoch = sec["multicore"]["epochs"][0]
    epoch["end_ms"] += 0.5
    _expect_problem(record, "re-derive")


def test_detects_wrong_bound_class(record):
    sec = _section(record, "pkc")
    epoch = sec["multicore"]["epochs"][0]
    epoch["bound"] = (
        "atomic" if epoch["bound"] != "atomic" else "compute"
    )
    _expect_problem(record, "bound")


def test_detects_bound_histogram_mismatch(record):
    sec = _section(record, "pkc")
    hist = sec["multicore"]["bound_histogram"]
    hist["compute"] = hist.get("compute", 0) + 1
    _expect_problem(record, "bound_histogram")


def test_detects_barrier_counter_mismatch(record):
    sec = _section(record, "pkc")
    sec["counters"]["cpu.barriers"] += 1.0
    _expect_problem(record, "cpu.barriers")


def test_detects_broken_disk_arithmetic(record):
    sec = _section(record, "semi-external")
    sec["counters"]["disk.page_in_bytes"] += 4096.0
    _expect_problem(record, "disk.page_in_bytes")


def test_detects_incomplete_disk_counters(record):
    sec = _section(record, "semi-external")
    del sec["counters"]["disk.page_in_bytes"]
    _expect_problem(record, "incomplete disk")


def test_detects_traced_resident_peak_mismatch(record):
    sec = _section(record, "semi-external")
    sec["trace"]["counter_track_peaks"]["disk.resident_bytes"] += 1.0
    _expect_problem(record, "disk.resident_bytes")


# -- diffing -----------------------------------------------------------------

def test_diff_of_identical_reports_is_clean(record):
    rendered, regressions = diff_runreports(record, record)
    assert not regressions
    assert "no regressions" in rendered
    assert "unchanged" in rendered


def test_diff_flags_grown_time_as_regression(record):
    worse = copy.deepcopy(record)
    _section(worse, "gpu-ours")["simulated_ms"] *= 2.0
    rendered, regressions = diff_runreports(record, worse)
    assert regressions
    assert "REGRESSIONS" in rendered
    assert "simulated_ms" in rendered and "regressed" in rendered


def test_diff_improvement_is_not_a_regression(record):
    better = copy.deepcopy(record)
    _section(better, "gpu-ours")["simulated_ms"] *= 0.5
    rendered, regressions = diff_runreports(record, better)
    assert not regressions
    assert "improved" in rendered


def test_diff_flags_kernel_bound_flip(record):
    flipped = copy.deepcopy(record)
    kernels = _section(flipped, "gpu-ours")["profile"]["kernels"]
    name, agg = next(iter(kernels.items()))
    agg["bound"] = "latency" if agg["bound"] != "latency" else "compute"
    rendered, regressions = diff_runreports(record, flipped)
    assert regressions
    assert f"kernel {name}: bound flipped" in rendered


def test_diff_reports_one_sided_sections(record):
    only_gpu = copy.deepcopy(record)
    only_gpu["sections"] = [_section(only_gpu, "gpu-ours")]
    rendered, _ = diff_runreports(only_gpu, record)
    assert "only in NEW report" in rendered


# -- single-result construction ----------------------------------------------

def test_from_result_matches_collected_section(full_report):
    _, results = full_report
    single = RunReport.from_result(results[0])
    assert len(single.sections) == 1
    assert single.sections[0]["algorithm"] == results[0].algorithm
    assert single.validate() == []
