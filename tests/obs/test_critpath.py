"""The causal critical-path analyzer: schema, invariants, attribution.

A clean analyzed run must produce a ``repro.critpath/v1`` record that
validates with zero problems, and the validator must detect tampering
with any figure it re-derives — each tamper test below breaks exactly
one number and asserts a check fires.  The fixtures cover all three
producers: single-GPU peeling, multi-GPU peeling (straggler and
exchange attribution) and BFS (which inherits the analyzer through the
contract registry without declaring floors).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.api import CRITPATHABLE, decompose, variant_names
from repro.cli import main
from repro.core.bfs_kernel import gpu_bfs
from repro.core.decomposer import KCoreDecomposer
from repro.core.host import gpu_peel
from repro.core.multigpu import multi_gpu_peel
from repro.graph import generators as gen
from repro.obs import tracing
from repro.obs.critpath import (
    ROUND_BOUND_CLASSES,
    SCENARIOS,
    SCHEMA_VERSION,
    render_critpath,
    validate_critpath,
)
from repro.profile.flamegraph import _frame


@pytest.fixture(scope="module")
def graph():
    return gen.planted_core(
        150, core_size=18, core_degree=7, background_degree=3.0, seed=7
    )


@pytest.fixture(scope="module")
def single(graph):
    return gpu_peel(graph, critpath=True)


@pytest.fixture(scope="module")
def multi(graph):
    return multi_gpu_peel(graph, num_devices=2, critpath=True)


@pytest.fixture
def record(single):
    """A deep copy of the single-GPU record, safe to tamper with."""
    return copy.deepcopy(single.critpath.record)


@pytest.fixture
def multi_record(multi):
    return copy.deepcopy(multi.critpath.record)


# -- the clean path ----------------------------------------------------------

def test_clean_single_record_validates(single):
    report = single.critpath
    assert report is not None
    assert report.validate() == []
    assert report.record["schema"] == SCHEMA_VERSION
    assert report.record["kind"] == "single"


def test_clean_multi_record_validates(multi):
    report = multi.critpath
    assert report is not None
    assert report.validate() == []
    assert report.record["kind"] == "multi"
    assert report.record["num_devices"] == 2


def test_whatif_covers_scenarios_ranked(single):
    rows = single.critpath.whatif
    assert {row["scenario"] for row in rows} == set(SCENARIOS)
    ceilings = [row["speedup_ceiling"] for row in rows]
    assert ceilings == sorted(ceilings, reverse=True)
    for row in rows:
        assert row["projected_ms"] <= row["measured_ms"]
        assert row["floor_ms"] <= row["projected_ms"]


def test_speed_of_light_dominates(single):
    """The all-at-once counterfactual is at least as fast as any
    single-term one, so it ranks first."""
    rows = {row["scenario"]: row for row in single.critpath.whatif}
    sol = rows["speed_of_light"]
    for scenario, row in rows.items():
        assert sol["projected_ms"] <= row["projected_ms"], scenario


def test_every_variant_produces_a_valid_record(graph):
    for name in variant_names():
        result = decompose(graph, f"gpu-{name}", critpath=True)
        report = result.critpath
        assert report is not None, name
        assert report.validate() == [], name
        assert report.record["variant"] == name


def test_render_mentions_path_and_ceiling(single, multi):
    text = single.critpath.render()
    assert "critical path" in text
    assert "speedup ceiling" in text
    multi_text = multi.critpath.render()
    assert "round attribution" in multi_text


def test_write_roundtrips(single, tmp_path):
    import json

    path = tmp_path / "critpath.json"
    single.critpath.write(path)
    loaded = json.loads(path.read_text())
    assert validate_critpath(loaded) == []
    assert loaded == single.critpath.to_json()


# -- observability-only contract ---------------------------------------------

def test_analyzed_run_is_byte_identical(graph, single):
    plain = gpu_peel(graph)
    assert plain.critpath is None
    assert np.array_equal(plain.core, single.core)
    assert plain.simulated_ms == single.simulated_ms
    assert plain.counters == single.counters


def test_decomposer_threads_the_flag(graph):
    analyzed = KCoreDecomposer(
        mode="simulate", critpath=True
    ).decompose(graph)
    assert analyzed.critpath is not None
    assert analyzed.critpath.validate() == []
    fast = KCoreDecomposer(mode="fast", critpath=True).decompose(graph)
    assert fast.critpath is None


def test_critpathable_registry():
    assert "gpu-ours" in CRITPATHABLE
    assert "gpu-multi2" in CRITPATHABLE
    assert "gpu-multi4" in CRITPATHABLE
    assert "bz" not in CRITPATHABLE
    assert CRITPATHABLE == frozenset(
        {f"gpu-{name}" for name in variant_names()}
        | {"gpu-multi2", "gpu-multi4"}
    )


# -- tamper detection --------------------------------------------------------

def test_rejects_wrong_schema(record):
    record["schema"] = "repro.critpath/v0"
    assert any("schema" in p for p in validate_critpath(record))


def test_detects_tampered_node_cycles(record):
    record["nodes"][0]["cycles"] += 1.0
    assert validate_critpath(record) != []


def test_detects_tampered_accounting_total(record):
    record["accounting"]["total_cycles"] += 1.0
    assert any("total_cycles" in p for p in validate_critpath(record))


def test_detects_tampered_elapsed(record):
    record["elapsed_ms"] *= 1.001
    assert validate_critpath(record) != []


def test_detects_tampered_ceiling(record):
    record["whatif"][0]["speedup_ceiling"] *= 1.001
    assert any(
        "speedup_ceiling" in p for p in validate_critpath(record)
    )


def test_detects_projection_above_measured(record):
    row = record["whatif"][-1]
    row["projected_ms"] = row["measured_ms"] * 2.0
    assert validate_critpath(record) != []


def test_detects_tampered_floor(record):
    for agg in record["kernels"].values():
        agg["floor_cycles"] += 1.0
    assert validate_critpath(record) != []


def test_detects_negative_slack(record):
    record["nodes"][0]["lanes"][0]["slack_cycles"] = -1.0
    assert validate_critpath(record) != []


def test_detects_missing_scenario(record):
    record["whatif"] = record["whatif"][1:]
    assert any("must cover" in p for p in validate_critpath(record))


def test_detects_wrong_round_bound(multi_record):
    multi_record["rounds"][0]["bound"] = "mystery"
    assert validate_critpath(multi_record) != []


def test_detects_bound_histogram_mismatch(multi_record):
    histogram = multi_record["round_bounds"]
    cls = ROUND_BOUND_CLASSES[0]
    histogram[cls] = histogram.get(cls, 0) + 1
    assert any(
        "round_bounds" in p for p in validate_critpath(multi_record)
    )


# -- multi-GPU attribution ---------------------------------------------------

def test_every_round_is_classified(multi):
    record = multi.critpath.record
    rounds = record["rounds"]
    assert rounds, "multi-GPU run produced no sub-rounds"
    for rnd in rounds:
        assert rnd["bound"] in ROUND_BOUND_CLASSES
    histogram = {cls: 0 for cls in ROUND_BOUND_CLASSES}
    for rnd in rounds:
        histogram[rnd["bound"]] += 1
    assert record["round_bounds"] == histogram


def test_worker_tracks_are_self_describing(multi):
    tracks = {t["track"] for t in multi.critpath.record["tracks"]}
    assert {"gpu0", "gpu1"} <= tracks


def test_multi_trace_tracks_carry_device_names(graph):
    with tracing() as tr:
        multi_gpu_peel(graph, num_devices=2)
    kernel_tracks = {
        e["track"] for e in tr.events
        if e.get("cat") == "kernel" and "track" in e
    }
    assert {"gpu0", "gpu1"} <= kernel_tracks
    for event in tr.events:
        if event.get("cat") == "kernel":
            assert event["args"]["device"] == event["track"]


def test_straggler_floor_scales_with_devices(graph, multi):
    """A D-way partition's makespan floor is the run floor over D."""
    from repro.core.variants import get_variant
    from repro.gpusim.costmodel import CostModel
    from repro.gpusim.spec import DeviceSpec
    from repro.obs.critpath import kernel_floor_cycles
    from repro.staticheck.bounds import launch_env

    record = multi.critpath.record
    cfg = get_variant(record["variant"])
    spec = DeviceSpec()
    env = launch_env(
        graph.num_vertices, len(graph.neighbors), graph.max_degree,
        spec, cfg, None,
    )
    assert record["kernels"], "no kernels aggregated"
    for name, agg in record["kernels"].items():
        run_floor = kernel_floor_cycles(
            name, cfg, env, CostModel(), spec.num_sms, agg["launches"]
        )
        assert run_floor > 0.0
        assert agg["floor_cycles"] == run_floor / 2.0


# -- BFS inherits through the contract registry ------------------------------

def test_bfs_record_validates_with_zero_floor(graph):
    result = gpu_bfs(graph, source=0, critpath=True)
    report = result.critpath
    assert report is not None
    assert report.validate() == []
    assert report.record["algorithm"] == "gpu-bfs"
    # the bfs contract declares no floors: the bracket degenerates to
    # [0, measured] and still holds — no analyzer edits required
    for agg in report.record["kernels"].values():
        assert agg["floor_cycles"] == 0.0
    plain = gpu_bfs(graph, source=0)
    assert np.array_equal(plain.core, result.core)
    assert plain.simulated_ms == result.simulated_ms


# -- CLI ---------------------------------------------------------------------

def test_cli_writes_and_renders(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n1 3\n")
    out = tmp_path / "critpath.json"
    code = main([
        "--input", str(src), "--algorithm", "gpu-ours",
        "--critpath", str(out),
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    assert "speedup ceiling" in captured.out
    assert out.exists()
    import json

    assert validate_critpath(json.loads(out.read_text())) == []


def test_cli_rejects_non_critpathable(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n")
    assert main([
        "--input", str(src), "--algorithm", "bz", "--critpath",
    ]) == 2
    assert "critpath" in capsys.readouterr().err


# -- runreport merge ---------------------------------------------------------

def test_runreport_carries_and_checks_the_section(graph):
    from repro.obs.runreport import collect_run_report, validate_runreport

    report, _ = collect_run_report(
        graph, ["gpu-ours"], dataset="planted-150"
    )
    record = report.to_json()
    sec = record["sections"][0]
    assert sec["critpath"] is not None
    assert report.validate() == []
    tampered = copy.deepcopy(record)
    tampered["sections"][0]["critpath"]["elapsed_ms"] *= 1.001
    assert validate_runreport(tampered) != []


# -- flamegraph label hygiene ------------------------------------------------

def test_folded_frames_escape_reserved_characters():
    assert _frame("scan_kernel") == "scan_kernel"
    assert _frame("loop; drop table") == "loop,_drop_table"
    assert _frame("round\tk=3\n") == "round_k=3"
    assert _frame("  ") == "?"


def test_folded_output_stays_well_formed(single):
    profiled = single.profile
    assert profiled is not None
    for line in profiled.to_folded().strip().splitlines():
        # the count splits off at the LAST space (folded convention)
        stack, _, count = line.rpartition(" ")
        assert stack and count.isdigit()
        frames = stack.split(";")
        assert all(frames)
        # sanitised labels: root and kernel frames carry no whitespace
        # (only the module's own "round k=" frames may)
        assert " " not in frames[0] and " " not in frames[1]


def test_render_is_stable(single):
    assert render_critpath(single.critpath.record) == (
        single.critpath.render()
    )
