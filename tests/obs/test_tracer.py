"""The observability layer: tracer semantics, export, zero-cost off."""

import json

import numpy as np
import pytest

from repro.core.decomposer import KCoreDecomposer
from repro.gpusim.device import Device
from repro.graph.examples import fig1_graph
from repro.obs import (
    Tracer,
    active_tracer,
    start_tracing,
    stop_tracing,
    tracing,
    validate_chrome_trace,
)


# -- tracer semantics --------------------------------------------------------


def test_spans_nest_lifo():
    tr = Tracer()
    outer = tr.begin("outer", 0.0)
    inner = tr.begin("inner", 1.0)
    assert tr.open_spans() == 2
    tr.end(inner, 2.0)
    tr.end(outer, 3.0)
    assert tr.open_spans() == 0
    assert tr.span_names() == ["inner", "outer"]  # closed in LIFO order


def test_out_of_order_end_raises():
    tr = Tracer()
    outer = tr.begin("outer", 0.0)
    tr.begin("inner", 1.0)
    with pytest.raises(ValueError, match="innermost"):
        tr.end(outer, 2.0)


def test_tracks_nest_independently():
    tr = Tracer()
    host = tr.begin("round", 0.0, track="host")
    device = tr.begin("kernel", 0.5, track="device")
    tr.end(host, 2.0)  # legal: different track's stack
    tr.end(device, 1.5)
    assert tr.open_spans("host") == 0
    assert tr.open_spans("device") == 0


def test_flat_counter_folding():
    tr = Tracer()
    tr.add("n", 2)
    tr.add("n", 3)
    tr.peak("p", 5)
    tr.peak("p", 4)
    tr.put("v", 1)
    tr.put("v", 9)
    assert tr.counters == {"n": 5.0, "p": 5.0, "v": 9.0}


def test_peak_keeps_maximum_put_keeps_last():
    tr = Tracer()
    tr.peak("p", -2.0)
    assert tr.counters["p"] == -2.0  # first value always lands
    tr.peak("p", -5.0)
    assert tr.counters["p"] == -2.0  # lower values never regress it
    tr.peak("p", 1.5)
    assert tr.counters["p"] == 1.5
    tr.put("p", 0.0)  # put overwrites unconditionally, even downward
    assert tr.counters["p"] == 0.0
    tr.peak("p", -1.0)  # ...and peak resumes from the new floor
    assert tr.counters["p"] == 0.0


def test_open_spans_counts_per_track():
    tr = Tracer()
    h1 = tr.begin("outer", 0.0, track="host")
    tr.begin("inner", 1.0, track="host")
    d1 = tr.begin("kernel", 0.5, track="device")
    assert tr.open_spans() == 3
    assert tr.open_spans("host") == 2
    assert tr.open_spans("device") == 1
    assert tr.open_spans("nope") == 0
    tr.end(d1, 1.0)
    assert tr.open_spans("device") == 0
    assert tr.open_spans("host") == 2
    with pytest.raises(ValueError, match="innermost"):
        tr.end(h1, 2.0)  # outer is not innermost on its track
    assert tr.open_spans("host") == 2  # failed end leaves the stack alone


def test_activation_scoping():
    assert active_tracer() is None
    with tracing() as tr:
        assert active_tracer() is tr
        with tracing() as inner:
            assert active_tracer() is inner
    assert active_tracer() is None
    installed = start_tracing()
    assert stop_tracing() is installed
    assert stop_tracing() is None


# -- chrome export -----------------------------------------------------------


def test_chrome_trace_validates_and_converts_units(tmp_path):
    tr = Tracer()
    tr.span("kernel", 1.5, 2.0, cat="kernel", track="device")
    tr.instant("malloc deg", 0.0, track="device")
    tr.sample("frontier", 2.0, 42.0)
    tr.add("device.cycles", 100.0)
    trace = tr.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans[0]["ts"] == 1500.0 and spans[0]["dur"] == 2000.0  # us
    assert trace["otherData"]["counters"] == {"device.cycles": 100.0}

    path = tmp_path / "trace.json"
    tr.write(path)
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_validator_catches_malformed_traces():
    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
    bad_dur = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
    ]}
    assert any("dur" in e for e in validate_chrome_trace(bad_dur))


def test_empty_tracer_exports_a_valid_trace(tmp_path):
    tr = Tracer()
    trace = tr.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    # only "M" metadata rows (process/thread names), no real events
    assert all(e["ph"] == "M" for e in trace["traceEvents"])
    path = tmp_path / "empty.json"
    tr.write(path)
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_counter_only_trace_validates():
    tr = Tracer()
    tr.add("device.cycles", 10.0)
    tr.peak("buffer.peak_fill", 3.0)
    tr.sample("frontier", 0.5, 7.0)
    trace = tr.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    assert tr.span_names() == []
    counted = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert len(counted) == 1  # the sample; flat counters go to otherData
    assert trace["otherData"]["counters"] == {
        "device.cycles": 10.0, "buffer.peak_fill": 3.0,
    }


def test_unclosed_begin_span_stays_open_and_trace_validates():
    tr = Tracer()
    tr.begin("round k=0", 0.0)
    tr.span("kernel", 0.0, 1.0, track="device")
    assert tr.open_spans() == 1
    # an unclosed begin() emits no event, so the export stays valid
    trace = tr.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    assert tr.span_names() == ["kernel"]


# -- end-to-end through the decomposer ---------------------------------------


@pytest.fixture()
def graph():
    return fig1_graph()[0]


def test_counters_reach_result(graph):
    result = KCoreDecomposer(mode="simulate", trace=True).decompose(graph)
    for name in (
        "host.rounds", "frontier.peak", "buffer.peak_fill",
        "device.kernel_launches", "device.mem_transactions",
        "device.barriers", "device.atomic_conflicts",
    ):
        assert name in result.counters, name
    assert result.counters["host.rounds"] >= 1
    assert result.counters["device.kernel_launches"] >= 2


def test_trace_has_kernel_and_round_spans(graph):
    result = KCoreDecomposer(mode="simulate", trace=True).decompose(graph)
    names = result.trace.span_names()
    launches = int(result.counters["device.kernel_launches"])
    rounds = int(result.counters["host.rounds"])
    assert names.count("scan_kernel") + names.count("loop_kernel") == launches
    assert sum(1 for n in names if n.startswith("round k=")) == rounds
    assert validate_chrome_trace(result.trace.to_chrome_trace()) == []


def test_tracing_off_is_byte_identical(graph):
    traced = KCoreDecomposer(mode="simulate", trace=True).decompose(graph)
    plain = KCoreDecomposer(mode="simulate").decompose(graph)
    assert np.array_equal(traced.core, plain.core)
    assert traced.simulated_ms == plain.simulated_ms
    assert plain.trace is None
    # the cheap aggregate counters are kept either way, and agree
    assert plain.counters == traced.counters


def test_fast_mode_trace_degrades_to_wall_span(graph):
    result = KCoreDecomposer(mode="fast", trace=True).decompose(graph)
    assert result.trace.span_names() == ["fast_decompose"]
    assert "host.wall_ms" in result.counters


def test_device_without_tracer_records_nothing(graph):
    device = Device()
    assert device.tracer is None
    device.malloc("scratch", 8)
    device.free("scratch")
    assert device.counters()["device.kernel_launches"] == 0.0


def test_cli_profile_writes_trace(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    out = tmp_path / "trace.json"
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--profile", str(out)]) == 0
    trace = json.loads(out.read_text())
    assert validate_chrome_trace(trace) == []
    assert any(e.get("cat") == "kernel" for e in trace["traceEvents"])
    assert "device.cycles" in trace["otherData"]["counters"]
    assert "wrote trace" in capsys.readouterr().out
    assert active_tracer() is None  # CLI uninstalls its tracer


def test_cli_without_profile_writes_no_trace(tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(src), "--algorithm", "gpu-ours"]) == 0
    assert not (tmp_path / "trace.json").exists()
