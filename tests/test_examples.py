"""Smoke tests: the example scripts must run end to end.

The two quick examples run in-process on every test pass; the longer
scenario scripts are exercised by their own integration machinery (and
by the benchmark suite, which covers the same code paths).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "Core numbers:" in out
    assert "Simulated GPU run" in out
    assert "web-Google analogue" in out


def test_gpu_anatomy(capsys):
    out = _run("gpu_anatomy.py", capsys)
    assert "Ablation (Table II, this graph):" in out
    assert "Buffer overflow" in out


def test_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), script
        assert '__main__' in text, script
        assert 'def main(' in text, script


def test_example_count():
    """The deliverable requires at least three runnable examples."""
    assert len(list(EXAMPLES.glob("*.py"))) >= 3
