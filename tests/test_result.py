"""DecompositionResult type tests."""

import numpy as np
import pytest

from repro.result import DecompositionResult


@pytest.fixture
def result():
    return DecompositionResult(
        core=np.array([3, 3, 2, 1, 1, 0]),
        algorithm="test",
        simulated_ms=1.5,
        peak_memory_bytes=1024,
        rounds=4,
        stats={"x": 1},
    )


def test_core_coerced_to_int64():
    r = DecompositionResult(core=[1, 2], algorithm="t")
    assert r.core.dtype == np.int64


def test_basic_fields(result):
    assert result.num_vertices == 6
    assert result.kmax == 3
    assert result.core_number_of(2) == 2


def test_shell_and_core_queries(result):
    assert result.shell(1).tolist() == [3, 4]
    assert result.core_vertices(2).tolist() == [0, 1, 2]
    assert result.shell_sizes().tolist() == [1, 2, 1, 2]


def test_empty_result():
    r = DecompositionResult(core=np.empty(0), algorithm="t")
    assert r.kmax == 0
    assert r.num_vertices == 0
    assert r.shell_sizes().tolist() == [0]


def test_agreement():
    a = DecompositionResult(core=np.array([1, 2]), algorithm="a")
    b = DecompositionResult(core=np.array([1, 2]), algorithm="b")
    c = DecompositionResult(core=np.array([1, 3]), algorithm="c")
    assert a.agrees_with(b)
    assert not a.agrees_with(c)


def test_frozen():
    r = DecompositionResult(core=np.array([1]), algorithm="t")
    with pytest.raises(Exception):
        r.algorithm = "other"
