"""Cooperative-scheduler tests: barriers, interleaving, deadlock."""

import numpy as np
import pytest

from repro.errors import KernelDeadlockError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device
from repro.gpusim.scheduler import run_kernel
from repro.gpusim.spec import DeviceSpec

SPEC = DeviceSpec()
COST = CostModel()


def test_simple_kernel_runs_all_warps():
    seen = []

    def kernel(ctx):
        seen.append((ctx.block_idx, ctx.warp_id))
        yield ctx.STEP

    run_kernel(kernel, SPEC, COST, grid_dim=2, block_dim=64)
    assert sorted(seen) == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_barrier_orders_phases():
    """No warp may enter phase 2 until every warp finished phase 1."""
    log = []

    def kernel(ctx):
        log.append(("p1", ctx.warp_id))
        yield ctx.BARRIER
        log.append(("p2", ctx.warp_id))

    run_kernel(kernel, SPEC, COST, grid_dim=1, block_dim=128)
    phase1_end = max(i for i, (p, _) in enumerate(log) if p == "p1")
    phase2_start = min(i for i, (p, _) in enumerate(log) if p == "p2")
    assert phase1_end < phase2_start


def test_barriers_are_per_block():
    """A barrier in block 0 must not wait for block 1's warps."""
    def kernel(ctx, out):
        if ctx.block_idx == 0:
            yield ctx.BARRIER
            out.append(ctx.warp_id)
        else:
            # block 1 never reaches a barrier; block 0 must still finish
            yield ctx.STEP

    out: list = []
    run_kernel(kernel, SPEC, COST, grid_dim=2, block_dim=64, args=(out,))
    assert sorted(out) == [0, 1]


def test_warps_interleave_across_blocks():
    """Round-robin scheduling interleaves work from different blocks —
    the property that lets cross-block races (Fig. 6) actually occur."""
    order = []

    def kernel(ctx):
        for _ in range(3):
            order.append(ctx.block_idx)
            yield ctx.STEP

    run_kernel(kernel, SPEC, COST, grid_dim=2, block_dim=32)
    # both blocks appear before either finishes all three steps
    first_done = order.index(0, 4) if order.count(0) else 0
    assert order[:4].count(0) and order[:4].count(1)


def test_finished_warps_release_barrier():
    """A warp exiting early must not hang the others at __syncthreads
    (CUDA semantics: exited threads stop participating)."""
    def kernel(ctx):
        if ctx.warp_id == 0:
            yield ctx.STEP
            return  # exits without hitting the barrier
        yield ctx.BARRIER

    stats = run_kernel(kernel, SPEC, COST, grid_dim=1, block_dim=96)
    assert stats.barriers >= 1


def test_mismatched_barrier_counts_complete_via_exit():
    """Warps hitting different numbers of barriers resolve as warps
    exit; the final state must not deadlock when counts can drain."""
    def kernel(ctx):
        rounds = 1 if ctx.warp_id == 0 else 2
        for _ in range(rounds):
            yield ctx.BARRIER

    # warp 0 exits after barrier 1; the others' second barrier releases
    # once warp 0 is no longer active
    run_kernel(kernel, SPEC, COST, grid_dim=1, block_dim=96)


def test_stats_accumulate():
    def kernel(ctx, data):
        ctx.gload(data, ctx.lanes)
        ctx.charge(10)
        yield ctx.BARRIER

    dev = Device()
    data = dev.malloc("d", np.arange(64))
    stats = run_kernel(kernel, dev.spec, dev.cost_model, grid_dim=1,
                       block_dim=64, args=(data,))
    assert stats.issued >= 22  # 2 warps x (1 load + 10 charge)
    assert stats.mem_transactions == 2
    assert stats.barriers == 1
    assert stats.cycles > 0


def test_unknown_token_rejected():
    def kernel(ctx):
        yield "bogus"

    with pytest.raises(ValueError):
        run_kernel(kernel, SPEC, COST, grid_dim=1, block_dim=32)


def test_block_dim_must_be_warp_multiple():
    def kernel(ctx):
        yield ctx.STEP

    with pytest.raises(ValueError):
        run_kernel(kernel, SPEC, COST, grid_dim=1, block_dim=48)


def test_kernel_stats_milliseconds():
    def kernel(ctx):
        ctx.charge(1000)
        yield ctx.STEP

    stats = run_kernel(kernel, SPEC, COST, grid_dim=1, block_dim=32)
    assert stats.milliseconds(COST) == pytest.approx(
        COST.cycles_to_ms(stats.cycles)
    )


class TestDevice:
    def test_launch_accumulates_time(self):
        def kernel(ctx):
            ctx.charge(100)
            yield ctx.STEP

        dev = Device()
        t0 = dev.elapsed_ms
        dev.launch(kernel, grid_dim=1, block_dim=32)
        assert dev.elapsed_ms > t0
        assert dev.kernel_launches == 1

    def test_charge_hook(self):
        dev = Device()
        dev.charge(cycles=1_000_000, launches=2)
        assert dev.kernel_launches == 2
        assert dev.elapsed_ms >= 1.0

    def test_time_budget_enforced(self):
        from repro.errors import SimulatedTimeLimitExceeded

        dev = Device(time_budget_ms=0.5)
        with pytest.raises(SimulatedTimeLimitExceeded):
            dev.charge(cycles=10_000_000)

    def test_read_back_is_a_copy(self):
        dev = Device()
        arr = dev.malloc("a", np.arange(4))
        out = dev.read_back(arr)
        out[0] = 99
        assert arr.data[0] == 0

    def test_malloc_free_cycle(self):
        dev = Device()
        dev.malloc("a", 100)
        dev.free("a")
        dev.malloc("a", 100)  # name reusable after free
