"""Device global-memory accounting tests."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.gpusim.memory import GlobalMemory


def test_malloc_and_get():
    mem = GlobalMemory(capacity=1000)
    arr = mem.malloc("a", 10)
    assert len(arr) == 10
    assert mem.get("a") is arr
    assert mem.in_use == 40


def test_malloc_from_host_array_copies():
    mem = GlobalMemory(capacity=1000)
    host = np.arange(5)
    arr = mem.malloc("a", host)
    host[0] = 99
    assert arr.data[0] == 0


def test_fill_value():
    mem = GlobalMemory(capacity=1000)
    arr = mem.malloc("a", 4, fill=7)
    assert (arr.data == 7).all()


def test_oom_raises_with_details():
    mem = GlobalMemory(capacity=100)
    mem.malloc("a", 20)  # 80 bytes
    with pytest.raises(DeviceOutOfMemoryError) as exc:
        mem.malloc("b", 20)
    assert exc.value.requested == 80
    assert exc.value.in_use == 80
    assert exc.value.capacity == 100


def test_free_releases_space():
    mem = GlobalMemory(capacity=100)
    mem.malloc("a", 20)
    mem.free("a")
    mem.malloc("b", 25)  # fits only after the free
    assert mem.in_use == 100


def test_peak_is_high_water_mark():
    mem = GlobalMemory(capacity=1000)
    mem.malloc("a", 100)
    mem.free("a")
    mem.malloc("b", 10)
    assert mem.peak == 400
    assert mem.in_use == 40


def test_base_usage_counts():
    mem = GlobalMemory(capacity=1000, base_usage=600)
    assert mem.available == 400
    with pytest.raises(DeviceOutOfMemoryError):
        mem.malloc("a", 200)


def test_base_usage_exceeding_capacity():
    with pytest.raises(DeviceOutOfMemoryError):
        GlobalMemory(capacity=100, base_usage=200)


def test_duplicate_name_rejected():
    mem = GlobalMemory(capacity=1000)
    mem.malloc("a", 1)
    with pytest.raises(ValueError):
        mem.malloc("a", 1)


def test_id_bytes_accounting():
    mem = GlobalMemory(capacity=1000)
    mem.malloc("a", 10, id_bytes=8)
    assert mem.in_use == 80


def test_free_all():
    mem = GlobalMemory(capacity=1000)
    mem.malloc("a", 10)
    mem.malloc("b", 10)
    mem.free_all()
    assert mem.in_use == 0
    assert mem.peak == 80


def test_free_unknown_name_raises_typed_error():
    from repro.errors import InvalidFreeError

    mem = GlobalMemory(capacity=1000)
    with pytest.raises(InvalidFreeError) as exc:
        mem.free("never")
    assert exc.value.name == "never"
    assert exc.value.kind == "unknown"
    assert "unknown device array" in str(exc.value)


def test_double_free_raises_typed_error():
    from repro.errors import InvalidFreeError

    mem = GlobalMemory(capacity=1000)
    mem.malloc("a", 10)
    mem.free("a")
    with pytest.raises(InvalidFreeError) as exc:
        mem.free("a")
    assert exc.value.kind == "double"
    assert "double free" in str(exc.value)


def test_invalid_free_is_a_device_error_not_keyerror():
    from repro.errors import DeviceError, InvalidFreeError

    mem = GlobalMemory(capacity=1000)
    try:
        mem.free("ghost")
    except KeyError:  # pragma: no cover - the old, wrong behaviour
        pytest.fail("free of an unknown name leaked a bare KeyError")
    except InvalidFreeError as exc:
        assert isinstance(exc, DeviceError)


def test_realloc_after_free_starts_fresh_lifetime():
    from repro.errors import InvalidFreeError

    mem = GlobalMemory(capacity=1000)
    mem.malloc("a", 10)
    mem.free("a")
    mem.malloc("a", 10)  # same name, new lifetime
    mem.free("a")  # legal again
    with pytest.raises(InvalidFreeError):
        mem.free("a")  # but a second free is still a double free
