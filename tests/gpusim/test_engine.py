"""Unit tests for the execution-engine layer (`repro.gpusim.engine`)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.fastsim  # noqa: F401  (registers vectorized executors)
from repro.core.host import gpu_peel
from repro.core.loop_kernel import loop_kernel
from repro.core.scan_kernel import scan_kernel
from repro.errors import ReproError
from repro.gpusim.device import Device
from repro.gpusim.engine import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    JitEngine,
    ReferenceEngine,
    VectorizedEngine,
    _VECTORIZED_KERNELS,
    available_engines,
    get_engine,
)
from repro.graph.examples import fig1_graph


def test_available_engines_reference_first():
    names = available_engines()
    assert names[0] == "reference"
    assert set(names) == {"reference", "vectorized", "jit"}
    assert DEFAULT_ENGINE in names


def test_get_engine_resolves_names_and_caches():
    ref = get_engine("reference")
    assert isinstance(ref, ReferenceEngine)
    assert ref is get_engine("reference")  # cached singleton
    assert isinstance(get_engine("vectorized"), VectorizedEngine)
    assert isinstance(get_engine("jit"), JitEngine)


def test_get_engine_none_is_the_default():
    assert get_engine(None).name == DEFAULT_ENGINE
    assert get_engine().name == DEFAULT_ENGINE


def test_get_engine_passes_instances_through():
    engine = VectorizedEngine()
    assert get_engine(engine) is engine


def test_get_engine_unknown_name():
    with pytest.raises(ValueError, match="unknown execution engine"):
        get_engine("cuda")


def test_engine_repr_carries_name():
    assert "vectorized" in repr(get_engine("vectorized"))


def test_jit_degrades_gracefully_without_numba():
    """Construction succeeds with or without numba; name stays 'jit'."""
    engine = JitEngine()
    assert engine.name == "jit"
    assert isinstance(engine.jit_active, bool)
    graph, expected = fig1_graph()
    result = gpu_peel(graph, engine=engine)
    assert [int(c) for c in result.core] == [
        expected[v] for v in range(graph.num_vertices)
    ]


def test_abstract_engine_run_is_not_implemented():
    graph, _ = fig1_graph()
    with pytest.raises(NotImplementedError):
        gpu_peel(graph, engine=ExecutionEngine())


def test_both_kernels_have_registered_executors():
    assert scan_kernel in _VECTORIZED_KERNELS
    assert loop_kernel in _VECTORIZED_KERNELS


def test_device_records_engine_name():
    assert Device().engine.name == DEFAULT_ENGINE
    assert Device(engine="reference").engine.name == "reference"


def test_result_attribution_counter_stats_and_span():
    graph, _ = fig1_graph()
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    result = gpu_peel(graph, engine="vectorized", tracer=tracer)
    assert result.counters.get("engine.vectorized") == 1.0
    assert result.stats["engine"] == "vectorized"
    kernel_spans = [e for e in tracer.events
                    if e.get("cat") == "kernel" and "args" in e]
    assert kernel_spans, "expected kernel spans on the trace"
    assert all(
        s["args"].get("engine") == "vectorized" for s in kernel_spans
    )


def test_virtual_warp_variants_fall_back_to_reference():
    """vw2/vw4 decline vectorization but still succeed byte-identically."""
    graph, _ = fig1_graph()
    for variant in ("vw2", "vw4"):
        ref = gpu_peel(graph, variant=variant, engine="reference")
        vec = gpu_peel(graph, variant=variant, engine="vectorized")
        assert np.array_equal(vec.core, ref.core)
        assert ref.simulated_ms == vec.simulated_ms
        # `engine.*` attribution records the *selected* engine; the
        # per-launch `engine.served.*` counters record which tier
        # actually executed each launch (the structural fallback here)
        assert vec.stats["engine"] == "vectorized"
        rounds = vec.counters["host.rounds"]
        # scan launches vectorize; every loop launch structurally
        # declines (cfg.virtual_warps > 1) and is served by reference
        assert vec.counters["engine.served.vectorized"] == rounds
        assert vec.counters["engine.served.reference"] == rounds


def test_ring_buffer_variant_serves_every_launch_by_reference():
    """Both executors decline ring addressing before touching state."""
    import dataclasses

    from repro.core.variants import get_variant

    graph, expected = fig1_graph()
    ring = dataclasses.replace(
        get_variant("ours"), name="ours+ring", ring_buffer=True
    )
    result = gpu_peel(graph, variant=ring, engine="vectorized")
    assert [int(c) for c in result.core] == [
        expected[v] for v in range(graph.num_vertices)
    ]
    launches = result.counters["kernel.scan.launches"] \
        + result.counters["kernel.loop.launches"]
    assert result.counters["engine.served.reference"] == launches
    assert "engine.served.vectorized" not in result.counters


def test_monitored_launches_are_served_by_reference():
    """A sanitizer monitor needs the shadow log only the interpreter
    produces, so every monitored launch carries its serving stamp."""
    graph, _ = fig1_graph()
    result = gpu_peel(graph, engine="vectorized", sanitize=True)
    launches = result.counters["kernel.scan.launches"] \
        + result.counters["kernel.loop.launches"]
    assert result.counters["engine.served.reference"] == launches
    assert "engine.served.vectorized" not in result.counters


def test_preempting_launches_are_served_by_reference():
    """preempt_prob > 0 must interleave at the interpreter's yields."""
    from repro.core.host import GpuPeelOptions

    graph, _ = fig1_graph()
    result = gpu_peel(
        graph, engine="vectorized",
        options=GpuPeelOptions(preempt_prob=0.05, seed=7),
    )
    launches = result.counters["kernel.scan.launches"] \
        + result.counters["kernel.loop.launches"]
    assert result.counters["engine.served.reference"] == launches
    assert "engine.served.vectorized" not in result.counters


def test_duplicate_adjacency_routes_loop_launches_to_reference():
    """Parallel edges defeat the replay's per-vertex dedup assumption:
    the loop executor declines dynamically, scan still vectorizes."""
    from repro.graph.csr import CSRGraph

    # `from_*` constructors deduplicate, so build the multigraph's CSR
    # arrays directly: vertex 0 and 1 each list the other twice.
    graph = CSRGraph(
        offsets=np.array([0, 3, 6, 8]),
        neighbors=np.array([1, 1, 2, 0, 0, 2, 0, 1]),
    )
    ref = gpu_peel(graph, engine="reference")
    vec = gpu_peel(graph, engine="vectorized")
    assert np.array_equal(vec.core, ref.core)
    assert ref.simulated_ms == vec.simulated_ms
    assert vec.counters["engine.served.vectorized"] \
        == vec.counters["kernel.scan.launches"]
    assert vec.counters["engine.served.reference"] \
        == vec.counters["kernel.loop.launches"]


def test_predicted_overflow_raises_the_reference_error():
    """An overflowing buffer is declined up front, and the reference
    interpreter raises the same typed error the contract demands."""
    from repro.core.host import GpuPeelOptions
    from repro.errors import BufferOverflowError
    from repro.graph.generators import ring_of_cliques

    graph = ring_of_cliques(num_cliques=4, clique_size=8)
    for engine in ("reference", "vectorized"):
        with pytest.raises(BufferOverflowError):
            gpu_peel(
                graph, engine=engine,
                options=GpuPeelOptions(buffer_capacity=1),
            )


def test_sanitized_run_is_identical_under_vectorized_engine():
    """A monitor routes launches to the interpreter; results match."""
    graph, _ = fig1_graph()
    plain = gpu_peel(graph, engine="vectorized")
    sanitized = gpu_peel(graph, engine="vectorized", sanitize=True)
    assert sanitized.sanitizer is not None
    assert sanitized.sanitizer.clean
    assert plain.simulated_ms == sanitized.simulated_ms
    assert np.array_equal(plain.core, sanitized.core)


def test_unknown_engine_name_via_gpu_peel():
    graph, _ = fig1_graph()
    with pytest.raises((ValueError, ReproError), match="unknown"):
        gpu_peel(graph, engine="warp-drive")
