"""WarpContext tests: memory ops, atomics, warp primitives, accounting."""

import numpy as np
import pytest

from repro.gpusim.context import BlockState, WarpContext
from repro.gpusim.costmodel import CostModel
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import DeviceSpec


@pytest.fixture
def ctx():
    spec = DeviceSpec()
    block = BlockState(0, 4, spec)
    return WarpContext(block, warp_id=1, grid_dim=2, block_dim=128,
                       spec=spec, cost=CostModel())


@pytest.fixture
def mem():
    return GlobalMemory(capacity=1 << 20)


class TestIdentity:
    def test_ids(self, ctx):
        assert ctx.block_idx == 0
        assert ctx.warp_id == 1
        assert ctx.global_warp_id == 1
        assert ctx.warps_per_block == 4
        assert ctx.num_threads == 256
        assert ctx.lanes.tolist() == list(range(32))


class TestGlobalMemory:
    def test_gload_vector(self, ctx, mem):
        arr = mem.malloc("a", np.arange(100))
        vals = ctx.gload(arr, np.array([3, 7]))
        assert vals.tolist() == [3, 7]

    def test_gload_scalar(self, ctx, mem):
        arr = mem.malloc("a", np.arange(10))
        assert ctx.gload(arr, 4) == 4

    def test_gstore(self, ctx, mem):
        arr = mem.malloc("a", 10)
        ctx.gstore(arr, np.array([1, 2]), np.array([5, 6]))
        assert arr.data[1] == 5 and arr.data[2] == 6

    def test_coalesced_access_one_transaction(self, ctx, mem):
        arr = mem.malloc("a", np.arange(64))
        before = ctx.block.timing.mem_transactions
        ctx.gload(arr, np.arange(32))  # one 32-word segment
        assert ctx.block.timing.mem_transactions - before == 1

    def test_scattered_access_many_transactions(self, ctx, mem):
        arr = mem.malloc("a", np.arange(32 * 64))
        before = ctx.block.timing.mem_transactions
        ctx.gload(arr, np.arange(32) * 64)  # every index a new segment
        assert ctx.block.timing.mem_transactions - before == 32

    def test_dependent_load_stalls_path(self, ctx, mem):
        arr = mem.malloc("a", np.arange(10))
        p0 = ctx.path
        ctx.gload(arr, 0, dependent=True)
        stall = ctx.path - p0
        p1 = ctx.path
        ctx.gload(arr, 0, dependent=False)
        assert ctx.path - p1 < stall


class TestAtomics:
    def test_distinct_addresses(self, ctx, mem):
        arr = mem.malloc("a", np.array([10, 20, 30]))
        old = ctx.atomic_global(arr, np.array([0, 2]), -1)
        assert old.tolist() == [10, 30]
        assert arr.data.tolist() == [9, 20, 29]

    def test_duplicate_addresses_serialise(self, ctx, mem):
        """Each lane must observe a distinct intermediate value — the
        property the Fig. 6 redundancy-avoidance argument needs."""
        arr = mem.malloc("a", np.array([100]))
        old = ctx.atomic_global(arr, np.zeros(5, dtype=np.int64), -1)
        assert sorted(old.tolist()) == [96, 97, 98, 99, 100]
        assert arr.data[0] == 95

    def test_mixed_duplicates(self, ctx, mem):
        arr = mem.malloc("a", np.array([5, 7]))
        old = ctx.atomic_global(arr, np.array([0, 1, 0]), 1)
        assert old[1] == 7
        assert sorted([old[0], old[2]]) == [5, 6]
        assert arr.data.tolist() == [7, 8]

    def test_scalar_form(self, ctx, mem):
        arr = mem.malloc("a", np.array([3]))
        assert ctx.atomic_global(arr, 0, 2) == 3
        assert arr.data[0] == 5

    def test_empty_index(self, ctx, mem):
        arr = mem.malloc("a", np.array([3]))
        out = ctx.atomic_global(arr, np.empty(0, dtype=np.int64), 1)
        assert out.size == 0

    def test_conflicts_cost_more(self, ctx, mem):
        arr = mem.malloc("a", np.zeros(64))
        p0 = ctx.path
        ctx.atomic_global(arr, np.arange(32), 1)
        distinct_cost = ctx.path - p0
        p1 = ctx.path
        ctx.atomic_global(arr, np.zeros(32, dtype=np.int64), 1)
        conflict_cost = ctx.path - p1
        assert conflict_cost > distinct_cost


class TestSharedMemory:
    def test_scalar_roundtrip(self, ctx):
        ctx.smem_set("e", 42)
        assert ctx.smem_get("e") == 42

    def test_get_default(self, ctx):
        assert ctx.smem_get("missing", default=7) == 7

    def test_atomic_add_returns_old(self, ctx):
        ctx.smem_set("e", 10)
        assert ctx.smem_atomic_add("e", 5) == 10
        assert ctx.smem_get("e") == 15

    def test_atomic_add_unset_starts_at_zero(self, ctx):
        assert ctx.smem_atomic_add("x", 3) == 0

    def test_array_alloc_and_access(self, ctx):
        arr = ctx.smem_array("buf", 16)
        ctx.sstore(arr, np.array([0, 3]), np.array([9, 8]))
        assert ctx.sload(arr, 3) == 8

    def test_array_alloc_idempotent(self, ctx):
        a = ctx.smem_array("buf", 16)
        b = ctx.smem_array("buf", 16)
        assert a is b

    def test_shared_capacity_enforced(self, ctx):
        with pytest.raises(MemoryError):
            ctx.smem_array("huge", 10_000_000)

    def test_shared_capacity_error_is_typed(self, ctx):
        from repro.errors import SharedMemoryExhaustedError

        with pytest.raises(SharedMemoryExhaustedError) as info:
            ctx.smem_array("huge", 10_000_000)
        exc = info.value
        assert exc.name == "huge"
        assert exc.block == ctx.block_idx
        assert exc.requested > exc.capacity
        assert "huge" in str(exc)

    def test_shared_capacity_error_counts_existing_use(self, ctx):
        from repro.errors import SharedMemoryExhaustedError

        ctx.smem_array("first", 1024)
        capacity = ctx.spec.shared_memory_per_block_bytes
        id_bytes = ctx.spec.id_bytes
        # a second allocation that alone would fit, but not on top of
        # the first one
        with pytest.raises(SharedMemoryExhaustedError) as info:
            ctx.smem_array("second", capacity // id_bytes - 512)
        assert info.value.in_use == 1024 * id_bytes

    def test_contended_shared_atomic_cheap(self, ctx):
        """Hardware-accelerated shared atomics: 32 conflicting lanes
        must cost far less than 32 serial global atomics."""
        cost = ctx.cost
        shared = cost.shared_atomic_base + cost.shared_atomic_conflict * 31
        globl = 32 * cost.global_atomic_base
        assert shared < globl / 4


class TestWarpPrimitives:
    def test_ballot_bitmap(self, ctx):
        mask = np.zeros(32, dtype=bool)
        mask[[0, 5, 31]] = True
        bits = ctx.ballot(mask)
        assert bits == (1 << 0) | (1 << 5) | (1 << 31)

    def test_popc(self, ctx):
        assert ctx.popc(0b1011) == 3
        assert ctx.popc(0) == 0

    def test_shfl_broadcast(self, ctx):
        assert ctx.shfl_broadcast(17) == 17

    def test_sync_warp_charges(self, ctx):
        before = ctx.issued
        ctx.sync_warp()
        assert ctx.issued == before + 1


class TestPreemption:
    def test_no_rng_never_preempts(self, ctx):
        assert not ctx.should_preempt()

    def test_probability_one_always_preempts(self):
        spec = DeviceSpec()
        block = BlockState(0, 1, spec)
        ctx = WarpContext(block, 0, 1, 32, spec, CostModel(),
                          rng=np.random.default_rng(0), preempt_prob=1.0)
        assert ctx.should_preempt()
