"""Cost-model arithmetic tests."""

import pytest

from repro.gpusim.costmodel import BlockTiming, CostModel


def test_block_cycles_takes_roofline_max():
    cm = CostModel(issue_width=4.0, mem_transaction_cycles=2.0,
                   barrier_cycles=10.0)
    timing = BlockTiming(issued=400, mem_transactions=10, max_warp_path=50,
                         barriers=2)
    # compute = 100, memory = 20, path = 50 -> max 100, + 20 barriers
    assert cm.block_cycles(timing) == pytest.approx(120.0)


def test_block_cycles_memory_bound():
    cm = CostModel(issue_width=4.0, mem_transaction_cycles=2.0,
                   barrier_cycles=0.0)
    timing = BlockTiming(issued=4, mem_transactions=100, max_warp_path=0)
    assert cm.block_cycles(timing) == pytest.approx(200.0)


def test_block_cycles_path_bound():
    cm = CostModel(barrier_cycles=0.0)
    timing = BlockTiming(issued=0, mem_transactions=0, max_warp_path=77)
    assert cm.block_cycles(timing) == pytest.approx(77.0)


def test_kernel_cycles_round_robin_sm_assignment():
    cm = CostModel(barrier_cycles=0.0)
    mk = lambda path: BlockTiming(max_warp_path=path)
    # 3 blocks on 2 SMs: SM0 gets blocks 0+2 (10+30), SM1 gets block 1 (20)
    assert cm.kernel_cycles([mk(10), mk(20), mk(30)], num_sms=2) == 40.0


def test_kernel_cycles_one_block_per_sm():
    cm = CostModel(barrier_cycles=0.0)
    mk = lambda path: BlockTiming(max_warp_path=path)
    assert cm.kernel_cycles([mk(10), mk(25)], num_sms=8) == 25.0


def test_kernel_cycles_empty():
    assert CostModel().kernel_cycles([], num_sms=4) == 0.0


def test_cycles_to_ms_uses_clock():
    cm = CostModel(clock_ghz=2.0)
    assert cm.cycles_to_ms(2_000_000) == pytest.approx(1.0)


def test_defaults_reflect_the_papers_ablation_findings():
    """The calibration invariants the Table II shape rests on."""
    cm = CostModel()
    # shared atomics are nearly free even under contention
    assert cm.shared_atomic_base <= 4
    assert cm.shared_atomic_conflict < 1
    # global atomics cost more than shared ones
    assert cm.global_atomic_base > cm.shared_atomic_base
    # a dependent load stalls far longer than an instruction issues
    assert cm.global_load_latency > 2 * cm.issue_width
