"""The bench JSON artefact schema and its validator.

Tier-1 guard for the machine-readable side of the bench harness: the
``repro.bench/v1`` records written next to every ``.txt`` table must
round-trip through :mod:`repro.bench.schema`, and the standalone
``scripts/check_bench_json.py`` wrapper must agree with the library.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.bench.schema import (
    SCHEMA_VERSION,
    build_record,
    validate_file,
    validate_record,
    validate_results_dir,
)
from repro.bench import tables

REPO_ROOT = Path(__file__).resolve().parents[1]
CHECKER = REPO_ROOT / "scripts" / "check_bench_json.py"


def sample_record():
    return build_record(
        "table9_sample",
        "Table IX: a sample",
        ["dataset", "ours", "other"],
        [["web-Google", 12.5, "OOM"], ["trackers", 3, 4]],
        qualitative={"ours_wins": True},
    )


def test_build_record_shape():
    record = sample_record()
    assert record["schema"] == SCHEMA_VERSION
    assert record["columns"] == ["dataset", "ours", "other"]
    assert record["rows"][0] == {
        "dataset": "web-Google", "cells": ["12.5", "OOM"]
    }
    assert record["qualitative"] == {"ours_wins": True}


def test_valid_record_passes():
    assert validate_record(sample_record()) == []


def test_validator_catches_problems():
    record = sample_record()
    record["schema"] = "repro.bench/v0"
    record["rows"][0]["cells"].append("extra")
    del record["rows"][1]["dataset"]
    problems = validate_record(record)
    assert any("schema" in p for p in problems)
    assert any("cells" in p and "columns" in p for p in problems)
    assert any("dataset" in p for p in problems)
    assert validate_record([]) != []


def test_write_json_roundtrip(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(tables, "results_dir", lambda: tmp_path)
    path = tables.write_json(
        "table9_sample", "Table IX: a sample",
        ["dataset", "ours", "other"],
        [["web-Google", 12.5, "OOM"]],
    )
    assert path == tmp_path / "table9_sample.json"
    assert validate_file(path) == []
    assert validate_results_dir(tmp_path) == []


def test_txt_without_json_is_flagged(tmp_path):
    (tmp_path / "table9_sample.txt").write_text("Table IX\n")
    problems = validate_results_dir(tmp_path)
    assert problems and "missing JSON sibling" in problems[0]


def test_file_name_must_match_record_name(tmp_path):
    path = tmp_path / "wrong_name.json"
    path.write_text(json.dumps(sample_record()))
    problems = validate_file(path)
    assert any("does not match" in p for p in problems)


def test_checker_script_ok_and_fail(tmp_path):
    good = tmp_path / "table9_sample.json"
    good.write_text(json.dumps(sample_record()))
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(good)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout

    bad = tmp_path / "broken.json"
    bad.write_text("{not json")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(bad)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "unreadable" in proc.stderr


def test_checked_in_results_validate():
    """Any committed benchmarks/results/*.json must conform."""
    results = REPO_ROOT / "benchmarks" / "results"
    problems = [
        p for path in sorted(results.glob("*.json"))
        for p in validate_file(path)
    ]
    assert problems == []


def sample_trajectory_entry():
    return {
        "date": "2026-08-08",
        "dataset": "web-Google",
        "runreport": {
            "sections": {
                "gpu-ours": {
                    "simulated_ms": 12.5, "peak_memory_bytes": 1024,
                },
                "pkc": {
                    "simulated_ms": 31.0, "peak_memory_bytes": 2048,
                },
            },
            "invariants_checked": 23,
        },
        "ok": True,
        "problems": 0,
    }


def validate_trajectory(record):
    from repro.bench.schema import SIBLING_SCHEMAS

    return SIBLING_SCHEMAS["repro.bench-trajectory/v1"](record)


def test_trajectory_runreport_payload_validates():
    record = {"schema": "repro.bench-trajectory/v1",
              "records": [sample_trajectory_entry()]}
    assert validate_trajectory(record) == []


def test_trajectory_runreport_payload_problems():
    broken_sections = sample_trajectory_entry()
    broken_sections["runreport"]["sections"]["gpu-ours"] = {
        "simulated_ms": "fast", "peak_memory_bytes": 1024,
    }
    missing_count = sample_trajectory_entry()
    del missing_count["runreport"]["invariants_checked"]
    not_an_object = sample_trajectory_entry()
    not_an_object["runreport"] = [1, 2]
    record = {
        "schema": "repro.bench-trajectory/v1",
        "records": [broken_sections, missing_count, not_an_object],
    }
    problems = validate_trajectory(record)
    assert any("records[0].runreport.sections" in p for p in problems)
    assert any("records[1].runreport.invariants_checked" in p
               for p in problems)
    assert any("records[2].runreport must be an object" in p
               for p in problems)


def test_trajectory_runreport_counts_as_a_payload():
    entry = sample_trajectory_entry()
    del entry["runreport"]
    record = {"schema": "repro.bench-trajectory/v1", "records": [entry]}
    problems = validate_trajectory(record)
    assert any("needs a" in p for p in problems)
