"""Kernel profiler: speed-of-light attribution, schema, aggregation.

The load-bearing assertions tie the profiler's numbers back to the
cost model itself: each launch's busy cycles must equal the sum of
``CostModel.block_cycles`` over its per-block timings, the dominated
buckets plus barrier cycles must partition that busy time exactly, and
the launch duration must reproduce the round-robin busiest-SM figure.
"""

from __future__ import annotations

import pytest

from repro.core.decomposer import KCoreDecomposer
from repro.core.host import gpu_peel
from repro.core.variants import EXTENSION_VARIANTS, VARIANTS
from repro.gpusim.device import Device
from repro.graph import generators as gen
from repro.graph.examples import fig1_graph
from repro.profile import (
    PIPELINES,
    KernelProfiler,
    ProfileReport,
    validate_profile,
)

ALL_VARIANTS = tuple(VARIANTS) + tuple(EXTENSION_VARIANTS)


@pytest.fixture(scope="module")
def graph():
    return gen.planted_core(
        150, core_size=25, core_degree=8, background_degree=3.0, seed=7
    )


@pytest.fixture(scope="module")
def profiled(graph):
    """One profiled run with the device kept for cross-checking."""
    device = Device(profile=True)
    result = gpu_peel(graph, variant="ours", device=device)
    return device, result


# -- every variant produces a valid repro.profile/v1 report ------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_produces_valid_report(variant, graph):
    result = gpu_peel(graph, variant=variant, profile=True)
    report = result.profile
    assert isinstance(report, ProfileReport)
    assert validate_profile(report.to_json()) == []
    assert report.variant == variant
    assert report.algorithm == f"gpu-{variant}"
    # one scan + one loop launch per round, all annotated with a round
    assert len(report.launches) == 2 * result.rounds
    assert {p.round_index for p in report.launches} == set(
        range(result.rounds)
    )


# -- arithmetic consistency with the cost model ------------------------------


def test_busy_cycles_sum_block_cycles(profiled):
    device, result = profiled
    cost = device.cost_model
    launches = result.profile.launches
    assert len(device.launch_log) == len(launches)
    for stats, launch in zip(device.launch_log, launches):
        timings = stats.block_timings
        assert timings is not None
        busy = sum(cost.block_cycles(t) for t in timings)
        assert launch.busy_cycles == pytest.approx(busy, rel=1e-12)
        # the dominated buckets + barrier partition busy exactly
        partition = sum(launch.dominated.values()) + launch.barrier_cycles
        assert partition == pytest.approx(busy, rel=1e-12)
        # the per-pipeline sums are the cost model's own terms
        terms = [cost.pipeline_terms(t) for t in timings]
        assert launch.compute_cycles == pytest.approx(
            sum(t[0] for t in terms), rel=1e-12
        )
        assert launch.memory_cycles == pytest.approx(
            sum(t[1] for t in terms), rel=1e-12
        )
        assert launch.latency_cycles == pytest.approx(
            sum(t[2] for t in terms), rel=1e-12
        )


def test_launch_cycles_reproduce_busiest_sm(profiled):
    device, result = profiled
    cost = device.cost_model
    num_sms = device.spec.num_sms
    for stats, launch in zip(device.launch_log, result.profile.launches):
        sm_load = [0.0] * num_sms
        for i, timing in enumerate(stats.block_timings):
            sm_load[i % num_sms] += cost.block_cycles(timing)
        assert launch.cycles == stats.cycles == max(sm_load)


def test_bound_is_argmax_of_dominated(profiled):
    _, result = profiled
    for launch in result.profile.launches:
        assert launch.bound in PIPELINES
        assert launch.dominated[launch.bound] == max(
            launch.dominated.values()
        )
        for pipeline in PIPELINES:
            assert launch.sol_pct[pipeline] == pytest.approx(
                100.0 * getattr(launch, f"{pipeline}_cycles")
                / launch.busy_cycles
            )


def test_efficiency_figures_in_range(profiled):
    _, result = profiled
    for launch in result.profile.launches:
        assert 0.0 <= launch.achieved_occupancy <= 1.0
        assert 0.0 <= launch.divergence_efficiency <= 1.0
        assert 0.0 <= launch.coalescing_efficiency <= 1.0
        assert launch.atomic_share >= 0.0


# -- aggregation --------------------------------------------------------------


def test_rounds_partition_the_run(profiled):
    _, result = profiled
    report = result.profile
    rounds = report.rounds()
    assert len(rounds) == result.rounds
    assert sum(agg.cycles for agg in rounds) == pytest.approx(
        report.summary().cycles
    )
    assert all(agg.launches == 2 for agg in rounds)


def test_kernel_aggregation_covers_all_launches(profiled):
    _, result = profiled
    report = result.profile
    kernels = report.kernels()
    assert set(kernels) == {"scan_kernel", "loop_kernel"}
    assert sum(agg.launches for agg in kernels.values()) == len(
        report.launches
    )
    total = report.summary()
    assert total.busy_cycles == pytest.approx(
        sum(agg.busy_cycles for agg in kernels.values())
    )


def test_render_prints_sol_table(profiled):
    _, result = profiled
    text = result.profile.render()
    assert "Speed-of-Light" in text
    assert "scan_kernel" in text and "loop_kernel" in text
    assert "total" in text
    assert "heaviest rounds:" in text


# -- flamegraph ---------------------------------------------------------------


def test_folded_stacks_partition_busy_cycles(profiled):
    _, result = profiled
    report = result.profile
    lines = report.to_folded().strip().splitlines()
    assert lines
    total = 0
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        frames = stack.split(";")
        assert frames[0] == report.algorithm
        assert frames[1] in ("scan_kernel", "loop_kernel")
        assert frames[2].startswith("round k=")
        assert frames[3] in PIPELINES + ("barrier",)
        assert int(weight) > 0
        total += int(weight)
    # integer rounding per stack; the root width is the run's busy time
    assert total == pytest.approx(
        report.summary().busy_cycles, abs=len(lines)
    )


def test_write_folded(profiled, tmp_path):
    _, result = profiled
    path = tmp_path / "profile.folded"
    result.profile.write_folded(path)
    assert path.read_text() == result.profile.to_folded()


# -- wiring and degradation ---------------------------------------------------


def test_record_launch_requires_collected_timings():
    graph, _ = fig1_graph()
    device = Device()  # no profiler: launches drop their timings
    result = gpu_peel(graph, variant="ours", device=device)
    assert result.profile is None
    stats = device.launch_log[0]
    assert stats.block_timings is None
    with pytest.raises(ValueError, match="collect_timings"):
        KernelProfiler().record_launch(
            "scan_kernel", stats, 4, 512, device.spec, device.cost_model
        )


def test_decomposer_simulate_mode_attaches_profile():
    graph, _ = fig1_graph()
    result = KCoreDecomposer(mode="simulate", profile=True).decompose(graph)
    assert isinstance(result.profile, ProfileReport)
    assert validate_profile(result.profile.to_json()) == []


def test_decomposer_fast_mode_has_no_profile():
    graph, _ = fig1_graph()
    result = KCoreDecomposer(mode="fast", profile=True).decompose(graph)
    assert result.profile is None


def test_profile_off_by_default():
    graph, _ = fig1_graph()
    assert gpu_peel(graph).profile is None


# -- validator ----------------------------------------------------------------


@pytest.fixture(scope="module")
def valid_record(profiled):
    return profiled[1].profile.to_json()


def _corrupt(record, mutate):
    import copy

    clone = copy.deepcopy(record)
    mutate(clone)
    return clone


def test_validator_rejects_wrong_schema(valid_record):
    bad = _corrupt(valid_record, lambda r: r.update(schema="nope/v0"))
    assert any("schema" in e for e in validate_profile(bad))


def test_validator_rejects_broken_partition(valid_record):
    def break_dominated(record):
        record["summary"]["dominated"]["latency"] += 1000.0

    assert any(
        "partition" in e
        for e in validate_profile(_corrupt(valid_record, break_dominated))
    )


def test_validator_rejects_wrong_bound(valid_record):
    def flip_bound(record):
        summary = record["summary"]
        losers = [p for p in PIPELINES if p != summary["bound"]]
        summary["bound"] = losers[0]

    assert any(
        "bound" in e
        for e in validate_profile(_corrupt(valid_record, flip_bound))
    )


def test_validator_rejects_impossible_roofline(valid_record):
    def inflate_term(record):
        record["summary"]["terms"]["memory"] = (
            record["summary"]["busy_cycles"] * 10.0
        )

    assert any(
        "exceeds busy" in e
        for e in validate_profile(_corrupt(valid_record, inflate_term))
    )


def test_validator_accepts_the_real_thing(valid_record):
    assert validate_profile(valid_record) == []


# -- charge-based records (system emulations) --------------------------------


def test_simt_launches_are_flagged_simt(profiled):
    device, result = profiled
    assert {p.source for p in result.profile.launches} == {"simt"}
    assert all("source" in p.to_json() for p in result.profile.launches)


def test_record_charge_appends_coarse_record():
    profiler = KernelProfiler()
    profiler.record_charge("gunrock.advance", 1234.5, launches=3)
    (record,) = profiler.launches
    assert record.source == "charge"
    assert record.kernel == "gunrock.advance"
    assert record.cycles == 1234.5
    assert record.busy_cycles == 0.0
    assert record.bound == PIPELINES[0]
    assert record.grid_dim == 0 and record.block_dim == 0


def test_system_emulations_profile_via_charge_records():
    from repro.api import decompose

    graph, _ = fig1_graph()
    for name in ("gunrock", "gswitch", "medusa-peel", "vetga"):
        result = decompose(graph, name, profile=True)
        report = result.profile
        assert report is not None, name
        assert report.launches, name
        assert {p.source for p in report.launches} == {"charge"}, name
        assert validate_profile(report.to_json()) == [], name


def test_charge_labels_name_the_systems_phases():
    from repro.api import decompose

    graph, _ = fig1_graph()
    report = decompose(graph, "gunrock", profile=True).profile
    labels = {p.kernel for p in report.launches}
    assert any("advance" in label or "filter" in label for label in labels)
