"""CI-gate tests: scripts/check_perf_regression.py passes on the
committed baseline and demonstrably fails on doctored budgets."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS = REPO_ROOT / "benchmarks" / "results"
BASELINE = RESULTS / "profile_baseline.json"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_perf_regression",
        REPO_ROOT / "scripts" / "check_perf_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _doctor(tmp_path, mutate, only=("ours",)):
    """A doctored baseline restricted to ``only`` (keeps tests fast)."""
    record = json.loads(BASELINE.read_text())
    record["variants"] = {
        name: record["variants"][name] for name in only
    }
    record.pop("vp_check", None)
    mutate(record)
    path = tmp_path / "profile_baseline.json"
    path.write_text(json.dumps(record))
    return str(path)


def test_gate_passes_on_committed_baseline(gate, tmp_path, capsys):
    trajectory = tmp_path / "trajectory.json"
    assert gate.main([str(BASELINE), "--trajectory", str(trajectory)]) == 0
    assert "OK" in capsys.readouterr().out
    record = json.loads(trajectory.read_text())
    assert record["schema"] == gate.TRAJECTORY_SCHEMA
    assert len(record["records"]) == 1
    entry = record["records"][0]
    assert entry["ok"] is True
    assert set(entry["cycles"]) == set(
        json.loads(BASELINE.read_text())["variants"]
    )


def test_gate_fails_on_2x_slowdown(gate, tmp_path, capsys):
    # halving the committed budget makes the fresh run look 2x slower
    def halve_budget(record):
        record["variants"]["ours"]["cycles"] /= 2.0

    baseline = _doctor(tmp_path, halve_budget)
    assert gate.main([baseline, "--quick", "--no-trajectory"]) == 1
    assert "performance regression" in capsys.readouterr().err


def test_gate_fails_on_stale_baseline(gate, tmp_path, capsys):
    def double_budget(record):
        record["variants"]["ours"]["cycles"] *= 2.0

    baseline = _doctor(tmp_path, double_budget)
    assert gate.main([baseline, "--quick", "--no-trajectory"]) == 1
    assert "stale baseline" in capsys.readouterr().err


def test_gate_fails_on_flipped_bound_class(gate, tmp_path, capsys):
    def flip_bound(record):
        bounds = record["variants"]["ours"]["bounds"]
        assert bounds["loop_kernel"] != "memory"
        bounds["loop_kernel"] = "memory"

    baseline = _doctor(tmp_path, flip_bound)
    assert gate.main([baseline, "--quick", "--no-trajectory"]) == 1
    assert "roofline balance moved" in capsys.readouterr().err


def test_gate_writes_ci_artifacts(gate, tmp_path, capsys):
    report = tmp_path / "artifacts" / "sol_report.txt"
    flame = tmp_path / "artifacts" / "profile.folded"
    baseline = _doctor(tmp_path, lambda record: None)
    assert gate.main([
        baseline, "--quick", "--no-trajectory",
        "--report", str(report), "--flamegraph", str(flame),
    ]) == 0
    assert "Speed-of-Light" in report.read_text()
    folded = flame.read_text().strip().splitlines()
    assert folded and all(
        line.rsplit(" ", 1)[1].isdigit() for line in folded
    )


def test_gate_appends_to_existing_trajectory(gate, tmp_path):
    trajectory = tmp_path / "trajectory.json"
    baseline = _doctor(tmp_path, lambda record: None)
    assert gate.main([baseline, "--quick",
                      "--trajectory", str(trajectory)]) == 0
    assert gate.main([baseline, "--quick",
                      "--trajectory", str(trajectory)]) == 0
    record = json.loads(trajectory.read_text())
    assert len(record["records"]) == 2


def test_gate_exits_2_for_missing_baseline(gate, capsys):
    with pytest.raises(SystemExit) as exc:
        gate.main(["/nonexistent/profile_baseline.json"])
    assert exc.value.code == 2
    assert "no such file" in capsys.readouterr().err
