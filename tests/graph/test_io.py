"""Edge-list IO tests: formats, round-trips, and error handling."""

import gzip

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.io import iter_edgelist_lines, read_edgelist, write_edgelist


def test_read_simple_edgelist(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n2 0\n")
    g = read_edgelist(path)
    assert g.num_vertices == 3
    assert g.num_edges == 3


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# SNAP header\n% KONECT header\n// misc\n\n0 1\n")
    g = read_edgelist(path)
    assert g.num_edges == 1


def test_extra_columns_ignored(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1 3.5 1992\n1 2 0.1 1993\n")
    g = read_edgelist(path)
    assert g.num_edges == 2


def test_tabs_and_spaces(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\t1\n1  2\n")
    assert read_edgelist(path).num_edges == 2


def test_gzip_input(tmp_path):
    path = tmp_path / "g.txt.gz"
    with gzip.open(path, "wt") as f:
        f.write("0 1\n1 2\n")
    assert read_edgelist(path).num_edges == 2


def test_directed_input_made_undirected(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 0\n")  # both directions of one edge
    g = read_edgelist(path)
    assert g.num_edges == 1


def test_sparse_ids_recoded(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("1000000 2000000\n")
    g = read_edgelist(path)
    assert g.num_vertices == 2


def test_recode_false_keeps_ids(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 5\n")
    g = read_edgelist(path, recode=False)
    assert g.num_vertices == 6


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\nnot numbers\n")
    with pytest.raises(GraphFormatError):
        read_edgelist(path)


def test_single_column_raises(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("42\n")
    with pytest.raises(GraphFormatError):
        list(iter_edgelist_lines(path))


def test_roundtrip(tmp_path):
    g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
    path = tmp_path / "out.txt"
    write_edgelist(g, path, header="test graph")
    g2 = read_edgelist(path, recode=False)
    assert g == g2


def test_roundtrip_gzip(tmp_path):
    g = CSRGraph.from_edges([(0, 1), (1, 2)])
    path = tmp_path / "out.txt.gz"
    write_edgelist(g, path)
    assert read_edgelist(path, recode=False) == g


def test_written_header_readable(tmp_path):
    g = CSRGraph.from_edges([(0, 1)])
    path = tmp_path / "out.txt"
    write_edgelist(g, path, header="line one\nline two")
    text = path.read_text()
    assert text.startswith("# line one\n# line two\n")
    assert "# vertices: 2" in text


def test_empty_file(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# nothing\n")
    g = read_edgelist(path)
    assert g.num_vertices == 0


def test_core_numbers_preserved_by_roundtrip(tmp_path):
    from repro.cpu.bz import bz_core_numbers
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(60, 5.0, seed=9)
    path = tmp_path / "g.txt"
    write_edgelist(g, path)
    g2 = read_edgelist(path, recode=False)
    assert np.array_equal(bz_core_numbers(g), bz_core_numbers(g2))
