"""Generator tests: determinism, structure, and ground-truth cores."""

import numpy as np
import pytest

from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen


class TestDeterminism:
    @pytest.mark.parametrize(
        "make",
        [
            lambda s: gen.erdos_renyi(200, 5.0, seed=s),
            lambda s: gen.barabasi_albert(150, 3, seed=s),
            lambda s: gen.rmat(8, 6.0, seed=s),
            lambda s: gen.power_law_configuration(200, 2.4, seed=s),
            lambda s: gen.planted_core(200, 30, 10, seed=s),
            lambda s: gen.hub_and_spokes(200, seed=s),
            lambda s: gen.random_tree(100, seed=s),
        ],
        ids=["er", "ba", "rmat", "powerlaw", "planted", "hubs", "tree"],
    )
    def test_same_seed_same_graph(self, make):
        assert make(42) == make(42)

    def test_different_seed_different_graph(self):
        assert gen.erdos_renyi(200, 5.0, seed=1) != gen.erdos_renyi(
            200, 5.0, seed=2
        )


class TestErdosRenyi:
    def test_size(self):
        g = gen.erdos_renyi(500, 8.0, seed=0)
        assert g.num_vertices == 500
        # dedup loses a little; expect within 15% of the target
        assert 0.85 * 2000 <= g.num_edges <= 2000

    def test_zero_degree(self):
        g = gen.erdos_renyi(10, 0.0, seed=0)
        assert g.num_edges == 0


class TestBarabasiAlbert:
    def test_min_degree_at_least_one(self):
        g = gen.barabasi_albert(200, 3, seed=0)
        assert g.degrees.min() >= 1

    def test_heavy_tail(self):
        g = gen.barabasi_albert(500, 3, seed=0)
        assert g.max_degree > 5 * g.average_degree

    def test_core_bounded_by_attach(self):
        g = gen.barabasi_albert(300, 4, seed=0)
        assert bz_core_numbers(g).max() <= 5

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(3, 3)


class TestRmat:
    def test_size_power_of_two(self):
        g = gen.rmat(7, 4.0, seed=0)
        assert g.num_vertices == 128

    def test_skewed_degrees(self):
        g = gen.rmat(10, 8.0, seed=0)
        assert g.degree_std > g.average_degree

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            gen.rmat(5, 4.0, probabilities=(0.5, 0.5, 0.5, 0.5))


class TestPowerLawConfiguration:
    def test_degrees_within_bounds(self):
        g = gen.power_law_configuration(300, 2.5, d_min=2, d_max=30, seed=0)
        # stub pairing + dedup can only *lower* degrees
        assert g.max_degree <= 30

    def test_skew_increases_with_smaller_exponent(self):
        heavy = gen.power_law_configuration(800, 2.0, d_min=1, seed=0)
        light = gen.power_law_configuration(800, 3.5, d_min=1, seed=0)
        assert heavy.degree_std > light.degree_std


class TestPlantedCore:
    def test_core_depth_controlled(self):
        g = gen.planted_core(400, core_size=50, core_degree=15,
                             background_degree=2.0, seed=0)
        kmax = int(bz_core_numbers(g).max())
        # the nucleus should dominate k_max, near core_degree
        assert kmax >= 8

    def test_nucleus_vertices_in_deep_core(self):
        g = gen.planted_core(300, core_size=40, core_degree=12,
                             background_degree=1.0, seed=1)
        core = bz_core_numbers(g)
        kmax = core.max()
        deep = np.flatnonzero(core == kmax)
        assert (deep < 40).mean() > 0.9  # nucleus IDs are 0..39

    def test_core_size_validation(self):
        with pytest.raises(ValueError):
            gen.planted_core(10, core_size=20, core_degree=3)


class TestHubAndSpokes:
    def test_extreme_skew(self):
        g = gen.hub_and_spokes(1000, num_hubs=3, seed=0)
        assert g.degree_std > 4 * g.average_degree

    def test_hub_ids_have_top_degrees(self):
        g = gen.hub_and_spokes(500, num_hubs=2, seed=0)
        top2 = np.argsort(g.degrees)[-2:]
        assert set(top2.tolist()) == {0, 1}


class TestStructuredGraphs:
    def test_ring_of_cliques_cores(self):
        g = gen.ring_of_cliques(3, 4)
        core = bz_core_numbers(g)
        assert (core == 3).all()

    def test_grid_cores_are_two(self):
        g = gen.grid_2d(5, 8)
        assert (bz_core_numbers(g) == 2).all()

    def test_tree_cores_are_one(self):
        g = gen.random_tree(50, seed=3)
        assert (bz_core_numbers(g) == 1).all()
        assert g.num_edges == 49

    def test_single_vertex_tree(self):
        g = gen.random_tree(1)
        assert g.num_vertices == 1
        assert g.num_edges == 0


class TestUnionGraphs:
    def test_union_merges_edges(self):
        a = gen.grid_2d(2, 2)
        b = gen.ring_of_cliques(1, 4)  # K4 over the same 4 vertices
        u = gen.union_graphs(a, b)
        assert u.num_edges == 6  # K4 subsumes the grid edges

    def test_union_takes_max_vertex_count(self):
        from repro.graph.csr import CSRGraph

        a = CSRGraph.empty(10)
        b = CSRGraph.from_edges([(0, 1)])
        assert gen.union_graphs(a, b).num_vertices == 10
