"""The Fig. 1 didactic graph must match the paper's narrative."""

import numpy as np

from repro.cpu.bz import bz_core_numbers
from repro.graph.examples import FIG1_NAMES, fig1_graph, k_clique, path_graph, triangle


def test_fig1_expected_cores_are_correct():
    graph, expected = fig1_graph()
    core = bz_core_numbers(graph)
    for v, c in expected.items():
        assert core[v] == c, f"{FIG1_NAMES[v]}: got {core[v]}, want {c}"


def test_fig1_vertex_a_has_degree_3_but_core_2():
    """The paper's running example: A has degree 3, yet core(A) = 2
    because neighbor B cannot survive into the 3-core."""
    graph, expected = fig1_graph()
    a = FIG1_NAMES.index("A")
    assert graph.degree(a) == 3  # neighbors R1, R2, B
    assert expected[a] == 2


def test_fig1_all_three_shells_nonempty():
    graph, expected = fig1_graph()
    shells = set(expected.values())
    assert shells == {1, 2, 3}


def test_fig1_three_core_is_k4():
    graph, expected = fig1_graph()
    red = [v for v, c in expected.items() if c == 3]
    assert len(red) == 4
    for i in red:
        for j in red:
            if i != j:
                assert graph.has_edge(i, j)


def test_triangle_cores():
    assert (bz_core_numbers(triangle()) == 2).all()


def test_clique_cores():
    assert (bz_core_numbers(k_clique(7)) == 6).all()


def test_path_cores():
    core = bz_core_numbers(path_graph(10))
    assert (core == 1).all()


def test_path_trivial_sizes():
    assert path_graph(0).num_vertices == 0
    assert path_graph(1).num_vertices == 1
