"""ID recoding tests."""

import numpy as np

from repro.graph.recode import IdRecoder, recode_edge_array, recode_ids


class TestIdRecoder:
    def test_first_seen_order(self):
        r = IdRecoder()
        assert r.encode("x") == 0
        assert r.encode("y") == 1
        assert r.encode("x") == 0
        assert len(r) == 2

    def test_decode(self):
        r = IdRecoder()
        r.encode("a")
        r.encode("b")
        assert r.decode(1) == "b"
        assert r.decode_many([1, 0]) == ["b", "a"]

    def test_labels_property(self):
        r = IdRecoder()
        r.encode(10)
        r.encode(20)
        assert r.labels == (10, 20)

    def test_arbitrary_hashable_labels(self):
        r = IdRecoder()
        assert r.encode(("paper", 3)) == 0
        assert r.decode(0) == ("paper", 3)


class TestRecodeIds:
    def test_labelled_edges(self):
        edges, recoder = recode_ids([("alice", "bob"), ("bob", "carol")])
        assert edges.tolist() == [[0, 1], [1, 2]]
        assert recoder.decode(2) == "carol"

    def test_empty(self):
        edges, recoder = recode_ids([])
        assert edges.shape == (0, 2)
        assert len(recoder) == 0


class TestRecodeEdgeArray:
    def test_gaps_densified(self):
        dense, original = recode_edge_array(np.array([[10, 30], [30, 50]]))
        assert dense.tolist() == [[0, 1], [1, 2]]
        assert original.tolist() == [10, 30, 50]

    def test_relative_order_preserved(self):
        dense, original = recode_edge_array(np.array([[50, 10]]))
        # 10 < 50, so 10 -> 0 regardless of appearance order
        assert dense.tolist() == [[1, 0]]
        assert original.tolist() == [10, 50]

    def test_empty(self):
        dense, original = recode_edge_array(np.empty((0, 2), dtype=np.int64))
        assert dense.shape == (0, 2)
        assert original.size == 0

    def test_roundtrip_via_original_ids(self):
        edges = np.array([[7, 3], [3, 99], [99, 7]])
        dense, original = recode_edge_array(edges)
        assert np.array_equal(original[dense], edges)
