"""Dataset-registry tests: completeness, fidelity, and caching."""

import numpy as np
import pytest

from repro.cpu.bz import bz_core_numbers
from repro.errors import UnknownDatasetError
from repro.graph import datasets


def test_registry_has_the_papers_20_datasets():
    assert len(datasets.DATASETS) == 20


def test_registry_order_matches_paper_table1():
    names = datasets.dataset_names()
    assert names[0] == "amazon0601"
    assert names[-1] == "it-2004"
    assert "trackers" in names


def test_paper_stats_recorded():
    spec = datasets.get_spec("it-2004")
    assert spec.paper.num_edges == 1_150_725_436
    assert spec.paper.kmax == 3_224
    assert spec.category == "Web Graph"


def test_unknown_name_raises():
    with pytest.raises(UnknownDatasetError):
        datasets.get_spec("no-such-graph")


def test_load_is_cached():
    a = datasets.load("amazon0601")
    b = datasets.load("amazon0601")
    assert a is b


def test_build_is_deterministic():
    spec = datasets.get_spec("web-Google")
    assert spec.build() == spec.build()


def test_small_dataset_names_prefix():
    small = datasets.small_dataset_names(3)
    assert small == datasets.dataset_names()[:3]


def test_edge_counts_ascending_like_the_paper():
    """The paper lists datasets in ascending |E|; the analogues must
    keep that ordering (it drives which programs OOM first)."""
    sizes = [datasets.load(n).num_edges for n in datasets.dataset_names()]
    violations = sum(
        1 for a, b in zip(sizes, sizes[1:]) if a > b
    )
    # allow a couple of local swaps, but the trend must hold
    assert violations <= 3, f"edge counts not ascending: {sizes}"


def test_trackers_has_the_most_extreme_skew():
    ratios = {
        name: datasets.load(name).degree_std
        / max(1.0, datasets.load(name).average_degree)
        for name in datasets.dataset_names()
    }
    assert max(ratios, key=ratios.get) == "trackers"


def test_hollywood_is_densest():
    densities = {
        name: datasets.load(name).average_degree
        for name in datasets.dataset_names()
    }
    assert max(densities, key=densities.get) == "hollywood-2009"


def test_webbase_has_most_vertices():
    sizes = {
        name: datasets.load(name).num_vertices
        for name in datasets.dataset_names()
    }
    assert max(sizes, key=sizes.get) == "webbase-2001"


def test_indochina_has_highest_kmax():
    kmaxes = {
        name: int(bz_core_numbers(datasets.load(name)).max())
        for name in datasets.dataset_names()
    }
    assert max(kmaxes, key=kmaxes.get) == "indochina-2004"


def test_dblp_has_lowest_kmax_among_nontrivial():
    """dblp-author is the paper's lowest-k_max dataset (14)."""
    kmax = int(bz_core_numbers(datasets.load("dblp-author")).max())
    assert kmax <= 10


def test_load_real_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        datasets.load_real("amazon0601", tmp_path)


def test_load_real_reads_user_file(tmp_path):
    (tmp_path / "amazon0601.txt").write_text("0 1\n1 2\n")
    g = datasets.load_real("amazon0601", tmp_path)
    assert g.num_edges == 2


def test_all_datasets_nonempty_and_connected_enough():
    for name in datasets.dataset_names():
        g = datasets.load(name)
        assert g.num_vertices > 0
        assert g.num_edges > 0
        # no more than half the vertices isolated
        assert (g.degrees == 0).mean() < 0.5, name
