"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph, build_csr_arrays


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert list(g.neighbors_of(1)) == [0, 2]

    def test_edges_stored_both_directions(self):
        g = CSRGraph.from_edges([(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.neighbors.size == 2

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_merged(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1), (0, 1)])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_adjacency_lists_sorted(self):
        g = CSRGraph.from_edges([(2, 9), (2, 3), (2, 7), (2, 1)])
        assert list(g.neighbors_of(2)) == [1, 3, 7, 9]

    def test_num_vertices_includes_trailing_isolated(self):
        g = CSRGraph.from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphValidationError):
            CSRGraph.from_edges([(0, 9)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphValidationError):
            CSRGraph.from_edges([(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphValidationError):
            CSRGraph.from_edges(np.array([[1, 2, 3]]))

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_empty_edge_list_with_vertices(self):
        g = CSRGraph.from_edges([], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_from_adjacency(self):
        g = CSRGraph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.degree(0) == 2

    def test_from_numpy_array(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        g = CSRGraph.from_edges(edges)
        assert g.num_edges == 3


class TestValidation:
    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_offsets_must_end_at_neighbor_count(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([1, 2, 0]))

    def test_neighbor_ids_in_range(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_arrays_read_only(self):
        g = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            g.neighbors[0] = 9


class TestAccessors:
    def test_degrees(self, fig1_graph_only):
        g = fig1_graph_only
        assert np.array_equal(g.degrees, np.diff(g.offsets))
        assert g.degree(4) == 3  # vertex A: R1, R2, B

    def test_max_and_average_degree(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3
        assert g.average_degree == pytest.approx(1.5)

    def test_degree_std_regular_graph_zero(self):
        from repro.graph.examples import k_clique

        assert k_clique(5).degree_std == pytest.approx(0.0)

    def test_edges_iterates_each_once(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        edges = sorted(g.edges())
        assert edges == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_matches_edges(self):
        g = CSRGraph.from_edges([(3, 1), (0, 2), (1, 2)])
        array_edges = sorted(map(tuple, g.edge_array().tolist()))
        assert array_edges == sorted(g.edges())

    def test_has_edge_negative(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert not g.has_edge(0, 2)

    def test_memory_bytes_scales_with_id_width(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert g.memory_bytes(8) == 2 * g.memory_bytes(4)


class TestInducedSubgraph:
    def test_triangle_from_square_with_diagonal(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        sub = g.induced_subgraph(np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # the triangle 0-1-2

    def test_relabelling_is_sorted_order(self):
        g = CSRGraph.from_edges([(5, 7), (7, 9)])
        sub = g.induced_subgraph(np.array([9, 5, 7]))
        # vertices sorted: 5 -> 0, 7 -> 1, 9 -> 2
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 2)

    def test_duplicate_selection_deduplicated(self):
        g = CSRGraph.from_edges([(0, 1)])
        sub = g.induced_subgraph(np.array([0, 0, 1, 1]))
        assert sub.num_vertices == 2

    def test_empty_selection(self):
        g = CSRGraph.from_edges([(0, 1)])
        sub = g.induced_subgraph(np.array([], dtype=np.int64))
        assert sub.num_vertices == 0


class TestEqualityAndRepr:
    def test_equal_graphs(self):
        a = CSRGraph.from_edges([(0, 1), (1, 2)])
        b = CSRGraph.from_edges([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = CSRGraph.from_edges([(0, 1)])
        b = CSRGraph.from_edges([(0, 2)])
        assert a != b

    def test_repr_mentions_sizes(self):
        g = CSRGraph.from_edges([(0, 1)])
        assert "|V|=2" in repr(g)


class TestBuildCsrArrays:
    def test_offsets_and_sorted_targets(self):
        offsets, neighbors = build_csr_arrays(
            3, np.array([0, 0, 1, 2]), np.array([2, 1, 0, 0])
        )
        assert offsets.tolist() == [0, 2, 3, 4]
        assert neighbors.tolist() == [1, 2, 0, 0]

    def test_vertex_without_edges(self):
        offsets, neighbors = build_csr_arrays(
            3, np.array([0, 2]), np.array([2, 0])
        )
        assert offsets.tolist() == [0, 1, 1, 2]
