"""VETGA emulation tests."""

import pytest

from repro.errors import SimulatedTimeLimitExceeded
from repro.systems.vetga import vetga_decompose, vetga_load_ms
from tests.conftest import assert_cores_equal


def test_battery(battery_graph):
    graph, reference = battery_graph
    result = vetga_decompose(graph)
    assert_cores_equal(result.core, reference, "vetga")


def test_full_length_vector_cost(er_graph):
    """Every iteration pays n + m regardless of the active set."""
    graph, _ = er_graph
    result = vetga_decompose(graph)
    from repro.systems.base import DEFAULT_TUNING

    per_iter = (
        (graph.num_vertices + graph.neighbors.size)
        * DEFAULT_TUNING.vetga_vector_op_cycles
        * DEFAULT_TUNING.vetga_passes_per_iteration
    )
    assert result.simulated_ms >= result.stats["iterations"] * per_iter / 1e6


def test_load_time_grows_with_edges():
    from repro.graph import datasets

    small = vetga_load_ms(datasets.load("amazon0601"))
    big = vetga_load_ms(datasets.load("uk-2002"))
    assert big > 5 * small


def test_load_exceeds_budget_on_the_last_four():
    """Table III's "LD > 1hr" rows: the four biggest graphs never
    finish loading within the (scaled) hour."""
    from repro.graph import datasets

    for name in ("arabic-2005", "uk-2005", "webbase-2001", "it-2004"):
        with pytest.raises(SimulatedTimeLimitExceeded):
            vetga_decompose(datasets.load(name), time_budget_ms=400.0)


def test_loadable_graphs_run_within_budget():
    from repro.graph import datasets

    result = vetga_decompose(datasets.load("uk-2002"), time_budget_ms=400.0)
    assert result.kmax > 0


def test_include_load_false_skips_the_check():
    from repro.graph import datasets

    result = vetga_decompose(
        datasets.load("arabic-2005"), time_budget_ms=400.0, include_load=False
    )
    assert result.kmax > 0


def test_slower_than_tailored_kernel(er_graph):
    from repro.core.host import gpu_peel

    graph, _ = er_graph
    assert vetga_decompose(graph).simulated_ms > gpu_peel(graph).simulated_ms
