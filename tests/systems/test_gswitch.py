"""GSWITCH emulation tests."""

import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.systems.gswitch import gswitch_decompose
from repro.systems.gunrock import gunrock_decompose
from tests.conftest import assert_cores_equal


def test_battery(battery_graph):
    graph, reference = battery_graph
    result = gswitch_decompose(graph)
    assert_cores_equal(result.core, reference, "gswitch")


def test_faster_than_gunrock(er_graph):
    """Autotuning + compacted active sets: GSWITCH's Table III edge."""
    graph, _ = er_graph
    assert (
        gswitch_decompose(graph).simulated_ms
        < gunrock_decompose(graph).simulated_ms
    )


def test_hardcoded_round_count(fig1):
    """The paper: GSWITCH cannot express the outer loop, so it runs a
    hardcoded k_max + 1 rounds."""
    graph, _ = fig1
    result = gswitch_decompose(graph)
    assert result.rounds == result.kmax + 1


def test_autotuner_chooses_push_sometimes(er_graph):
    graph, _ = er_graph
    result = gswitch_decompose(graph)
    assert 0 < result.stats["push_iterations"] <= result.stats["iterations"]


def test_survives_graphs_that_kill_gunrock():
    from repro.graph import datasets

    g = datasets.load("arabic-2005")
    with pytest.raises(DeviceOutOfMemoryError):
        gunrock_decompose(g)
    result = gswitch_decompose(g)  # GSWITCH still fits
    assert result.kmax > 0


def test_ooms_on_the_largest():
    from repro.graph import datasets

    with pytest.raises(DeviceOutOfMemoryError):
        gswitch_decompose(datasets.load("webbase-2001"))
