"""Medusa emulation tests (both programs)."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError, SimulatedTimeLimitExceeded
from repro.systems.medusa import medusa_decompose
from tests.conftest import assert_cores_equal


@pytest.mark.parametrize("program", ["peel", "mpm"])
def test_battery(battery_graph, program):
    graph, reference = battery_graph
    result = medusa_decompose(graph, program=program)
    assert_cores_equal(result.core, reference, f"medusa-{program}")


def test_algorithm_names(fig1):
    graph, _ = fig1
    assert medusa_decompose(graph).algorithm == "medusa-peel"
    assert medusa_decompose(graph, program="mpm").algorithm == "medusa-mpm"


def test_peel_supersteps_exceed_rounds(fig1):
    """The BSP peel needs at least one superstep per round plus one per
    cascade wave."""
    graph, _ = fig1
    result = medusa_decompose(graph)
    assert result.stats["supersteps"] >= result.rounds


def test_mpm_costs_more_per_superstep_than_peel(er_graph):
    """The h-index combiner sorts each inbox; the sum combiner doesn't.
    Same engine, very different per-edge constant (Table III)."""
    graph, _ = er_graph
    mpm = medusa_decompose(graph, program="mpm")
    peel = medusa_decompose(graph, program="peel")
    per_step_mpm = mpm.simulated_ms / mpm.stats["supersteps"]
    per_step_peel = peel.simulated_ms / peel.stats["supersteps"]
    assert per_step_mpm > 10 * per_step_peel


def test_per_edge_state_blows_memory_on_big_graphs():
    from repro.graph import datasets

    with pytest.raises(DeviceOutOfMemoryError):
        medusa_decompose(datasets.load("it-2004"))


def test_time_budget_force_termination(er_graph):
    graph, _ = er_graph
    with pytest.raises(SimulatedTimeLimitExceeded):
        medusa_decompose(graph, program="mpm", time_budget_ms=0.001)


def test_memory_exceeds_tailored_kernel(er_graph):
    """Table V: Medusa's per-edge buffers dwarf the peeling kernel's
    fixed block buffers."""
    from repro.core.host import gpu_peel

    graph, _ = er_graph
    medusa = medusa_decompose(graph)
    ours = gpu_peel(graph)
    assert medusa.peak_memory_bytes > 0
    # on a graph this small "ours" pays its fixed buffers; parity is
    # enough — the blow-up asserts are on the big datasets below
    assert medusa.simulated_ms > ours.simulated_ms


def test_medusa_sweeps_all_edges_every_superstep(er_graph):
    """Medusa's cost is edges x supersteps regardless of activity."""
    graph, _ = er_graph
    result = medusa_decompose(graph)
    from repro.systems.base import DEFAULT_TUNING

    minimum = (
        result.stats["supersteps"]
        * graph.neighbors.size
        * DEFAULT_TUNING.medusa_edge_sum_cycles
    )
    assert result.simulated_ms >= minimum / 1e6  # cycles at 1 GHz
