"""Gunrock emulation tests."""

import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.systems.gunrock import gunrock_decompose
from repro.systems.medusa import medusa_decompose
from tests.conftest import assert_cores_equal


def test_battery(battery_graph):
    graph, reference = battery_graph
    result = gunrock_decompose(graph)
    assert_cores_equal(result.core, reference, "gunrock")


def test_faster_than_medusa_peel(er_graph):
    """Frontier-centric work beats all-edges-every-superstep work."""
    graph, _ = er_graph
    gunrock = gunrock_decompose(graph)
    medusa = medusa_decompose(graph)
    assert gunrock.simulated_ms < medusa.simulated_ms


def test_iterations_counted(fig1):
    result = gunrock_decompose(fig1[0])
    assert result.stats["iterations"] >= result.rounds


def test_edge_sized_frontiers_oom_on_big_graphs():
    from repro.graph import datasets

    with pytest.raises(DeviceOutOfMemoryError):
        gunrock_decompose(datasets.load("arabic-2005"))


def test_survives_mid_sized_graphs():
    from repro.graph import datasets

    result = gunrock_decompose(datasets.load("uk-2002"))
    assert result.kmax > 0
