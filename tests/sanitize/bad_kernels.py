"""Known-bad fixture kernels: each one makes exactly one detector fire.

These kernels are deliberately wrong — they exist so the sanitizer
tests can prove every detector catches the hazard it documents (and
pins the ``file:line`` provenance to this file).  Never import them
into production code.

The first group races at runtime and is exercised through
``Device(sanitize=True).launch``; the second group violates the static
lint rules and is only ever parsed, not executed.
"""

from __future__ import annotations

import datetime
import random
import time

import numpy as np

# -- dynamic racecheck fixtures ---------------------------------------------


def shared_write_write_race(ctx):
    """Every warp plain-writes the same shared slot in the same epoch."""
    arr = ctx.smem_array("slots", 4)
    ctx.sstore(arr, 0, ctx.warp_id)
    yield ctx.STEP
    ctx.sload(arr, 0)
    yield ctx.STEP


def global_write_race(ctx, out):
    """Every block plain-writes the same global word, unsynchronised."""
    ctx.gstore(out, 0, ctx.global_warp_id)
    yield ctx.STEP
    ctx.gload(out, 0)
    yield ctx.STEP


def global_race_fixed(ctx, out):
    """The same update done right: atomics only — must stay clean."""
    ctx.atomic_global(out, 0, 1)
    yield ctx.STEP
    ctx.atomic_global(out, 0, -1)
    yield ctx.STEP


def barrier_divergence(ctx):
    """Only warp 0 reaches the __syncthreads: divergent generations."""
    if ctx.warp_id == 0:
        yield ctx.BARRIER
    yield ctx.STEP


def ballot_after_unsynced_write(ctx):
    """Warp 0 writes shared data other warps ballot on, no barrier."""
    arr = ctx.smem_array("flags", 1)
    if ctx.warp_id == 0:
        ctx.sstore(arr, 0, 1)
    yield ctx.STEP
    if ctx.warp_id != 0:
        vals = ctx.sload(arr, np.zeros(ctx.warp_size, dtype=np.int64))
        ctx.ballot(np.asarray(vals) > 0)
    yield ctx.STEP


def ballot_fixed(ctx):
    """Same shape with a barrier between write and ballot — clean."""
    arr = ctx.smem_array("flags", 1)
    if ctx.warp_id == 0:
        ctx.sstore(arr, 0, 1)
    yield ctx.BARRIER
    vals = ctx.sload(arr, np.zeros(ctx.warp_size, dtype=np.int64))
    ctx.ballot(np.asarray(vals) > 0)
    yield ctx.STEP


# -- static lint fixtures (parsed, never executed) --------------------------


def illegal_yield_kernel(ctx):
    ctx.charge(1)
    yield "sync"


def wall_clock_kernel(ctx):
    started = time.time()
    _ = datetime.datetime.now()
    ctx.charge(1)
    yield ctx.STEP
    ctx.charge(time.time() - started)


def rng_kernel(ctx):
    if random.random() < 0.5:
        ctx.charge(1)
    noise = np.random.default_rng(0).integers(0, 2)
    ctx.charge(int(noise))
    yield ctx.STEP


def host_mutation_kernel(ctx, deg, out):
    deg[0] = 99
    out.data[1] = 7
    deg += 1
    yield ctx.STEP


def unsynced_shared_kernel(ctx):
    if ctx.warp_id == 0:
        ctx.smem_set("head", 5)
    head = ctx.smem_get("head", 0)
    ctx.charge(head)
    yield ctx.STEP


def clean_kernel(ctx, out):
    """Every rule followed: must produce zero findings."""
    if ctx.warp_id == 0:
        ctx.smem_set("head", 0)
    yield ctx.BARRIER
    base = ctx.smem_atomic_add("head", ctx.warp_size, lanes=ctx.warp_size)
    ctx.atomic_global(out, 0, 1)
    ctx.charge(base)
    yield ctx.STEP
