"""Static lint: every rule fires on its fixture, shipped kernels pass."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.sanitize import lint_file, lint_repo, lint_source
from repro.sanitize.lint import default_kernel_paths, lint_paths

FIXTURES = Path(__file__).parent / "bad_kernels.py"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def findings_by_function():
    grouped = {}
    for finding in lint_file(FIXTURES):
        grouped.setdefault(finding.kernel.split(":")[-1], []).append(finding)
    return grouped


class TestRulesFire:
    def test_illegal_yield(self, findings_by_function):
        found = findings_by_function["illegal_yield_kernel"]
        assert any(f.detector == "illegal-yield" for f in found)
        finding = next(f for f in found if f.detector == "illegal-yield")
        assert "'sync'" in finding.message
        assert finding.sites[0].startswith("bad_kernels.py:")

    def test_wall_clock(self, findings_by_function):
        found = findings_by_function["wall_clock_kernel"]
        hits = [f for f in found if f.detector == "wall-clock"]
        # time.time() twice + datetime.datetime.now() once
        assert len(hits) == 3
        assert any("time.time" in f.message for f in hits)
        assert any("datetime" in f.message for f in hits)

    def test_rng(self, findings_by_function):
        found = findings_by_function["rng_kernel"]
        hits = [f for f in found if f.detector == "rng"]
        assert any("random.random" in f.message for f in hits)
        assert any("np.random" in f.message for f in hits)

    def test_host_mutation(self, findings_by_function):
        found = findings_by_function["host_mutation_kernel"]
        hits = [f for f in found if f.detector == "host-mutation"]
        # deg[0] = ..., out.data[1] = ..., deg += 1
        mutated = {f.message.split("'")[1] for f in hits}
        assert mutated == {"deg", "out"}
        assert len(hits) == 3

    def test_unsynced_shared(self, findings_by_function):
        found = findings_by_function["unsynced_shared_kernel"]
        hits = [f for f in found if f.detector == "unsynced-shared"]
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert "'head'" in hits[0].message
        # provenance carries both the read and the write line
        assert len(hits[0].sites) == 2

    def test_clean_kernel_has_no_findings(self, findings_by_function):
        assert "clean_kernel" not in findings_by_function

    def test_racecheck_fixtures_not_flagged_for_structure(
        self, findings_by_function
    ):
        """Dynamic fixtures whose bug is invisible statically (global
        races, barrier divergence) pass the lint; the shared-memory ones
        are statically suspicious too and earn the warning."""
        for name in ("global_write_race", "barrier_divergence",
                     "global_race_fixed", "ballot_fixed"):
            assert name not in findings_by_function, name
        for name in ("shared_write_write_race", "ballot_after_unsynced_write"):
            assert [f.detector for f in findings_by_function[name]] == [
                "unsynced-shared"
            ]


class TestLintMechanics:
    def test_non_ctx_functions_ignored(self):
        assert lint_source(
            "import time\n"
            "def host_side(graph):\n"
            "    return time.time()\n"
        ) == []

    def test_barrier_clears_pending_writes(self):
        source = (
            "def kernel(ctx):\n"
            "    if ctx.warp_id == 0:\n"
            "        ctx.smem_set('x', 1)\n"
            "    yield ctx.BARRIER\n"
            "    ctx.smem_get('x')\n"
        )
        assert lint_source(source) == []

    def test_missing_barrier_flagged(self):
        source = (
            "def kernel(ctx):\n"
            "    if ctx.warp_id == 0:\n"
            "        ctx.smem_set('x', 1)\n"
            "    ctx.smem_get('x')\n"
            "    yield ctx.STEP\n"
        )
        findings = lint_source(source)
        assert [f.detector for f in findings] == ["unsynced-shared"]

    def test_loop_wraparound_detected(self):
        source = (
            "def kernel(ctx):\n"
            "    while True:\n"
            "        ctx.smem_get('tail')\n"
            "        if ctx.warp_id == 0:\n"
            "            ctx.smem_set('tail', 0)\n"
            "        yield ctx.STEP\n"
        )
        findings = lint_source(source)
        assert any(f.detector == "unsynced-shared" for f in findings)

    def test_suppression_comment(self):
        source = (
            "def kernel(ctx):\n"
            "    yield 'custom'  # sanitize: ok\n"
        )
        assert lint_source(source) == []

    def test_helper_without_yield_is_checked_too(self):
        source = (
            "import time\n"
            "def warp_helper(ctx, buf):\n"
            "    buf[0] = time.time()\n"
        )
        detectors = {f.detector for f in lint_source(source)}
        assert detectors == {"wall-clock", "host-mutation"}


class TestShippedKernelsPass:
    def test_default_paths_cover_core_and_systems(self):
        paths = default_kernel_paths()
        names = {p.parent.name for p in paths}
        assert names == {"core", "systems"}
        stems = {p.stem for p in paths}
        assert {"scan_kernel", "loop_kernel", "gunrock", "medusa"} <= stems

    def test_lint_repo_clean(self):
        report = lint_repo()
        assert report.clean, report.summary()
        assert report.modules_linted >= 10

    def test_lint_paths_counts_modules(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "def kernel(ctx):\n    yield 'bad'\n", encoding="utf-8"
        )
        (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.modules_linted == 2
        assert [f.detector for f in report.findings] == ["illegal-yield"]

    def test_cli_script_clean_on_repo(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint_kernels.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_cli_script_fails_on_fixtures(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint_kernels.py"),
             str(FIXTURES)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "illegal-yield" in proc.stdout
