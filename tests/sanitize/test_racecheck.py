"""Dynamic racecheck: every detector fires on its bad kernel, and every
shipped kernel runs clean with simulated time unchanged."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.multigpu import multi_gpu_peel
from repro.core.variants import VARIANTS
from repro.cpu.bz import bz_decompose
from repro.errors import SanitizerFindingsError
from repro.gpusim.device import Device
from repro.graph import generators as gen
from repro.sanitize import KernelSanitizer

from tests.sanitize import bad_kernels


def _launch(kernel, args=(), grid_dim=1, block_dim=64, sanitizer=None):
    device = Device(sanitize=True, sanitizer=sanitizer)
    out = device.malloc("out", 4)
    device.launch(kernel, args=args or (), grid_dim=grid_dim,
                  block_dim=block_dim)
    return device, out


def _detectors(device):
    return {f.detector for f in device.sanitizer.report.findings}


@pytest.fixture(scope="module")
def graph():
    return gen.planted_core(
        200, core_size=40, core_degree=12, background_degree=4.0, seed=13
    )


class TestDetectorsFire:
    def test_shared_write_write_race(self):
        device, _ = _launch(bad_kernels.shared_write_write_race)
        report = device.sanitizer.report
        assert "shared-race" in _detectors(device)
        finding = next(
            f for f in report.findings if f.detector == "shared-race"
        )
        assert finding.severity == "error"
        assert finding.kernel == "shared_write_write_race"
        assert any("bad_kernels.py:" in s for s in finding.sites)
        assert "write-write" in finding.message

    def test_global_write_race_across_blocks(self):
        device = Device(sanitize=True)
        out = device.malloc("out", 4)
        device.launch(bad_kernels.global_write_race, args=(out,),
                      grid_dim=2, block_dim=32)
        report = device.sanitizer.report
        assert "global-race" in _detectors(device)
        finding = next(
            f for f in report.findings if f.detector == "global-race"
        )
        assert "out[0]" in finding.message
        assert any("bad_kernels.py:" in s for s in finding.sites)

    def test_barrier_divergence(self):
        device, _ = _launch(bad_kernels.barrier_divergence)
        assert "barrier-divergence" in _detectors(device)
        finding = next(
            f for f in device.sanitizer.report.findings
            if f.detector == "barrier-divergence"
        )
        assert "block 0" in finding.message

    def test_ballot_hazard(self):
        device, _ = _launch(bad_kernels.ballot_after_unsynced_write)
        assert "ballot-hazard" in _detectors(device)

    def test_atomic_version_is_clean(self):
        device = Device(sanitize=True)
        out = device.malloc("out", 4)
        device.launch(bad_kernels.global_race_fixed, args=(out,),
                      grid_dim=2, block_dim=32)
        assert device.sanitizer.report.clean

    def test_barrier_separated_ballot_is_clean(self):
        device, _ = _launch(bad_kernels.ballot_fixed)
        assert device.sanitizer.report.clean

    def test_disable_suppresses_detector(self):
        sanitizer = KernelSanitizer(disable={"shared-race"})
        device, _ = _launch(
            bad_kernels.shared_write_write_race, sanitizer=sanitizer
        )
        assert "shared-race" not in _detectors(device)

    def test_raise_if_findings(self):
        device, _ = _launch(bad_kernels.shared_write_write_race)
        with pytest.raises(SanitizerFindingsError) as info:
            device.sanitizer.report.raise_if_findings()
        assert "shared-race" in str(info.value)
        assert info.value.report is device.sanitizer.report


class TestShippedKernelsClean:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_variant_clean_and_correct(self, graph, variant):
        result = gpu_peel(graph, variant=variant, sanitize=True)
        reference = bz_decompose(graph)
        assert result.sanitizer is not None
        assert result.sanitizer.clean, result.sanitizer.summary()
        assert result.sanitizer.launches_checked == result.stats[
            "kernel_launches"
        ]
        assert np.array_equal(result.core, reference.core)

    def test_clean_under_preempt_fuzzing(self, graph):
        options = GpuPeelOptions(preempt_prob=0.3, seed=7, sanitize=True)
        result = gpu_peel(graph, options=options)
        assert result.sanitizer.clean, result.sanitizer.summary()

    def test_multi_gpu_shares_one_report(self, graph):
        result = multi_gpu_peel(graph, num_devices=2, sanitize=True)
        assert result.sanitizer is not None
        assert result.sanitizer.clean, result.sanitizer.summary()
        assert result.sanitizer.launches_checked > 0


class TestSanitizeOffUnchanged:
    def test_off_by_default(self, graph):
        result = gpu_peel(graph)
        assert result.sanitizer is None

    def test_simulated_time_identical_with_and_without(self, graph):
        plain = gpu_peel(graph)
        checked = gpu_peel(graph, sanitize=True)
        assert checked.simulated_ms == plain.simulated_ms
        assert checked.rounds == plain.rounds
        # monitored launches are served by the reference interpreter,
        # so only the `engine.served.*` attribution may differ
        strip = lambda c: {k: v for k, v in c.items()
                           if not k.startswith("engine.served.")}
        assert strip(checked.counters) == strip(plain.counters)
        assert np.array_equal(checked.core, plain.core)
