"""SanitizerReport / SanitizerFinding data-model tests."""

from __future__ import annotations

import pytest

from repro.errors import SanitizerFindingsError
from repro.sanitize import DETECTORS, SanitizerFinding, SanitizerReport


def _finding(detector="shared-race", severity="error", line=10):
    return SanitizerFinding(
        detector, severity, "loop_kernel",
        f"conflict on buf[{line}]", (f"loop_kernel.py:{line}",),
    )


def test_detector_names_are_stable():
    assert DETECTORS == (
        "shared-race", "global-race", "barrier-divergence", "ballot-hazard",
        "illegal-yield", "wall-clock", "rng", "host-mutation",
        "unsynced-shared",
        "static-bound", "static-resource", "uncertified-kernel",
        "unproven-race-freedom", "divergence-bound", "engine-precondition",
        "memory-leak", "double-free", "use-after-free",
    )


def test_finding_str_carries_everything():
    text = str(_finding())
    assert "ERROR" in text
    assert "shared-race" in text
    assert "loop_kernel" in text
    assert "loop_kernel.py:10" in text


def test_empty_report_is_clean():
    report = SanitizerReport()
    assert report.clean
    assert report.errors == [] and report.warnings == []
    assert "clean" in report.summary()
    report.raise_if_findings()  # no-op when clean


def test_extend_dedupes_exact_repeats():
    report = SanitizerReport()
    report.extend([_finding(), _finding()])
    report.extend([_finding()])
    assert len(report.findings) == 1
    report.extend([_finding(line=11)])
    assert len(report.findings) == 2


def test_severity_split_and_grouping():
    report = SanitizerReport()
    report.extend([
        _finding(),
        _finding(detector="unsynced-shared", severity="warning", line=20),
        _finding(detector="global-race", line=30),
    ])
    assert len(report.errors) == 2
    assert len(report.warnings) == 1
    grouped = report.by_detector()
    assert set(grouped) == {"shared-race", "unsynced-shared", "global-race"}


def test_merge_accumulates_counts():
    left = SanitizerReport(launches_checked=3, modules_linted=1)
    right = SanitizerReport(launches_checked=2)
    right.extend([_finding()])
    left.merge(right)
    assert left.launches_checked == 5
    assert left.modules_linted == 1
    assert len(left.findings) == 1


def test_summary_lists_findings_by_detector():
    report = SanitizerReport(launches_checked=4)
    report.extend([_finding(), _finding(detector="global-race", line=30)])
    text = report.summary()
    assert "2 finding(s)" in text
    assert "4 launch(es)" in text
    assert "shared-race (1):" in text
    assert "global-race (1):" in text


def test_raise_if_findings_carries_report():
    report = SanitizerReport()
    report.extend([_finding()])
    with pytest.raises(SanitizerFindingsError) as info:
        report.raise_if_findings()
    assert info.value.report is report
    assert "shared-race" in str(info.value)
