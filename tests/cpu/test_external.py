"""Semi-external (disk-based) decomposition tests — with real file IO."""

import numpy as np
import pytest

from repro.cpu.bz import bz_core_numbers
from repro.cpu.external import (
    SemiExternalConfig,
    decompose_graph_via_disk,
    semi_external_decompose,
)
from repro.graph import generators as gen
from repro.graph.examples import fig1_graph
from repro.graph.io import write_edgelist


def test_fig1_roundtrip(tmp_path):
    graph, expected = fig1_graph()
    result = decompose_graph_via_disk(graph, tmp_path)
    for v, c in expected.items():
        assert result.core[v] == c


@pytest.mark.parametrize("make", [
    lambda: gen.erdos_renyi(200, 5.0, seed=1),
    lambda: gen.planted_core(200, 30, 10, seed=2),
    lambda: gen.ring_of_cliques(4, 5),
    lambda: gen.random_tree(80, seed=3),
], ids=["er", "planted", "cliques", "tree"])
def test_matches_bz(tmp_path, make):
    graph = make()
    result = decompose_graph_via_disk(graph, tmp_path)
    reference = bz_core_numbers(graph)
    assert np.array_equal(result.core, reference[: result.num_vertices])


def test_gzip_edge_file(tmp_path):
    graph = gen.erdos_renyi(100, 4.0, seed=4)
    path = tmp_path / "g.edges.gz"
    write_edgelist(graph, path)
    result = semi_external_decompose(path)
    assert np.array_equal(
        result.core, bz_core_numbers(graph)[: result.num_vertices]
    )


def test_pass_accounting(tmp_path):
    graph, _ = fig1_graph()
    result = decompose_graph_via_disk(graph, tmp_path)
    # one degree pass plus at least one pass per non-empty round
    assert result.stats["passes"] >= 1 + result.rounds - 1
    assert result.stats["streamed_bytes"] > 0
    assert result.stats["edges"] == graph.num_edges


def test_cascades_cost_extra_passes(tmp_path):
    """A long path cascades one wave per pass — the IO pattern that
    makes disk-based peeling expensive on deep shells."""
    from repro.graph.examples import path_graph

    shallow_dir = tmp_path / "a"
    deep_dir = tmp_path / "b"
    shallow_dir.mkdir()
    deep_dir.mkdir()
    shallow = decompose_graph_via_disk(path_graph(4), shallow_dir)
    deep = decompose_graph_via_disk(path_graph(64), deep_dir)
    assert deep.stats["passes"] > shallow.stats["passes"]


def test_io_time_scales_with_bandwidth(tmp_path):
    graph = gen.erdos_renyi(150, 5.0, seed=5)
    fast = decompose_graph_via_disk(
        graph, tmp_path, config=SemiExternalConfig(disk_mb_per_s=5000.0)
    )
    slow_dir = tmp_path / "slow"
    slow_dir.mkdir()
    slow = decompose_graph_via_disk(
        graph, slow_dir, config=SemiExternalConfig(disk_mb_per_s=5.0)
    )
    assert slow.simulated_ms > fast.simulated_ms


def test_memory_is_vertex_proportional(tmp_path):
    graph = gen.erdos_renyi(300, 8.0, seed=6)
    result = decompose_graph_via_disk(graph, tmp_path)
    # the whole point: memory tracks |V|, not |E|
    assert result.peak_memory_bytes == 8 * 4 * result.num_vertices
