"""NetworkX-style pure-Python baseline tests."""

import numpy as np
import pytest

from repro.cpu.bz import bz_decompose
from repro.cpu.naive import networkx_style_core_numbers, networkx_style_decompose
from tests.conftest import assert_cores_equal


def test_battery(battery_graph):
    graph, reference = battery_graph
    core, _ = networkx_style_core_numbers(graph)
    assert_cores_equal(core, reference, "networkx")


def test_interpreted_ops_counted(fig1):
    graph, _ = fig1
    _, ops = networkx_style_core_numbers(graph)
    assert ops > graph.num_vertices + graph.neighbors.size


def test_orders_of_magnitude_slower_than_bz(er_graph):
    """Table IV's point: interpreted machinery costs ~100x compiled."""
    graph, _ = er_graph
    nxr = networkx_style_decompose(graph)
    bzr = bz_decompose(graph)
    assert nxr.simulated_ms > 50 * bzr.simulated_ms


def test_load_time_modelled_separately(er_graph):
    graph, _ = er_graph
    result = networkx_style_decompose(graph)
    assert result.stats["load_ms"] > 0
    # load is reported apart from compute, as in Table IV's "LD" rows
    assert result.stats["load_ms"] != result.simulated_ms


def test_memory_reflects_python_overhead(er_graph):
    graph, _ = er_graph
    nxr = networkx_style_decompose(graph)
    bzr = bz_decompose(graph)
    assert nxr.peak_memory_bytes > bzr.peak_memory_bytes


def test_matches_real_networkx(er_graph):
    import networkx as nx

    graph, _ = er_graph
    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    G.add_edges_from(graph.edges())
    want = nx.core_number(G)
    core, _ = networkx_style_core_numbers(graph)
    assert {v: int(core[v]) for v in range(graph.num_vertices)} == want
