"""MPM (h-index refinement) tests."""

import numpy as np
import pytest

from repro.cpu.bz import bz_core_numbers
from repro.cpu.mpm import h_index, mpm_core_numbers, mpm_decompose, mpm_sweep
from tests.conftest import assert_cores_equal


class TestHIndex:
    def test_paper_fig2_example(self):
        """The paper's worked example: A = [5,5,3,3,2,2] refines a(v)
        from 6 to 3."""
        assert h_index(np.array([5, 5, 3, 3, 2, 2])) == 3

    def test_empty(self):
        assert h_index(np.array([])) == 0

    def test_all_large(self):
        assert h_index(np.array([9, 9, 9])) == 3

    def test_all_ones(self):
        assert h_index(np.array([1, 1, 1, 1])) == 1

    def test_zeros(self):
        assert h_index(np.array([0, 0])) == 0

    def test_single(self):
        assert h_index(np.array([7])) == 1

    def test_order_invariant(self):
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        assert h_index(values) == h_index(values[::-1])


class TestSweep:
    def test_one_sweep_equals_per_vertex_h_index(self, fig1):
        graph, _ = fig1
        est = graph.degrees.astype(np.int64)
        refined = mpm_sweep(est, graph.offsets, graph.neighbors)
        for v in range(graph.num_vertices):
            expected = min(
                int(est[v]), h_index(est[graph.neighbors_of(v)])
            )
            assert refined[v] == expected, v

    def test_sweep_monotone_nonincreasing(self, er_graph):
        graph, _ = er_graph
        est = graph.degrees.astype(np.int64)
        refined = mpm_sweep(est, graph.offsets, graph.neighbors)
        assert (refined <= est).all()

    def test_sweep_on_empty_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.empty(3)
        refined = mpm_sweep(np.zeros(3, dtype=np.int64), g.offsets, g.neighbors)
        assert (refined == 0).all()


class TestFixpoint:
    def test_battery(self, battery_graph):
        graph, reference = battery_graph
        core, sweeps = mpm_core_numbers(graph)
        assert_cores_equal(core, reference, "mpm")
        assert sweeps >= 1

    def test_fixpoint_is_stable(self, er_graph):
        graph, _ = er_graph
        core, _ = mpm_core_numbers(graph)
        again = mpm_sweep(core, graph.offsets, graph.neighbors)
        assert np.array_equal(core, again)

    def test_estimates_never_below_core(self, er_graph):
        """Every intermediate estimate upper-bounds the core number."""
        graph, reference = er_graph
        est = graph.degrees.astype(np.int64)
        for _ in range(3):
            est = mpm_sweep(est, graph.offsets, graph.neighbors)
            assert (est >= reference).all()


class TestDecomposeWrapper:
    def test_parallel_and_serial_agree(self, er_graph):
        graph, reference = er_graph
        par = mpm_decompose(graph, parallel=True)
        ser = mpm_decompose(graph, parallel=False)
        assert_cores_equal(par.core, reference, "mpm")
        assert np.array_equal(par.core, ser.core)

    def test_parallel_faster_than_serial(self, er_graph):
        graph, _ = er_graph
        par = mpm_decompose(graph, parallel=True)
        ser = mpm_decompose(graph, parallel=False)
        assert par.simulated_ms < ser.simulated_ms

    def test_workload_exceeds_single_visit(self, er_graph):
        """The paper: MPM's total workload is higher than peeling's
        because vertices recompute multiple times."""
        from repro.cpu.bz import bz_decompose

        graph, _ = er_graph
        mpm = mpm_decompose(graph, parallel=False)
        bz = bz_decompose(graph)
        assert mpm.stats["total_ops"] > bz.stats["ops"]

    def test_rounds_reports_sweeps(self, fig1):
        result = mpm_decompose(fig1[0])
        assert result.rounds == result.stats["sweeps"]
