"""ParK tests (serial and simulated-parallel)."""

import numpy as np
import pytest

from repro.cpu.park import park_decompose
from repro.multicore.costmodel import CpuCostModel
from tests.conftest import assert_cores_equal


def test_battery_parallel(battery_graph):
    graph, reference = battery_graph
    assert_cores_equal(park_decompose(graph).core, reference, "park")


def test_battery_serial(battery_graph):
    graph, reference = battery_graph
    result = park_decompose(graph, parallel=False)
    assert_cores_equal(result.core, reference, "park-serial")


def test_algorithm_names():
    from repro.graph.examples import triangle

    assert park_decompose(triangle()).algorithm == "park"
    assert park_decompose(triangle(), parallel=False).algorithm == "park-serial"


def test_serial_has_no_barriers(fig1):
    result = park_decompose(fig1[0], parallel=False)
    assert result.stats["barriers"] == 0


def test_parallel_barriers_per_sublevel(fig1):
    result = park_decompose(fig1[0])
    # one barrier after each scan plus one per sub-level
    assert result.stats["barriers"] == result.rounds + result.stats["sub_levels"]


def test_sublevels_track_cascade_depth():
    """A path peels in one round but many BFS waves, so ParK pays many
    sub-level synchronisations — its known weakness."""
    from repro.graph.examples import path_graph

    result = park_decompose(path_graph(64))
    assert result.stats["sub_levels"] >= 5


def test_full_scan_every_round_hurts_high_kmax():
    """Serial ParK rescans all vertices each round; with high k_max it
    loses badly to BZ (the indochina row of Table IV)."""
    from repro.cpu.bz import bz_decompose
    from repro.graph import generators as gen

    graph = gen.planted_core(2000, core_size=60, core_degree=40,
                             background_degree=2.0, seed=5)
    park = park_decompose(graph, parallel=False)
    bz = bz_decompose(graph)
    assert park.simulated_ms > 2 * bz.simulated_ms


def test_custom_cost_model_threads():
    from repro.graph.examples import k_clique

    result = park_decompose(k_clique(6), cost=CpuCostModel(threads=4))
    assert result.stats["threads"] == 4


def test_atomics_counted(er_graph):
    graph, _ = er_graph
    result = park_decompose(graph)
    # every vertex append + every live-edge decrement is atomic
    assert result.stats["total_atomics"] >= graph.num_vertices
