"""PKC / PKC-o tests."""

import numpy as np
import pytest

from repro.cpu.pkc import COMPACTION_TRIGGER, pkc_decompose
from tests.conftest import assert_cores_equal


@pytest.mark.parametrize("parallel", [True, False], ids=["par", "ser"])
@pytest.mark.parametrize("compact", [True, False], ids=["pkc", "pkc-o"])
def test_battery(battery_graph, parallel, compact):
    graph, reference = battery_graph
    result = pkc_decompose(graph, parallel=parallel, compact=compact)
    assert_cores_equal(result.core, reference, result.algorithm)


def test_algorithm_names(fig1):
    graph, _ = fig1
    assert pkc_decompose(graph).algorithm == "pkc"
    assert pkc_decompose(graph, compact=False).algorithm == "pkc-o"
    assert pkc_decompose(graph, parallel=False).algorithm == "pkc-serial"
    assert (
        pkc_decompose(graph, parallel=False, compact=False).algorithm
        == "pkc-o-serial"
    )


def test_one_barrier_per_round(fig1):
    """PKC's whole point: local buffers remove sub-level syncs."""
    graph, _ = fig1
    result = pkc_decompose(graph)
    assert result.stats["barriers"] == result.rounds


def test_compaction_triggers_on_deep_tail():
    """A graph whose dense nucleus survives long after 90% of vertices
    are peeled must trigger the rebuild."""
    from repro.graph import generators as gen

    graph = gen.planted_core(3000, core_size=80, core_degree=30,
                             background_degree=2.0, seed=8)
    result = pkc_decompose(graph)
    assert result.stats["compacted"]


def test_compaction_not_triggered_on_flat_graph():
    """An ER graph peels its bulk in the last rounds, so the alive set
    never lingers below the trigger for long — and on tiny-k_max inputs
    compaction may simply never pay off."""
    from repro.graph.examples import k_clique

    result = pkc_decompose(k_clique(8))
    assert not result.stats["compacted"]


def test_compaction_speeds_up_high_kmax():
    """PKC vs PKC-o, the Table IV indochina effect."""
    from repro.graph import generators as gen

    graph = gen.planted_core(3000, core_size=80, core_degree=40,
                             background_degree=2.0, seed=9)
    with_compact = pkc_decompose(graph, parallel=False, compact=True)
    without = pkc_decompose(graph, parallel=False, compact=False)
    assert with_compact.simulated_ms < without.simulated_ms
    assert np.array_equal(with_compact.core, without.core)


def test_trigger_constant_sane():
    assert 0.5 < COMPACTION_TRIGGER < 1.0


def test_propagated_vertices_claimed_once(er_graph):
    """Every vertex gets exactly one core assignment even when multiple
    threads' BFS fronts touch it."""
    graph, reference = er_graph
    result = pkc_decompose(graph)
    assert_cores_equal(result.core, reference, "pkc")
    # total atomics equal live decrements: bounded by directed edges
    assert result.stats["total_atomics"] <= graph.neighbors.size
