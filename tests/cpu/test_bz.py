"""BZ reference-algorithm tests (validated against NetworkX)."""

import networkx as nx
import numpy as np
import pytest

from repro.cpu.bz import bz_core_numbers, bz_decompose, degeneracy_ordering
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def _nx_cores(graph: CSRGraph) -> np.ndarray:
    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    G.add_edges_from(graph.edges())
    nx_core = nx.core_number(G)
    return np.array([nx_core[v] for v in range(graph.num_vertices)])


@pytest.mark.parametrize("seed", range(5))
def test_matches_networkx_on_er(seed):
    graph = gen.erdos_renyi(150, 5.0, seed=seed)
    assert np.array_equal(bz_core_numbers(graph), _nx_cores(graph))


def test_matches_networkx_on_powerlaw():
    graph = gen.power_law_configuration(200, 2.3, d_min=1, seed=3)
    assert np.array_equal(bz_core_numbers(graph), _nx_cores(graph))


def test_matches_networkx_on_planted_core():
    graph = gen.planted_core(150, 30, 8, seed=2)
    assert np.array_equal(bz_core_numbers(graph), _nx_cores(graph))


def test_fig1(fig1):
    graph, expected = fig1
    core = bz_core_numbers(graph)
    assert {v: int(core[v]) for v in expected} == expected


def test_empty_graph():
    assert bz_core_numbers(CSRGraph.empty(0)).size == 0


def test_isolated_vertices():
    core = bz_core_numbers(CSRGraph.empty(3))
    assert (core == 0).all()


class TestDegeneracyOrdering:
    def test_is_a_permutation(self):
        graph = gen.erdos_renyi(100, 4.0, seed=1)
        order = degeneracy_ordering(graph)
        assert sorted(order.tolist()) == list(range(100))

    def test_core_numbers_nondecreasing_along_order(self):
        """BZ peels in non-decreasing core order by construction."""
        graph = gen.erdos_renyi(150, 6.0, seed=2)
        core = bz_core_numbers(graph)
        order = degeneracy_ordering(graph)
        assert (np.diff(core[order]) >= 0).all()

    def test_each_vertex_has_few_later_neighbors(self):
        """Definition of degeneracy ordering: every vertex has at most
        k_max neighbors occurring later in the order."""
        graph = gen.erdos_renyi(120, 6.0, seed=3)
        core = bz_core_numbers(graph)
        kmax = int(core.max())
        order = degeneracy_ordering(graph)
        position = np.empty(graph.num_vertices, dtype=np.int64)
        position[order] = np.arange(graph.num_vertices)
        for v in range(graph.num_vertices):
            later = sum(
                1 for u in graph.neighbors_of(v) if position[u] > position[v]
            )
            assert later <= kmax


class TestDecomposeWrapper:
    def test_result_fields(self, fig1):
        result = bz_decompose(fig1[0])
        assert result.algorithm == "bz"
        assert result.simulated_ms > 0
        assert result.rounds == 4
        assert result.stats["ops"] > 0

    def test_time_scales_with_size(self):
        small = bz_decompose(gen.erdos_renyi(100, 4.0, seed=0))
        large = bz_decompose(gen.erdos_renyi(1000, 4.0, seed=0))
        assert large.simulated_ms > 5 * small.simulated_ms
