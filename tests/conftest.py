"""Shared fixtures: reference graphs and ground-truth core numbers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.examples import fig1_graph, k_clique, path_graph, triangle


@pytest.fixture
def fig1():
    """The paper's Fig. 1 example: ``(graph, expected_core_numbers)``."""
    return fig1_graph()


@pytest.fixture
def fig1_graph_only():
    return fig1_graph()[0]


def small_graph_battery() -> list[tuple[str, CSRGraph]]:
    """A diverse battery of small graphs for agreement tests.

    Covers: empty/trivial graphs, trees (core 1), cliques, structured
    graphs with known cores, random graphs of several shapes, isolated
    vertices, and skew.
    """
    return [
        ("empty", CSRGraph.empty(0)),
        ("isolated", CSRGraph.empty(5)),
        ("single-edge", CSRGraph.from_edges([(0, 1)])),
        ("triangle", triangle()),
        ("path", path_graph(20)),
        ("clique6", k_clique(6)),
        ("fig1", fig1_graph()[0]),
        ("star", CSRGraph.from_edges([(0, i) for i in range(1, 30)])),
        ("ring-of-cliques", gen.ring_of_cliques(4, 5)),
        ("grid", gen.grid_2d(6, 7)),
        ("tree", gen.random_tree(60, seed=1)),
        ("er-sparse", gen.erdos_renyi(120, 3.0, seed=2)),
        ("er-dense", gen.erdos_renyi(80, 14.0, seed=3)),
        ("ba", gen.barabasi_albert(100, 4, seed=4)),
        ("powerlaw", gen.power_law_configuration(150, 2.3, d_min=2, seed=5)),
        ("planted", gen.planted_core(150, core_size=25, core_degree=10, seed=6)),
        ("hubs", gen.hub_and_spokes(200, num_hubs=2, seed=7)),
        ("clique+leaf", CSRGraph.from_edges(
            [(i, j) for i in range(5) for j in range(i + 1, 5)] + [(0, 5)]
        )),
    ]


BATTERY = small_graph_battery()
BATTERY_IDS = [name for name, _ in BATTERY]


@pytest.fixture(params=BATTERY, ids=BATTERY_IDS)
def battery_graph(request):
    """Parametrised over the whole battery: ``(graph, reference_core)``."""
    _, graph = request.param
    return graph, bz_core_numbers(graph)


@pytest.fixture
def er_graph():
    """A moderate random graph with its reference decomposition."""
    graph = gen.erdos_renyi(250, 6.0, seed=11)
    return graph, bz_core_numbers(graph)


def assert_cores_equal(core: np.ndarray, reference: np.ndarray, label: str = ""):
    """Readable comparison helper for core-number arrays."""
    core = np.asarray(core)
    reference = np.asarray(reference)
    assert core.shape == reference.shape, (
        f"{label}: shape {core.shape} != {reference.shape}"
    )
    if not np.array_equal(core, reference):
        bad = np.flatnonzero(core != reference)
        detail = ", ".join(
            f"v{int(v)}: got {int(core[v])}, want {int(reference[v])}"
            for v in bad[:8]
        )
        raise AssertionError(
            f"{label}: {bad.size} wrong core numbers ({detail})"
        )
