"""Command-line interface tests."""

import pytest

from repro.cli import main


def test_decompose_file_summary(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(path)]) == 0
    out = capsys.readouterr().out
    assert "k_max (degeneracy): 2" in out
    assert "vertices: 4" in out


def test_output_file(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    dst = tmp_path / "cores.tsv"
    assert main(["--input", str(src), "--output", str(dst)]) == 0
    lines = dst.read_text().splitlines()
    assert lines == ["0\t2", "1\t2", "2\t2"]


def test_dataset_source(capsys):
    assert main(["--dataset", "amazon0601", "--algorithm", "bz"]) == 0
    out = capsys.readouterr().out
    assert "algorithm: bz" in out


def test_shells_and_top(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(path), "--shells", "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "k=2: 3" in out
    assert "top 2 vertices" in out


def test_simulated_algorithm_reports_metrics(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "gpu-ours"]) == 0
    out = capsys.readouterr().out
    assert "simulated time" in out


def test_list_algorithms(capsys):
    assert main(["--list-algorithms"]) == 0
    out = capsys.readouterr().out
    assert "gpu-ours" in out
    assert "pkc" in out


def test_list_datasets(capsys):
    assert main(["--list-datasets"]) == 0
    out = capsys.readouterr().out
    assert "trackers" in out


def test_unknown_algorithm_exit_code(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n")
    assert main(["--input", str(path), "--algorithm", "nope"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_unknown_dataset_exit_code(capsys):
    assert main(["--dataset", "nope"]) == 2
    assert "unknown dataset" in capsys.readouterr().err


def test_source_required():
    with pytest.raises(SystemExit):
        main([])


def test_sanitize_clean_run(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "gpu-ours",
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sanitizer:" in out
    assert "clean" in out


def test_sanitize_unsupported_algorithm(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "bz",
                 "--sanitize"]) == 2
    assert "--sanitize" in capsys.readouterr().err


def test_staticheck_without_source_dumps_certificates(capsys):
    assert main(["--staticheck"]) == 0
    out = capsys.readouterr().out
    assert "variant ours:" in out
    assert "variant vw4:" in out
    assert "issued" in out


def test_staticheck_clean_run(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "gpu-ec+vp",
                 "--staticheck"]) == 0
    out = capsys.readouterr().out
    assert "staticheck:" in out
    assert "clean" in out


def test_staticheck_unsupported_algorithm(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "pkc",
                 "--staticheck"]) == 2
    assert "--staticheck" in capsys.readouterr().err
