"""Command-line interface tests."""

import json

import pytest

from repro.cli import main


def test_decompose_file_summary(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(path)]) == 0
    out = capsys.readouterr().out
    assert "k_max (degeneracy): 2" in out
    assert "vertices: 4" in out


def test_output_file(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    dst = tmp_path / "cores.tsv"
    assert main(["--input", str(src), "--output", str(dst)]) == 0
    lines = dst.read_text().splitlines()
    assert lines == ["0\t2", "1\t2", "2\t2"]


def test_dataset_source(capsys):
    assert main(["--dataset", "amazon0601", "--algorithm", "bz"]) == 0
    out = capsys.readouterr().out
    assert "algorithm: bz" in out


def test_shells_and_top(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(path), "--shells", "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "k=2: 3" in out
    assert "top 2 vertices" in out


def test_simulated_algorithm_reports_metrics(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "gpu-ours"]) == 0
    out = capsys.readouterr().out
    assert "simulated time" in out


def test_list_algorithms(capsys):
    assert main(["--list-algorithms"]) == 0
    out = capsys.readouterr().out
    assert "gpu-ours" in out
    assert "pkc" in out


def test_list_datasets(capsys):
    assert main(["--list-datasets"]) == 0
    out = capsys.readouterr().out
    assert "trackers" in out


def test_unknown_algorithm_exit_code(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n")
    assert main(["--input", str(path), "--algorithm", "nope"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_unknown_dataset_exit_code(capsys):
    assert main(["--dataset", "nope"]) == 2
    assert "unknown dataset" in capsys.readouterr().err


def test_source_required():
    with pytest.raises(SystemExit):
        main([])


def test_sanitize_clean_run(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "gpu-ours",
                 "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "sanitizer:" in out
    assert "clean" in out


def test_sanitize_unsupported_algorithm(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "bz",
                 "--sanitize"]) == 2
    assert "--sanitize" in capsys.readouterr().err


def test_staticheck_without_source_dumps_certificates(capsys):
    assert main(["--staticheck"]) == 0
    out = capsys.readouterr().out
    assert "variant ours:" in out
    assert "variant vw4:" in out
    assert "issued" in out


def test_staticheck_clean_run(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "gpu-ec+vp",
                 "--staticheck"]) == 0
    out = capsys.readouterr().out
    assert "staticheck:" in out
    assert "clean" in out


def test_staticheck_dump_writes_findings_artifact(tmp_path, capsys):
    out = tmp_path / "findings.json"
    assert main(["--staticheck", "--json", str(out)]) == 0
    record = json.loads(out.read_text())
    assert record["schema"] == "repro.findings/v1"
    assert record["tool"] == "cli-staticheck"
    assert record["report"]["findings"] == []


def test_dataflow_dump_writes_findings_artifact(tmp_path, capsys):
    out = tmp_path / "findings.json"
    assert main(["--dataflow", "--json", str(out)]) == 0
    assert "race-free" in capsys.readouterr().out
    record = json.loads(out.read_text())
    assert record["schema"] == "repro.findings/v1"
    assert record["tool"] == "cli-dataflow"
    assert record["report"]["findings"] == []
    # the dump iterates the contract registry, not a kernel list
    assert record["report"]["modules_linted"] > 22


def test_staticheck_run_writes_findings_artifact(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    out = tmp_path / "findings.json"
    assert main(["--input", str(path), "--algorithm", "gpu-ours",
                 "--staticheck", "--json", str(out)]) == 0
    record = json.loads(out.read_text())
    assert record["tool"] == "cli-staticheck"
    assert record["report"]["launches_checked"] > 0


def test_json_unwritable_path_fails_cleanly(tmp_path, capsys):
    missing = tmp_path / "nope"
    missing.write_text("a file, not a directory")
    out = missing / "findings.json"
    assert main(["--staticheck", "--json", str(out)]) == 1
    assert "cannot write findings" in capsys.readouterr().err


def test_staticheck_unsupported_algorithm(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(path), "--algorithm", "pkc",
                 "--staticheck"]) == 2
    assert "--staticheck" in capsys.readouterr().err


def test_profile_creates_missing_parent_dirs(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    out = tmp_path / "deep" / "nested" / "trace.json"
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--profile", str(out)]) == 0
    assert out.exists()
    assert "wrote trace" in capsys.readouterr().out


def test_profile_unwritable_path_is_a_clear_error(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    blocker = tmp_path / "blocker"
    blocker.write_text("")  # a *file* where a directory is needed
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--profile", str(blocker / "trace.json")]) == 1
    err = capsys.readouterr().err
    assert "cannot write trace" in err
    assert "Traceback" not in err


def test_ncu_prints_sol_table(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--ncu"]) == 0
    out = capsys.readouterr().out
    assert "Speed-of-Light" in out
    assert "scan_kernel" in out and "loop_kernel" in out


def test_ncu_writes_profile_and_flamegraph(tmp_path, capsys):
    from repro.profile import validate_profile

    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    out = tmp_path / "reports" / "profile.json"
    assert main(["--input", str(src), "--algorithm", "gpu-sm",
                 "--ncu", str(out)]) == 0
    record = json.loads(out.read_text())
    assert validate_profile(record) == []
    assert record["algorithm"] == "gpu-sm"
    folded = (tmp_path / "reports" / "profile.json.folded").read_text()
    assert folded.strip()
    assert "wrote profile" in capsys.readouterr().out


def test_ncu_unwritable_path_is_a_clear_error(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--ncu", str(blocker / "p.json")]) == 1
    err = capsys.readouterr().err
    assert "cannot write profile" in err
    assert "Traceback" not in err


def test_ncu_unsupported_algorithm(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(src), "--algorithm", "bz", "--ncu"]) == 2
    assert "--ncu" in capsys.readouterr().err


def test_memtrace_prints_timeline(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--memtrace"]) == 0
    out = capsys.readouterr().out
    assert "Memory telemetry: gpu-ours" in out
    assert "(context)" in out
    assert "findings: clean" in out


def test_memtrace_writes_valid_report(tmp_path, capsys):
    from repro.memtrace import validate_memtrace

    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    out = tmp_path / "reports" / "mt.json"
    assert main(["--input", str(src), "--algorithm", "gpu-sm",
                 "--memtrace", str(out)]) == 0
    record = json.loads(out.read_text())
    assert validate_memtrace(record) == []
    assert record["algorithm"] == "gpu-sm"
    assert "wrote memtrace" in capsys.readouterr().out


def test_memtrace_works_for_system_emulations(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(src), "--algorithm", "gswitch",
                 "--memtrace"]) == 0
    out = capsys.readouterr().out
    assert "Memory telemetry: gswitch" in out
    assert "gswitch.init" in out


def test_memtrace_unsupported_algorithm(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(src), "--algorithm", "bz",
                 "--memtrace"]) == 2
    assert "--memtrace" in capsys.readouterr().err


# -- unified run reports (--report) ------------------------------------------

def test_report_prints_and_validates(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--report"]) == 0
    out = capsys.readouterr().out
    assert "Run report" in out
    assert "[gpu-ours]" in out
    assert "kernel scan_kernel" in out


def test_report_writes_valid_artifact(tmp_path, capsys):
    from repro.obs.runreport import SCHEMA_VERSION, validate_runreport

    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n2 3\n")
    out = tmp_path / "reports" / "rr.json"
    assert main(["--input", str(src),
                 "--algorithm", "gpu-ours,pkc,semi-external",
                 "--report", str(out)]) == 0
    record = json.loads(out.read_text())
    assert record["schema"] == SCHEMA_VERSION
    assert validate_runreport(record) == []
    assert [s["algorithm"] for s in record["sections"]] == [
        "gpu-ours", "pkc", "semi-external"
    ]
    assert "wrote run report (3 section(s))" in capsys.readouterr().out


def test_report_rejects_other_telemetry_flags(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--report", "--sanitize", "--memtrace"]) == 2
    err = capsys.readouterr().err
    assert "--report" in err and "--sanitize" in err
    assert "--memtrace" in err


def test_report_rejects_unknown_algorithm(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(src), "--algorithm", "gpu-ours,nope",
                 "--report"]) == 2
    assert "'nope'" in capsys.readouterr().err


def test_comma_list_without_report_hints(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    assert main(["--input", str(src),
                 "--algorithm", "gpu-ours,pkc"]) == 2
    assert "comma-separated lists need --report" in capsys.readouterr().err


def test_report_unwritable_path_is_a_clear_error(tmp_path, capsys):
    src = tmp_path / "g.txt"
    src.write_text("0 1\n1 2\n0 2\n")
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--report", str(blocker / "rr.json")]) == 1
    err = capsys.readouterr().err
    assert "cannot write run report" in err
    assert "Traceback" not in err


# -- repro obs diff ----------------------------------------------------------

def _write_report(tmp_path, name, src_text="0 1\n1 2\n0 2\n2 3\n"):
    src = tmp_path / "g.txt"
    src.write_text(src_text)
    out = tmp_path / name
    assert main(["--input", str(src), "--algorithm", "gpu-ours",
                 "--report", str(out)]) == 0
    return out


def test_obs_diff_identical_reports(tmp_path, capsys):
    path = _write_report(tmp_path, "rr.json")
    capsys.readouterr()
    assert main(["obs", "diff", str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert "no regressions" in out
    assert "[gpu-ours] unchanged" in out


def test_obs_diff_flags_regression(tmp_path, capsys):
    path = _write_report(tmp_path, "old.json")
    record = json.loads(path.read_text())
    record["sections"][0]["simulated_ms"] *= 2.0
    worse = tmp_path / "new.json"
    worse.write_text(json.dumps(record))
    capsys.readouterr()
    assert main(["obs", "diff", str(path), str(worse)]) == 1
    captured = capsys.readouterr()
    assert "REGRESSIONS" in captured.out
    assert "regressed" in captured.out


def test_obs_diff_usage_errors(tmp_path, capsys):
    assert main(["obs", "diff", "only-one.json"]) == 2
    assert "usage" in capsys.readouterr().err
    assert main(["obs", "diff", str(tmp_path / "a.json"),
                 str(tmp_path / "b.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_obs_diff_warns_on_invalid_report(tmp_path, capsys):
    path = _write_report(tmp_path, "old.json")
    record = json.loads(path.read_text())
    record["sections"][0]["counters"]["kernel.scan.cycles"] += 1.0
    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps(record))
    capsys.readouterr()
    main(["obs", "diff", str(path), str(broken)])
    assert "warning" in capsys.readouterr().err
