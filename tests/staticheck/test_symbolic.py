"""Expression-language tests for the certificate bounds."""

from __future__ import annotations

import pytest

from repro.staticheck.symbolic import (
    Add,
    CeilDiv,
    Const,
    Max,
    Mul,
    Param,
    as_expr,
)


def test_evaluate_composed_expression():
    # G*(2 + 3*ceil(n / (G*W*S))) with n=1000, G=4, W=16, S=32
    expr = Param("G") * (Const(2) + Const(3) * CeilDiv(
        Param("n"), Param("G") * Param("W") * Param("S")
    ))
    env = {"n": 1000.0, "G": 4.0, "W": 16.0, "S": 32.0}
    assert expr.evaluate(env) == 4 * (2 + 3 * 1)  # ceil(1000/2048) = 1


def test_ceildiv_rounds_up_and_rejects_zero_denominator():
    assert CeilDiv(Const(5), Const(2)).evaluate({}) == 3
    assert CeilDiv(Const(4), Const(2)).evaluate({}) == 2
    assert CeilDiv(Const(0), Const(7)).evaluate({}) == 0
    with pytest.raises(ZeroDivisionError):
        CeilDiv(Const(1), Const(0)).evaluate({})


def test_max_picks_larger_side():
    expr = Max(Const(1), Param("t"))
    assert expr.evaluate({"t": 0.0}) == 1
    assert expr.evaluate({"t": 9.0}) == 9


def test_params_collects_sorted_unique_names():
    expr = Param("n") + Param("G") * Param("n")
    assert expr.params() == ("G", "n")


def test_operator_sugar_coerces_plain_numbers():
    expr = 2 * Param("P") + 3
    assert isinstance(expr, Add)
    assert expr.evaluate({"P": 5.0}) == 13


def test_rendering_is_readable():
    expr = Param("G") * (Const(2) + Param("P"))
    assert str(expr) == "G*(2 + P)"
    assert str(CeilDiv(Param("n"), Param("S"))) == "ceil(n / S)"
    assert str(Max(Const(1), Param("t"))) == "max(1, t)"


def test_expressions_are_hashable_and_comparable():
    a = Param("n") + Const(1)
    b = Param("n") + Const(1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != Param("n") + Const(2)
    assert Const(3) != Param("n")
    assert len({a, b, Mul(a, b)}) == 2


def test_as_expr_passthrough_and_coercion():
    p = Param("x")
    assert as_expr(p) is p
    assert as_expr(7) == Const(7)


def test_missing_parameter_raises_key_error():
    with pytest.raises(KeyError):
        Param("missing").evaluate({"n": 1.0})
