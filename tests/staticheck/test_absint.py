"""AST site-inventory pass tests (synthetic kernel sources)."""

from __future__ import annotations

from repro.staticheck.absint import WAIVE_MARK, analyze_source

_KERNEL_SOURCE = '''
__staticheck__ = {"my_kernel": "bounds in tests"}


def my_kernel(ctx, deg, buf):
    if ctx.warp_id == 0:
        ctx.smem_set("e", 0)
    yield ctx.BARRIER
    b = ctx.smem_array("B", ctx.shared_capacity)
    degs = ctx.gload(deg, ctx.lanes, dependent=False)
    vals = ctx.gload(buf, degs)
    ctx.smem_atomic_add("e", 3, lanes=3)
    ctx.atomic_global(deg, 0, 1)
    ctx.charge(4)
    helper(ctx)
    yield ctx.BARRIER


def helper(ctx):
    ctx.charge(2)


def not_a_kernel(graph):
    return graph
'''


def _module():
    return analyze_source(_KERNEL_SOURCE, "mymod", "mymod.py")


def test_kernel_functions_are_discovered_by_ctx_convention():
    mod = _module()
    assert set(mod.kernels) == {"my_kernel", "helper"}


def test_site_inventory_classifies_each_access():
    inv = _module().kernels["my_kernel"]
    assert inv.is_generator
    assert len(inv.barrier_sites) == 2
    assert len(inv.shared_atomic_sites) == 1
    assert inv.shared_atomic_sites[0].detail == "e"
    assert len(inv.global_atomic_sites) == 1
    # lanes-indexed gload is coalesced; the gather through degs is not
    kinds = sorted(s.kind for s in inv.memory_sites)
    assert kinds == ["gload-coalesced", "gload-scattered"]
    assert len(inv.divergence_sites) == 1  # the warp_id test
    assert inv.charge_sum == 4
    assert [a.name for a in inv.shared_allocs] == ["B"]
    assert str(inv.shared_allocs[0].size) == "scap"
    assert inv.shared_scalars == ["e"]
    assert inv.callees == ["helper"]


def test_coverage_gate_flags_unannotated_kernels():
    findings = _module().coverage_findings()
    assert len(findings) == 1
    assert findings[0].detector == "uncertified-kernel"
    assert "helper" in findings[0].kernel


def test_waive_marker_suppresses_coverage_finding():
    source = _KERNEL_SOURCE.replace(
        "def helper(ctx):", f"def helper(ctx):  {WAIVE_MARK}"
    )
    mod = analyze_source(source, "mymod", "mymod.py")
    assert mod.coverage_findings() == []


def test_stale_annotation_is_a_finding():
    source = _KERNEL_SOURCE.replace(
        '"my_kernel": "bounds in tests"',
        '"my_kernel": "x", "gone_kernel": "y"',
    )
    mod = analyze_source(source, "mymod", "mymod.py")
    stale = [f for f in mod.coverage_findings() if "gone_kernel" in f.kernel]
    assert len(stale) == 1
    assert "stale" in stale[0].message


def test_missing_call_edge_is_a_finding():
    mod = _module()
    ok = mod.check_call_edges({"my_kernel": ("helper",)})
    assert ok == []
    missing = mod.check_call_edges({"my_kernel": ()})
    assert len(missing) == 1
    assert missing[0].detector == "uncertified-kernel"
    assert "my_kernel -> helper" in missing[0].message
