"""Certificate assembly, coverage, and differential-checker tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import EXTENSION_VARIANTS, VARIANTS, get_variant
from repro.errors import ReproError
from repro.gpusim.device import Device
from repro.gpusim.scheduler import KernelStats
from repro.gpusim.spec import DeviceSpec
from repro.graph import generators as gen
from repro.staticheck import (
    DifferentialChecker,
    certify_all,
    certify_variant,
    launch_env,
    reachable_functions,
    render_certificates,
    verify_inventories,
)


def test_repo_kernels_are_fully_certified():
    assert verify_inventories() == []


def test_certify_all_covers_the_eleven_variants():
    certs = certify_all()
    assert len(certs) == 11
    assert set(certs) == set(VARIANTS) | set(EXTENSION_VARIANTS)
    for cert in certs.values():
        assert cert.scan.kernel == "scan_kernel"
        assert cert.loop.kernel == "loop_kernel"


def test_ring_variants_are_not_certifiable():
    ring = VARIANTS["ours"].with_ring_buffer()
    with pytest.raises(ValueError, match="ring"):
        certify_variant(ring)


def test_reachability_prunes_by_variant():
    ours = reachable_functions("loop_kernel", VARIANTS["ours"])
    assert "_drain" in ours
    assert "_drain_prefetched" not in ours
    assert "warp_compact_ballot" not in ours
    vp = reachable_functions("loop_kernel", VARIANTS["bc+vp"])
    assert "_drain_prefetched" in vp
    assert "_drain" not in vp
    assert "warp_compact_ballot" in vp
    ec = reachable_functions("scan_kernel", VARIANTS["ec"])
    assert "_scan_block_compaction" in ec
    assert "_scan_strided" not in ec
    assert "block_scan_offsets" in ec


def test_atomic_inventory_tells_the_bc_story():
    """BC trades shared-atomic pressure for ballot instructions: its
    reachable compaction path exists, but the per-lane append site of
    Ours is shared between them (the dispatch is data-driven), so the
    discriminating signal is the compaction helper's reachability."""
    certs = certify_all()
    ours_sites = {
        s.function for s in certs["ours"].loop.shared_atomic_sites
    }
    bc = certs["bc"]
    assert "compaction:warp_compact_ballot" not in {
        s.function
        for s in certs["ours"].loop.coalesced_sites
    }
    assert "warp_compact_ballot" in bc.loop.reachable
    assert "warp_compact_ballot" not in certs["ours"].loop.reachable
    assert ours_sites  # the per-lane atomicAdd append exists


def test_scan_issued_bound_orders_ours_bc_ec():
    certs = certify_all()
    spec = DeviceSpec()
    env = launch_env(5000, 40000, 60, spec, VARIANTS["ours"])
    issued = {
        name: certs[name].scan.bounds.issued.evaluate(env)
        for name in ("ours", "bc", "ec")
    }
    assert issued["ours"] < issued["bc"] < issued["ec"]


def test_device_memory_certificate_matches_simulator_exactly():
    graph = gen.erdos_renyi(400, 6.0, seed=3)
    for name in ("ours", "sm", "vp", "bc", "ec"):
        cfg = VARIANTS[name]
        device = Device()
        result = gpu_peel(graph, variant=cfg, device=device)
        cert = certify_variant(cfg)
        env = launch_env(
            graph.num_vertices, len(graph.neighbors), graph.max_degree,
            device.spec, cfg,
        )
        assert cert.device_memory_bytes(env, device.spec) == \
            result.peak_memory_bytes, name


def test_shared_fit_finding_fires_when_footprint_cannot_fit():
    cert = certify_variant(VARIANTS["sm"])
    spec = DeviceSpec()
    env = launch_env(100, 400, 5, spec, VARIANTS["sm"])
    # force an impossible footprint: a shared buffer larger than the
    # whole per-block shared memory
    env = dict(env, scap=float(spec.shared_memory_per_block_bytes))
    findings = cert.loop.check_shared_fit(spec, env)
    assert len(findings) == 1
    assert findings[0].detector == "static-resource"
    assert cert.scan.check_shared_fit(spec, env) == []  # scan has no B


def test_render_certificates_lists_every_variant():
    text = render_certificates(certify_all())
    for name in list(VARIANTS) + list(EXTENSION_VARIANTS):
        assert f"variant {name}:" in text
    assert "issued" in text and "barriers" in text


class TestDifferentialChecker:
    def _checker(self, name="ours"):
        cfg = VARIANTS[name]
        return DifferentialChecker(cfg, DeviceSpec(), 500, 3000, 40)

    def test_clean_run_produces_clean_report(self):
        graph = gen.planted_core(150, core_size=20, core_degree=8,
                                 background_degree=3.0, seed=7)
        result = gpu_peel(graph, variant="bc+sm", staticheck=True)
        assert result.staticheck is not None
        assert result.staticheck.clean, result.staticheck.summary()
        assert result.staticheck.launches_checked == 2 * result.rounds

    def test_violation_yields_static_bound_finding(self):
        checker = self._checker()
        huge = KernelStats(
            cycles=1.0, issued=1e12, mem_transactions=1e12,
            barriers=10**9, max_warp_path=1.0,
        )
        checker.observe("scan_kernel", huge)
        findings = checker.report.findings
        assert len(findings) == 3  # issued, mem_transactions, barriers
        assert {f.detector for f in findings} == {"static-bound"}
        assert all("scan_kernel[ours]" == f.kernel for f in findings)

    def test_within_bound_stats_are_clean(self):
        checker = self._checker()
        tiny = KernelStats(
            cycles=1.0, issued=10.0, mem_transactions=1.0,
            barriers=2, max_warp_path=1.0,
        )
        checker.observe("loop_kernel", tiny)
        assert checker.report.clean
        assert checker.report.launches_checked == 1

    def test_staticheck_rejects_ring_variants(self):
        graph = gen.erdos_renyi(50, 3.0, seed=0)
        ring = get_variant("ours").with_ring_buffer()
        with pytest.raises(ReproError, match="ring"):
            gpu_peel(graph, variant=ring, staticheck=True)

    def test_staticheck_report_rides_empty_graph_result(self):
        from repro.graph.csr import CSRGraph

        graph = CSRGraph.from_edges([], num_vertices=0)
        result = gpu_peel(graph, variant="ours", staticheck=True)
        assert result.staticheck is not None
        assert result.staticheck.clean


def test_options_staticheck_flag_is_honoured():
    graph = gen.erdos_renyi(60, 4.0, seed=1)
    result = gpu_peel(graph, options=GpuPeelOptions(staticheck=True))
    assert result.staticheck is not None
    assert result.staticheck.clean
    plain = gpu_peel(graph)
    assert plain.staticheck is None
    assert np.array_equal(result.core, plain.core)
