"""Golden-file stability of the certificate JSON surfaces.

The committed goldens under ``tests/staticheck/golden/`` freeze the
exact :meth:`VariantCertificate.to_dict` /
:meth:`DataflowCertificate.to_dict` renderings of every registered
program x variant.  An analyzer change that moves any field — a bound,
a proof argument, a precondition rule — fails here until
``scripts/regen_goldens.py`` is rerun, which forces the semantic diff
into code review.  The tests import the generator itself, so the
goldens and the comparison can never disagree about what is rendered.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "regen_goldens", REPO_ROOT / "scripts" / "regen_goldens.py"
)
assert _spec is not None and _spec.loader is not None
regen_goldens = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("regen_goldens", regen_goldens)
_spec.loader.exec_module(regen_goldens)

REGEN_HINT = (
    "certificate rendering drifted from the committed golden; if the "
    "change is intended, rerun `python scripts/regen_goldens.py` and "
    "commit the diff"
)


def _load(name: str) -> dict:
    return json.loads((GOLDEN_DIR / name).read_text(encoding="utf-8"))


def test_kernel_certificate_goldens_are_current() -> None:
    golden = _load("kernel_certificates.json")
    current = regen_goldens.kernel_certificates()
    assert sorted(current) == sorted(golden), REGEN_HINT
    for key in golden:
        assert current[key] == golden[key], f"{key}: {REGEN_HINT}"


def test_dataflow_certificate_goldens_are_current() -> None:
    golden = _load("dataflow_certificates.json")
    current = regen_goldens.dataflow_certificates()
    assert sorted(current) == sorted(golden), REGEN_HINT
    for key in golden:
        assert current[key] == golden[key], f"{key}: {REGEN_HINT}"


def test_goldens_survive_a_json_round_trip() -> None:
    # to_dict() must emit only JSON-native types (no numpy scalars,
    # no Expr objects) so the artifact is loadable anywhere
    for name in ("kernel_certificates.json", "dataflow_certificates.json"):
        record = _load(name)
        assert json.loads(json.dumps(record, sort_keys=True)) == record


def test_golden_coverage_matches_the_registry() -> None:
    """Every registered kernel and program appears in the goldens."""
    from repro.staticheck import contracts

    kernels = {k.split("[")[0] for k in _load("dataflow_certificates.json")}
    assert kernels == set(contracts.all_kernel_contracts())
    programs = {k.split("/")[0] for k in _load("kernel_certificates.json")}
    assert programs == set(contracts.all_program_contracts())


def test_kcore_dataflow_goldens_cover_all_22_combos() -> None:
    golden = _load("dataflow_certificates.json")
    honest = {k for k, cert in golden.items() if cert["unproven"]}
    kcore = [k for k in golden if not k.startswith("bfs_kernel")]
    proven = [k for k in kcore if k not in honest]
    # 11 certifiable configs x scan/loop; ring configs carry their
    # unproven obligations as part of the frozen surface
    assert len(proven) == 22
    assert honest == {
        "scan_kernel[ours+ring]", "scan_kernel[bc+ring]",
        "loop_kernel[ours+ring]", "loop_kernel[bc+ring]",
    }


@pytest.mark.parametrize("field", ["race_free", "bracket", "proofs"])
def test_dataflow_goldens_expose_the_core_fields(field: str) -> None:
    golden = _load("dataflow_certificates.json")
    for key, cert in golden.items():
        assert field in cert, f"{key} golden lacks {field!r}"
