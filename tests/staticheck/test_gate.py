"""CI-gate tests: scripts/check_static_bounds.py passes on the
committed bench JSON and demonstrably fails on doctored data."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS = REPO_ROOT / "benchmarks" / "results"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_static_bounds", REPO_ROOT / "scripts" / "check_static_bounds.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _doctor(tmp_path, name, mutate):
    record = json.loads((RESULTS / f"{name}.json").read_text())
    mutate(record)
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(record))
    return str(path)


def test_gate_passes_on_committed_json(gate, capsys):
    assert gate.main([]) == 0
    assert "OK" in capsys.readouterr().out


def test_gate_fails_when_ours_bc_ec_ordering_shifts(gate, tmp_path, capsys):
    def swap_ours_and_ec(record):
        columns = record["columns"]
        i_ours, i_ec = columns.index("ours") - 1, columns.index("ec") - 1
        cells = record["rows"][5]["cells"]
        cells[i_ours], cells[i_ec] = cells[i_ec], cells[i_ours]

    table2 = _doctor(tmp_path, "table2_ablation", swap_ours_and_ec)
    assert gate.main([table2]) == 1
    err = capsys.readouterr().err
    assert "ordering shifted" in err


def test_gate_fails_when_trackers_winner_shifts(gate, tmp_path, capsys):
    def ours_wins_trackers(record):
        columns = record["columns"]
        i_ours, i_vp = columns.index("ours") - 1, columns.index("vp") - 1
        for row in record["rows"]:
            if row["dataset"] == "trackers":
                row["cells"][i_ours] = row["cells"][i_vp]  # tie: vp no
                # longer strictly wins

    table2 = _doctor(tmp_path, "table2_ablation", ours_wins_trackers)
    assert gate.main([table2]) == 1
    assert "latency-boundness" in capsys.readouterr().err


def test_gate_fails_when_certificate_ceiling_is_violated(gate, tmp_path,
                                                         capsys):
    def absurd_time(record):
        record["rows"][0]["cells"][0] = "999999.0"

    table2 = _doctor(tmp_path, "table2_ablation", absurd_time)
    assert gate.main([table2]) == 1
    err = capsys.readouterr().err
    assert "ceiling" in err


def test_gate_fails_when_memory_row_breaks_certificate(gate, tmp_path,
                                                       capsys):
    def inflate_sm(record):
        columns = record["columns"]
        i_sm = columns.index("gpu-sm") - 1
        record["rows"][0]["cells"][i_sm] = "9.99"

    table5 = _doctor(tmp_path, "table5_memory", inflate_sm)
    assert gate.main([str(RESULTS / "table2_ablation.json"), table5]) == 1
    assert "certified" in capsys.readouterr().err


def test_gate_exits_2_for_missing_file(gate, capsys):
    assert gate.main(["/nonexistent/table2.json"]) == 2
