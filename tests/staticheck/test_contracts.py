"""Unit tests for the kernel-admission contract registry."""

from __future__ import annotations

import pytest

from repro.core.variants import get_variant
from repro.staticheck import contracts
from repro.staticheck.bounds import KernelBounds
from repro.staticheck.symbolic import Const


def _toy_contract(name: str, program: str) -> contracts.KernelContract:
    return contracts.KernelContract(
        name=name,
        program=program,
        module="repro.staticheck.fixtures",
        entry="racy_fixture_kernel",
        bounds=lambda cfg: KernelBounds(Const(1), Const(1), Const(1)),
        shared_layout=lambda cfg: {},
        reachability={"racy_fixture_kernel": ()},
        variants=lambda: {"ours": get_variant("ours")},
        params=(),
        engine_module=None,
    )


@pytest.fixture(autouse=True)
def _restore_registry():
    """Snapshot/restore the process-wide registries around each test."""
    kernels = dict(contracts._KERNEL_CONTRACTS)
    programs = dict(contracts._PROGRAM_CONTRACTS)
    yield
    contracts._KERNEL_CONTRACTS.clear()
    contracts._KERNEL_CONTRACTS.update(kernels)
    contracts._PROGRAM_CONTRACTS.clear()
    contracts._PROGRAM_CONTRACTS.update(programs)


def test_bootstrap_registers_the_known_kernels() -> None:
    contracts.load_contracts()
    names = set(contracts.all_kernel_contracts())
    assert {"scan_kernel", "loop_kernel", "bfs_kernel"} <= names
    progs = contracts.all_program_contracts()
    assert set(progs["kcore"].kernels) == {"scan_kernel", "loop_kernel"}
    assert set(progs["bfs"].kernels) == {"bfs_kernel"}


def test_lookup_error_lists_registered_names() -> None:
    contracts.load_contracts()
    with pytest.raises(KeyError, match="scan_kernel"):
        contracts.kernel_contract("no_such_kernel")
    with pytest.raises(KeyError, match="kcore"):
        contracts.program_contract("no_such_program")


def test_reregistration_same_program_is_idempotent() -> None:
    contract = _toy_contract("toy_kernel", "toy")
    contracts.register_kernel_contract(contract)
    contracts.register_kernel_contract(contract)  # no error
    assert contracts.kernel_contract("toy_kernel") is contract


def test_cross_program_name_collision_is_rejected() -> None:
    contracts.register_kernel_contract(_toy_contract("toy_kernel", "toy"))
    with pytest.raises(ValueError, match="toy"):
        contracts.register_kernel_contract(
            _toy_contract("toy_kernel", "other_program")
        )


def test_merged_reachability_rejects_disagreement() -> None:
    contracts.load_contracts()
    clash = _toy_contract("clash_kernel", "toy")
    object.__setattr__(
        clash, "reachability",
        {"scan_kernel": ("something_else",), "racy_fixture_kernel": ()},
    )
    contracts.register_kernel_contract(clash)
    with pytest.raises(ValueError, match="scan_kernel"):
        contracts.merged_reachability()


def test_certified_module_paths_cover_every_contract_module() -> None:
    contracts.load_contracts()
    paths = set(contracts.certified_module_paths())
    for contract in contracts.all_kernel_contracts().values():
        assert contract.module in paths, contract.module
        for helper in contract.helper_modules:
            assert helper in paths, helper


def test_program_variants_match_member_kernel_variants() -> None:
    contracts.load_contracts()
    for prog in contracts.all_program_contracts().values():
        prog_variants = set(prog.variants())
        for kname in prog.kernels:
            kernel_variants = set(
                contracts.kernel_contract(kname).variants()
            )
            assert prog_variants == kernel_variants, (prog.name, kname)
