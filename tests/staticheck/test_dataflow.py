"""Unit tests for the dataflow tier (`repro.staticheck.dataflow`)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import EXTENSION_VARIANTS, VARIANTS, get_variant
from repro.graph.examples import fig1_graph
from repro.staticheck import (
    DataflowChecker,
    analyze_function,
    analyze_kernel,
    predicted_tier,
    render_dataflow_certificates,
)
from repro.staticheck import fixtures
from repro.staticheck.dataflow import (
    DATAFLOW_KERNELS,
    Epoch,
    LoopShape,
    Uniformity,
    may_same_epoch,
)

ALL_VARIANTS = (*VARIANTS, *EXTENSION_VARIANTS)


# -- the lattice ---------------------------------------------------------


def test_uniformity_join_is_the_lattice_max():
    assert Uniformity.UNIFORM.join(Uniformity.AFFINE) is Uniformity.AFFINE
    assert Uniformity.AFFINE.join(Uniformity.DIVERGENT) is Uniformity.DIVERGENT
    assert Uniformity.UNIFORM < Uniformity.AFFINE < Uniformity.DIVERGENT


# -- the epoch algebra ---------------------------------------------------


def test_pre_epochs_coincide_only_at_equal_index():
    shape = LoopShape(pre=2, body=3, exit_r=0)
    assert may_same_epoch(Epoch("pre", 0), Epoch("pre", 0), shape)
    assert not may_same_epoch(Epoch("pre", 0), Epoch("pre", 1), shape)


def test_loop_epochs_coincide_modulo_the_body_length():
    shape = LoopShape(pre=0, body=2, exit_r=1)
    assert may_same_epoch(Epoch("loop", 0), Epoch("loop", 2), shape)
    assert not may_same_epoch(Epoch("loop", 0), Epoch("loop", 1), shape)


def test_pre_meets_loop_only_at_the_seam():
    shape = LoopShape(pre=1, body=2, exit_r=0)
    # the last pre epoch is the same barrier generation as loop offset 0
    assert may_same_epoch(Epoch("pre", 1), Epoch("loop", 0), shape)
    assert not may_same_epoch(Epoch("pre", 0), Epoch("loop", 0), shape)
    assert not may_same_epoch(Epoch("pre", 1), Epoch("loop", 1), shape)


def test_loop_meets_post_through_the_exit_offset():
    shape = LoopShape(pre=0, body=2, exit_r=1)
    # post@0 sits at loop offset exit_r = 1 (mod 2)
    assert may_same_epoch(Epoch("loop", 1), Epoch("post", 0), shape)
    assert not may_same_epoch(Epoch("loop", 0), Epoch("post", 0), shape)


def test_straight_line_kernels_use_index_equality():
    assert may_same_epoch(Epoch("pre", 1), Epoch("pre", 1), None)
    assert not may_same_epoch(Epoch("pre", 1), Epoch("pre", 2), None)


# -- the certificates ----------------------------------------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS)
@pytest.mark.parametrize("kernel", DATAFLOW_KERNELS)
def test_every_shipped_combo_is_proven_race_free(kernel, variant):
    cert = analyze_kernel(kernel, variant)
    assert cert.race_free, [ob.reason for ob in cert.unproven]
    assert cert.proofs, "a kernel with shared memory must have proofs"
    b = cert.bracket
    assert 0.0 <= b.divergence_lo <= b.divergence_hi <= 1.0
    assert 0.0 <= b.coalescing_lo <= b.coalescing_hi <= 1.0


def test_proofs_carry_file_line_provenance():
    cert = analyze_kernel("loop_kernel", "ours")
    for proof in cert.proofs:
        for site in (proof.a_site, proof.b_site):
            path, _, line = site.rpartition(":")
            assert path.endswith(".py")
            assert int(line) > 0


def test_ring_buffer_configs_stay_honestly_unproven():
    ring = dataclasses.replace(
        get_variant("ours"), name="ours+ring", ring_buffer=True
    )
    for kernel in DATAFLOW_KERNELS:
        cert = analyze_kernel(kernel, ring)
        assert not cert.race_free
        assert any("ring" in ob.reason or "wrap" in ob.reason
                   for ob in cert.unproven)


def test_predicted_tier_matrix():
    for name in ALL_VARIANTS:
        cfg = get_variant(name)
        assert predicted_tier("scan_kernel", cfg) == "vectorized"
        expected = "reference" if cfg.virtual_warps > 1 else "vectorized"
        assert predicted_tier("loop_kernel", cfg) == expected
        # monitored / preempting / reference-selected launches always
        # route to the interpreter
        assert predicted_tier("scan_kernel", cfg, engine="reference") \
            == "reference"
        assert predicted_tier("scan_kernel", cfg, monitored=True) \
            == "reference"
        assert predicted_tier("scan_kernel", cfg, preempt_prob=0.5) \
            == "reference"


def test_render_covers_all_combos():
    out = render_dataflow_certificates()
    for name in ALL_VARIANTS:
        for kernel in DATAFLOW_KERNELS:
            assert f"== {kernel} [{name}] ==" in out
    assert "UNPROVEN" not in out


# -- the detector fixtures -----------------------------------------------


def test_racy_fixture_yields_unproven_obligations():
    cert = analyze_function(fixtures, "racy_fixture_kernel",
                            get_variant("ours"))
    assert not cert.race_free
    assert len(cert.unproven) == 2  # shared smem race + global cross-block


def test_bracket_violation_stats_fire_divergence_bound():
    checker = DataflowChecker(get_variant("ours"))
    checker.observe("scan_kernel", fixtures.bracket_violation_stats())
    assert any(f.detector == "divergence-bound" and f.severity == "error"
               for f in checker.report.findings)


def test_precondition_violation_stats_fire_engine_precondition():
    checker = DataflowChecker(get_variant("vw2"))
    checker.observe("loop_kernel", fixtures.precondition_violation_stats())
    assert any(f.detector == "engine-precondition" and f.severity == "error"
               for f in checker.report.findings)


# -- the live checker ----------------------------------------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_fig1_launches_agree_with_the_certificates(variant):
    graph, expected = fig1_graph()
    result = gpu_peel(graph, variant=get_variant(variant), dataflow=True)
    assert [int(c) for c in result.core] == [
        expected[v] for v in range(graph.num_vertices)
    ]
    report = result.staticheck
    assert report is not None
    assert report.clean, report.summary()
    assert report.launches_checked > 0


def test_dataflow_merges_with_the_resource_tier():
    graph, _ = fig1_graph()
    both = gpu_peel(graph, options=GpuPeelOptions(
        staticheck=True, dataflow=True))
    only = gpu_peel(graph, options=GpuPeelOptions(dataflow=True))
    assert both.staticheck.clean
    # both tiers observe every launch, so the merged count doubles
    assert both.staticheck.launches_checked \
        == 2 * only.staticheck.launches_checked


def test_dataflow_never_perturbs_the_run():
    graph, _ = fig1_graph()
    plain = gpu_peel(graph)
    checked = gpu_peel(graph, dataflow=True)
    assert plain.staticheck is None
    assert checked.simulated_ms == plain.simulated_ms
    assert checked.counters == plain.counters
