"""Folded-stack (flamegraph) export of a profile report.

Emits the classic ``stack;frames count`` format consumed by
``flamegraph.pl``, speedscope, and most flamegraph viewers: one line
per stack, frames separated by ``;``, a space, then the sample weight.
The stack here is *attribution*, not call depth::

    gpu-bc;scan_blocks;round k=4;compute 1234

i.e. algorithm ▸ kernel ▸ peel round ▸ bounding pipeline, weighted by
the simulated cycles that pipeline bounded (the launch's ``dominated``
buckets, plus a ``barrier`` frame).  Widths therefore reproduce the
speed-of-light partition exactly: every launch's frames sum to its
busy cycles, and the root width is the run's total busy time.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.profile.report import ProfileReport

__all__ = ["to_folded", "write_folded"]


def _frame(text: str) -> str:
    """Sanitise one frame: the format reserves ``;`` (frame separator)
    and whitespace (a space splits the stack from its count, a newline
    splits records), so kernel labels carrying either would corrupt the
    file.  All whitespace runs collapse to ``_``."""
    return "_".join(text.replace(";", ",").split()) or "?"


def to_folded(report: "ProfileReport") -> str:
    """Render ``report`` as folded stacks (one string, newline-joined).

    Weights are simulated cycles rounded to integers (the folded format
    expects integral sample counts); zero-weight frames are dropped.
    """
    root = _frame(report.algorithm or "run")
    if report.variant and report.variant not in (report.algorithm or ""):
        root = f"{root}({_frame(report.variant)})"
    stacks: Dict[str, float] = {}
    for launch in report.launches:
        base = [root, _frame(launch.kernel)]
        if launch.round_index is not None:
            base.append(f"round k={launch.round_index}")
        for pipeline, cycles in launch.dominated.items():
            if cycles > 0:
                key = ";".join(base + [_frame(pipeline)])
                stacks[key] = stacks.get(key, 0.0) + cycles
        if launch.barrier_cycles > 0:
            key = ";".join(base + ["barrier"])
            stacks[key] = stacks.get(key, 0.0) + launch.barrier_cycles
    lines: List[str] = []
    for key, weight in stacks.items():
        count = round(weight)
        if count > 0:
            lines.append(f"{key} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded(report: "ProfileReport", path: "str | Path") -> None:
    """Write :func:`to_folded` output to ``path``."""
    Path(path).write_text(to_folded(report), encoding="utf-8")
