"""The kernel profiler: per-launch speed-of-light attribution.

An Nsight-Compute-style profiler over the simulated GPU.  Attached to a
:class:`~repro.gpusim.device.Device` (``Device(profile=True)``), it
receives every launch's :class:`~repro.gpusim.scheduler.KernelStats`
*with* the raw per-block :class:`~repro.gpusim.costmodel.BlockTiming`
records and turns them into a :class:`LaunchProfile` — the simulated
analogue of one ``ncu`` speed-of-light section:

* **bound classification** — each block's busy time is
  ``max(compute, memory, latency) + barriers`` (exactly
  :meth:`~repro.gpusim.costmodel.CostModel.block_cycles`); the block is
  attributed to the pipeline that won the max, and the launch is
  classified by which pipeline bounded the most busy cycles;
* **pipeline utilisation** — each roofline term as a percentage of the
  launch's total block-busy cycles (the three percentages do *not* sum
  to 100: pipelines overlap, the max combiner picks the ceiling);
* **achieved occupancy** — mean SM busy time over the busiest SM's,
  i.e. how evenly the round-robin block assignment filled the device
  (``kernel cycles == max SM load``, so low occupancy means idle SMs);
* **divergence efficiency** — active lanes per global-memory
  warp-instruction over the warp width;
* **coalescing efficiency** — the transactions a perfectly coalesced
  layout would have needed over the transactions actually issued;
* **atomic-serialisation share** — cycles spent inside atomic
  serialisation (base + conflict), summed over *every* warp, over busy
  cycles.  Unlike the efficiency ratios this can exceed 1: busy time
  only counts each block's slowest warp, so a launch whose warps all
  serialise on atomics concurrently carries more atomic cycles than
  critical-path cycles — exactly the congestion signal the metric is
  for.

Profiling is observability-only: every input is a tally the simulator
produces anyway, so a profiled run's simulated time is byte-identical
to an unprofiled one (asserted by
``tests/properties/test_profile.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.gpusim.costmodel import BlockTiming, CostModel
from repro.gpusim.spec import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.scheduler import KernelStats
    from repro.profile.report import ProfileReport

__all__ = ["PIPELINES", "LaunchProfile", "KernelProfiler"]

#: the three roofline pipelines, in tie-break priority order (a block
#: whose terms tie is attributed to the earliest)
PIPELINES: Tuple[str, ...] = ("compute", "memory", "latency")


@dataclass(frozen=True)
class LaunchProfile:
    """Speed-of-light report of one kernel launch (all cycles simulated).

    ``dominated`` maps each pipeline to the roofline-term cycles of the
    blocks it bounded; together with ``barrier_cycles`` the buckets
    partition ``busy_cycles`` exactly:
    ``sum(dominated.values()) + barrier_cycles == busy_cycles``.
    """

    kernel: str
    #: launch sequence number on the device (0-based)
    index: int
    #: host peel round the launch belongs to, when the host annotated it
    round_index: Optional[int]
    grid_dim: int
    block_dim: int
    #: kernel duration — the busiest SM's drain time
    cycles: float
    #: sum of every block's busy cycles (``CostModel.block_cycles``)
    busy_cycles: float
    #: roofline terms summed over blocks
    compute_cycles: float
    memory_cycles: float
    latency_cycles: float
    barrier_cycles: float
    #: the pipeline that bounded the most busy cycles
    bound: str
    #: pipeline -> roofline-term cycles of the blocks it bounded
    dominated: Dict[str, float]
    #: pipeline -> term / busy_cycles * 100 (plus ``"barrier"``)
    sol_pct: Dict[str, float]
    achieved_occupancy: float
    divergence_efficiency: float
    coalescing_efficiency: float
    atomic_share: float
    #: raw tallies, kept so aggregates recompute efficiencies exactly
    mem_transactions: float = 0.0
    mem_accesses: float = 0.0
    mem_active_lanes: float = 0.0
    mem_ideal_transactions: float = 0.0
    atomic_cycles: float = 0.0
    #: ``"simt"`` for real scheduler launches, ``"charge"`` for coarse
    #: records of labelled :meth:`~repro.gpusim.device.Device.charge`
    #: calls (the system emulations' logical kernels, which have no
    #: per-block timings to attribute)
    source: str = "simt"

    def to_json(self) -> Dict[str, Any]:
        """One launch entry of the ``repro.profile/v1`` schema."""
        return {
            "kernel": self.kernel,
            "source": self.source,
            "index": self.index,
            "round": self.round_index,
            "grid_dim": self.grid_dim,
            "block_dim": self.block_dim,
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "terms": {
                "compute": self.compute_cycles,
                "memory": self.memory_cycles,
                "latency": self.latency_cycles,
                "barrier": self.barrier_cycles,
            },
            "bound": self.bound,
            "dominated": dict(self.dominated),
            "sol_pct": dict(self.sol_pct),
            "achieved_occupancy": self.achieved_occupancy,
            "divergence_efficiency": self.divergence_efficiency,
            "coalescing_efficiency": self.coalescing_efficiency,
            "atomic_share": self.atomic_share,
        }


@dataclass
class KernelProfiler:
    """Collects one :class:`LaunchProfile` per kernel launch.

    A device with a profiler attached passes ``collect_timings=True``
    to the scheduler and calls :meth:`record_launch` after every
    launch.  The host peel loop annotates rounds via :meth:`set_round`
    and run-level labels (variant, dataset) via :meth:`annotate`; both
    are optional — a bare device still profiles, just without the
    round/variant grouping.
    """

    launches: List[LaunchProfile] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)
    _round: Optional[int] = None
    _spec: Optional[DeviceSpec] = None
    _cost: Optional[CostModel] = None

    # -- host annotations ----------------------------------------------------

    def set_round(self, k: Optional[int]) -> None:
        """Stamp subsequent launches with peel round ``k`` (None clears)."""
        self._round = k

    def annotate(self, **labels: str) -> None:
        """Attach run-level labels (``variant=...``, ``dataset=...``)."""
        self.labels.update(labels)

    # -- recording -----------------------------------------------------------

    def record_launch(
        self,
        name: str,
        stats: "KernelStats",
        grid_dim: int,
        block_dim: int,
        spec: DeviceSpec,
        cost: CostModel,
    ) -> LaunchProfile:
        """Fold one launch's stats into a :class:`LaunchProfile`."""
        timings = stats.block_timings
        if timings is None:
            raise ValueError(
                "profiling needs per-block timings: run the launch with "
                "collect_timings=True (Device(profile=True) does)"
            )
        self._spec, self._cost = spec, cost
        profile = self._profile_launch(
            name, stats, timings, grid_dim, block_dim, spec, cost
        )
        self.launches.append(profile)
        return profile

    def record_charge(
        self,
        label: str,
        cycles: float,
        launches: int = 0,
        args: Optional[Dict[str, Any]] = None,
        spec: Optional[DeviceSpec] = None,
        cost: Optional[CostModel] = None,
    ) -> LaunchProfile:
        """Fold one labelled :meth:`Device.charge` into a coarse record.

        The system emulations book logical-kernel time without SIMT
        launches, so there are no per-block timings to attribute: the
        record carries the charged cycles under ``source="charge"``
        with every roofline term zero (which satisfies the
        ``repro.profile/v1`` partition invariants trivially — zero busy
        cycles partition into zero buckets).  It still participates in
        per-kernel/per-round cycle aggregation, so ``--ncu`` shows
        where a Gunrock or Medusa run spends its time.
        """
        if spec is not None:
            self._spec = spec
        if cost is not None:
            self._cost = cost
        profile = LaunchProfile(
            kernel=label,
            index=len(self.launches),
            round_index=self._round,
            grid_dim=0,
            block_dim=0,
            cycles=float(cycles),
            busy_cycles=0.0,
            compute_cycles=0.0,
            memory_cycles=0.0,
            latency_cycles=0.0,
            barrier_cycles=0.0,
            bound=PIPELINES[0],
            dominated={name: 0.0 for name in PIPELINES},
            sol_pct={
                "compute": 0.0, "memory": 0.0,
                "latency": 0.0, "barrier": 0.0,
            },
            achieved_occupancy=0.0,
            divergence_efficiency=1.0,
            coalescing_efficiency=1.0,
            atomic_share=0.0,
            source="charge",
        )
        self.launches.append(profile)
        return profile

    def _profile_launch(
        self,
        name: str,
        stats: "KernelStats",
        timings: Tuple[BlockTiming, ...],
        grid_dim: int,
        block_dim: int,
        spec: DeviceSpec,
        cost: CostModel,
    ) -> LaunchProfile:
        compute = memory = latency = barrier = busy = 0.0
        dominated = {name_: 0.0 for name_ in PIPELINES}
        sm_load = [0.0] * max(1, spec.num_sms)
        for i, timing in enumerate(timings):
            c, m, lat = cost.pipeline_terms(timing)
            bar = timing.barriers * cost.barrier_cycles
            block_busy = cost.block_cycles(timing)
            compute += c
            memory += m
            latency += lat
            barrier += bar
            terms = {"compute": c, "memory": m, "latency": lat}
            busy += block_busy
            winner = max(PIPELINES, key=lambda p: terms[p])
            dominated[winner] += terms[winner]
            sm_load[i % len(sm_load)] += block_busy
        bound = max(PIPELINES, key=lambda p: dominated[p])
        peak_sm = max(sm_load)
        occupancy = (
            sum(sm_load) / (peak_sm * len(sm_load)) if peak_sm > 0 else 0.0
        )
        sol_pct = {
            "compute": 100.0 * compute / busy if busy else 0.0,
            "memory": 100.0 * memory / busy if busy else 0.0,
            "latency": 100.0 * latency / busy if busy else 0.0,
            "barrier": 100.0 * barrier / busy if busy else 0.0,
        }
        divergence = (
            stats.mem_active_lanes / (stats.mem_accesses * spec.warp_size)
            if stats.mem_accesses
            else 1.0
        )
        coalescing = (
            stats.mem_ideal_transactions / stats.mem_transactions
            if stats.mem_transactions
            else 1.0
        )
        return LaunchProfile(
            kernel=name,
            index=len(self.launches),
            round_index=self._round,
            grid_dim=grid_dim,
            block_dim=block_dim,
            cycles=stats.cycles,
            busy_cycles=busy,
            compute_cycles=compute,
            memory_cycles=memory,
            latency_cycles=latency,
            barrier_cycles=barrier,
            bound=bound,
            dominated=dominated,
            sol_pct=sol_pct,
            achieved_occupancy=occupancy,
            divergence_efficiency=divergence,
            coalescing_efficiency=coalescing,
            atomic_share=stats.atomic_cycles / busy if busy else 0.0,
            mem_transactions=stats.mem_transactions,
            mem_accesses=stats.mem_accesses,
            mem_active_lanes=stats.mem_active_lanes,
            mem_ideal_transactions=stats.mem_ideal_transactions,
            atomic_cycles=stats.atomic_cycles,
        )

    # -- report --------------------------------------------------------------

    def report(self, algorithm: Optional[str] = None) -> "ProfileReport":
        """Assemble the collected launches into a
        :class:`~repro.profile.report.ProfileReport`."""
        from repro.profile.report import ProfileReport

        device: Dict[str, Any] = {}
        if self._spec is not None:
            device = {
                "name": self._spec.name,
                "num_sms": self._spec.num_sms,
                "warp_size": self._spec.warp_size,
            }
        if self._cost is not None:
            device["cost_model"] = {
                "issue_width": self._cost.issue_width,
                "mem_transaction_cycles": self._cost.mem_transaction_cycles,
                "global_load_latency": self._cost.global_load_latency,
                "barrier_cycles": self._cost.barrier_cycles,
            }
        return ProfileReport(
            algorithm=algorithm or self.labels.get("algorithm"),
            variant=self.labels.get("variant"),
            dataset=self.labels.get("dataset"),
            device=device,
            launches=tuple(self.launches),
        )
