"""Profile aggregation, the ``repro.profile/v1`` schema, and rendering.

A :class:`ProfileReport` wraps the per-launch
:class:`~repro.profile.profiler.LaunchProfile` records of one run and
derives the two aggregations the paper's ablation discussion needs:

* **per kernel** — total cycles, bound class and efficiency figures per
  kernel function (the Table II argument is a per-kernel statement:
  the compaction variants pay extra *scan/loop instructions* while the
  frontier work stays memory-bound);
* **per round** — the same figures per peel round, which is how the
  frontier-decay regimes (the huge ``k=0`` spike vs the long tail)
  show up as bound-class shifts over a run.

``to_json()`` emits the ``repro.profile/v1`` record;
:func:`validate_profile` checks a parsed record against the schema
*and* its arithmetic invariants (the dominated buckets plus barrier
cycles partition busy cycles; the max roofline term never exceeds
busy-minus-barrier, the term sum never undershoots it), so a report
whose numbers stopped agreeing with
:meth:`~repro.gpusim.costmodel.CostModel.block_cycles` fails
validation rather than silently misattributing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.profile.profiler import PIPELINES, LaunchProfile

__all__ = [
    "SCHEMA_VERSION",
    "AggregateProfile",
    "ProfileReport",
    "validate_profile",
    "validate_profile_file",
]

SCHEMA_VERSION = "repro.profile/v1"

#: relative slack for the float-sum invariants of the validator
_REL_TOL = 1e-6


@dataclass(frozen=True)
class AggregateProfile:
    """Launch profiles folded over one key (kernel, round, or the run)."""

    key: str
    launches: int
    cycles: float
    busy_cycles: float
    compute_cycles: float
    memory_cycles: float
    latency_cycles: float
    barrier_cycles: float
    bound: str
    dominated: Dict[str, float]
    achieved_occupancy: float
    divergence_efficiency: float
    coalescing_efficiency: float
    atomic_share: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "launches": self.launches,
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "terms": {
                "compute": self.compute_cycles,
                "memory": self.memory_cycles,
                "latency": self.latency_cycles,
                "barrier": self.barrier_cycles,
            },
            "bound": self.bound,
            "dominated": dict(self.dominated),
            "achieved_occupancy": self.achieved_occupancy,
            "divergence_efficiency": self.divergence_efficiency,
            "coalescing_efficiency": self.coalescing_efficiency,
            "atomic_share": self.atomic_share,
        }


def _aggregate(key: str, launches: Sequence[LaunchProfile]) -> AggregateProfile:
    busy = sum(p.busy_cycles for p in launches)
    dominated = {name: 0.0 for name in PIPELINES}
    for p in launches:
        for name, value in p.dominated.items():
            dominated[name] = dominated.get(name, 0.0) + value
    mem_accesses = sum(p.mem_accesses for p in launches)
    mem_tx = sum(p.mem_transactions for p in launches)
    occupancy = (
        sum(p.achieved_occupancy * p.busy_cycles for p in launches) / busy
        if busy
        else 0.0
    )
    # efficiencies recompute from the raw tallies, not from averaging
    # per-launch ratios, so tiny launches cannot skew them
    lanes = sum(p.mem_active_lanes for p in launches)
    ideal = sum(p.mem_ideal_transactions for p in launches)
    warp = 32.0
    return AggregateProfile(
        key=key,
        launches=len(launches),
        cycles=sum(p.cycles for p in launches),
        busy_cycles=busy,
        compute_cycles=sum(p.compute_cycles for p in launches),
        memory_cycles=sum(p.memory_cycles for p in launches),
        latency_cycles=sum(p.latency_cycles for p in launches),
        barrier_cycles=sum(p.barrier_cycles for p in launches),
        bound=max(PIPELINES, key=lambda n: dominated[n]),
        dominated=dominated,
        achieved_occupancy=occupancy,
        divergence_efficiency=lanes / (mem_accesses * warp)
        if mem_accesses
        else 1.0,
        coalescing_efficiency=ideal / mem_tx if mem_tx else 1.0,
        atomic_share=sum(p.atomic_cycles for p in launches) / busy
        if busy
        else 0.0,
    )


@dataclass(frozen=True)
class ProfileReport:
    """The full profile of one run; see the module docstring."""

    algorithm: Optional[str]
    variant: Optional[str]
    dataset: Optional[str]
    device: Dict[str, Any]
    launches: Tuple[LaunchProfile, ...]

    # -- aggregations --------------------------------------------------------

    def kernels(self) -> Dict[str, AggregateProfile]:
        """Aggregate per kernel function, in first-launch order."""
        by_kernel: Dict[str, List[LaunchProfile]] = {}
        for p in self.launches:
            by_kernel.setdefault(p.kernel, []).append(p)
        return {
            name: _aggregate(name, group)
            for name, group in by_kernel.items()
        }

    def rounds(self) -> List[AggregateProfile]:
        """Aggregate per annotated peel round, in round order."""
        by_round: Dict[int, List[LaunchProfile]] = {}
        for p in self.launches:
            if p.round_index is not None:
                by_round.setdefault(p.round_index, []).append(p)
        return [
            _aggregate(f"round k={k}", by_round[k])
            for k in sorted(by_round)
        ]

    def summary(self) -> AggregateProfile:
        """Whole-run aggregate."""
        return _aggregate("total", self.launches)

    @property
    def bound(self) -> str:
        """The run-level bound class (of :meth:`summary`)."""
        return self.summary().bound

    # -- export --------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The ``repro.profile/v1`` record."""
        return {
            "schema": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "variant": self.variant,
            "dataset": self.dataset,
            "device": dict(self.device),
            "launches": [p.to_json() for p in self.launches],
            "kernels": {
                name: agg.to_json() for name, agg in self.kernels().items()
            },
            "rounds": [agg.to_json() for agg in self.rounds()],
            "summary": self.summary().to_json(),
        }

    def write(self, path: "str | Path") -> None:
        """Serialise :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)

    def to_folded(self) -> str:
        """Folded-stack export; see :mod:`repro.profile.flamegraph`."""
        from repro.profile.flamegraph import to_folded

        return to_folded(self)

    def write_folded(self, path: "str | Path") -> None:
        from repro.profile.flamegraph import write_folded

        write_folded(self, path)

    # -- human-readable table ------------------------------------------------

    def render(self) -> str:
        """The ``--ncu`` console report: a speed-of-light table."""
        label = self.algorithm or "run"
        if self.dataset:
            label += f" on {self.dataset}"
        device = self.device.get("name", "device")
        lines = [
            f"Speed-of-Light: {label} ({device})",
            "=" * max(24, len(label) + len(str(device)) + 20),
        ]
        header = (
            f"{'kernel':<16} {'launches':>8} {'cycles':>12} {'bound':>8} "
            f"{'comp%':>6} {'mem%':>6} {'lat%':>6} {'barr%':>6} "
            f"{'occ':>5} {'dvrg':>5} {'coal':>5} {'atom':>5}"
        )
        lines.append(header)
        lines.append("-" * len(header))

        def row(agg: AggregateProfile) -> str:
            busy = agg.busy_cycles or 1.0
            return (
                f"{agg.key:<16} {agg.launches:>8} {agg.cycles:>12.0f} "
                f"{agg.bound:>8} "
                f"{100 * agg.compute_cycles / busy:>6.1f} "
                f"{100 * agg.memory_cycles / busy:>6.1f} "
                f"{100 * agg.latency_cycles / busy:>6.1f} "
                f"{100 * agg.barrier_cycles / busy:>6.1f} "
                f"{agg.achieved_occupancy:>5.2f} "
                f"{agg.divergence_efficiency:>5.2f} "
                f"{agg.coalescing_efficiency:>5.2f} "
                f"{agg.atomic_share:>5.2f}"
            )

        for agg in self.kernels().values():
            lines.append(row(agg))
        lines.append("-" * len(header))
        lines.append(row(self.summary()))
        rounds = self.rounds()
        if rounds:
            heaviest = sorted(
                rounds, key=lambda a: a.cycles, reverse=True
            )[:5]
            lines.append("")
            lines.append("heaviest rounds:")
            for agg in heaviest:
                lines.append(f"  {row(agg)}")
        return "\n".join(lines)


# -- validation ---------------------------------------------------------------


def _check_entry(
    entry: Any, where: str, errors: List[str], want_kernel: bool
) -> None:
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return
    key = "kernel" if want_kernel else "key"
    if not isinstance(entry.get(key), str) or not entry.get(key):
        errors.append(f"{where}: missing or empty {key!r}")
    for name in ("cycles", "busy_cycles"):
        value = entry.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: {name!r} must be a number")
            return
        if value < 0:
            errors.append(f"{where}: negative {name!r} ({value})")
    terms = entry.get("terms")
    if not isinstance(terms, dict) or set(terms) != {
        "compute", "memory", "latency", "barrier",
    }:
        errors.append(
            f"{where}: 'terms' must map exactly "
            "compute/memory/latency/barrier"
        )
        return
    for name, value in terms.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: terms.{name} must be a number")
            return
    bound = entry.get("bound")
    if bound not in PIPELINES:
        errors.append(
            f"{where}: 'bound' must be one of {PIPELINES}, got {bound!r}"
        )
    dominated = entry.get("dominated")
    if not isinstance(dominated, dict):
        errors.append(f"{where}: 'dominated' must be an object")
        return
    busy = float(entry["busy_cycles"])
    tol = _REL_TOL * max(1.0, busy)
    # invariant 1: dominated buckets + barrier partition busy cycles
    parts = sum(float(v) for v in dominated.values()) + float(
        terms["barrier"]
    )
    if abs(parts - busy) > tol:
        errors.append(
            f"{where}: dominated buckets + barrier ({parts:g}) do not "
            f"partition busy_cycles ({busy:g})"
        )
    # invariant 2: roofline bracketing of the busy time
    roof = busy - float(terms["barrier"])
    biggest = max(
        float(terms["compute"]), float(terms["memory"]),
        float(terms["latency"]),
    )
    total = (
        float(terms["compute"]) + float(terms["memory"])
        + float(terms["latency"])
    )
    if biggest - roof > tol:
        errors.append(
            f"{where}: max pipeline term ({biggest:g}) exceeds busy "
            f"minus barrier ({roof:g})"
        )
    if roof - total > tol:
        errors.append(
            f"{where}: busy minus barrier ({roof:g}) exceeds the term "
            f"sum ({total:g})"
        )
    # invariant 3: the declared bound is the largest dominated bucket
    if bound in PIPELINES and dominated:
        best = max(float(v) for v in dominated.values())
        if float(dominated.get(bound, 0.0)) < best - tol:
            errors.append(
                f"{where}: bound {bound!r} is not the largest "
                "dominated bucket"
            )
    for name in (
        "achieved_occupancy", "divergence_efficiency",
        "coalescing_efficiency",
    ):
        value = entry.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: {name!r} must be a number")
        elif not (0.0 <= float(value) <= 1.0 + _REL_TOL):
            errors.append(f"{where}: {name!r} out of [0, 1] ({value})")
    # atomic_share may exceed 1: atomic cycles sum over every warp,
    # while busy time only counts each block's slowest warp
    atomic = entry.get("atomic_share")
    if not isinstance(atomic, (int, float)) or isinstance(atomic, bool):
        errors.append(f"{where}: 'atomic_share' must be a number")
    elif float(atomic) < 0.0:
        errors.append(f"{where}: negative 'atomic_share' ({atomic})")


def validate_profile(record: Any) -> List[str]:
    """Check a parsed ``repro.profile/v1`` record; return problems."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION!r}, got {record.get('schema')!r}"
        )
    launches = record.get("launches")
    if not isinstance(launches, list):
        return errors + ["'launches' must be a list"]
    for i, entry in enumerate(launches):
        _check_entry(entry, f"launches[{i}]", errors, want_kernel=True)
    kernels = record.get("kernels")
    if not isinstance(kernels, dict):
        errors.append("'kernels' must be an object")
    else:
        for name, entry in kernels.items():
            _check_entry(entry, f"kernels[{name}]", errors, want_kernel=False)
    rounds = record.get("rounds")
    if not isinstance(rounds, list):
        errors.append("'rounds' must be a list")
    else:
        for i, entry in enumerate(rounds):
            _check_entry(entry, f"rounds[{i}]", errors, want_kernel=False)
    summary = record.get("summary")
    if summary is None:
        errors.append("missing 'summary'")
    else:
        _check_entry(summary, "summary", errors, want_kernel=False)
        if isinstance(summary, dict) and isinstance(launches, list):
            declared = summary.get("launches")
            if declared != len(launches):
                errors.append(
                    f"summary.launches ({declared}) != "
                    f"len(launches) ({len(launches)})"
                )
    return errors


def validate_profile_file(path: "str | Path") -> List[str]:
    """Validate one exported profile JSON file."""
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    return [f"{path.name}: {p}" for p in validate_profile(record)]
