"""Nsight-Compute-style profiler for the simulated GPU.

``Device(profile=True)`` attaches a :class:`KernelProfiler`; every
launch then yields a speed-of-light :class:`LaunchProfile` (bound
classification, pipeline utilisation, achieved occupancy, divergence /
coalescing efficiency, atomic-serialisation share), and
:meth:`KernelProfiler.report` folds them into a :class:`ProfileReport`
with per-kernel and per-round aggregation, ``repro.profile/v1`` JSON
export, a human-readable table (the CLI's ``--ncu`` mode), and
folded-stack flamegraph output.  Profiling is observability-only:
simulated time is byte-identical with it on or off.

See ``docs/OBSERVABILITY.md`` for a walkthrough.
"""

from repro.profile.flamegraph import to_folded, write_folded
from repro.profile.profiler import PIPELINES, KernelProfiler, LaunchProfile
from repro.profile.report import (
    SCHEMA_VERSION,
    AggregateProfile,
    ProfileReport,
    validate_profile,
    validate_profile_file,
)

__all__ = [
    "PIPELINES",
    "SCHEMA_VERSION",
    "AggregateProfile",
    "KernelProfiler",
    "LaunchProfile",
    "ProfileReport",
    "to_folded",
    "validate_profile",
    "validate_profile_file",
    "write_folded",
]
