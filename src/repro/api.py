"""Top-level convenience API and the algorithm registry.

``decompose(graph, algorithm=...)`` runs any program in the repository
by its Table III/IV name.  The registry is also what the benchmark
harness iterates over, so the set of names here *is* the set of columns
the paper's tables have.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, FrozenSet, Tuple

from repro.core.fastpath import fast_decompose
from repro.core.host import gpu_peel
from repro.core.multigpu import multi_gpu_peel
from repro.core.variants import variant_names
from repro.cpu.bz import bz_decompose
from repro.cpu.mpm import mpm_decompose
from repro.cpu.naive import networkx_style_decompose
from repro.cpu.park import park_decompose
from repro.cpu.pkc import pkc_decompose
from repro.errors import UnknownAlgorithmError
from repro.graph.csr import CSRGraph
from repro.result import DecompositionResult
from repro.systems.gswitch import gswitch_decompose
from repro.systems.gunrock import gunrock_decompose
from repro.systems.medusa import medusa_decompose
from repro.systems.vetga import vetga_decompose

__all__ = [
    "ALGORITHMS",
    "CRITPATHABLE",
    "ENGINEABLE",
    "MEMTRACEABLE",
    "PROFILABLE",
    "DATAFLOWABLE",
    "SANITIZABLE",
    "STATICHECKABLE",
    "algorithm_names",
    "decompose",
]

#: the graph-parallel system emulations of Table III
_SYSTEM_NAMES = ("vetga", "medusa-mpm", "medusa-peel", "gunrock", "gswitch")

Runner = Callable[..., DecompositionResult]


def _gpu_variant_runner(variant: str) -> Runner:
    def run(graph: CSRGraph, **kwargs) -> DecompositionResult:
        return gpu_peel(graph, variant=variant, **kwargs)

    return run


def _semi_external_runner(graph: CSRGraph, **kwargs) -> DecompositionResult:
    """Spill the graph to a temporary directory and run the disk path."""
    import tempfile

    from repro.cpu.external import decompose_graph_via_disk

    with tempfile.TemporaryDirectory() as work_dir:
        return decompose_graph_via_disk(graph, work_dir, **kwargs)


def _fast_runner(
    graph: CSRGraph, sanitize: bool = False, **kwargs
) -> DecompositionResult:
    result = fast_decompose(graph)
    if not sanitize:
        return result
    # the native path launches no kernels: sanitize degrades to the
    # static lint sweep over the shipped kernel sources
    from repro.sanitize.lint import lint_repo

    return replace(result, sanitizer=lint_repo())


def _build_registry() -> Dict[str, Runner]:
    registry: Dict[str, Runner] = {
        # the paper's own program and its fast native path
        "gpu-ours": _gpu_variant_runner("ours"),
        "fast": _fast_runner,
        # CPU programs (Table IV)
        "networkx": networkx_style_decompose,
        "bz": bz_decompose,
        "park-serial": lambda g, **kw: park_decompose(g, parallel=False, **kw),
        "park": lambda g, **kw: park_decompose(g, parallel=True, **kw),
        "pkc-o-serial": lambda g, **kw: pkc_decompose(
            g, parallel=False, compact=False, **kw
        ),
        "pkc-o": lambda g, **kw: pkc_decompose(
            g, parallel=True, compact=False, **kw
        ),
        "mpm": lambda g, **kw: mpm_decompose(g, parallel=True, **kw),
        "mpm-serial": lambda g, **kw: mpm_decompose(g, parallel=False, **kw),
        "pkc-serial": lambda g, **kw: pkc_decompose(
            g, parallel=False, compact=True, **kw
        ),
        "pkc": lambda g, **kw: pkc_decompose(g, parallel=True, compact=True, **kw),
        # the Section II-C semi-external (disk-streaming) model
        "semi-external": _semi_external_runner,
        # GPU systems (Table III)
        "vetga": vetga_decompose,
        "medusa-mpm": lambda g, **kw: medusa_decompose(g, program="mpm", **kw),
        "medusa-peel": lambda g, **kw: medusa_decompose(g, program="peel", **kw),
        "gunrock": gunrock_decompose,
        "gswitch": gswitch_decompose,
        # the Section VII future-work extension
        "gpu-multi2": lambda g, **kw: multi_gpu_peel(g, num_devices=2, **kw),
        "gpu-multi4": lambda g, **kw: multi_gpu_peel(g, num_devices=4, **kw),
    }
    # the ablation variants (Table II): gpu-ours, gpu-sm, gpu-vp, ...
    for name in variant_names():
        registry.setdefault(f"gpu-{name}", _gpu_variant_runner(name))
    return registry


#: name -> runner for every program in the repository
ALGORITHMS: Dict[str, Runner] = _build_registry()

#: algorithms whose runner accepts ``sanitize=True`` (the kernel
#: sanitizer, ``docs/SANITIZER.md``): the simulated-GPU kernels get the
#: dynamic racecheck, the system emulations and the native fast path
#: get the static lint sweep; the CPU baselines model no device and
#: support neither
SANITIZABLE: FrozenSet[str] = frozenset(
    name
    for name in ALGORITHMS
    if name == "fast" or name.startswith("gpu-") or name in _SYSTEM_NAMES
)


#: algorithms whose runner accepts ``staticheck=True`` (the static
#: resource certifier's differential checker, ``docs/STATIC_ANALYSIS.md``):
#: the single-GPU peeling variants, whose kernels have closed-form
#: certificates in ``repro.staticheck``.  The system emulations and CPU
#: baselines launch no SIMT kernels, and the multi-GPU runner composes
#: per-device runs the checker does not yet model.
STATICHECKABLE: FrozenSet[str] = frozenset(
    f"gpu-{name}" for name in variant_names()
)


#: algorithms whose runner accepts ``dataflow=True`` (the static
#: dataflow analyzer's launch checker, :mod:`repro.staticheck.dataflow`):
#: the single-GPU peeling variants, whose two kernels the abstract
#: interpreter covers.  Unlike ``staticheck`` the dataflow tier also
#: accepts ring-buffer configs — their undischargeable race obligations
#: surface as explicit ``unproven-race-freedom`` warnings.
DATAFLOWABLE: FrozenSet[str] = frozenset(
    f"gpu-{name}" for name in variant_names()
)


#: the multicore CPU baselines (Table IV), whose runners accept
#: ``profile=True`` (per-epoch bound attribution,
#: :mod:`repro.multicore.profile`) and ``memtrace=True``
#: (allocation-lifetime telemetry for the modelled working arrays)
_MULTICORE_NAMES = (
    "park", "park-serial",
    "pkc", "pkc-serial", "pkc-o", "pkc-o-serial",
    "mpm", "mpm-serial",
)


#: algorithms whose runner accepts ``profile=True`` (the kernel
#: profiler's speed-of-light reports, :mod:`repro.profile`): the
#: single-GPU peeling variants, which launch real SIMT kernels whose
#: per-block timings the profiler attributes, plus the system
#: emulations, whose labelled :meth:`~repro.gpusim.device.Device.charge`
#: calls become coarse ``source="charge"`` records, plus the multicore
#: CPU baselines, whose :class:`~repro.multicore.machine.
#: SimulatedMulticore` attributes every epoch to a roofline-style
#: bound class (``repro.cpu-epochs/v1``).  The multi-GPU runner
#: composes per-device runs the profiler does not yet merge.
PROFILABLE: FrozenSet[str] = (
    frozenset(f"gpu-{name}" for name in variant_names())
    | frozenset(_SYSTEM_NAMES)
    | frozenset(_MULTICORE_NAMES)
)


#: algorithms whose runner accepts ``engine=...`` (an execution-engine
#: selection for the SIMT simulator, ``docs/SIMULATOR.md``): the
#: single- and multi-GPU peeling runners, whose kernels run on a
#: :class:`~repro.gpusim.device.Device`.  Engines are byte-identical by
#: contract, so the choice only affects host wall-clock time.  The CPU
#: baselines, the native fast path and the system emulations take no
#: engine (the emulations charge logical kernels without executing
#: SIMT code).
ENGINEABLE: FrozenSet[str] = frozenset(
    name for name in ALGORITHMS if name.startswith("gpu-")
)


#: algorithms whose runner accepts ``memtrace=True`` (memory telemetry
#: with exact peak attribution, :mod:`repro.memtrace`): everything that
#: models memory — the single- and multi-GPU peeling runners and the
#: system emulations (simulated device memory), the multicore CPU
#: baselines and the semi-external disk path (modelled host working
#: arrays).  The serial reference implementations (``bz``,
#: ``networkx``) and the native fast path model no memory.
MEMTRACEABLE: FrozenSet[str] = (
    frozenset(name for name in ALGORITHMS if name.startswith("gpu-"))
    | frozenset(_SYSTEM_NAMES)
    | frozenset(_MULTICORE_NAMES)
    | frozenset({"semi-external"})
)


#: algorithms whose runner accepts ``critpath=True`` (the causal
#: critical-path analyzer with what-if projections,
#: :mod:`repro.obs.critpath`): the single-GPU peeling variants, whose
#: per-block kernel timings the analyzer replays exactly, and the
#: multi-GPU runners, whose coordinator cost terms it attributes to
#: compute-, straggler-, or exchange-bound rounds.  The system
#: emulations charge logical kernels without per-block timings, and the
#: CPU baselines model no device timeline, so neither can be analyzed.
CRITPATHABLE: FrozenSet[str] = (
    frozenset(f"gpu-{name}" for name in variant_names())
    | frozenset({"gpu-multi2", "gpu-multi4"})
)


def algorithm_names() -> Tuple[str, ...]:
    """All registered program names."""
    return tuple(ALGORITHMS)


def decompose(
    graph: CSRGraph, algorithm: str = "gpu-ours", **kwargs
) -> DecompositionResult:
    """Run the named program on ``graph``.

    Args:
        graph: input graph in CSR form.
        algorithm: a registry name, e.g. ``"gpu-ours"``, ``"bz"``,
            ``"pkc"``, ``"gswitch"``; see :func:`algorithm_names`.
        **kwargs: forwarded to the program (e.g. ``time_budget_ms`` for
            the GPU systems, ``cost`` for the CPU programs).

    Returns:
        The program's :class:`~repro.result.DecompositionResult`.
    """
    try:
        runner = ALGORITHMS[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; known: "
            f"{', '.join(sorted(ALGORITHMS))}"
        ) from None
    return runner(graph, **kwargs)
