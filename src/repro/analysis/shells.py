"""k-shell and k-core extraction utilities.

The decomposition algorithms return core *numbers*; these helpers turn
them into the structures applications consume — shells, core subgraphs
and connected core components (Fig. 1's dashed contours).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.fastpath import peel_fast
from repro.graph.csr import CSRGraph

__all__ = [
    "k_shell",
    "k_core_vertices",
    "k_core_subgraph",
    "k_core_components",
    "shell_sizes",
    "degeneracy",
]


def _cores(graph: CSRGraph, core: np.ndarray | None) -> np.ndarray:
    if core is None:
        return peel_fast(graph)
    core = np.asarray(core, dtype=np.int64)
    if core.shape != (graph.num_vertices,):
        raise ValueError(
            f"core array has shape {core.shape}, expected "
            f"({graph.num_vertices},)"
        )
    return core


def k_shell(graph: CSRGraph, k: int, core: np.ndarray | None = None) -> np.ndarray:
    """Vertices with core number exactly ``k`` (the k-shell ``V^(k)``)."""
    return np.flatnonzero(_cores(graph, core) == k)


def k_core_vertices(
    graph: CSRGraph, k: int, core: np.ndarray | None = None
) -> np.ndarray:
    """Vertices of the k-core: ``union of the i-shells for i >= k``."""
    return np.flatnonzero(_cores(graph, core) >= k)


def k_core_subgraph(
    graph: CSRGraph, k: int, core: np.ndarray | None = None
) -> tuple[CSRGraph, np.ndarray]:
    """The k-core as an induced subgraph.

    Returns ``(subgraph, vertex_map)`` where ``vertex_map[i]`` is the
    original ID of subgraph vertex ``i``.  The subgraph has minimum
    degree ``>= k`` by definition (a property the tests assert).
    """
    vertices = k_core_vertices(graph, k, core)
    return graph.induced_subgraph(vertices), vertices


def k_core_components(
    graph: CSRGraph, k: int, core: np.ndarray | None = None
) -> List[np.ndarray]:
    """Connected components of the k-core, as original-ID arrays,
    largest first."""
    sub, vertex_map = k_core_subgraph(graph, k, core)
    seen = np.zeros(sub.num_vertices, dtype=bool)
    components: List[np.ndarray] = []
    for start in range(sub.num_vertices):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        members = []
        while stack:
            v = stack.pop()
            members.append(v)
            for u in sub.neighbors_of(v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
        components.append(vertex_map[np.sort(np.asarray(members))])
    components.sort(key=len, reverse=True)
    return components


def shell_sizes(graph: CSRGraph, core: np.ndarray | None = None) -> np.ndarray:
    """Size of every shell, indexed by ``k`` (length ``k_max + 1``)."""
    cores = _cores(graph, core)
    if cores.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(cores).astype(np.int64)


def degeneracy(graph: CSRGraph, core: np.ndarray | None = None) -> int:
    """The graph's degeneracy ``k_max`` (0 for an empty graph)."""
    cores = _cores(graph, core)
    return int(cores.max()) if cores.size else 0
