"""Applications of k-core decomposition: shells, hierarchy, case study."""

from repro.analysis.case_study import (
    CaseStudyResult,
    TemporalCitationCorpus,
    author_interaction_snapshot,
    compare_snapshots,
    synthesize_citation_corpus,
)
from repro.analysis.hierarchy import (
    CoreComponent,
    CoreHierarchy,
    build_core_hierarchy,
)
from repro.analysis.ordering import prune_for_clique_size, smallest_last_coloring
from repro.analysis.shells import (
    degeneracy,
    k_core_components,
    k_core_subgraph,
    k_core_vertices,
    k_shell,
    shell_sizes,
)

__all__ = [
    "CaseStudyResult",
    "TemporalCitationCorpus",
    "author_interaction_snapshot",
    "compare_snapshots",
    "synthesize_citation_corpus",
    "CoreComponent",
    "CoreHierarchy",
    "build_core_hierarchy",
    "prune_for_clique_size",
    "smallest_last_coloring",
    "degeneracy",
    "k_core_components",
    "k_core_subgraph",
    "k_core_vertices",
    "k_shell",
    "shell_sizes",
]
