"""Incremental core maintenance for dynamic graphs.

The paper's Section II-C points to streaming/incremental algorithms
(Sariyüce et al.) as the alternative to recomputation on evolving
networks; the case study motivates exactly that workload.  This module
implements the classic *traversal (subcore) algorithm*:

* inserting an edge can raise core numbers by at most one, and only
  within the connected region of ``core == r`` vertices around the
  endpoint(s) with ``r = min(core(u), core(v))``;
* deleting an edge can lower them by at most one, within the same kind
  of region.

Both updates run a local peeling over that region instead of a full
recomputation — the tests verify the result always equals a fresh BZ
run on the updated graph.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.cpu.bz import bz_core_numbers
from repro.graph.csr import CSRGraph

__all__ = ["DynamicCoreMaintainer"]


class DynamicCoreMaintainer:
    """Maintains core numbers under edge insertions and deletions."""

    def __init__(
        self, graph: CSRGraph | None = None, num_vertices: int = 0
    ) -> None:
        if graph is not None:
            self._adjacency: List[Set[int]] = [
                set(map(int, graph.neighbors_of(v)))
                for v in range(graph.num_vertices)
            ]
            self._core = bz_core_numbers(graph).astype(np.int64)
        else:
            self._adjacency = [set() for _ in range(num_vertices)]
            self._core = np.zeros(num_vertices, dtype=np.int64)

    # -- views --------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adjacency)

    def core_numbers(self) -> np.ndarray:
        """Current core numbers (a defensive copy)."""
        return self._core.copy()

    def core_of(self, vertex: int) -> int:
        return int(self._core[vertex])

    def degree(self, vertex: int) -> int:
        return len(self._adjacency[vertex])

    def has_edge(self, u: int, v: int) -> bool:
        return u < self.num_vertices and v in self._adjacency[u]

    def to_graph(self) -> CSRGraph:
        """Snapshot the current graph as an immutable CSR graph."""
        return CSRGraph.from_adjacency(
            [sorted(nbrs) for nbrs in self._adjacency]
        )

    # -- vertex growth ---------------------------------------------------------

    def _ensure_vertex(self, vertex: int) -> None:
        while vertex >= self.num_vertices:
            self._adjacency.append(set())
            self._core = np.append(self._core, 0)

    # -- edge insertion ----------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> Tuple[int, ...]:
        """Insert ``{u, v}``; returns the vertices whose core rose.

        No-op (empty tuple) if the edge already exists or ``u == v``.
        """
        if u == v:
            return ()
        self._ensure_vertex(max(u, v))
        if v in self._adjacency[u]:
            return ()
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

        core = self._core
        r = int(min(core[u], core[v]))
        roots = [w for w in (u, v) if core[w] == r]
        candidates = self._same_core_region(roots, r)
        # candidate degree: support from deeper vertices and from other
        # candidates (which may yet be promoted together)
        cd = {
            w: sum(
                1 for x in self._adjacency[w]
                if core[x] > r or x in candidates
            )
            for w in candidates
        }
        # peel candidates that cannot reach degree r+1
        queue = deque(w for w in candidates if cd[w] <= r)
        removed: Set[int] = set()
        while queue:
            w = queue.popleft()
            if w in removed:
                continue
            removed.add(w)
            for x in self._adjacency[w]:
                if x in candidates and x not in removed:
                    cd[x] -= 1
                    if cd[x] <= r:
                        queue.append(x)
        promoted = tuple(sorted(candidates - removed))
        for w in promoted:
            core[w] = r + 1
        return promoted

    # -- edge deletion -----------------------------------------------------------

    def remove_edge(self, u: int, v: int) -> Tuple[int, ...]:
        """Remove ``{u, v}``; returns the vertices whose core fell.

        Raises ``KeyError`` if the edge is absent.
        """
        if v not in self._adjacency[u]:
            raise KeyError(f"edge ({u}, {v}) not present")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

        core = self._core
        r = int(min(core[u], core[v]))
        roots = [w for w in (u, v) if core[w] == r]
        candidates = self._same_core_region(roots, r)
        # support: neighbors still at core >= r (candidates included --
        # their possible demotion cascades through the queue below)
        cd = {
            w: sum(1 for x in self._adjacency[w] if core[x] >= r)
            for w in candidates
        }
        queue = deque(w for w in candidates if cd[w] < r)
        demoted: Set[int] = set()
        while queue:
            w = queue.popleft()
            if w in demoted:
                continue
            demoted.add(w)
            core[w] = r - 1
            for x in self._adjacency[w]:
                if x in candidates and x not in demoted:
                    cd[x] -= 1
                    if cd[x] < r:
                        queue.append(x)
        return tuple(sorted(demoted))

    # -- helpers ---------------------------------------------------------------

    def _same_core_region(self, roots: Iterable[int], r: int) -> Set[int]:
        """Connected region of ``core == r`` vertices containing roots."""
        core = self._core
        region: Set[int] = set()
        stack = [w for w in roots if core[w] == r]
        region.update(stack)
        while stack:
            w = stack.pop()
            for x in self._adjacency[w]:
                if core[x] == r and x not in region:
                    region.add(x)
                    stack.append(x)
        return region
