"""Hierarchical core decomposition (HCD, Section II-C of the paper).

HCD organises a graph's k-core connected components into a forest: each
tree node is one connected component of some k-core, and its parent is
the (k-1)-core component that contains it.  The forest supports the
"find the best k-core component containing v" queries of Chu et al.
and is computable in linear time (Matula & Beck); we build it with one
pass over vertices in *descending* core-number order using union-find,
then answer containment queries directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.fastpath import peel_fast
from repro.graph.csr import CSRGraph

__all__ = ["CoreComponent", "CoreHierarchy", "build_core_hierarchy"]


@dataclass
class CoreComponent:
    """One node of the HCD forest: a connected component of a k-core."""

    node_id: int
    k: int
    vertices: np.ndarray
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return int(self.vertices.size)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = np.arange(n)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = int(self.parent[root])
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, int(self.parent[x])
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return ra


@dataclass
class CoreHierarchy:
    """The HCD forest plus query helpers."""

    nodes: Dict[int, CoreComponent]
    roots: List[int]
    core: np.ndarray
    #: node id of the deepest (largest-k) component containing a vertex
    leaf_of_vertex: np.ndarray

    def component_of(self, vertex: int, k: int) -> Optional[CoreComponent]:
        """The k-core component containing ``vertex`` (None if its core
        number is below ``k``).

        Tree nodes exist only at levels where a component's membership
        changed, so the answer is the node on the leaf-to-root path with
        the *smallest* level still ``>= k``.
        """
        if self.core[vertex] < k:
            return None
        node = self.nodes[int(self.leaf_of_vertex[vertex])]
        while node.parent is not None and self.nodes[node.parent].k >= k:
            node = self.nodes[node.parent]
        return node

    def best_component_of(self, vertex: int) -> CoreComponent:
        """The deepest component containing ``vertex`` — the "best"
        k-core in the sense of Chu et al."""
        return self.nodes[int(self.leaf_of_vertex[vertex])]

    def components_at(self, k: int) -> List[CoreComponent]:
        """All k-core components (nodes with exactly this ``k``)."""
        return [n for n in self.nodes.values() if n.k == k]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)


def build_core_hierarchy(
    graph: CSRGraph, core: np.ndarray | None = None
) -> CoreHierarchy:
    """Construct the HCD forest of ``graph``.

    Vertices are added in descending core order; an edge merges two
    components once both endpoints are present.  Each time the sweep
    finishes a core level ``k``, the current connected components become
    the k-core components; a component becomes a *new* tree node
    whenever its membership changed since level ``k+1``, with the old
    node(s) as children.
    """
    core = peel_fast(graph) if core is None else np.asarray(core, dtype=np.int64)
    n = graph.num_vertices
    if n == 0:
        return CoreHierarchy(
            {}, [], core, np.empty(0, dtype=np.int64)
        )
    kmax = int(core.max())
    uf = _UnionFind(n)
    added = np.zeros(n, dtype=bool)
    nodes: Dict[int, CoreComponent] = {}
    # current tree node represented by each union-find root
    node_of_root: Dict[int, int] = {}
    leaf_of_vertex = np.full(n, -1, dtype=np.int64)
    next_id = 0

    order = np.argsort(-core, kind="stable")
    position = 0
    for k in range(kmax, -1, -1):
        # add this shell's vertices and their internal edges
        while position < n and core[order[position]] == k:
            v = int(order[position])
            added[v] = True
            position += 1
        shell = np.flatnonzero(core == k)
        for v in shell:
            for u in graph.neighbors_of(int(v)):
                if added[u]:
                    uf.union(int(v), int(u))
        # snapshot the components present at this level
        present = np.flatnonzero(added)
        roots: Dict[int, List[int]] = {}
        for v in present:
            roots.setdefault(uf.find(int(v)), []).append(int(v))
        new_node_of_root: Dict[int, int] = {}
        for root, members in roots.items():
            member_arr = np.asarray(sorted(members), dtype=np.int64)
            # children: previous-level nodes now absorbed into this root
            child_ids = sorted(
                {
                    node_of_root[r]
                    for r in node_of_root
                    if uf.find(r) == root
                }
            )
            if len(child_ids) == 1:
                child = nodes[child_ids[0]]
                if child.size == member_arr.size:
                    # unchanged component: reuse the node at this level
                    new_node_of_root[root] = child.node_id
                    continue
            node = CoreComponent(next_id, k, member_arr)
            next_id += 1
            for cid in child_ids:
                nodes[cid].parent = node.node_id
                node.children.append(cid)
            nodes[node.node_id] = node
            new_node_of_root[root] = node.node_id
            fresh = member_arr[leaf_of_vertex[member_arr] == -1]
            leaf_of_vertex[fresh] = node.node_id
        node_of_root = new_node_of_root

    top_roots = [nid for nid, node in nodes.items() if node.parent is None]
    return CoreHierarchy(nodes, top_roots, core, leaf_of_vertex)
