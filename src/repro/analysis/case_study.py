"""The Fig. 10 case study: k_max-core analysis of a temporal
co-citation network.

The paper preprocesses an ArnetMiner citation corpus into an *author
interaction network* — an edge ``(u, v)`` exists when a paper
(co-)authored by ``u`` cites a paper (co-)authored by ``v`` — then
compares the ``k_max``-cores of two snapshots, ``G1`` (papers up to
1995) and ``G2`` (papers up to 2000): authors in ``S1 ∩ S2`` were most
active in both eras, ``S2 − S1`` became most active by 2000, and
``S1 − S2`` fell out of the most-active core.

Without the proprietary corpus we synthesise an equivalent temporal
corpus: named authors with era-limited activity windows and
preferential citation, so that early-era stars fall out of the core and
late-era stars enter it — the identical code path and set algebra,
exercised on data with the same temporal-core structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.fastpath import peel_fast
from repro.graph.csr import CSRGraph
from repro.graph.recode import IdRecoder

__all__ = [
    "Paper",
    "TemporalCitationCorpus",
    "synthesize_citation_corpus",
    "author_interaction_snapshot",
    "CaseStudyResult",
    "compare_snapshots",
]

_FIRST = (
    "Ada", "Ben", "Chen", "Dana", "Elif", "Femi", "Gita", "Hugo", "Iris",
    "Jin", "Kai", "Lena", "Mira", "Noor", "Omar", "Priya", "Qing", "Rosa",
    "Sam", "Tara", "Uma", "Viktor", "Wei", "Ximena", "Yuki", "Zara",
)
_LAST = (
    "Abara", "Brandt", "Costa", "Dimitrov", "Endo", "Farkas", "Gupta",
    "Haddad", "Ivanov", "Jensen", "Kim", "Larsen", "Moreau", "Nakamura",
    "Okafor", "Petrov", "Quispe", "Rossi", "Silva", "Tanaka", "Umarov",
    "Vega", "Wang", "Xu", "Yilmaz", "Zhou",
)


def _author_name(index: int) -> str:
    first = _FIRST[index % len(_FIRST)]
    last = _LAST[(index // len(_FIRST)) % len(_LAST)]
    suffix = index // (len(_FIRST) * len(_LAST))
    return f"{first} {last}" + (f" {suffix + 1}" if suffix else "")


@dataclass(frozen=True)
class Paper:
    """One paper of the corpus."""

    paper_id: int
    year: int
    authors: Tuple[int, ...]
    cites: Tuple[int, ...]  # paper IDs of cited (earlier) papers


@dataclass(frozen=True)
class TemporalCitationCorpus:
    """A synthetic ArnetMiner-style corpus."""

    papers: Tuple[Paper, ...]
    author_names: Tuple[str, ...]

    @property
    def num_authors(self) -> int:
        return len(self.author_names)


def synthesize_citation_corpus(
    num_authors: int = 600,
    start_year: int = 1980,
    end_year: int = 2000,
    papers_per_year: int = 120,
    era_split: int = 1993,
    seed: int = 7,
) -> TemporalCitationCorpus:
    """Generate a temporal corpus with era-dependent star authors.

    A third of the authors are *early stars* (most productive before
    ``era_split``), a third are *late stars* (after it), and a third are
    active throughout — so the ``k_max``-cores of early and late
    snapshots overlap but each has exclusive members, like Fig. 10.
    """
    rng = np.random.default_rng(seed)
    names = tuple(_author_name(i) for i in range(num_authors))
    # a small evergreen elite stays productive throughout (the paper's
    # "PhilipSYu / HVJagadish" centre of Fig. 10); star cohorts rotate
    # every few years, so each era's most-active core is its own cohort
    # plus the evergreens, and old cohorts fall out of later cores
    evergreen = np.arange(max(6, num_authors // 25))
    cohort_years = 4
    cohort_size = max(10, num_authors // 10)
    num_cohorts = (end_year - start_year) // cohort_years + 1
    cohorts = [
        evergreen.size + (c * cohort_size + np.arange(cohort_size)) % (
            num_authors - evergreen.size
        )
        for c in range(num_cohorts)
    ]
    rest = np.arange(num_authors)

    papers: List[Paper] = []
    for year in range(start_year, end_year + 1):
        cohort = cohorts[(year - start_year) // cohort_years]
        star_pool = np.concatenate([evergreen, cohort])
        # publication volume grows over time, as in real corpora — this
        # is what pushes k_max(G2) above k_max(G1) so that early stars
        # can fall out of the most-active core (Fig. 10's bottom set)
        volume = int(papers_per_year * (1.0 + 0.12 * (year - start_year)))
        for _ in range(volume):
            team_size = int(rng.integers(1, 4))
            # the era's stars dominate authorship; the rest fill in
            pool = np.concatenate([np.repeat(star_pool, 8), rest])
            authors = tuple(
                int(a) for a in rng.choice(pool, size=team_size, replace=False)
            )
            # citations strongly favour recent papers (a ~3-year window),
            # so an author's visibility fades once their era ends
            cites: Tuple[int, ...] = ()
            if papers:
                count = int(rng.integers(1, 6))
                limit = len(papers)
                picks = limit - 1 - rng.integers(
                    0, max(1, min(limit, 3 * papers_per_year)), size=count
                )
                cites = tuple(int(p) for p in np.unique(picks[picks >= 0]))
            papers.append(Paper(len(papers), year, authors, cites))
    return TemporalCitationCorpus(tuple(papers), names)


def author_interaction_snapshot(
    corpus: TemporalCitationCorpus, up_to_year: int
) -> tuple[CSRGraph, IdRecoder]:
    """Author interaction network of papers up to ``up_to_year``.

    An undirected edge ``{u, v}`` is added when a paper authored by
    ``u`` cites a paper authored by ``v`` (both papers within the
    snapshot), exactly the paper's preprocessing.  Vertices are densely
    recoded; the returned recoder maps back to corpus author indices.
    """
    included = [p for p in corpus.papers if p.year <= up_to_year]
    by_id = {p.paper_id: p for p in included}
    recoder = IdRecoder()
    edges: List[Tuple[int, int]] = []
    for paper in included:
        for cited_id in paper.cites:
            cited = by_id.get(cited_id)
            if cited is None:
                continue
            for u in paper.authors:
                for v in cited.authors:
                    if u != v:
                        edges.append((recoder.encode(u), recoder.encode(v)))
    if not edges:
        return CSRGraph.empty(0), recoder
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64)), recoder


@dataclass(frozen=True)
class CaseStudyResult:
    """The Fig. 10 set algebra over two snapshots' k_max-cores."""

    year1: int
    year2: int
    kmax1: int
    kmax2: int
    core1: Set[str]  # S1: author names in G1's k_max-core
    core2: Set[str]  # S2

    @property
    def persistent(self) -> Set[str]:
        """S1 ∩ S2 — most active in both eras (Fig. 10 center)."""
        return self.core1 & self.core2

    @property
    def emerged(self) -> Set[str]:
        """S2 − S1 — became most active by the later year (middle ring)."""
        return self.core2 - self.core1

    @property
    def dropped(self) -> Set[str]:
        """S1 − S2 — fell out of the most-active core (bottom)."""
        return self.core1 - self.core2

    def summary(self) -> str:
        """A text rendering of the word-cloud content."""
        def fmt(names: Set[str], limit: int = 12) -> str:
            shown = sorted(names)[:limit]
            extra = len(names) - len(shown)
            return ", ".join(shown) + (f", ... (+{extra})" if extra > 0 else "")

        return "\n".join([
            f"G1 (<= {self.year1}): k_max = {self.kmax1}, "
            f"|S1| = {len(self.core1)}",
            f"G2 (<= {self.year2}): k_max = {self.kmax2}, "
            f"|S2| = {len(self.core2)}",
            f"S1 n S2 (active in both eras, {len(self.persistent)}): "
            + fmt(self.persistent),
            f"S2 - S1 (newly most-active, {len(self.emerged)}): "
            + fmt(self.emerged),
            f"S1 - S2 (fell out of the core, {len(self.dropped)}): "
            + fmt(self.dropped),
        ])


def compare_snapshots(
    corpus: TemporalCitationCorpus, year1: int, year2: int
) -> CaseStudyResult:
    """Compute the Fig. 10 comparison for two snapshot years."""
    names = corpus.author_names
    cores: List[Set[str]] = []
    kmaxes: List[int] = []
    for year in (year1, year2):
        graph, recoder = author_interaction_snapshot(corpus, year)
        if graph.num_vertices == 0:
            cores.append(set())
            kmaxes.append(0)
            continue
        core = peel_fast(graph)
        kmax = int(core.max())
        members = np.flatnonzero(core == kmax)
        cores.append({names[int(recoder.decode(int(v)))] for v in members})
        kmaxes.append(kmax)
    return CaseStudyResult(
        year1=year1, year2=year2,
        kmax1=kmaxes[0], kmax2=kmaxes[1],
        core1=cores[0], core2=cores[1],
    )
