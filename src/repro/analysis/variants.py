"""Problem variants from the paper's Section II-C.

* **(k, h)-core** (Bonchi et al.): the neighborhood relation is relaxed
  to "within h hops" — the (k, h)-core is the largest subgraph where
  every vertex can reach at least ``k`` others within ``h`` hops inside
  the subgraph.  Computed by peeling on h-hop reachability counts.
* **D-core / (k, l)-core** (Giatsidis et al.): for *directed* graphs,
  the largest subgraph where every vertex has in-degree >= ``k`` and
  out-degree >= ``l``.

Both reduce to iterated peeling, which is why a fast decomposition
kernel matters to them; they are implemented here at reference quality
for the analysis layer.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["kh_core_numbers", "h_hop_degrees", "d_core"]


def h_hop_degrees(
    graph: CSRGraph, h: int, alive: np.ndarray | None = None
) -> np.ndarray:
    """Number of distinct vertices within ``h`` hops of each vertex,
    restricted to the ``alive`` subgraph (all vertices by default)."""
    n = graph.num_vertices
    if alive is None:
        alive = np.ones(n, dtype=bool)
    degrees = np.zeros(n, dtype=np.int64)
    for start in np.flatnonzero(alive):
        seen = {int(start)}
        frontier = [int(start)]
        for _ in range(h):
            nxt = []
            for v in frontier:
                for u in graph.neighbors_of(v):
                    u = int(u)
                    if alive[u] and u not in seen:
                        seen.add(u)
                        nxt.append(u)
            frontier = nxt
            if not frontier:
                break
        degrees[start] = len(seen) - 1
    return degrees


def kh_core_numbers(graph: CSRGraph, h: int) -> np.ndarray:
    """(k, h)-core numbers: the largest ``k`` such that the vertex
    belongs to the (k, h)-core.

    With ``h == 1`` this equals ordinary core numbers (a property the
    tests assert).  Uses the BZ-style peel-minimum strategy on h-hop
    degrees; each removal triggers recomputation only within the
    removed vertex's h-hop ball.
    """
    if h < 1:
        raise ValueError("h must be >= 1")
    n = graph.num_vertices
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    degrees = h_hop_degrees(graph, h)
    k = 0
    remaining = n
    while remaining:
        # peel every vertex whose h-hop degree has fallen to <= k
        queue = deque(np.flatnonzero(alive & (degrees <= k)).tolist())
        while queue:
            v = int(queue.popleft())
            if not alive[v]:
                continue
            alive[v] = False
            core[v] = k
            remaining -= 1
            # recompute h-hop degrees inside v's (former) h-hop ball
            ball = _ball(graph, v, h, alive)
            for w in ball:
                old = degrees[w]
                degrees[w] = _h_hop_degree_of(graph, w, h, alive)
                if alive[w] and degrees[w] <= k < old:
                    queue.append(w)
        k += 1
    return core


def _ball(graph: CSRGraph, v: int, h: int, alive: np.ndarray) -> List[int]:
    """Alive vertices within ``h`` hops of ``v`` (paths may pass
    through ``v``'s just-removed position's neighbors)."""
    seen: Set[int] = {v}
    frontier = [v]
    out: List[int] = []
    for _ in range(h):
        nxt = []
        for w in frontier:
            for u in graph.neighbors_of(w):
                u = int(u)
                if u not in seen:
                    seen.add(u)
                    nxt.append(u)
                    if alive[u]:
                        out.append(u)
        frontier = nxt
    return out


def _h_hop_degree_of(
    graph: CSRGraph, start: int, h: int, alive: np.ndarray
) -> int:
    seen = {start}
    frontier = [start]
    count = 0
    for _ in range(h):
        nxt = []
        for v in frontier:
            for u in graph.neighbors_of(v):
                u = int(u)
                if alive[u] and u not in seen:
                    seen.add(u)
                    nxt.append(u)
                    count += 1
        frontier = nxt
    return count


def d_core(
    edges: np.ndarray, k: int, l: int, num_vertices: int | None = None
) -> np.ndarray:
    """Vertices of the (k, l) D-core of a *directed* edge list.

    The D-core is the largest vertex set whose induced subgraph gives
    every vertex in-degree >= ``k`` and out-degree >= ``l``.  Returns
    the member vertex IDs (possibly empty).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    n = num_vertices or (int(edges.max()) + 1 if edges.size else 0)
    out_adj: List[Set[int]] = [set() for _ in range(n)]
    in_adj: List[Set[int]] = [set() for _ in range(n)]
    for src, dst in edges:
        if src != dst:
            out_adj[int(src)].add(int(dst))
            in_adj[int(dst)].add(int(src))

    alive = np.ones(n, dtype=bool)
    queue = deque(
        v for v in range(n)
        if len(in_adj[v]) < k or len(out_adj[v]) < l
    )
    while queue:
        v = queue.popleft()
        if not alive[v]:
            continue
        alive[v] = False
        for u in out_adj[v]:
            in_adj[u].discard(v)
            if alive[u] and len(in_adj[u]) < k:
                queue.append(u)
        for u in in_adj[v]:
            out_adj[u].discard(v)
            if alive[u] and len(out_adj[u]) < l:
                queue.append(u)
    return np.flatnonzero(alive)
