"""Degeneracy-ordering applications.

The paper motivates k-core decomposition as a lightweight preprocessing
for heavier mining tasks (clique enumeration, quasi-cliques, community
search).  These helpers implement the two classic consumers of the
decomposition output: degeneracy (smallest-last) greedy coloring and
core-based candidate pruning.
"""

from __future__ import annotations

import numpy as np

from repro.core.fastpath import peel_fast
from repro.cpu.bz import degeneracy_ordering
from repro.graph.csr import CSRGraph

__all__ = ["smallest_last_coloring", "prune_for_clique_size"]


def smallest_last_coloring(graph: CSRGraph) -> np.ndarray:
    """Greedy coloring in reverse degeneracy order.

    Uses at most ``degeneracy + 1`` colors (Matula & Beck) — a bound
    the property tests assert.  Returns a color index per vertex.
    """
    n = graph.num_vertices
    order = degeneracy_ordering(graph)[::-1]  # largest-core first
    colors = np.full(n, -1, dtype=np.int64)
    for v in order:
        v = int(v)
        neighbor_colors = set(
            int(c) for c in colors[graph.neighbors_of(v)] if c >= 0
        )
        color = 0
        while color in neighbor_colors:
            color += 1
        colors[v] = color
    return colors


def prune_for_clique_size(
    graph: CSRGraph, clique_size: int, core: np.ndarray | None = None
) -> np.ndarray:
    """Vertices that can possibly belong to a clique of ``clique_size``.

    A ``q``-clique lies entirely inside the ``(q-1)``-core, so pruning
    to core number ``>= q - 1`` is sound — the standard lightweight
    preprocessing the paper's introduction describes.
    """
    if core is None:
        core = peel_fast(graph)
    return np.flatnonzero(core >= clique_size - 1)
