"""Closed-form symbolic expressions for static resource certificates.

A certificate bound is a *function* of launch and graph parameters —
``G*(2 + 3*ceil(n / (G*W*S)))`` barriers, say — not a number.  This
module provides the tiny expression language those bounds are written
in: constants, named parameters, ``+``, ``*``, ``max`` and ceiling
division, with exact evaluation over an environment and a readable
rendering for the certificate tables.

The canonical parameter names (the environment keys
:func:`repro.staticheck.bounds.launch_env` produces):

=========  ==========================================================
``n``      number of vertices the launch covers
``adj``    length of the CSR ``neighbors`` array (2·|E| undirected)
``dmax``   maximum degree of the graph
``G``      grid dimension (blocks per launch, the paper's BLK_NUM)
``W``      warps per block (BLK_DIM >> 5)
``S``      warp size (32)
``cap``    per-block global-memory buffer capacity in vertex IDs
``scap``   per-block shared-memory buffer capacity (SM variant, else 0)
``P``      effective per-block buffer slots (``cap + scap``)
``R``      upper bound on peel rounds (``dmax + 2``, the host's cap)
=========  ==========================================================

Expressions are immutable and hashable; Python operators build them
(``2 * P + CeilDiv(n, G * W * S)``), and plain ints/floats coerce.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple, Union

__all__ = [
    "Expr", "Const", "Param", "Add", "Mul", "Max", "Min", "CeilDiv", "as_expr",
]

Number = Union[int, float]
ExprLike = Union["Expr", int, float]


class Expr:
    """Base class of certificate-bound expressions."""

    def evaluate(self, env: Mapping[str, Number]) -> float:
        """Numeric value of the bound under ``env`` (raises ``KeyError``
        for a parameter the environment does not define)."""
        raise NotImplementedError

    def params(self) -> Tuple[str, ...]:
        """Sorted names of every parameter the expression mentions."""
        found: Dict[str, None] = {}
        self._collect(found)
        return tuple(sorted(found))

    def _collect(self, out: Dict[str, None]) -> None:
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(as_expr(other), self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


def as_expr(value: ExprLike) -> Expr:
    """Coerce a plain number to a :class:`Const`."""
    if isinstance(value, Expr):
        return value
    return Const(value)


class Const(Expr):
    """A literal constant."""

    def __init__(self, value: Number) -> None:
        self.value = value

    def evaluate(self, env: Mapping[str, Number]) -> float:
        return float(self.value)

    def _collect(self, out: Dict[str, None]) -> None:
        return None

    def __str__(self) -> str:
        if isinstance(self.value, float) and self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class Param(Expr):
    """A named launch/graph parameter (see the module table)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: Mapping[str, Number]) -> float:
        return float(env[self.name])

    def _collect(self, out: Dict[str, None]) -> None:
        out[self.name] = None

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Param) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("param", self.name))


class _Binary(Expr):
    _symbol = "?"

    def __init__(self, left: ExprLike, right: ExprLike) -> None:
        self.left = as_expr(left)
        self.right = as_expr(right)

    def _collect(self, out: Dict[str, None]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.left == other.left  # type: ignore[attr-defined]
            and self.right == other.right  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))


class Add(_Binary):
    """``left + right``."""

    _symbol = "+"

    def evaluate(self, env: Mapping[str, Number]) -> float:
        return self.left.evaluate(env) + self.right.evaluate(env)

    def __str__(self) -> str:
        return f"{self.left} + {self.right}"


class Mul(_Binary):
    """``left * right`` (sums parenthesised for readability)."""

    _symbol = "*"

    def evaluate(self, env: Mapping[str, Number]) -> float:
        return self.left.evaluate(env) * self.right.evaluate(env)

    def __str__(self) -> str:
        def wrap(expr: Expr) -> str:
            if isinstance(expr, Add):
                return f"({expr})"
            return str(expr)

        return f"{wrap(self.left)}*{wrap(self.right)}"


class Max(_Binary):
    """``max(left, right)`` — e.g. EC's ``max(1, trips)``."""

    def evaluate(self, env: Mapping[str, Number]) -> float:
        return max(self.left.evaluate(env), self.right.evaluate(env))

    def __str__(self) -> str:
        return f"max({self.left}, {self.right})"


class Min(_Binary):
    """``min(left, right)`` — e.g. the buffer-fill refinement
    ``min(P, N)`` of the loop kernel's iteration bound."""

    def evaluate(self, env: Mapping[str, Number]) -> float:
        return min(self.left.evaluate(env), self.right.evaluate(env))

    def __str__(self) -> str:
        return f"min({self.left}, {self.right})"


class CeilDiv(_Binary):
    """``ceil(left / right)`` over non-negative operands."""

    def evaluate(self, env: Mapping[str, Number]) -> float:
        num = self.left.evaluate(env)
        den = self.right.evaluate(env)
        if den <= 0:
            raise ZeroDivisionError(f"ceil({num} / {den})")
        return float(-(-int(num) // int(den)))

    def __str__(self) -> str:
        return f"ceil({self.left} / {self.right})"
