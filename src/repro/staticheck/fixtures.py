"""Known-bad fixtures for the dataflow analyzer's detectors.

Each fixture is deliberately wrong in exactly one way, so the CI gate
(``scripts/check_dataflow.py``) and the test suite can prove every
detector actually *fires* — a gate that only ever sees clean kernels
would pass vacuously.  Three fixtures, one per detector:

* :func:`racy_fixture_kernel` — a kernel with two genuine races (a
  same-epoch plain write-write on a shared scalar and a cross-block
  plain write on global memory) that the analyzer must report as
  ``unproven-race-freedom`` obligations;
* :func:`bracket_violation_stats` — a forged launch measurement whose
  divergence efficiency sits *below* every kernel's static lower bound,
  which :class:`~repro.staticheck.dataflow.DataflowChecker` must flag
  as a ``divergence-bound`` error;
* :func:`precondition_violation_stats` — a forged measurement claiming
  a vectorized serving for a launch the precondition analysis proves
  must fall back, which the checker must flag as an
  ``engine-precondition`` error.

The fixtures never run on the simulator — the kernel is only parsed,
and the stats are handed straight to ``DataflowChecker.observe``.
"""

from __future__ import annotations

from repro.gpusim.scheduler import KernelStats

__all__ = [
    "bracket_violation_stats",
    "precondition_violation_stats",
    "racy_fixture_kernel",
]


def racy_fixture_kernel(ctx, data: "DeviceArray"):  # noqa: F821
    """Two textbook races the analyzer must refuse to certify.

    Every warp plain-writes the shared scalar ``x`` in the same barrier
    epoch (write-write, no ``warp_id == 0`` guard, no slot indexing),
    and every block plain-writes the *same* global window (no
    block-private base) — neither pair has a discharge argument.
    """
    ctx.smem_set("x", ctx.warp_id)
    yield ctx.BARRIER
    ctx.gstore(data, ctx.lanes, 0)
    yield ctx.STEP


def bracket_violation_stats() -> KernelStats:
    """A launch measurement below every static divergence lower bound.

    ``mem_active_lanes == 0`` over nonzero accesses gives a divergence
    efficiency of 0.0 — impossible for kernels whose every global
    access is statically nonempty (lower bound 1/32).
    """
    return KernelStats(
        cycles=1.0,
        issued=1.0,
        mem_transactions=8.0,
        barriers=1,
        max_warp_path=1.0,
        mem_accesses=8.0,
        mem_active_lanes=0.0,
        mem_ideal_transactions=8.0,
        served_by="vectorized",
    )


def precondition_violation_stats() -> KernelStats:
    """A measurement claiming a vectorized serving.

    Feed it to a checker whose static prediction is ``reference``
    (e.g. ``loop_kernel`` under the ``vw2`` variant, or any monitored
    run) and the ``engine-precondition`` detector must raise an error:
    a tier the analysis proves unreachable reported itself as serving.
    """
    return KernelStats(
        cycles=1.0,
        issued=1.0,
        mem_transactions=1.0,
        barriers=1,
        max_warp_path=1.0,
        mem_accesses=1.0,
        mem_active_lanes=32.0,
        mem_ideal_transactions=1.0,
        served_by="vectorized",
    )
