"""Declarative kernel-admission contracts: the certifier's registry.

Historically the static-analysis stack knew exactly two kernels by
name — ``scan_kernel`` and ``loop_kernel`` were hardcoded into the
bounds ladder, the certificate dataclass and the dataflow analyzer.
This module replaces that with an open **contract registry**: a kernel
is *admitted* to the verification pipeline by registering a
:class:`KernelContract` that declares everything the analyzers need —

* where the kernel lives (``module`` / ``entry``) and which helper
  modules its call graph crosses into (``helper_modules``);
* its variant space (``variants``) and the symbolic launch parameters
  its bounds range over (``params``);
* the closed-form resource bounds and shared-memory layout, as
  callables over a :class:`~repro.core.variants.VariantConfig`
  (``bounds`` / ``shared_layout``);
* the declared call graph the site inventory is gathered over
  (``reachability``) and the variant-dispatch pruning of its edges
  (``prune``);
* which engine module (if any) registers a vectorized executor for it
  (``engine_module``) — ``None`` means every launch is honestly served
  by the reference interpreter;
* the race-discharge arguments its access patterns rely on
  (``race_arguments``) and the configs for which *undischarged*
  obligations are the declared-honest answer (``honest_unproven`` —
  e.g. ring-buffer wraparound, which the epoch algebra has no axiom
  for).

A :class:`ProgramContract` groups the kernels of one host program
(k-core peeling launches ``scan`` then ``loop``; BFS launches its one
frontier kernel) and owns the program-level device-memory bound.

The analyzers (:mod:`~repro.staticheck.bounds`,
:mod:`~repro.staticheck.certificate`, :mod:`~repro.staticheck.dataflow`,
:mod:`~repro.staticheck.differential`) iterate this registry instead of
importing kernel modules by name, so admitting a new kernel — see
``repro/core/bfs_kernel.py`` and the "Authoring a verifiable kernel"
guide in ``docs/STATIC_ANALYSIS.md`` — requires **zero analyzer
edits**: registration *is* admission, and ``scripts/check_admission.py``
gates in CI that every registered contract actually certifies.

This module stays dependency-light (only the variant and symbolic
types) so kernel modules can import it at registration time without
import cycles; the analyzers' own modules register the built-in k-core
contracts when they load (see the bottom of ``bounds.py``).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Tuple

from repro.core.variants import VariantConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.staticheck.bounds import KernelBounds, KernelFloors
    from repro.staticheck.symbolic import Expr

__all__ = [
    "KernelContract",
    "ProgramContract",
    "register_kernel_contract",
    "register_program_contract",
    "kernel_contract",
    "program_contract",
    "all_kernel_contracts",
    "all_program_contracts",
    "certified_module_paths",
    "merged_reachability",
    "load_contracts",
]


def _never_honest(cfg: VariantConfig) -> bool:
    """Default ``honest_unproven``: every obligation must discharge."""
    return False


def _keep_all(callee: str, cfg: VariantConfig) -> bool:
    """Default ``prune``: no variant-dispatch edges to cut."""
    return True


@dataclass(frozen=True)
class KernelContract:
    """Everything the static-analysis pipeline needs to admit a kernel.

    The callables are evaluated lazily, per variant config — a contract
    never runs kernel code, it only *describes* it; the analyzers
    verify the description (coverage, call edges, race discharge,
    bound domination) and CI fails when description and code drift.
    """

    #: scheduler kernel name (``KernelStats`` attribution key)
    name: str
    #: owning program contract (``kcore``, ``bfs``, ...)
    program: str
    #: import path of the module holding the kernel's AST
    module: str
    #: entry generator function (the root of the reachability closure)
    entry: str
    #: closed-form per-launch bounds; may raise ``ValueError`` for
    #: configs with no static bound (then ``honest_unproven`` must
    #: hold for that config)
    bounds: Callable[[VariantConfig], "KernelBounds"]
    #: static shared-memory demand: allocation name -> symbolic slots
    shared_layout: Callable[[VariantConfig], Mapping[str, "Expr"]]
    #: declared call graph over bare function names; the AST pass
    #: verifies every real kernel->kernel call edge appears here
    reachability: Mapping[str, Tuple[str, ...]]
    #: the kernel's variant space, keyed by config name
    variants: Callable[[], Mapping[str, VariantConfig]]
    #: abstract interpretation of the entry's dispatch branches:
    #: ``prune(callee, cfg)`` is False when ``cfg`` makes the edge dead
    prune: Callable[[str, VariantConfig], bool] = _keep_all
    #: symbolic launch parameters the bounds range over (see
    #: :func:`repro.staticheck.bounds.launch_env`)
    params: Tuple[str, ...] = ()
    #: additional certified modules the call graph crosses into
    helper_modules: Tuple[str, ...] = ()
    #: module whose import registers a vectorized executor for this
    #: kernel (its ``FallbackToReference`` guards become the engine
    #: preconditions); ``None`` = always served by reference
    engine_module: Optional[str] = None
    #: the discharge arguments this kernel's access patterns rely on;
    #: the admission gate rejects a certificate whose proofs use an
    #: argument the contract did not declare
    race_arguments: Tuple[str, ...] = ()
    #: configs whose undischarged obligations (and missing bounds) are
    #: the declared-honest answer rather than an admission failure
    honest_unproven: Callable[[VariantConfig], bool] = _never_honest
    #: closed-form *lower* bounds on the measured events (the dual of
    #: ``bounds``): work the kernel cannot avoid under any counterfactual,
    #: used by the critical-path analyzer (:mod:`repro.obs.critpath`) to
    #: floor its what-if projections.  ``None`` (the default) means no
    #: non-trivial floor is claimed — the analyzer uses zero, which keeps
    #: every projection trivially bracketed.  Must never raise: floors
    #: hold for *every* config, including ones ``bounds`` rejects.
    floors: Optional[Callable[[VariantConfig], "KernelFloors"]] = None

    def __post_init__(self) -> None:
        if not self.name or not self.module or not self.entry:
            raise ValueError(
                "a KernelContract needs a name, a module and an entry"
            )
        if self.entry not in self.reachability:
            raise ValueError(
                f"contract {self.name!r}: entry {self.entry!r} is not a "
                "root of the declared reachability table"
            )


@dataclass(frozen=True)
class ProgramContract:
    """The kernels of one host program plus its memory bound."""

    #: program name (``kcore``, ``bfs``, ...)
    name: str
    #: member kernel names, in launch order
    kernels: Tuple[str, ...]
    #: exact peak device global memory in id-sized words (see
    #: :func:`repro.staticheck.bounds.device_memory_bound`)
    device_memory: Callable[[VariantConfig], "Expr"]
    #: the program's variant space, keyed by config name
    variants: Callable[[], Mapping[str, VariantConfig]]
    #: one-line description for renderings and reports
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.kernels:
            raise ValueError(
                "a ProgramContract needs a name and at least one kernel"
            )


_KERNEL_CONTRACTS: Dict[str, KernelContract] = {}
_PROGRAM_CONTRACTS: Dict[str, ProgramContract] = {}

#: modules whose import registers the built-in contracts; extending the
#: pipeline to a new kernel means adding its module here (or importing
#: it yourself before asking the registry) — never editing an analyzer
_BOOTSTRAP_MODULES: Tuple[str, ...] = (
    "repro.staticheck.bounds",  # registers scan_kernel/loop_kernel/kcore
    "repro.core.bfs_kernel",    # registers bfs_kernel/bfs
)


def register_kernel_contract(contract: KernelContract) -> KernelContract:
    """Admit a kernel: later registrations of the same name replace
    earlier ones (module reloads), but a name collision across
    *different* programs is a configuration error."""
    existing = _KERNEL_CONTRACTS.get(contract.name)
    if existing is not None and existing.program != contract.program:
        raise ValueError(
            f"kernel {contract.name!r} is already registered by program "
            f"{existing.program!r}; kernel names are global"
        )
    _KERNEL_CONTRACTS[contract.name] = contract
    return contract


def register_program_contract(contract: ProgramContract) -> ProgramContract:
    """Register a program; its kernels may be registered before or
    after (lookups resolve lazily)."""
    _PROGRAM_CONTRACTS[contract.name] = contract
    return contract


def load_contracts() -> None:
    """Idempotent bootstrap: import every contract-registering module."""
    for path in _BOOTSTRAP_MODULES:
        importlib.import_module(path)


def kernel_contract(name: str) -> KernelContract:
    """Contract of one admitted kernel; ``KeyError`` names the registry."""
    load_contracts()
    try:
        return _KERNEL_CONTRACTS[name]
    except KeyError:
        known = ", ".join(sorted(_KERNEL_CONTRACTS))
        raise KeyError(
            f"no contract registered for kernel {name!r} (registered: "
            f"{known}); see repro.staticheck.contracts"
        ) from None


def program_contract(name: str) -> ProgramContract:
    """Contract of one registered program."""
    load_contracts()
    try:
        return _PROGRAM_CONTRACTS[name]
    except KeyError:
        known = ", ".join(sorted(_PROGRAM_CONTRACTS))
        raise KeyError(
            f"no contract registered for program {name!r} (registered: "
            f"{known}); see repro.staticheck.contracts"
        ) from None


def all_kernel_contracts() -> Dict[str, KernelContract]:
    """Every admitted kernel, in registration order."""
    load_contracts()
    return dict(_KERNEL_CONTRACTS)


def all_program_contracts() -> Dict[str, ProgramContract]:
    """Every registered program, in registration order."""
    load_contracts()
    return dict(_PROGRAM_CONTRACTS)


def certified_module_paths() -> Tuple[str, ...]:
    """Import paths of every certified module: each contract's kernel
    module first (registration order), then the helper modules, with
    duplicates dropped — the sweep order of the coverage gate."""
    load_contracts()
    ordered: Dict[str, None] = {}
    for contract in _KERNEL_CONTRACTS.values():
        ordered.setdefault(contract.module, None)
    for contract in _KERNEL_CONTRACTS.values():
        for helper in contract.helper_modules:
            ordered.setdefault(helper, None)
    return tuple(ordered)


def merged_reachability() -> Dict[str, Tuple[str, ...]]:
    """The union of every contract's declared call graph, for the
    cross-module call-edge check.  Contracts sharing helper entries
    (scan/loop both declare the compaction helpers) must agree on
    them; a disagreement is a stale table and raises."""
    load_contracts()
    merged: Dict[str, Tuple[str, ...]] = {}
    for contract in _KERNEL_CONTRACTS.values():
        for caller, callees in contract.reachability.items():
            if caller in merged and merged[caller] != tuple(callees):
                raise ValueError(
                    f"contracts disagree on the callees of {caller!r}: "
                    f"{merged[caller]} vs {tuple(callees)}"
                )
            merged[caller] = tuple(callees)
    return merged
