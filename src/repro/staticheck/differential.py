"""Differential checking: static certificates vs dynamic measurement.

The certifier's bounds are hand-derived; the differential checker is
what keeps them honest.  A :class:`DifferentialChecker` is armed with
one variant's :class:`~repro.staticheck.certificate.VariantCertificate`
and the launch environment of a concrete run; every traced launch is
then fed to :meth:`observe`, which evaluates the closed-form bounds and
emits a ``static-bound`` :class:`~repro.sanitize.report.
SanitizerFinding` whenever the dynamic
:class:`~repro.gpusim.scheduler.KernelStats` exceeds the certificate —
i.e. whenever the abstract interpretation was *unsound* for this
program point.

Construction also runs the purely static checks, so a ``--staticheck``
run surfaces them even on graphs too small to stress anything:

* coverage and call-edge findings from
  :func:`~repro.staticheck.certificate.verify_inventories`
  (``uncertified-kernel``);
* the shared-memory fit of every kernel in the certificate against
  the device (``static-resource``).

Like the race sanitizer, observation charges no simulated cycles:
a staticheck-on run's ``simulated_ms`` is byte-identical to a plain
run (the hypothesis suite pins this).
"""

from __future__ import annotations

from repro.core.variants import VariantConfig
from repro.gpusim.scheduler import KernelStats
from repro.gpusim.spec import DeviceSpec
from repro.sanitize.report import SanitizerFinding, SanitizerReport
from repro.staticheck import contracts
from repro.staticheck.bounds import launch_env
from repro.staticheck.certificate import (
    VariantCertificate,
    certify_variant,
    verify_inventories,
)

__all__ = ["DifferentialChecker"]

#: the KernelStats fields a certificate bounds, in report order
_CHECKED_EVENTS = ("issued", "mem_transactions", "barriers")


class DifferentialChecker:
    """Asserts static bounds dominate dynamic stats, launch by launch."""

    def __init__(
        self,
        cfg: VariantConfig,
        spec: DeviceSpec,
        num_vertices: int,
        adjacency_len: int,
        max_degree: int,
        buffer_capacity: int | None = None,
        certificate: VariantCertificate | None = None,
    ) -> None:
        self.cfg = cfg
        self.spec = spec
        self.certificate = certificate or certify_variant(cfg)
        self.env = launch_env(
            num_vertices, adjacency_len, max_degree, spec, cfg,
            buffer_capacity=buffer_capacity,
        )
        self.report = SanitizerReport()
        # static pre-checks: kernel coverage and shared-memory fit
        self.report.extend(verify_inventories())
        self.report.extend(self.certificate.check_fit(spec, self.env))
        self.report.modules_linted += len(contracts.certified_module_paths())

    def observe(self, kernel: str, stats: KernelStats) -> None:
        """Check one launch's measurement against the certificate."""
        cert = self.certificate.certificate_for(kernel)
        bounds = cert.bounds.evaluate(self.env)
        self.report.launches_checked += 1
        for event in _CHECKED_EVENTS:
            measured = float(getattr(stats, event))
            allowed = bounds[event]
            if measured > allowed:
                self.report.extend([
                    SanitizerFinding(
                        "static-bound",
                        "error",
                        f"{kernel}[{self.cfg.name}]",
                        f"dynamic {event} = {measured:g} exceeds the static "
                        f"certificate bound {allowed:g} "
                        f"({getattr(cert.bounds, event)}) — the abstract "
                        "interpretation is unsound for this launch; fix the "
                        "bound in repro.staticheck.bounds or the kernel",
                    )
                ])
