"""Dataflow tier of the static analyzer (``docs/STATIC_ANALYSIS.md``).

Where :mod:`repro.staticheck.bounds` certifies *how much* a kernel can
do (closed-form resource bounds), this module certifies *what it may
touch when*: an abstract interpretation over the ASTs of every kernel
admitted to the contract registry (:mod:`repro.staticheck.contracts`)
that mirrors the dynamic race detector's happens-before model
(:mod:`repro.sanitize.racecheck`) statically.  Three certificate kinds
come out of it, per kernel x variant:

* **race-freedom proofs** — every pair of accesses to the same array
  with at least one plain write is either *discharged* by a named
  argument (barrier separation via the epoch algebra, same-warp
  ordering, warp-slot indexing, atomic-reservation disjointness,
  head-tail buffer discipline, double-buffer parity, block-private
  addressing) with ``file:line`` provenance on both sides, or reported
  as an explicit **unproven** obligation (the ``unproven-race-freedom``
  detector) — absence of a proof is never silent optimism;
* **divergence / coalescing brackets** — two-sided bounds on the
  profiler's ``divergence_efficiency`` and ``coalescing_efficiency``
  that every measured launch must fall inside (the
  ``divergence-bound`` detector), derived from the lane-uniformity
  class of every global access site;
* **engine preconditions** — the structural
  :class:`~repro.gpusim.engine.FallbackToReference` guards of the
  contract's declared engine module (``repro/core/fastsim.py`` for the
  peeling kernels) are extracted from its AST and evaluated per
  variant, so which execution tier *must* serve a launch is a static
  prediction checked against ``KernelStats.served_by`` (the
  ``engine-precondition`` detector) instead of a try/except discovery;
  a contract with no engine module is statically pinned to the
  reference interpreter.

Lane-uniformity lattice
-----------------------

Every expression is classified ``UNIFORM`` (all lanes hold one value:
constants, launch parameters, ``ctx.warp_id``, shared scalars) <
``AFFINE`` (a dense lane window: ``ctx.lanes``, ``np.arange``, masked
subsets thereof, compaction offsets) < ``DIVERGENT`` (data-dependent
per lane: gather results, compacted candidate sets).  The lattice
drives the coalescing class of each global access — uniform index =
one word, affine = one <=32-word window (<= 2 cache lines), divergent
= up to one line per lane.

Barrier-epoch algebra
---------------------

Kernels here have at most one barrier-carrying loop per path.  With
``pre`` barriers before the loop, ``L`` per full trip and ``exit_r``
on the exiting pass, an access ``r`` barriers into trip ``i`` runs in
epoch ``pre + L*i + r``; a post-loop access ``b`` barriers after exit
runs in ``pre + L*T + exit_r + b``.  Two same-block accesses may share
an epoch iff the resulting linear conditions admit a solution
(:func:`may_same_epoch`); different blocks are always concurrent, and
one warp is always ordered with itself — exactly the dynamic
monitor's :func:`~repro.sanitize.racecheck._concurrent` model.

The proofs lean on two mechanically *verified* helper contracts
(:func:`verify_contracts` checks them against the helper ASTs each
process, and every certificate degrades to all-unproven if they fail):
``BlockBufferView`` addresses ``buf`` at a block-private base
(``ctx.block_idx * capacity``), and the ``warp_compact_*`` helpers
touch no memory at all.  The prefix-sum *value* properties of the
compaction helpers are stated axioms, named in each proof's detail.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.variants import EXTENSION_VARIANTS, VARIANTS, VariantConfig, get_variant
from repro.sanitize.astutil import dotted, is_sentinel_yield, iter_own_scope
from repro.sanitize.report import SanitizerFinding, SanitizerReport

__all__ = [
    "Access",
    "DATAFLOW_KERNELS",
    "DataflowCertificate",
    "DataflowChecker",
    "EfficiencyBracket",
    "Epoch",
    "FallbackRule",
    "LoopShape",
    "RaceObligation",
    "RaceProof",
    "Uniformity",
    "analyze_function",
    "analyze_kernel",
    "certified_combos",
    "dataflow_report",
    "engine_preconditions",
    "may_same_epoch",
    "predicted_tier",
    "render_dataflow_certificates",
    "verify_contracts",
]

#: the k-core peeling kernels — the legacy spelling kept for existing
#: callers; the authoritative kernel list is the contract registry in
#: :mod:`repro.staticheck.contracts` (see :func:`certified_combos`)
DATAFLOW_KERNELS: Tuple[str, ...] = ("scan_kernel", "loop_kernel")

_CTX_MEMORY_OPS = (
    "gload", "gstore", "atomic_global",
    "sload", "sstore", "smem_get", "smem_set", "smem_atomic_add",
)


class Uniformity(IntEnum):
    """The lane-uniformity lattice: UNIFORM < AFFINE < DIVERGENT."""

    UNIFORM = 0
    AFFINE = 1
    DIVERGENT = 2

    def join(self, other: "Uniformity") -> "Uniformity":
        """Least upper bound."""
        return self if self >= other else other


@dataclass(frozen=True)
class LoopShape:
    """Barrier skeleton of a kernel's (single) barrier-carrying loop."""

    pre: int     #: barriers before loop entry
    body: int    #: barriers per full trip (``L``)
    exit_r: int  #: barriers executed on the exiting pass


@dataclass(frozen=True)
class Epoch:
    """Abstract barrier generation of one access.

    ``kind``: ``"pre"`` (``n`` = straight-line phase), ``"loop"``
    (``n`` = barriers into the trip) or ``"post"`` (``n`` = barriers
    after loop exit).
    """

    kind: str
    n: int

    def __str__(self) -> str:
        return f"{self.kind}@{self.n}"


def may_same_epoch(a: Epoch, b: Epoch, shape: Optional[LoopShape]) -> bool:
    """Can the two same-block accesses fall in one barrier generation?

    Solves the linear epoch conditions over trip counts ``i, T >= 0``;
    conservative (a superset of the dynamically reachable pairs), so a
    ``False`` is a proof of barrier separation.
    """
    if a.kind == "pre" and b.kind == "pre":
        return a.n == b.n
    if shape is None:  # no barrier loop: only straight-line phases exist
        return True
    order = {"pre": 0, "loop": 1, "post": 2}
    if order[a.kind] > order[b.kind]:
        a, b = b, a  # normalise ordering: pre < loop < post
    L = max(shape.body, 1)
    if a.kind == "pre" and b.kind == "loop":
        return a.n == shape.pre and b.n == 0
    if a.kind == "pre" and b.kind == "post":
        return a.n == shape.pre and shape.exit_r + b.n == 0
    if a.kind == "loop" and b.kind == "loop":
        return (a.n - b.n) % L == 0
    if a.kind == "loop" and b.kind == "post":
        return (a.n - (shape.exit_r + b.n)) % L == 0
    # post/post: both share the same trip count T within one launch
    return a.n == b.n


@dataclass(frozen=True)
class Access:
    """One abstract memory access extracted from a kernel AST."""

    space: str                 #: ``"global"`` or ``"shared"``
    array: str                 #: array or shared-scalar name
    kind: str                  #: ``"read"`` / ``"write"`` / ``"atomic"``
    epoch: Epoch
    site: str                  #: ``file.py:line`` provenance
    func: str                  #: kernel function the access sits in
    index: str                 #: canonical index expression
    uniformity: Uniformity
    tags: FrozenSet[str]       #: semantic tags driving the discharge rules
    guards: FrozenSet[str]     #: control guards (``warp0``, ``nonempty``…)
    multi: bool                #: may run several times per warp per epoch
    coal: str                  #: ``scalar`` / ``contiguous`` / ``scattered``


@dataclass(frozen=True)
class RaceProof:
    """A discharged conflicting-access pair (or whole array)."""

    space: str
    array: str
    kinds: str
    a_site: str
    b_site: str
    argument: str
    detail: str


@dataclass(frozen=True)
class RaceObligation:
    """A conflicting pair the interpreter could *not* discharge."""

    space: str
    array: str
    kinds: str
    a_site: str
    b_site: str
    reason: str


@dataclass(frozen=True)
class EfficiencyBracket:
    """Two-sided bounds on the profiler's launch efficiency figures."""

    divergence_lo: float
    divergence_hi: float
    coalescing_lo: float
    coalescing_hi: float

    def contains(self, divergence: float, coalescing: float,
                 tol: float = 1e-9) -> bool:
        """Is the measured (divergence, coalescing) pair inside?"""
        return (
            self.divergence_lo - tol <= divergence <= self.divergence_hi + tol
            and self.coalescing_lo - tol <= coalescing
            <= self.coalescing_hi + tol
        )


@dataclass(frozen=True)
class FallbackRule:
    """One ``raise FallbackToReference`` site of ``repro.core.fastsim``."""

    kernel: str       #: kernel the executor serves (or ``"both"``)
    func: str
    line: int
    message: str
    structural: bool  #: guard depends only on the variant config
    test: str         #: guard expression (``""`` for unconditional)
    fires: bool       #: structural guard evaluated on the variant


@dataclass(frozen=True)
class DataflowCertificate:
    """Everything the dataflow tier proves for one kernel x variant."""

    kernel: str
    variant: str
    loop_shape: Optional[LoopShape]
    accesses: Tuple[Access, ...]
    proofs: Tuple[RaceProof, ...]
    unproven: Tuple[RaceObligation, ...]
    bracket: EfficiencyBracket
    preconditions: Tuple[FallbackRule, ...]
    notes: Tuple[str, ...]

    @property
    def race_free(self) -> bool:
        """True when every conflicting pair was discharged."""
        return not self.unproven

    def structural_fallback(self) -> bool:
        """Does any structural engine precondition fire for this variant?"""
        return any(r.structural and r.fires for r in self.preconditions)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump; the golden-file stability contract."""
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "loop_shape": None if self.loop_shape is None else {
                "pre": self.loop_shape.pre,
                "body": self.loop_shape.body,
                "exit_r": self.loop_shape.exit_r,
            },
            "accesses": [
                {
                    "space": a.space, "array": a.array, "kind": a.kind,
                    "epoch": str(a.epoch), "site": a.site, "func": a.func,
                    "index": a.index, "uniformity": a.uniformity.name,
                    "tags": sorted(a.tags), "guards": sorted(a.guards),
                    "multi": a.multi, "coal": a.coal,
                }
                for a in self.accesses
            ],
            "proofs": [
                {"space": p.space, "array": p.array, "kinds": p.kinds,
                 "a_site": p.a_site, "b_site": p.b_site,
                 "argument": p.argument, "detail": p.detail}
                for p in self.proofs
            ],
            "unproven": [
                {"space": o.space, "array": o.array, "kinds": o.kinds,
                 "a_site": o.a_site, "b_site": o.b_site, "reason": o.reason}
                for o in self.unproven
            ],
            "bracket": {
                "divergence_lo": self.bracket.divergence_lo,
                "divergence_hi": self.bracket.divergence_hi,
                "coalescing_lo": self.bracket.coalescing_lo,
                "coalescing_hi": self.bracket.coalescing_hi,
            },
            "preconditions": [
                {"kernel": r.kernel, "func": r.func, "line": r.line,
                 "message": r.message, "structural": r.structural,
                 "test": r.test, "fires": r.fires}
                for r in self.preconditions
            ],
            "notes": list(self.notes),
            "race_free": self.race_free,
            "structural_fallback": self.structural_fallback(),
        }


# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Value:
    """Abstract value: uniformity class + semantic tags + canonical expr."""

    u: Uniformity
    tags: FrozenSet[str] = frozenset()
    expr: str = "?"


_UNIFORM = _Value(Uniformity.UNIFORM)


def _val(u: Uniformity, tags: Sequence[str] = (), expr: str = "?") -> _Value:
    return _Value(u, frozenset(tags), expr)


class _GlobalArray:
    """A device-array kernel parameter."""

    def __init__(self, name: str) -> None:
        self.name = name


class _SharedArray:
    """A block shared array handle (``ctx.smem_array``)."""

    def __init__(self, name: str, parity: str = "") -> None:
        self.name = name
        self.parity = parity  # "cur"/"next" for double-buffered pairs


class _ViewInfo:
    """Abstract ``BlockBufferView``: buffer + addressing scheme."""

    def __init__(self, buf: str, ring: bool, use_shared: bool) -> None:
        self.buf = buf
        self.ring = ring
        self.use_shared = use_shared


class _Bail(Exception):
    """Analysis cannot continue soundly; everything becomes unproven."""


# ---------------------------------------------------------------------------
# helper-contract verification
# ---------------------------------------------------------------------------

_contract_cache: Optional[List[str]] = None


def _function_defs(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    out: Dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            out[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    out[f"{node.name}.{item.name}"] = item
    return out


def _ctx_calls(fn: ast.FunctionDef) -> List[str]:
    names: List[str] = []
    for node in iter_own_scope(fn):
        if isinstance(node, ast.Call):
            d = dotted(node.func)
            if d is not None and d.startswith("ctx."):
                names.append(d[len("ctx."):])
    return names


def verify_contracts() -> List[str]:
    """Check the helper contracts the race proofs lean on.

    Returns the list of violations (empty means the contracts hold);
    the result is cached per process.  On any violation every
    certificate reports all conflicting pairs as unproven — the proofs
    must not outlive the code they reason about.
    """
    global _contract_cache
    if _contract_cache is not None:
        return _contract_cache
    violations: List[str] = []
    import repro.core.buffers as _buffers
    import repro.core.compaction as _compaction

    with open(_compaction.__file__, encoding="utf-8") as fh:
        comp = _function_defs(ast.parse(fh.read()))
    for name in ("warp_compact_ballot", "warp_compact_hillis_steele"):
        fn = comp.get(name)
        if fn is None:
            violations.append(f"compaction helper {name} missing")
            continue
        bad = [c for c in _ctx_calls(fn) if c in _CTX_MEMORY_OPS]
        if bad:
            violations.append(
                f"{name} touches memory ({', '.join(bad)}): the "
                "warp-local no-memory contract is broken"
            )
    bso = comp.get("block_scan_offsets")
    if bso is None:
        violations.append("compaction helper block_scan_offsets missing")
    else:
        calls = _ctx_calls(bso)
        writes = [c for c in calls if c in
                  ("sstore", "gstore", "smem_set", "smem_atomic_add",
                   "atomic_global", "gload")]
        if writes or "sload" not in calls:
            violations.append(
                "block_scan_offsets must only sload shared warp_counts "
                f"(saw: {', '.join(calls)})"
            )

    with open(_buffers.__file__, encoding="utf-8") as fh:
        bufs = _function_defs(ast.parse(fh.read()))
    init = bufs.get("BlockBufferView.__init__")
    base_ok = False
    if init is not None:
        for node in iter_own_scope(init):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and dotted(node.targets[0]) == "self._base"
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Mult)
                    and "ctx.block_idx" in ast.unparse(node.value)):
                base_ok = True
    if not base_ok:
        violations.append(
            "BlockBufferView._base is no longer ctx.block_idx * capacity: "
            "the block-private addressing contract is broken"
        )
    phys = bufs.get("BlockBufferView._physical")
    phys_ok = phys is not None and all(
        "self._base" in ast.unparse(node.value)
        for node in iter_own_scope(phys)
        if isinstance(node, ast.Return) and node.value is not None
    )
    if not phys_ok:
        violations.append(
            "BlockBufferView._physical no longer offsets every position "
            "by self._base"
        )
    for name in ("BlockBufferView.read_batch", "BlockBufferView.write"):
        fn = bufs.get(name)
        if fn is None:
            violations.append(f"{name} missing")
            continue
        src = ast.unparse(fn)
        if "self._physical" not in src:
            violations.append(f"{name} bypasses _physical translation")
        if "e_init" not in src:
            violations.append(
                f"{name} lost the e_init slot-identity translation the "
                "SM head-tail proof relies on"
            )
    _contract_cache = violations
    return violations


# ---------------------------------------------------------------------------
# the abstract interpreter
# ---------------------------------------------------------------------------


class _LoopState:
    def __init__(self) -> None:
        self.r = 0
        self.exits: Set[int] = set()


class _Interp:
    """Abstract interpreter over one kernel module for one variant."""

    def __init__(self, module: Any, cfg: VariantConfig) -> None:
        self.cfg = cfg
        with open(module.__file__, encoding="utf-8") as fh:
            source = fh.read()
        self.tree = ast.parse(source)
        self.functions = _function_defs(self.tree)
        parts = module.__file__.replace("\\", "/").split("/")
        self.file = "/".join(parts[parts.index("repro"):]) \
            if "repro" in parts else parts[-1]
        self.accesses: List[Access] = []
        self.notes: List[str] = []
        self.phase = 0
        self.loop: Optional[_LoopState] = None
        self.shape: Optional[LoopShape] = None
        self.post_b = 0
        self.guards: Tuple[str, ...] = ()
        self.multi_depth = 0
        self.func_stack: List[str] = ["?"]
        self.array_content: Dict[str, FrozenSet[str]] = {}
        self.head_exprs: Set[str] = set()
        self.window_bases: Set[str] = set()  # loop-entered window bases

    # -- plumbing ----------------------------------------------------------

    def _site(self, node: ast.AST) -> str:
        return f"{self.file}:{getattr(node, 'lineno', 0)}"

    def _epoch(self) -> Epoch:
        if self.loop is not None:
            return Epoch("loop", self.loop.r)
        if self.shape is not None:
            return Epoch("post", self.post_b)
        return Epoch("pre", self.phase)

    def _barrier(self) -> None:
        if self.loop is not None:
            self.loop.r += 1
        elif self.shape is not None:
            self.post_b += 1
        else:
            self.phase += 1

    def _record(self, node: ast.AST, space: str, array: str, kind: str,
                iv: _Value, extra: Sequence[str] = ()) -> None:
        tags = set(iv.tags) | set(extra)
        coal = self._coal_class(iv)
        self.accesses.append(Access(
            space=space, array=array, kind=kind, epoch=self._epoch(),
            site=self._site(node), func=self.func_stack[-1],
            index=iv.expr, uniformity=iv.u, tags=frozenset(tags),
            guards=frozenset(self.guards), multi=self.multi_depth > 0,
            coal=coal,
        ))

    def _nonempty(self, iv: _Value) -> bool:
        """Is the index set provably nonempty (for the 1/32 div bound)?"""
        if iv.u is Uniformity.UNIFORM:
            return True
        if iv.tags & {"nonempty", "smallwin", "arange"}:
            return True
        return "nonempty" in self.guards

    def _coal_class(self, iv: _Value) -> str:
        if iv.u is Uniformity.UNIFORM or "smallwin" in iv.tags:
            return "scalar" if iv.u is Uniformity.UNIFORM else "contiguous"
        if iv.u is Uniformity.AFFINE:
            return "contiguous"
        return "scattered"

    # -- cfg-branch evaluation --------------------------------------------

    def _cfg_eval(self, node: ast.expr) -> Optional[bool]:
        """Evaluate a test that depends only on the variant config."""
        try:
            return bool(self._cfg_eval_raw(node))
        except _Bail:
            return None

    def _cfg_eval_raw(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Attribute):
            d = dotted(node)
            if d is not None and d.startswith("cfg."):
                return getattr(self.cfg, d[len("cfg."):])
            raise _Bail()
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left = self._cfg_eval_raw(node.left)
            right = self._cfg_eval_raw(node.comparators[0])
            op = node.ops[0]
            if isinstance(op, ast.Eq):
                return left == right
            if isinstance(op, ast.NotEq):
                return left != right
            if isinstance(op, ast.Gt):
                return left > right
            if isinstance(op, ast.GtE):
                return left >= right
            if isinstance(op, ast.Lt):
                return left < right
            if isinstance(op, ast.LtE):
                return left <= right
            raise _Bail()
        if isinstance(node, ast.BoolOp):
            vals = [self._cfg_eval_raw(v) for v in node.values]
            return all(vals) if isinstance(node.op, ast.And) else any(vals)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return not self._cfg_eval_raw(node.operand)
        raise _Bail()

    # -- entry -------------------------------------------------------------

    def run(self, kernel: str) -> None:
        fn = self.functions.get(kernel)
        if fn is None:
            raise _Bail(f"kernel {kernel} not found in {self.file}")
        scope: Dict[str, Any] = {}
        for arg in fn.args.args:
            ann = ast.unparse(arg.annotation) if arg.annotation else ""
            if arg.arg == "ctx":
                scope[arg.arg] = "ctx"
            elif "DeviceArray" in ann:
                scope[arg.arg] = _GlobalArray(arg.arg)
            elif "VariantConfig" in ann:
                scope[arg.arg] = "cfg"
            else:
                scope[arg.arg] = _val(Uniformity.UNIFORM, (), arg.arg)
        self.func_stack = [kernel]
        self._walk_stmts(list(fn.body), scope)

    # -- statements --------------------------------------------------------

    def _walk_stmts(self, stmts: List[ast.stmt], scope: Dict[str, Any]) -> None:
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            i += 1
            if isinstance(stmt, ast.Expr):
                self._walk_expr_stmt(stmt.value, scope)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._walk_assign(stmt, scope)
            elif isinstance(stmt, ast.If):
                extra = self._walk_if(stmt, scope)
                if extra:  # `if cond: continue/break` guards the rest
                    saved = self.guards
                    self.guards = self.guards + extra
                    self._walk_stmts(stmts[i:], scope)
                    self.guards = saved
                    return
            elif isinstance(stmt, (ast.While, ast.For)):
                self._walk_loop(stmt, scope)
            elif isinstance(stmt, ast.Break):
                # a break inside a barrier-free inner loop exits *that*
                # loop, not the barrier loop
                if self.loop is not None and self.multi_depth == 0:
                    self.loop.exits.add(self.loop.r)
            elif isinstance(stmt, (ast.Continue, ast.Pass, ast.Return,
                                   ast.FunctionDef, ast.Import,
                                   ast.ImportFrom, ast.Raise)):
                pass
            else:
                self.notes.append(
                    f"unhandled statement {type(stmt).__name__} at "
                    f"{self._site(stmt)}"
                )

    def _walk_expr_stmt(self, value: ast.expr, scope: Dict[str, Any]) -> None:
        if isinstance(value, ast.Yield):
            if value.value is not None:
                d = dotted(value.value)
                if d == "ctx.BARRIER":
                    self._barrier()
            return
        if isinstance(value, ast.YieldFrom):
            if isinstance(value.value, ast.Call):
                self._call(value.value, scope)
            return
        if isinstance(value, ast.Call):
            self._call(value, scope)

    def _walk_assign(self, stmt: ast.stmt, scope: Dict[str, Any]) -> None:
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                old = scope.get(stmt.target.id)
                rhs = self._eval(stmt.value, scope)
                if isinstance(old, _Value):
                    scope[stmt.target.id] = _val(
                        old.u.join(rhs.u), old.tags | rhs.tags, old.expr
                    )
            else:
                self._eval(stmt.value, scope)
            return
        target = stmt.targets[0] if isinstance(stmt, ast.Assign) \
            else stmt.target
        if stmt.value is None:
            return
        if (isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple)
                and len(target.elts) == len(stmt.value.elts)):
            # pairwise unpack: `a, b = f(x), g(y)`
            for elt, vnode in zip(target.elts, stmt.value.elts):
                if isinstance(elt, ast.Name):
                    scope[elt.id] = self._eval(vnode, scope)
                else:
                    self._eval(vnode, scope)
            return
        result = self._eval(stmt.value, scope)
        if isinstance(target, ast.Name):
            scope[target.id] = result
        elif isinstance(target, ast.Tuple) and isinstance(result, tuple):
            for elt, part in zip(target.elts, result):
                if isinstance(elt, ast.Name):
                    scope[elt.id] = part
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    scope[elt.id] = _val(Uniformity.DIVERGENT, (), elt.id)
        # subscript/attribute targets: host-local mutation, no binding

    def _walk_if(self, stmt: ast.If,
                 scope: Dict[str, Any]) -> Tuple[str, ...]:
        """Walk an if; returns guard tags for the *rest of the body* when
        the branch is a bare ``continue``/``break`` (loop early-out)."""
        static = self._cfg_eval(stmt.test)
        if static is not None:
            self._walk_stmts(stmt.body if static else stmt.orelse, scope)
            return ()
        body_is_exit = (
            len(stmt.body) == 1
            and isinstance(stmt.body[0], (ast.Continue, ast.Break,
                                          ast.Return))
            and not stmt.orelse
        )
        if body_is_exit:
            if (isinstance(stmt.body[0], ast.Break)
                    and self.loop is not None and self.multi_depth == 0):
                self.loop.exits.add(self.loop.r)
            return self._negated_guards(stmt.test, scope)
        guard = self._guard_tags(stmt.test, scope)
        saved = self.guards
        self.guards = saved + guard
        self._walk_stmts(stmt.body, scope)
        self.guards = saved + self._invert_guard(guard)
        self._walk_stmts(stmt.orelse, scope)
        self.guards = saved
        return ()

    def _guard_tags(self, test: ast.expr,
                    scope: Dict[str, Any]) -> Tuple[str, ...]:
        src = ast.unparse(test)
        if src == "ctx.warp_id == 0":
            return ("warp0",)
        # data guards: any truthiness/size/any test marks nonemptiness
        if ("size" in src or src.startswith("np.any") or "total" in src
                or "batch" in src or "count" in src or "width" in src
                or "pieces" in src or ".size" in src):
            return ("nonempty",)
        return ()

    def _invert_guard(self, guard: Tuple[str, ...]) -> Tuple[str, ...]:
        return tuple(
            "not-warp0" if g == "warp0" else f"not-{g}" for g in guard
        )

    def _negated_guards(self, test: ast.expr,
                        scope: Dict[str, Any]) -> Tuple[str, ...]:
        """Negation of an early-out test, as guard tags + head facts."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.GtE)):
            lhs = self._eval(test.left, scope)
            rhs = self._eval(test.comparators[0], scope)
            counters = [t[5:] for t in rhs.tags if t.startswith("smem:")]
            if counters:
                # `if x >= e_snapshot: continue` => x < snapshot of e
                self.head_exprs.add(lhs.expr)
            return ()
        # emptiness early-outs: `if total == 0: return`,
        # `if candidates.size == 0: continue`, `if not pieces: break` —
        # the rest of the body only runs on a nonempty work set
        src = ast.unparse(test)
        if (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
            return ("nonempty",)
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value == 0):
            return ("nonempty",)
        _ = src
        return ()

    def _walk_loop(self, node: Any, scope: Dict[str, Any]) -> None:
        if not self._body_has_barrier(node.body):
            if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                scope[node.target.id] = _val(
                    Uniformity.UNIFORM, (), node.target.id
                )
            if isinstance(node, ast.While):
                self._note_window_base(node.test, scope)
            self.multi_depth += 1
            self._walk_stmts(node.body, scope)
            self.multi_depth -= 1
            return
        if self.loop is not None or self.shape is not None:
            raise _Bail(
                f"second or nested barrier loop at {self._site(node)}: "
                "the single-loop epoch algebra does not apply"
            )
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            scope[node.target.id] = _val(Uniformity.UNIFORM, (), node.target.id)
        entry = self.phase
        self.loop = _LoopState()
        self._walk_stmts(node.body, scope)
        state = self.loop
        self.loop = None
        exits = state.exits or {0 if isinstance(node, ast.For) else state.r}
        if len(exits) > 1:
            raise _Bail(
                f"barrier loop at {self._site(node)} exits at several "
                f"barrier offsets {sorted(exits)}"
            )
        self.shape = LoopShape(pre=entry, body=state.r, exit_r=exits.pop())

    def _note_window_base(self, test: ast.expr,
                          scope: Dict[str, Any]) -> None:
        """``while lo < hi`` guarantees the first lane of ``lo + lanes``
        windows is in range — the nonemptiness fact for masked loads."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Lt)
                and isinstance(test.left, ast.Name)):
            self.window_bases.add(test.left.id)
            resolved = scope.get(test.left.id)
            if isinstance(resolved, _Value) and resolved.expr != "?":
                self.window_bases.add(resolved.expr)

    def _body_has_barrier(self, stmts: List[ast.stmt],
                          seen: Optional[Set[str]] = None) -> bool:
        seen = seen if seen is not None else set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Yield) and node.value is not None:
                    if is_sentinel_yield(node.value, "ctx") \
                            and dotted(node.value) == "ctx.BARRIER":
                        return True
                if isinstance(node, ast.YieldFrom) \
                        and isinstance(node.value, ast.Call):
                    name = dotted(node.value.func)
                    if name in self.functions and name not in seen:
                        seen.add(name)
                        if self._body_has_barrier(
                                list(self.functions[name].body), seen):
                            return True
        return False

    # -- calls -------------------------------------------------------------

    def _call(self, node: ast.Call, scope: Dict[str, Any]) -> Any:
        fname = dotted(node.func)
        # ctx primitives -----------------------------------------------
        if fname is not None and fname.startswith("ctx."):
            return self._ctx_call(fname[len("ctx."):], node, scope)
        # numpy / builtins ---------------------------------------------
        if fname is not None and (fname.startswith("np.")
                                  or fname in ("min", "max", "int", "float",
                                               "len", "abs", "range")):
            return self._builtin_call(fname, node, scope)
        # view methods --------------------------------------------------
        if isinstance(node.func, ast.Attribute):
            base = scope.get(ast.unparse(node.func.value))
            if isinstance(base, _ViewInfo):
                return self._view_call(base, node.func.attr, node, scope)
            inner = self._eval(node.func.value, scope)
            if isinstance(inner, _Value):  # .copy(), .append(), .max() …
                argvals = [self._eval(a, scope) for a in node.args]
                merged = self._merge([inner, *argvals], inner.expr)
                if (node.func.attr == "append"
                        and isinstance(node.func.value, ast.Name)):
                    # list accumulation: the binding absorbs the element
                    scope[node.func.value.id] = merged
                return merged
        # helper contracts & inlining ----------------------------------
        if fname == "BlockBufferView":
            return self._make_view(node, scope)
        if fname in ("warp_compact_ballot", "warp_compact_hillis_steele",
                     "hillis_steele_exclusive"):
            flags = node.args[-1] if node.args else None
            fexpr = ast.unparse(flags) if flags is not None else "?"
            return (
                _val(Uniformity.AFFINE, ("coffs",), f"coffs({fexpr})"),
                _val(Uniformity.UNIFORM, ("ctotal",), f"ctotal({fexpr})"),
            )
        if fname == "block_scan_offsets":
            iv = _val(Uniformity.AFFINE, ("arange", "all-slots"),
                      "arange(ctx.warps_per_block)")
            self._record(node, "shared", "warp_counts", "read", iv)
            return (
                _val(Uniformity.UNIFORM, ("partition:warp_counts",),
                     "block_scan_offsets()"),
                _val(Uniformity.UNIFORM, (), "block_total"),
            )
        if fname in self.functions:
            return self._inline(fname, node, scope)
        # anything else: evaluate args for side effects, merge tags
        vals = [self._eval(a, scope) for a in node.args]
        return self._merge(vals, f"{fname}(...)")

    def _merge(self, vals: Sequence[Any], expr: str) -> _Value:
        u = Uniformity.UNIFORM
        tags: Set[str] = set()
        for v in vals:
            if isinstance(v, _Value):
                u = u.join(v.u)
                tags |= v.tags
        return _val(u, tuple(tags), expr)

    def _inline(self, fname: str, node: ast.Call,
                scope: Dict[str, Any]) -> Any:
        fn = self.functions[fname]
        child: Dict[str, Any] = {}
        params = [a.arg for a in fn.args.args]
        defaults = fn.args.defaults
        for name, dflt in zip(params[len(params) - len(defaults):], defaults):
            child[name] = self._eval(dflt, scope)
        for name, arg in zip(params, node.args):
            child[name] = self._eval(arg, scope)
        for kw in node.keywords:
            if kw.arg is not None:
                child[kw.arg] = self._eval(kw.value, scope)
        self.func_stack.append(fname)
        ret: Any = _val(Uniformity.DIVERGENT, (), f"{fname}(...)")
        ret_node = next(
            (n for n in iter_own_scope(fn)
             if isinstance(n, ast.Return) and n.value is not None), None
        )
        self._walk_stmts(list(fn.body), child)
        if ret_node is not None and ret_node.value is not None:
            ret = self._eval(ret_node.value, child)
        self.func_stack.pop()
        return ret

    def _make_view(self, node: ast.Call, scope: Dict[str, Any]) -> _ViewInfo:
        buf = node.args[1] if len(node.args) > 1 else None
        bufv = self._eval(buf, scope) if buf is not None else None
        name = bufv.name if isinstance(bufv, _GlobalArray) else "buf"
        ring = use_shared = False
        for kw in node.keywords:
            if kw.arg in ("ring", "use_shared"):
                flag = self._cfg_eval(kw.value)
                if flag is None:
                    flag = bool(isinstance(kw.value, ast.Constant)
                                and kw.value.value)
                if kw.arg == "ring":
                    ring = flag
                else:
                    use_shared = flag
        return _ViewInfo(name, ring, use_shared)

    def _view_call(self, view: _ViewInfo, method: str, node: ast.Call,
                   scope: Dict[str, Any]) -> Any:
        extra = ["block-private"] + (["ring"] if view.ring else [])
        if method in ("read", "read_batch"):
            iv = self._eval(node.args[0], scope)
            iv = self._apply_head(iv)
            self._record(node, "global", view.buf, "read", iv, extra)
            if view.use_shared:
                self._record(node, "shared", "e_init", "read",
                             _val(Uniformity.UNIFORM, (), "e_init"))
                self._record(node, "shared", "B", "read", iv, extra)
            u = Uniformity.UNIFORM if iv.u is Uniformity.UNIFORM \
                else Uniformity.DIVERGENT
            out = ["gather"]
            if self._nonempty(iv):
                out.append("nonempty")
            return _val(u, tuple(out), f"{view.buf}[{iv.expr}]")
        if method == "write":
            iv = self._eval(node.args[0], scope)
            self._record(node, "global", view.buf, "write", iv, extra)
            if view.use_shared:
                self._record(node, "shared", "e_init", "read",
                             _val(Uniformity.UNIFORM, (), "e_init"))
                self._record(node, "shared", "B", "write", iv, extra)
            return _UNIFORM
        return _UNIFORM

    def _apply_head(self, iv: _Value) -> _Value:
        """Mark an index proven below a tail-counter snapshot."""
        tags = set(iv.tags)
        if iv.expr in self.head_exprs:
            tags.add("head:e")
        for t in iv.tags:
            if t.startswith("le-snap:"):
                tags.add("head:" + t[len("le-snap:"):])
        return _Value(iv.u, frozenset(tags), iv.expr)

    def _ctx_call(self, op: str, node: ast.Call,
                  scope: Dict[str, Any]) -> Any:
        def lit(i: int) -> str:
            if i < len(node.args) and isinstance(node.args[i], ast.Constant):
                return str(node.args[i].value)
            return ast.unparse(node.args[i]) if i < len(node.args) else "?"

        if op == "smem_get":
            name = lit(0)
            self._record(node, "shared", name, "read",
                         _val(Uniformity.UNIFORM, (), name))
            return _val(Uniformity.UNIFORM, (f"smem:{name}",), f"smem[{name}]")
        if op == "smem_set":
            name = lit(0)
            if len(node.args) > 1:
                self._eval(node.args[1], scope)
            self._record(node, "shared", name, "write",
                         _val(Uniformity.UNIFORM, (), name))
            return _UNIFORM
        if op == "smem_atomic_add":
            name = lit(0)
            cnt = self._eval(node.args[1], scope) if len(node.args) > 1 \
                else _UNIFORM
            self._record(node, "shared", name, "atomic",
                         _val(Uniformity.UNIFORM, (), name))
            return _val(Uniformity.UNIFORM, (f"resv:{name}",),
                        f"resv[{name}]+{cnt.expr}")
        if op == "smem_array":
            return _SharedArray(lit(0))
        if op in ("sload", "sstore"):
            arr = self._eval(node.args[0], scope)
            iv = self._eval(node.args[1], scope)
            if len(node.args) > 2:
                self._eval(node.args[2], scope)
            name = arr.name if isinstance(arr, _SharedArray) else "<shared>"
            extra: List[str] = []
            if isinstance(arr, _SharedArray) and arr.parity:
                extra.append(f"parity-{arr.parity}")
            if iv.expr == "ctx.warp_id":
                extra.append("warp-slot")
            if op == "sstore":
                val = self._eval(node.args[2], scope) if len(node.args) > 2 \
                    else _UNIFORM
                if isinstance(val, _Value):
                    self.array_content[name] = val.tags
                self._record(node, "shared", name, "write", iv, extra)
                return _UNIFORM
            self._record(node, "shared", name, "read", iv, extra)
            content = self.array_content.get(name, frozenset())
            return _val(Uniformity.UNIFORM, tuple(content),
                        f"{name}[{iv.expr}]")
        if op in ("gload", "gstore", "atomic_global"):
            arr = self._eval(node.args[0], scope)
            iv = self._eval(node.args[1], scope)
            if len(node.args) > 2:
                self._eval(node.args[2], scope)
            name = arr.name if isinstance(arr, _GlobalArray) else "<global>"
            extra = []
            if "block_idx" in iv.tags and iv.u is Uniformity.UNIFORM:
                extra.append("block-private")
            kind = {"gload": "read", "gstore": "write",
                    "atomic_global": "atomic"}[op]
            self._record(node, "global", name, kind, iv, extra)
            u = Uniformity.UNIFORM if iv.u is Uniformity.UNIFORM \
                else Uniformity.DIVERGENT
            out = ["gather"]
            if self._nonempty(iv):  # a gather of a nonempty window
                out.append("nonempty")
            return _val(u, tuple(out), f"{name}[{iv.expr}]")
        if op == "shfl_broadcast":
            return self._eval(node.args[0], scope) if node.args else _UNIFORM
        if op in ("ballot", "popc", "charge", "sync_warp", "should_preempt"):
            for a in node.args:
                self._eval(a, scope)
            return _UNIFORM
        return _UNIFORM

    def _builtin_call(self, fname: str, node: ast.Call,
                      scope: Dict[str, Any]) -> _Value:
        vals = [self._eval(a, scope) for a in node.args]
        if fname == "np.arange":
            tags = {"arange"}
            stop = vals[-1] if len(vals) >= 2 else (vals[0] if vals else None)
            start = vals[0] if len(vals) >= 2 else None
            if isinstance(stop, _Value):
                for t in stop.tags:
                    if t.startswith(("smem:", "le-snap:")):
                        tags.add("le-snap:" + t.split(":", 1)[1])
                        tags.add("head:" + t.split(":", 1)[1])
            expr = "arange(" + ", ".join(
                v.expr if isinstance(v, _Value) else "?" for v in vals
            ) + ")"
            _ = start
            return _val(Uniformity.AFFINE, tuple(tags), expr)
        if fname == "min":
            tags: Set[str] = set()
            for v in vals:
                if not isinstance(v, _Value):
                    continue
                for t in v.tags:
                    if t.startswith("smem:"):
                        tags.add("le-snap:" + t[len("smem:"):])
                    if t.startswith("snapdiff:"):
                        tags.add("lediff:" + t[len("snapdiff:"):])
            expr = "min(" + ", ".join(
                v.expr if isinstance(v, _Value) else "?" for v in vals
            ) + ")"
            return _val(Uniformity.UNIFORM, tuple(tags), expr)
        if fname in ("int", "float", "abs", "len"):
            # scalar casts: one value per warp, uniform by construction
            if len(vals) == 1 and isinstance(vals[0], _Value):
                return _val(Uniformity.UNIFORM, tuple(vals[0].tags),
                            f"{fname}({vals[0].expr})")
        if fname in ("np.asarray", "np.ceil"):
            if len(vals) == 1 and isinstance(vals[0], _Value):
                return vals[0]
        if fname == "np.concatenate":
            # pieces may be disjoint windows: conservatively scattered,
            # but nonemptiness survives concatenation
            keep = frozenset(
                t for v in vals if isinstance(v, _Value) for t in v.tags
                if t == "nonempty"
            )
            return _Value(Uniformity.DIVERGENT, keep, "concat(...)")
        return self._merge(vals, f"{fname}(...)")

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr, scope: Dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return _val(Uniformity.UNIFORM, (), repr(node.value))
        if isinstance(node, ast.Name):
            if node.id in scope:
                return scope[node.id]
            return _val(Uniformity.UNIFORM, (), node.id)
        if isinstance(node, ast.Attribute):
            d = dotted(node)
            if d == "ctx.lanes":
                return _val(Uniformity.AFFINE, ("lanes",), "ctx.lanes")
            if d == "ctx.warp_id":
                return _val(Uniformity.UNIFORM, ("warp_id",), "ctx.warp_id")
            if d == "ctx.block_idx":
                return _val(Uniformity.UNIFORM, ("block_idx",),
                            "ctx.block_idx")
            if d is not None and d.startswith("ctx."):
                return _val(Uniformity.UNIFORM, (), d)
            base = self._eval(node.value, scope)
            if isinstance(base, _Value):
                return _val(Uniformity.UNIFORM, tuple(base.tags),
                            f"{base.expr}.{node.attr}")
            return _val(Uniformity.UNIFORM, (), ast.unparse(node))
        if isinstance(node, ast.Call):
            out = self._call(node, scope)
            return out if out is not None else _UNIFORM
        if isinstance(node, ast.BinOp):
            return self._binop(node, scope)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, scope)
        if isinstance(node, ast.Compare):
            vals = [self._eval(node.left, scope)] + [
                self._eval(c, scope) for c in node.comparators
            ]
            return self._merge(vals, ast.unparse(node))
        if isinstance(node, ast.BoolOp):
            return self._merge([self._eval(v, scope) for v in node.values],
                               ast.unparse(node))
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, scope)
        if isinstance(node, ast.IfExp):
            a = self._eval(node.body, scope)
            b = self._eval(node.orelse, scope)
            return self._merge([a, b], ast.unparse(node))
        if isinstance(node, (ast.Tuple, ast.List)):
            vals = [self._eval(e, scope) for e in node.elts]
            if all(isinstance(v, (_SharedArray, _GlobalArray, _ViewInfo))
                   for v in vals) and vals:
                return tuple(vals)
            merged = self._merge(vals, ast.unparse(node))
            if all(isinstance(v, _Value) and v.u is Uniformity.UNIFORM
                   for v in vals) and vals:
                # a short literal list of uniform scalars: a dense window
                return _val(Uniformity.AFFINE,
                            tuple(merged.tags | {"smallwin"}),
                            merged.expr)
            return merged
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            # a comprehension over a nonempty iterable is nonempty
            tags: Set[str] = set()
            for gen in node.generators:
                src = self._eval(gen.iter, scope)
                if isinstance(src, _Value) and self._nonempty(src) \
                        and not gen.ifs:
                    tags.add("nonempty")
            return _val(Uniformity.DIVERGENT, tuple(tags),
                        ast.unparse(node))
        if isinstance(node, ast.Starred):
            return self._eval(node.value, scope)
        return _val(Uniformity.DIVERGENT, (), ast.unparse(node))

    def _binop(self, node: ast.BinOp, scope: Dict[str, Any]) -> Any:
        left = self._eval(node.left, scope)
        right = self._eval(node.right, scope)
        # double-buffer parity: pref[(iteration + 1) % 2] vs pref[i % 2]
        if isinstance(node.op, ast.Mod) and isinstance(left, _Value):
            src = ast.unparse(node.left)
            parity = "next" if "+ 1" in src or "+1" in src else "cur"
            return _val(Uniformity.UNIFORM, (f"mod2-{parity}",),
                        ast.unparse(node))
        if not isinstance(left, _Value) or not isinstance(right, _Value):
            return self._merge([left, right], ast.unparse(node))
        u = left.u.join(right.u)
        tags: Set[str] = set()
        expr = f"({left.expr} {type(node.op).__name__} {right.expr})"
        if isinstance(node.op, ast.Add):
            expr = f"({left.expr} + {right.expr})"
            for a, b in ((left, right), (right, left)):
                for t in a.tags:
                    if t.startswith("resv:") and (
                            "arange" in b.tags or "coffs" in b.tags
                            or "partition:warp_counts" in b.tags):
                        tags.add("reserved:" + t[len("resv:"):])
                    if t.startswith("lediff:"):
                        _, counter, base = t.split(":", 2)
                        if b.expr == base:
                            tags.add(f"le-snap:{counter}")
            # partition offsets + reservation base => reserved slots
            if ("partition:warp_counts" in left.tags | right.tags
                    and any(t.startswith("resv:")
                            for t in left.tags | right.tags)):
                for t in left.tags | right.tags:
                    if t.startswith("resv:"):
                        tags.add("reserved:" + t[len("resv:"):])
            # a warp-published partition slot + compaction offsets
            if ("reserved:e" not in tags
                    and ("coffs" in right.tags or "coffs" in left.tags)):
                other = left if "coffs" in right.tags else right
                if any(t.startswith("reserved:") or t == "partition:warp_counts"
                       or t.startswith("resv:") for t in other.tags):
                    tags.add("reserved:e")
        if isinstance(node.op, ast.Sub):
            expr = f"({left.expr} - {right.expr})"
            for t in left.tags:
                if t.startswith("smem:"):
                    tags.add(f"snapdiff:{t[len('smem:'):]}:{right.expr}")
        tags |= left.tags | right.tags
        # carry forward: reserved/head/partition tags survive arithmetic
        return _val(u, tuple(tags), expr)

    def _subscript(self, node: ast.Subscript, scope: Dict[str, Any]) -> Any:
        base = self._eval(node.value, scope)
        if isinstance(base, tuple):  # pref[(iteration + 1) % 2]
            sel = self._eval(node.slice, scope)
            parity = "cur"
            if isinstance(sel, _Value) and "mod2-next" in sel.tags:
                parity = "next"
            first = base[0]
            if isinstance(first, _SharedArray):
                stem = first.name.rstrip("01")
                return _SharedArray(stem, parity=parity)
            return first
        if isinstance(base, (_GlobalArray, _SharedArray, _ViewInfo)):
            return base
        idx = self._eval(node.slice, scope) \
            if not isinstance(node.slice, ast.Slice) else _UNIFORM
        if isinstance(base, _Value):
            tags = set(base.tags)
            if isinstance(idx, _Value):
                # masked subset of a dense window stays a dense window
                if base.u is Uniformity.AFFINE:
                    tags.add("maskwin")
                    if self._mask_nonempty(node.slice, base, idx):
                        tags.add("nonempty")
            u = base.u if base.u is not Uniformity.UNIFORM \
                else Uniformity.UNIFORM
            return _val(u, tuple(tags), f"{base.expr}[{ast.unparse(node.slice)}]")
        return _val(Uniformity.DIVERGENT, (), ast.unparse(node))

    def _mask_nonempty(self, mask: ast.expr, base: _Value,
                       idx: Optional[_Value] = None) -> bool:
        """``(lo + lanes)[lo + lanes < hi]`` with ``while lo < hi`` live:
        lane 0 always passes, so the masked window is nonempty."""
        is_lt = (isinstance(mask, ast.Compare) and len(mask.ops) == 1
                 and isinstance(mask.ops[0], ast.Lt))
        if not is_lt:
            # the mask may be a Name bound to an in-range test earlier
            if not (isinstance(mask, ast.Name) and idx is not None
                    and " < " in idx.expr):
                return False
        for name in self.window_bases:
            if name in base.expr:
                return True
        return False


# ---------------------------------------------------------------------------
# race analysis
# ---------------------------------------------------------------------------

_AXIOMS = {
    "reservation": (
        "atomic reservations return fresh disjoint ranges; compaction "
        "offsets are an exclusive prefix below the reserved total "
        "(stated axiom over the verified no-memory compaction helpers)"
    ),
    "head-tail": (
        "the tail counter only grows (all in-loop updates are "
        "non-negative atomic adds), so every reservation base is >= the "
        "epoch's tail snapshot that bounds the head window"
    ),
}


def _conflicting(a: Access, b: Access) -> bool:
    if a.space != b.space or a.array != b.array:
        return False
    return a.kind == "write" or b.kind == "write"


def _counter_monotone(accesses: Sequence[Access], counter: str) -> bool:
    """No plain write to the tail counter inside or after the loop."""
    return not any(
        acc.space == "shared" and acc.array == counter
        and acc.kind == "write" and acc.epoch.kind != "pre"
        for acc in accesses
    )


def _discharge(a: Access, b: Access, shape: Optional[LoopShape],
               accesses: Sequence[Access]) -> Optional[Tuple[str, str]]:
    """Try the discharge catalogue; returns (argument, detail) or None."""
    # global pairs need block-privacy first: blocks never synchronise
    if a.space == "global":
        if not ("block-private" in a.tags and "block-private" in b.tags):
            return None
    if not may_same_epoch(a.epoch, b.epoch, shape):
        return ("barrier-separated",
                f"epochs {a.epoch} and {b.epoch} never coincide under "
                f"the loop shape {shape}")
    if "warp0" in a.guards and "warp0" in b.guards:
        if a is not b or not a.multi:
            return ("same-warp",
                    "both accesses run on warp 0 of the block only; one "
                    "warp is always ordered with itself")
    if a is b and not a.multi and "warp0" in a.guards:
        return ("single-instance",
                "a single warp-0 access instance cannot race itself")
    if "warp-slot" in a.tags and "warp-slot" in b.tags:
        return ("warp-slot",
                "both sides index the array at ctx.warp_id: distinct "
                "warps hit distinct slots, one warp is self-ordered")
    pa = {t for t in a.tags if t.startswith("parity-")}
    pb = {t for t in b.tags if t.startswith("parity-")}
    if pa and pb and pa != pb:
        return ("double-buffer-parity",
                "equal epochs imply equal pipeline iterations, and the "
                "write targets the opposite parity buffer from the read")
    ra = {t[len("reserved:"):] for t in a.tags if t.startswith("reserved:")}
    rb = {t[len("reserved:"):] for t in b.tags if t.startswith("reserved:")}
    ring = "ring" in a.tags or "ring" in b.tags
    if a.kind == "write" and b.kind == "write" and ra & rb and not ring:
        return ("reservation-disjoint",
                f"both writes land inside fresh atomic reservations on "
                f"'{ra.intersection(rb).pop()}'; " + _AXIOMS["reservation"])
    ha = {t[len("head:"):] for t in a.tags if t.startswith("head:")}
    hb = {t[len("head:"):] for t in b.tags if t.startswith("head:")}
    for read, write, heads, resvs in ((a, b, ha, rb), (b, a, hb, ra)):
        if (read.kind == "read" and write.kind == "write"
                and heads & resvs and not ring):
            counter = (heads & resvs).pop()
            if _counter_monotone(accesses, counter):
                return ("head-tail",
                        f"the read window sits strictly below a snapshot "
                        f"of tail counter '{counter}' while the write sits "
                        f"inside a reservation at or above it; "
                        + _AXIOMS["head-tail"])
    return None


def _analyze_races(
    accesses: Sequence[Access], shape: Optional[LoopShape],
    kernel: str,
) -> Tuple[List[RaceProof], List[RaceObligation]]:
    proofs: List[RaceProof] = []
    unproven: List[RaceObligation] = []
    groups: Dict[Tuple[str, str], List[Access]] = {}
    for acc in accesses:
        groups.setdefault((acc.space, acc.array), []).append(acc)
    for (space, array), group in sorted(groups.items()):
        writes = [g for g in group if g.kind == "write"]
        if not writes:
            kinds = sorted({g.kind for g in group})
            proofs.append(RaceProof(
                space, array, "/".join(kinds),
                group[0].site, group[-1].site,
                "read-only" if kinds == ["read"] else "atomic-only",
                f"'{array}' has no plain write in {kernel}: the race "
                "model (racecheck) requires at least one plain write"
            ))
            continue
        seen: Set[Tuple[str, str, str, str]] = set()
        for i, x in enumerate(group):
            for y in group[i:]:
                if not _conflicting(x, y):
                    continue
                if x is y and (x.kind != "write"
                               or (not x.multi and "warp0" in x.guards
                                   and space == "shared")):
                    # single-warp single-instance self pair: ordered
                    continue
                key = (x.site, y.site, x.kind, y.kind)
                if key in seen:
                    continue
                seen.add(key)
                kinds = f"{x.kind}-{y.kind}"
                out = _discharge(x, y, shape, accesses)
                if out is None:
                    reason = "no discharge argument applies"
                    if space == "global" and not (
                            "block-private" in x.tags
                            and "block-private" in y.tags):
                        reason = (
                            "global pair without block-private addressing "
                            "on both sides: blocks never synchronise "
                            "inside a launch"
                        )
                    elif "ring" in x.tags or "ring" in y.tags:
                        reason = (
                            "ring-buffer wraparound defeats the head-tail "
                            "and reservation orderings (positions alias "
                            "modulo capacity)"
                        )
                    unproven.append(RaceObligation(
                        space, array, kinds, x.site, y.site, reason))
                else:
                    argument, detail = out
                    proofs.append(RaceProof(
                        space, array, kinds, x.site, y.site, argument,
                        detail))
    return proofs, unproven


# ---------------------------------------------------------------------------
# efficiency brackets
# ---------------------------------------------------------------------------

_COAL_LO = {"scalar": 1.0, "contiguous": 0.5, "scattered": 1.0 / 32.0}


def _bracket(accesses: Sequence[Access]) -> EfficiencyBracket:
    sites = [a for a in accesses if a.space == "global"]
    if not sites:
        return EfficiencyBracket(1.0, 1.0, 1.0, 1.0)
    coal_lo = min(_COAL_LO[a.coal] for a in sites)
    nonempty = all(
        a.coal == "scalar" or "smallwin" in a.tags or "nonempty" in a.tags
        or "nonempty" in a.guards or "arange" in a.tags
        for a in sites
    )
    div_lo = 1.0 / 32.0 if nonempty else 0.0
    return EfficiencyBracket(div_lo, 1.0, coal_lo, 1.0)


# ---------------------------------------------------------------------------
# engine preconditions (executor-module AST)
# ---------------------------------------------------------------------------

#: the k-core executor module — the default so the fixture self-tests
#: (and any caller without a contract) keep their legacy behavior
_KCORE_ENGINE_MODULE = "repro.core.fastsim"

_precond_cache: Dict[
    Tuple[VariantConfig, Optional[str], str], Tuple[FallbackRule, ...]
] = {}


def _executor_attribution(tree: ast.Module,
                          executors: Dict[str, str]) -> Dict[str, str]:
    """Kernel attribution of every function in an executor module.

    Built from the call graph rooted at the ``register_vectorized_kernel``
    executors (the *explicit* registration arguments) rather than from
    substring matching on function names: a helper reachable from
    exactly one executor serves that executor's kernel; one reachable
    from several (or none — dead or host-side code) is ``"both"``.
    Method calls are resolved by bare attribute name, which is exact
    enough for a module whose function names are unique.
    """
    defs: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
    edges: Dict[str, Set[str]] = {}
    for name, fn in defs.items():
        callees: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id in defs:
                callees.add(node.func.id)
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in defs):
                callees.add(node.func.attr)
        edges[name] = callees
    serves: Dict[str, Set[str]] = {name: set() for name in defs}
    for impl, kern in executors.items():
        kernel = kern.split(".")[-1]
        frontier = [impl]
        while frontier:
            name = frontier.pop()
            if name not in serves or kernel in serves[name]:
                continue
            serves[name].add(kernel)
            frontier.extend(edges.get(name, ()))
    return {
        name: next(iter(kernels)) if len(kernels) == 1 else "both"
        for name, kernels in serves.items()
    }


def engine_preconditions(
    cfg: VariantConfig,
    engine_module: Optional[str] = _KCORE_ENGINE_MODULE,
    kernel: str = "both",
) -> Tuple[FallbackRule, ...]:
    """All fallback sites of ``engine_module``, structural guards
    evaluated on ``cfg``.

    ``engine_module`` is the contract-declared module registering the
    kernel's vectorized executor; ``None`` means no executor exists and
    the result is a single always-firing structural rule — the honest
    static prediction that every launch is served by reference.
    """
    key = (cfg, engine_module, kernel if engine_module is None else "both")
    if key in _precond_cache:
        return _precond_cache[key]
    if engine_module is None:
        out = (FallbackRule(
            kernel, "<contracts>", 0,
            "no vectorized executor is registered for this kernel",
            True, "", True,
        ),)
        _precond_cache[key] = out
        return out
    mod = importlib.import_module(engine_module)
    with open(mod.__file__ or "", encoding="utf-8") as fh:
        tree = ast.parse(fh.read())
    executors: Dict[str, str] = {}
    for node in ast.walk(tree):  # registration may sit inside register()
        if (isinstance(node, ast.Call)
                and dotted(node.func) == "register_vectorized_kernel"
                and len(node.args) == 2):
            kern = dotted(node.args[0]) or "?"
            impl = dotted(node.args[1]) or "?"
            executors[impl] = kern
    attribution = _executor_attribution(tree, executors)
    rules: List[FallbackRule] = []

    def visit(fn: ast.FunctionDef, kernel: str, structural_ok: bool) -> None:
        def walk(stmts: List[ast.stmt], tests: Tuple[ast.expr, ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Raise):
                    call = stmt.exc
                    name = dotted(call.func) if isinstance(call, ast.Call) \
                        else None
                    if name != "FallbackToReference":
                        continue
                    msg = ""
                    if isinstance(call, ast.Call) and call.args and \
                            isinstance(call.args[0], ast.Constant):
                        msg = str(call.args[0].value)
                    test = tests[-1] if tests else None
                    test_src = ast.unparse(test) if test is not None else ""
                    structural = False
                    fires = False
                    if structural_ok and test is not None:
                        names = {
                            n.id for n in ast.walk(test)
                            if isinstance(n, ast.Name)
                        }
                        if names <= {"cfg"}:
                            try:
                                value = _StructEval(cfg).eval(test)
                                structural, fires = True, bool(value)
                            except _Bail:
                                pass
                    rules.append(FallbackRule(
                        kernel, fn.name, stmt.lineno, msg, structural,
                        test_src, fires))
                elif isinstance(stmt, ast.If):
                    walk(stmt.body, tests + (stmt.test,))
                    walk(stmt.orelse, tests)
                elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                    walk(stmt.body, tests)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, tests)
                    for h in stmt.handlers:
                        walk(h.body, tests)

        walk(list(fn.body), ())

    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name in executors:
            visit(node, executors[node.name].split(".")[-1],
                  structural_ok=True)
        else:
            visit(node, attribution.get(node.name, "both"),
                  structural_ok=False)
    out = tuple(rules)
    _precond_cache[key] = out
    return out


class _StructEval:
    """Evaluates a pure-``cfg`` guard expression on a variant config."""

    def __init__(self, cfg: VariantConfig) -> None:
        self.cfg = cfg

    def eval(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Attribute):
            d = dotted(node)
            if d is not None and d.startswith("cfg."):
                return getattr(self.cfg, d[len("cfg."):])
            raise _Bail()
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, right = self.eval(node.left), self.eval(node.comparators[0])
            op = node.ops[0]
            table = {
                ast.Eq: left == right, ast.NotEq: left != right,
                ast.Gt: left > right, ast.GtE: left >= right,
                ast.Lt: left < right, ast.LtE: left <= right,
            }
            for kind, value in table.items():
                if isinstance(op, kind):
                    return value
            raise _Bail()
        if isinstance(node, ast.BoolOp):
            vals = [self.eval(v) for v in node.values]
            return all(vals) if isinstance(node.op, ast.And) else any(vals)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return not self.eval(node.operand)
        raise _Bail()


def _contract_preconditions(
    kernel: str, cfg: VariantConfig
) -> Tuple[FallbackRule, ...]:
    """Engine preconditions via the kernel's contract; unregistered
    kernels keep the legacy k-core executor-module behavior."""
    from repro.staticheck import contracts

    try:
        contract = contracts.kernel_contract(kernel)
    except KeyError:
        return engine_preconditions(cfg)
    return engine_preconditions(cfg, contract.engine_module, kernel)


def predicted_tier(
    kernel: str,
    cfg: VariantConfig,
    engine: str = "vectorized",
    monitored: bool = False,
    preempt_prob: float = 0.0,
) -> str:
    """Which engine tier *must* serve a launch of ``kernel`` under ``cfg``."""
    if engine == "reference" or monitored or preempt_prob > 0.0:
        return "reference"
    for rule in _contract_preconditions(kernel, cfg):
        if rule.kernel == kernel and rule.structural and rule.fires:
            return "reference"
    return engine


# ---------------------------------------------------------------------------
# certificate assembly
# ---------------------------------------------------------------------------

_cert_cache: Dict[Tuple[str, VariantConfig], DataflowCertificate] = {}


def analyze_kernel(kernel: str,
                   cfg: "VariantConfig | str") -> DataflowCertificate:
    """Dataflow certificate for one kernel x variant (cached).

    The kernel's module, entry function and executor module all come
    from its registered :class:`~repro.staticheck.contracts.
    KernelContract` — any admitted kernel analyzes here, not just the
    k-core pair.  A string ``cfg`` is resolved against the contract's
    own variant space first, then the k-core variant registry.
    """
    from repro.staticheck import contracts

    try:
        contract = contracts.kernel_contract(kernel)
    except KeyError:
        registered = ", ".join(sorted(contracts.all_kernel_contracts()))
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of ({registered})"
        ) from None
    if isinstance(cfg, str):
        space = contract.variants()
        cfg = space[cfg] if cfg in space else get_variant(cfg)
    key = (kernel, cfg)
    if key in _cert_cache:
        return _cert_cache[key]
    module = importlib.import_module(contract.module)
    cert = analyze_function(module, contract.entry, cfg,
                            engine_module=contract.engine_module)
    _cert_cache[key] = cert
    return cert


def analyze_function(module: Any, kernel: str, cfg: VariantConfig,
                     engine_module: Optional[str] = _KCORE_ENGINE_MODULE,
                     ) -> DataflowCertificate:
    """Dataflow certificate for any kernel generator in ``module``.

    The uncached engine behind :func:`analyze_kernel`; exposed so the
    detector self-tests can run the analyzer over the known-bad
    fixture kernels of :mod:`repro.staticheck.fixtures`.
    ``engine_module`` follows the kernel's contract when called via
    :func:`analyze_kernel`; the default keeps the k-core executor
    module for contract-less callers.
    """
    violations = verify_contracts()
    interp = _Interp(module, cfg)
    notes: List[str] = list(violations)
    accesses: Tuple[Access, ...] = ()
    shape: Optional[LoopShape] = None
    proofs: List[RaceProof] = []
    unproven: List[RaceObligation] = []
    bracket = EfficiencyBracket(0.0, 1.0, 0.0, 1.0)
    if not violations:
        try:
            interp.run(kernel)
            accesses = tuple(interp.accesses)
            shape = interp.shape
            notes.extend(interp.notes)
            proofs, unproven = _analyze_races(accesses, shape, kernel)
            bracket = _bracket(accesses)
        except _Bail as exc:
            notes.append(str(exc))
            unproven = [RaceObligation(
                "*", "*", "*", f"{interp.file}:0", f"{interp.file}:0",
                f"analysis bailed out: {exc}")]
    else:
        unproven = [RaceObligation(
            "*", "*", "*", "repro/core/buffers.py:0",
            "repro/core/compaction.py:0",
            "helper contract verification failed: " + "; ".join(violations))]
    return DataflowCertificate(
        kernel=kernel, variant=cfg.name, loop_shape=shape,
        accesses=accesses, proofs=tuple(proofs), unproven=tuple(unproven),
        bracket=bracket,
        preconditions=engine_preconditions(cfg, engine_module, kernel),
        notes=tuple(notes),
    )


def _unproven_findings(cert: DataflowCertificate) -> List[SanitizerFinding]:
    return [
        SanitizerFinding(
            "unproven-race-freedom", "warning",
            f"{cert.kernel}[{cert.variant}]",
            f"{ob.kinds} pair on {ob.space} '{ob.array}' could not be "
            f"discharged: {ob.reason}",
            (ob.a_site, ob.b_site),
        )
        for ob in cert.unproven
    ]


def certified_combos(
    variants: Optional[Sequence[str]] = None,
) -> List[Tuple[str, VariantConfig]]:
    """The (kernel, config) pairs the pipeline certifies.

    With ``variants`` (a sequence of k-core variant names) this is the
    legacy spelling: those configs crossed with the peeling kernels.
    With ``variants=None`` it iterates the contract registry — every
    admitted kernel over its own variant space, minus the configs whose
    contract declares undischarged obligations honest (ring buffers).
    """
    if variants is not None:
        return [
            (kernel, get_variant(name))
            for name in variants
            for kernel in DATAFLOW_KERNELS
        ]
    from repro.staticheck import contracts

    return [
        (kernel, cfg)
        for kernel, contract in contracts.all_kernel_contracts().items()
        for cfg in contract.variants().values()
        if not contract.honest_unproven(cfg)
    ]


def dataflow_report(
    variants: Optional[Sequence[str]] = None,
) -> SanitizerReport:
    """Analyze every admitted kernel x variant; unproven pairs become
    findings."""
    report = SanitizerReport()
    for kernel, cfg in certified_combos(variants):
        cert = analyze_kernel(kernel, cfg)
        report.modules_linted += 1
        report.extend(_unproven_findings(cert))
    return report


def render_dataflow_certificates(
    variants: Optional[Sequence[str]] = None,
) -> str:
    """Human-readable dump of the dataflow certificates (CLI --dataflow)."""
    lines: List[str] = []
    for kernel, cfg in certified_combos(variants):
        cert = analyze_kernel(kernel, cfg)
        shape = (
            f"pre={cert.loop_shape.pre} L={cert.loop_shape.body} "
            f"exit@{cert.loop_shape.exit_r}"
            if cert.loop_shape else "straight-line"
        )
        verdict = "race-free" if cert.race_free else (
            f"{len(cert.unproven)} UNPROVEN pair(s)")
        lines.append(f"== {kernel} [{cfg.name}] ==")
        lines.append(
            f"  barrier skeleton: {shape}; "
            f"{len(cert.accesses)} abstract accesses; {verdict}"
        )
        b = cert.bracket
        lines.append(
            f"  efficiency bracket: divergence in "
            f"[{b.divergence_lo:.4f}, {b.divergence_hi:.4f}], "
            f"coalescing in [{b.coalescing_lo:.4f}, "
            f"{b.coalescing_hi:.4f}]"
        )
        tier = predicted_tier(kernel, cfg)
        lines.append(f"  engine precondition: vectorized launch is "
                     f"served by '{tier}'")
        for proof in cert.proofs:
            lines.append(
                f"  proof [{proof.argument}] {proof.kinds} on "
                f"{proof.space} '{proof.array}' "
                f"({proof.a_site} <-> {proof.b_site})"
            )
            lines.append(f"    {proof.detail}")
        for ob in cert.unproven:
            lines.append(
                f"  UNPROVEN {ob.kinds} on {ob.space} '{ob.array}' "
                f"({ob.a_site} <-> {ob.b_site}): {ob.reason}"
            )
        for note in cert.notes:
            lines.append(f"  note: {note}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the launch-time checker
# ---------------------------------------------------------------------------


class DataflowChecker:
    """Asserts the dataflow certificates against every traced launch.

    Mirrors :class:`~repro.staticheck.differential.DifferentialChecker`:
    construction runs the purely static analysis (unproven race
    obligations surface immediately as ``unproven-race-freedom``
    warnings), then :meth:`observe` checks each launch's measured
    :class:`~repro.gpusim.scheduler.KernelStats` against the
    certificate — the divergence/coalescing bracket
    (``divergence-bound``) and the engine-precondition prediction
    against ``stats.served_by`` (``engine-precondition``).  Observation
    charges no simulated cycles.
    """

    def __init__(
        self,
        cfg: VariantConfig,
        engine: str = "vectorized",
        monitored: bool = False,
        preempt_prob: float = 0.0,
        program: str = "kcore",
    ) -> None:
        from repro.staticheck import contracts

        self.cfg = cfg
        self.engine = engine
        self.monitored = monitored
        self.preempt_prob = preempt_prob
        self.program = program
        self.report = SanitizerReport()
        self.certificates: Dict[str, DataflowCertificate] = {}
        self.expected: Dict[str, str] = {}
        kernels = contracts.program_contract(program).kernels
        for kernel in kernels:
            cert = analyze_kernel(kernel, cfg)
            self.certificates[kernel] = cert
            self.expected[kernel] = predicted_tier(
                kernel, cfg, engine=engine, monitored=monitored,
                preempt_prob=preempt_prob,
            )
            self.report.extend(_unproven_findings(cert))
        self.report.modules_linted += len(kernels)

    def observe(self, kernel: str, stats: Any) -> None:
        """Check one launch's measurement against the certificate."""
        cert = self.certificates.get(kernel)
        if cert is None:
            return
        self.report.launches_checked += 1
        accesses = float(stats.mem_accesses)
        transactions = float(stats.mem_transactions)
        divergence = (
            stats.mem_active_lanes / (accesses * 32.0) if accesses else 1.0
        )
        coalescing = (
            stats.mem_ideal_transactions / transactions
            if transactions else 1.0
        )
        b = cert.bracket
        if not b.contains(divergence, coalescing):
            self.report.extend([SanitizerFinding(
                "divergence-bound", "error",
                f"{kernel}[{self.cfg.name}]",
                f"measured divergence {divergence:.4f} / coalescing "
                f"{coalescing:.4f} escaped the static bracket "
                f"[{b.divergence_lo:.4f}, {b.divergence_hi:.4f}] x "
                f"[{b.coalescing_lo:.4f}, {b.coalescing_hi:.4f}] — the "
                "lane-uniformity classification is unsound for this "
                "launch; fix repro.staticheck.dataflow or the kernel",
            )])
        observed = getattr(stats, "served_by", "reference")
        expected = self.expected[kernel]
        if observed == expected:
            return
        if expected == "reference":
            self.report.extend([SanitizerFinding(
                "engine-precondition", "error",
                f"{kernel}[{self.cfg.name}]",
                f"launch was served by '{observed}' although the static "
                f"precondition analysis proves it must fall back to the "
                "reference interpreter",
            )])
        else:
            caveats = [
                f"{r.func}:{r.line} ({r.message})"
                for r in cert.preconditions
                if not r.structural and r.kernel in (kernel, "both")
            ]
            self.report.extend([SanitizerFinding(
                "engine-precondition", "warning",
                f"{kernel}[{self.cfg.name}]",
                f"launch fell back to '{observed}' although no structural "
                f"precondition fires for '{self.cfg.name}' — a dynamic "
                "guard declined it (candidates: "
                + "; ".join(caveats[:4]) + ")",
            )])
