"""Abstract interpretation of kernel ASTs: the site-inventory pass.

This is the *static* half of the certifier.  It parses every module
the contract registry certifies (``repro.staticheck.contracts`` —
each admitted kernel's module plus its declared helpers; the four
``repro.systems`` emulations are swept by the lint as well) without
executing anything and extracts, per function whose first parameter
is ``ctx``:

* **atomic sites** — every ``ctx.smem_atomic_add`` (shared) and
  ``ctx.atomic_global`` (global) call with ``file:line`` provenance.
  This inventory *is* the cost model's BC/EC story: the compaction
  variants trade many shared-atomic sites for extra instructions, and
  the certificate records exactly which sites each variant executes.
* **barrier sites** — every ``yield ctx.BARRIER``; the closed-form
  barrier bounds in :mod:`repro.staticheck.bounds` must account for
  every reachable site, and :func:`KernelInventory.check_barrier_sites`
  cross-checks that.
* **divergence sites** — ``if``/``while`` tests that mention a
  warp-identity name (``warp_id``, ``lanes``, ...): the lanes of a warp
  no longer advance uniformly past these.
* **memory sites** — every ``ctx.gload``/``ctx.gstore``, classified
  ``coalesced`` (index built from ``lanes``/``arange``/slice
  arithmetic, served by few 128-byte transactions) or ``scattered``
  (gather through a data-dependent index array — up to one transaction
  per lane, the latency-bound regime of the ``trackers`` discussion).
* **shared allocations** — ``ctx.smem_array(name, size)`` with the
  size resolved to a symbolic :class:`~repro.staticheck.symbolic.Expr`
  (``ctx.warps_per_block`` → ``W``, a parameter name → itself), plus
  every ``ctx.smem_set`` scalar name.  These feed the static
  shared-memory footprint check against ``DeviceSpec``.
* **charge sum** — the straight-line worst case of literal
  ``ctx.charge(c)`` constants (both branches of every ``if``), the
  per-visit instruction mass the bounds multiply by trip counts.
* **call edges** — calls to other ``ctx``-first functions, so the
  certifier can verify its variant-reachability table against the
  real call graph.

Coverage is a gate, not a best effort: every ``ctx`` function of a
certified module must appear in the module's ``__staticheck__``
annotation (and hence have bounds registered); an unannotated kernel
yields an ``uncertified-kernel`` finding unless its ``def`` line
carries the ``# staticheck: waive`` marker.  The system emulations are
charge-based (no SIMT kernels); for those the pass inventories
``device.charge`` sites instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.sanitize.astutil import (
    WARP_NAMES as _WARP_NAMES,
    dotted as _dotted,
    iter_own_scope as _iter_own_scope,
    mentions as _mentions,
)
from repro.sanitize.report import SanitizerFinding
from repro.staticheck.symbolic import Const, Expr, Param

__all__ = [
    "Site",
    "SharedAlloc",
    "KernelInventory",
    "ModuleInventory",
    "analyze_source",
    "analyze_file",
    "analyze_module",
    "WAIVE_MARK",
]

#: index sub-expressions that keep a global access coalesced
_COALESCED_HINTS = ("lanes", "arange", "block_idx")

#: magic comment waiving the uncertified-kernel coverage check for the
#: function defined on that line (use sparingly, and say why)
WAIVE_MARK = "# staticheck: waive"


@dataclass(frozen=True)
class Site:
    """One statically identified program point."""

    kind: str  #: e.g. ``shared-atomic``, ``barrier``, ``gload-scattered``
    function: str  #: qualified ``module:function`` owning the site
    line: int
    detail: str = ""

    def where(self, filename: str) -> str:
        return f"{Path(filename).name}:{self.line}"


@dataclass(frozen=True)
class SharedAlloc:
    """A ``ctx.smem_array`` allocation with its symbolic size."""

    name: str
    size: Expr
    line: int


@dataclass
class KernelInventory:
    """Everything the pass learned about one ``ctx`` function."""

    qualname: str
    filename: str
    lineno: int
    is_generator: bool = False
    shared_atomic_sites: List[Site] = field(default_factory=list)
    global_atomic_sites: List[Site] = field(default_factory=list)
    barrier_sites: List[Site] = field(default_factory=list)
    divergence_sites: List[Site] = field(default_factory=list)
    memory_sites: List[Site] = field(default_factory=list)
    shared_allocs: List[SharedAlloc] = field(default_factory=list)
    shared_scalars: List[str] = field(default_factory=list)
    charge_sum: float = 0.0
    callees: List[str] = field(default_factory=list)
    waived: bool = False

    @property
    def atomic_sites(self) -> List[Site]:
        return self.shared_atomic_sites + self.global_atomic_sites

    @property
    def coalesced_sites(self) -> List[Site]:
        return [s for s in self.memory_sites if s.kind.endswith("coalesced")]

    @property
    def scattered_sites(self) -> List[Site]:
        return [s for s in self.memory_sites if s.kind.endswith("scattered")]


@dataclass
class ModuleInventory:
    """Per-module result of the pass."""

    module: str
    filename: str
    kernels: Dict[str, KernelInventory] = field(default_factory=dict)
    #: functions named by the module's ``__staticheck__`` annotation
    annotated: Tuple[str, ...] = ()
    #: ``device.charge`` sites of charge-based emulations
    charge_sites: List[Site] = field(default_factory=list)

    def coverage_findings(self) -> List[SanitizerFinding]:
        """``uncertified-kernel`` findings for unannotated kernels."""
        findings: List[SanitizerFinding] = []
        for name, inv in self.kernels.items():
            if inv.waived or name in self.annotated:
                continue
            findings.append(
                SanitizerFinding(
                    "uncertified-kernel",
                    "error",
                    inv.qualname,
                    "kernel function has no entry in the module's "
                    "__staticheck__ annotation — register closed-form "
                    "bounds in repro.staticheck.bounds (or mark the def "
                    f"line with {WAIVE_MARK!r} and say why)",
                    (f"{Path(self.filename).name}:{inv.lineno}",),
                )
            )
        for name in self.annotated:
            if name not in self.kernels:
                findings.append(
                    SanitizerFinding(
                        "uncertified-kernel",
                        "error",
                        f"{self.module}:{name}",
                        "__staticheck__ annotates a function the AST pass "
                        "cannot find — stale annotation",
                        (Path(self.filename).name,),
                    )
                )
        return findings

    def check_call_edges(
        self, declared: Dict[str, Sequence[str]]
    ) -> List[SanitizerFinding]:
        """Verify a declared call-graph table against the real AST.

        ``declared`` maps a kernel name to the helpers the certifier's
        reachability table believes it may call.  A real call edge to a
        certified kernel function that the table omits is a finding —
        the certificate would silently ignore that helper's cost.
        """
        findings: List[SanitizerFinding] = []
        for name, inv in self.kernels.items():
            allowed = set(declared.get(name, ()))
            for callee in inv.callees:
                if callee in self.kernels and callee not in allowed:
                    findings.append(
                        SanitizerFinding(
                            "uncertified-kernel",
                            "error",
                            inv.qualname,
                            f"call edge {name} -> {callee} is missing from "
                            "the certifier's reachability table "
                            "(repro.staticheck.bounds) — its cost would be "
                            "uncertified",
                            (f"{Path(self.filename).name}:{inv.lineno}",),
                        )
                    )
        return findings


# -- helpers ----------------------------------------------------------------


def _size_expr(node: ast.AST) -> Expr:
    """Symbolic size of a ``smem_array`` allocation.

    ``ctx.warps_per_block`` maps to ``W``; a plain name maps to a
    parameter of the same name (``shared_capacity`` → ``scap`` via the
    alias table); an int literal to a constant; anything else to the
    pessimistic parameter ``cap`` (the largest buffer the device has).
    """
    aliases = {"shared_capacity": "scap", "warps_per_block": "W",
               "capacity": "cap", "num_warps": "W"}
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return Const(node.value)
    dotted = _dotted(node)
    if dotted is not None:
        leaf = dotted.split(".")[-1]
        return Param(aliases.get(leaf, leaf))
    return Param("cap")


# -- the pass ----------------------------------------------------------------


class _FunctionPass:
    def __init__(self, module: str, filename: str, source_lines: List[str]):
        self.module = module
        self.filename = filename
        self.source_lines = source_lines

    def run(self, node: ast.FunctionDef) -> KernelInventory:
        qualname = f"{self.module}:{node.name}"
        inv = KernelInventory(qualname, self.filename, node.lineno)
        def_line = self.source_lines[node.lineno - 1] if (
            node.lineno - 1 < len(self.source_lines)
        ) else ""
        inv.waived = WAIVE_MARK in def_line
        for sub in _iter_own_scope(node):
            self._visit(sub, inv, qualname)
        return inv

    def _visit(self, node: ast.AST, inv: KernelInventory, qual: str) -> None:
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            inv.is_generator = True
            if isinstance(node, ast.Yield) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "BARRIER":
                    inv.barrier_sites.append(
                        Site("barrier", qual, node.lineno)
                    )
            return
        if isinstance(node, (ast.If, ast.While)):
            if _mentions(node.test, _WARP_NAMES):
                inv.divergence_sites.append(
                    Site(
                        "divergence",
                        qual,
                        node.lineno,
                        ast.unparse(node.test),
                    )
                )
            return
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            return
        owner, attr = func.value.id, func.attr
        if owner != "ctx":
            if attr in ("gload", "gstore", "read", "write", "read_batch"):
                # BlockBufferView accesses resolve to ctx ops inside
                # buffers.py; their cost is certified there.
                inv.callees.append(f"view.{attr}")
            return
        if attr == "smem_atomic_add":
            name = self._scalar_name(node)
            inv.shared_atomic_sites.append(
                Site("shared-atomic", qual, node.lineno, name)
            )
        elif attr == "atomic_global":
            inv.global_atomic_sites.append(
                Site("global-atomic", qual, node.lineno,
                     self._array_name(node))
            )
        elif attr in ("gload", "gstore"):
            coalesced = self._is_coalesced(node)
            kind = f"{attr}-{'coalesced' if coalesced else 'scattered'}"
            inv.memory_sites.append(
                Site(kind, qual, node.lineno, self._array_name(node))
            )
        elif attr == "smem_array":
            if node.args and isinstance(node.args[0], ast.Constant):
                inv.shared_allocs.append(
                    SharedAlloc(
                        str(node.args[0].value),
                        _size_expr(node.args[1]) if len(node.args) > 1
                        else Const(0),
                        node.lineno,
                    )
                )
        elif attr == "smem_set":
            name = self._scalar_name(node)
            if name and name not in inv.shared_scalars:
                inv.shared_scalars.append(name)
        elif attr == "charge":
            if node.args and isinstance(node.args[0], ast.Constant):
                inv.charge_sum += float(node.args[0].value)

    @staticmethod
    def _scalar_name(node: ast.Call) -> str:
        if node.args and isinstance(node.args[0], ast.Constant):
            return str(node.args[0].value)
        return ""

    @staticmethod
    def _array_name(node: ast.Call) -> str:
        if node.args:
            dotted = _dotted(node.args[0])
            if dotted:
                return dotted
        return ""

    @staticmethod
    def _is_coalesced(node: ast.Call) -> bool:
        if len(node.args) < 2:
            return True
        idx = node.args[1]
        if isinstance(idx, ast.Constant):
            return True
        return _mentions(idx, _COALESCED_HINTS) or any(
            isinstance(sub, ast.Call)
            and _dotted(sub.func) in ("np.arange", "np.asarray")
            for sub in ast.walk(idx)
        )


def analyze_source(
    source: str, module: str, filename: str = "<string>"
) -> ModuleInventory:
    """Run the pass over one module's source text."""
    tree = ast.parse(source, filename=filename)
    lines = source.splitlines()
    result = ModuleInventory(module, filename)
    fn_pass = _FunctionPass(module, filename, lines)
    known: List[ast.FunctionDef] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            args = node.args.args
            if args and args[0].arg == "ctx":
                known.append(node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "__staticheck__"
                    and isinstance(node.value, ast.Dict)
                ):
                    result.annotated = tuple(
                        str(key.value)
                        for key in node.value.keys
                        if isinstance(key, ast.Constant)
                    )
        elif isinstance(node, ast.Call):
            # device.charge(...) sites of the charge-based emulations
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "charge"
                and _dotted(func) in ("device.charge", "self.device.charge",
                                      "engine.device.charge")
            ):
                label = ""
                for kw in node.keywords:
                    if kw.arg == "label" and isinstance(kw.value, ast.Constant):
                        label = str(kw.value.value)
                result.charge_sites.append(
                    Site("device-charge", module, node.lineno, label)
                )
    kernel_names = {fn.name for fn in known}
    for fn in known:
        inv = fn_pass.run(fn)
        # keep only call edges to sibling ctx functions (or known
        # module-level helpers imported from certified modules)
        inv.callees = sorted(
            {
                call.func.id
                for call in ast.walk(fn)
                if isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
            }
            & kernel_names
            | {
                c
                for c in (
                    call.func.id
                    for call in ast.walk(fn)
                    if isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                )
                if c in _CROSS_MODULE_HELPERS
            }
        )
        result.kernels[fn.name] = inv
    return result


#: helpers defined in other certified modules that kernels may call;
#: call edges to these are resolved by the certifier's reachability table
_CROSS_MODULE_HELPERS = (
    "warp_compact_ballot",
    "warp_compact_hillis_steele",
    "block_scan_offsets",
    "hillis_steele_exclusive",
    "BlockBufferView",
)


def analyze_file(path: str | Path, module: str | None = None) -> ModuleInventory:
    """Run the pass over one file."""
    path = Path(path)
    name = module or path.stem
    return analyze_source(path.read_text(encoding="utf-8"), name, str(path))


def analyze_module(mod) -> ModuleInventory:
    """Run the pass over an imported module object."""
    return analyze_file(mod.__file__, mod.__name__.rsplit(".", 1)[-1])
