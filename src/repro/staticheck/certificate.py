"""Static resource certificates: the certifier's user-facing product.

A :class:`KernelCertificate` packages, for one kernel under one
:class:`~repro.core.variants.VariantConfig`:

* the closed-form :class:`~repro.staticheck.bounds.KernelBounds` on the
  events the scheduler measures per launch;
* the static shared-memory footprint and its fit against the
  :class:`~repro.gpusim.spec.DeviceSpec` capacity;
* the site inventory of the functions the variant actually reaches —
  atomic-contention sites split shared vs global (the costmodel's
  BC/EC story), divergence sites, and coalesced vs scattered global
  accesses (the latency story behind VP's ``trackers`` win);
* the barrier sites backing the barrier bound.

A :class:`VariantCertificate` is the pair of kernel certificates plus
the variant's exact device-global-memory bound (Table V).  Certificates
are built entirely from the AST pass and the symbolic bounds — nothing
is executed — and are checked two ways:

* dynamically, by :mod:`repro.staticheck.differential` on every traced
  launch;
* in CI, by ``scripts/check_static_bounds.py`` against the committed
  bench JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import repro.core.buffers as _buffers_mod
import repro.core.compaction as _compaction_mod
import repro.core.loop_kernel as _loop_mod
import repro.core.scan_kernel as _scan_mod
from repro.core.variants import EXTENSION_VARIANTS, VARIANTS, VariantConfig
from repro.gpusim.spec import DeviceSpec
from repro.sanitize.report import SanitizerFinding
from repro.staticheck.absint import (
    KernelInventory,
    ModuleInventory,
    Site,
    analyze_module,
)
from repro.staticheck.bounds import (
    REACHABILITY,
    KernelBounds,
    device_memory_bound,
    kernel_bounds,
    reachable_functions,
    shared_footprint,
)
from repro.staticheck.symbolic import Expr

__all__ = [
    "KernelCertificate",
    "VariantCertificate",
    "core_inventories",
    "kernel_inventories",
    "verify_inventories",
    "certify_variant",
    "certify_all",
    "all_variant_configs",
    "render_certificates",
]

#: the certified core modules, in analysis order
_CORE_MODULES = (_scan_mod, _loop_mod, _compaction_mod, _buffers_mod)


def core_inventories() -> List[ModuleInventory]:
    """AST inventories of the four certified ``repro.core`` modules."""
    return [analyze_module(mod) for mod in _CORE_MODULES]


def kernel_inventories() -> Dict[str, KernelInventory]:
    """All certified kernel functions, keyed by bare function name.

    Names are unique across the four core modules (the coverage gate
    in :func:`verify_inventories` would flag a collision as a stale
    reachability table long before it became ambiguous here).
    """
    merged: Dict[str, KernelInventory] = {}
    for module in core_inventories():
        merged.update(module.kernels)
    return merged


def verify_inventories() -> List[SanitizerFinding]:
    """The static coverage gate over the core modules.

    Returns ``uncertified-kernel`` findings when a ``ctx`` function is
    missing from its module's ``__staticheck__`` annotation, when an
    annotation has gone stale, or when a real call edge between kernel
    functions is absent from the certifier's reachability table.
    """
    findings: List[SanitizerFinding] = []
    for module in core_inventories():
        findings.extend(module.coverage_findings())
        findings.extend(module.check_call_edges(REACHABILITY))
    return findings


def _gather_sites(
    reachable: Tuple[str, ...],
    inventories: Mapping[str, KernelInventory],
    pick,
) -> Tuple[Site, ...]:
    sites: List[Site] = []
    for name in reachable:
        inv = inventories.get(name)
        if inv is not None:
            sites.extend(pick(inv))
    return tuple(sorted(sites, key=lambda s: (s.function, s.line)))


@dataclass(frozen=True)
class KernelCertificate:
    """Static certificate of one kernel under one variant."""

    kernel: str
    variant: str
    bounds: KernelBounds
    #: shared-memory demand per block: allocation name -> symbolic slots
    shared_slots: Mapping[str, Expr]
    #: functions the variant's dispatch makes reachable from the kernel
    reachable: Tuple[str, ...]
    shared_atomic_sites: Tuple[Site, ...]
    global_atomic_sites: Tuple[Site, ...]
    barrier_sites: Tuple[Site, ...]
    divergence_sites: Tuple[Site, ...]
    coalesced_sites: Tuple[Site, ...]
    scattered_sites: Tuple[Site, ...]

    def shared_bytes(self, env: Mapping[str, float], id_bytes: int) -> int:
        """Evaluated per-block shared-memory demand in bytes."""
        slots = sum(expr.evaluate(env) for expr in self.shared_slots.values())
        return int(slots) * id_bytes

    def check_shared_fit(
        self, spec: DeviceSpec, env: Mapping[str, float]
    ) -> List[SanitizerFinding]:
        """``static-resource`` finding when the footprint cannot fit."""
        needed = self.shared_bytes(env, spec.id_bytes)
        if needed <= spec.shared_memory_per_block_bytes:
            return []
        detail = ", ".join(
            f"{name}={expr}" for name, expr in self.shared_slots.items()
        )
        return [
            SanitizerFinding(
                "static-resource",
                "error",
                f"{self.kernel}[{self.variant}]",
                f"static shared-memory footprint {needed} B exceeds the "
                f"device's {spec.shared_memory_per_block_bytes} B per block "
                f"({detail})",
            )
        ]

    def to_dict(self, env: Mapping[str, float] | None = None) -> Dict[str, object]:
        """JSON-friendly rendering (numeric bounds when ``env`` given)."""
        data: Dict[str, object] = {
            "kernel": self.kernel,
            "variant": self.variant,
            "bounds": {
                "issued": str(self.bounds.issued),
                "mem_transactions": str(self.bounds.mem_transactions),
                "barriers": str(self.bounds.barriers),
            },
            "shared_slots": {
                name: str(expr) for name, expr in self.shared_slots.items()
            },
            "reachable": list(self.reachable),
            "sites": {
                "shared_atomic": len(self.shared_atomic_sites),
                "global_atomic": len(self.global_atomic_sites),
                "barrier": len(self.barrier_sites),
                "divergence": len(self.divergence_sites),
                "coalesced": len(self.coalesced_sites),
                "scattered": len(self.scattered_sites),
            },
        }
        if env is not None:
            data["evaluated"] = self.bounds.evaluate(env)
        return data


@dataclass(frozen=True)
class VariantCertificate:
    """The two kernel certificates plus the variant's memory bound."""

    variant: str
    config: VariantConfig
    scan: KernelCertificate
    loop: KernelCertificate
    #: exact peak device global memory, in id-sized words (multiply by
    #: ``id_bytes`` and add ``context_overhead_bytes``; see bounds.py)
    device_memory_words: Expr

    @property
    def kernels(self) -> Tuple[KernelCertificate, KernelCertificate]:
        return (self.scan, self.loop)

    def certificate_for(self, kernel: str) -> KernelCertificate:
        for cert in self.kernels:
            if cert.kernel == kernel:
                return cert
        raise KeyError(f"variant {self.variant!r} has no certificate "
                       f"for kernel {kernel!r}")

    def device_memory_bytes(
        self, env: Mapping[str, float], spec: DeviceSpec
    ) -> int:
        words = self.device_memory_words.evaluate(env)
        return int(words) * spec.id_bytes + spec.context_overhead_bytes

    def check_fit(
        self, spec: DeviceSpec, env: Mapping[str, float]
    ) -> List[SanitizerFinding]:
        """Shared-memory fit findings of both kernels."""
        findings = self.scan.check_shared_fit(spec, env)
        findings.extend(self.loop.check_shared_fit(spec, env))
        return findings

    def to_dict(self, env: Mapping[str, float] | None = None) -> Dict[str, object]:
        return {
            "variant": self.variant,
            "scan_kernel": self.scan.to_dict(env),
            "loop_kernel": self.loop.to_dict(env),
            "device_memory_words": str(self.device_memory_words),
        }


def _kernel_certificate(
    kernel: str,
    cfg: VariantConfig,
    inventories: Mapping[str, KernelInventory],
) -> KernelCertificate:
    reachable = reachable_functions(kernel, cfg)
    return KernelCertificate(
        kernel=kernel,
        variant=cfg.name,
        bounds=kernel_bounds(kernel, cfg),
        shared_slots=shared_footprint(kernel, cfg),
        reachable=reachable,
        shared_atomic_sites=_gather_sites(
            reachable, inventories, lambda i: i.shared_atomic_sites
        ),
        global_atomic_sites=_gather_sites(
            reachable, inventories, lambda i: i.global_atomic_sites
        ),
        barrier_sites=_gather_sites(
            reachable, inventories, lambda i: i.barrier_sites
        ),
        divergence_sites=_gather_sites(
            reachable, inventories, lambda i: i.divergence_sites
        ),
        coalesced_sites=_gather_sites(
            reachable, inventories, lambda i: i.coalesced_sites
        ),
        scattered_sites=_gather_sites(
            reachable, inventories, lambda i: i.scattered_sites
        ),
    )


def certify_variant(
    cfg: VariantConfig,
    inventories: Mapping[str, KernelInventory] | None = None,
) -> VariantCertificate:
    """Build the static certificate of one variant.

    Raises ``ValueError`` for ring-buffer variants, whose buffer slots
    have no static bound (see :func:`repro.staticheck.bounds.
    kernel_bounds`).
    """
    if inventories is None:
        inventories = kernel_inventories()
    return VariantCertificate(
        variant=cfg.name,
        config=cfg,
        scan=_kernel_certificate("scan_kernel", cfg, inventories),
        loop=_kernel_certificate("loop_kernel", cfg, inventories),
        device_memory_words=device_memory_bound(cfg),
    )


def all_variant_configs() -> Dict[str, VariantConfig]:
    """The eleven certified variants: Table II's nine plus vw2/vw4."""
    configs: Dict[str, VariantConfig] = dict(VARIANTS)
    configs.update(EXTENSION_VARIANTS)
    return configs


def certify_all(
    inventories: Mapping[str, KernelInventory] | None = None,
) -> Dict[str, VariantCertificate]:
    """Certificates for all eleven variants, keyed by variant name."""
    if inventories is None:
        inventories = kernel_inventories()
    return {
        name: certify_variant(cfg, inventories)
        for name, cfg in all_variant_configs().items()
    }


def render_certificates(certs: Mapping[str, VariantCertificate]) -> str:
    """Human-readable certificate dump (the ``--staticheck`` listing)."""
    lines: List[str] = [
        f"static resource certificates ({len(certs)} variants; see "
        "docs/STATIC_ANALYSIS.md for the parameter table)"
    ]
    for name in certs:
        cert = certs[name]
        lines.append(f"\nvariant {name}:")
        lines.append(
            f"  device memory (id-words): {cert.device_memory_words}"
        )
        for kc in cert.kernels:
            shared = ", ".join(
                f"{alloc}={expr}" for alloc, expr in kc.shared_slots.items()
            )
            lines.extend([
                f"  {kc.kernel}:",
                f"    issued           <= {kc.bounds.issued}",
                f"    mem_transactions <= {kc.bounds.mem_transactions}",
                f"    barriers         <= {kc.bounds.barriers}",
                f"    shared slots: {shared}",
                f"    sites: {len(kc.shared_atomic_sites)} shared-atomic, "
                f"{len(kc.global_atomic_sites)} global-atomic, "
                f"{len(kc.barrier_sites)} barrier, "
                f"{len(kc.divergence_sites)} divergence, "
                f"{len(kc.coalesced_sites)} coalesced, "
                f"{len(kc.scattered_sites)} scattered",
            ])
    return "\n".join(lines)
