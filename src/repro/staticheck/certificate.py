"""Static resource certificates: the certifier's user-facing product.

A :class:`KernelCertificate` packages, for one kernel under one
:class:`~repro.core.variants.VariantConfig`:

* the closed-form :class:`~repro.staticheck.bounds.KernelBounds` on the
  events the scheduler measures per launch;
* the static shared-memory footprint and its fit against the
  :class:`~repro.gpusim.spec.DeviceSpec` capacity;
* the site inventory of the functions the variant actually reaches —
  atomic-contention sites split shared vs global (the costmodel's
  BC/EC story), divergence sites, and coalesced vs scattered global
  accesses (the latency story behind VP's ``trackers`` win);
* the barrier sites backing the barrier bound.

A :class:`VariantCertificate` maps each kernel of one registered
program (see :mod:`repro.staticheck.contracts`) to its certificate,
plus the program's exact device-global-memory bound (Table V for
k-core).  Certificates are built entirely from the AST pass and the
symbolic bounds — nothing is executed — and are checked two ways:

* dynamically, by :mod:`repro.staticheck.differential` on every traced
  launch;
* in CI, by ``scripts/check_static_bounds.py`` against the committed
  bench JSON.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Dict, List, Mapping, Tuple

from repro.core.variants import VariantConfig
from repro.gpusim.spec import DeviceSpec
from repro.sanitize.report import SanitizerFinding
from repro.staticheck import contracts
from repro.staticheck.absint import (
    KernelInventory,
    ModuleInventory,
    Site,
    analyze_module,
)
from repro.staticheck.bounds import (
    KernelBounds,
    kernel_bounds,
    reachable_functions,
    shared_footprint,
)
from repro.staticheck.symbolic import Expr

__all__ = [
    "KernelCertificate",
    "VariantCertificate",
    "core_inventories",
    "kernel_inventories",
    "verify_inventories",
    "certify_variant",
    "certify_program",
    "certify_all",
    "all_variant_configs",
    "render_certificates",
]


def _certified_modules() -> Tuple[ModuleType, ...]:
    """The certified modules, in the registry's analysis order."""
    return tuple(
        importlib.import_module(path)
        for path in contracts.certified_module_paths()
    )


def core_inventories() -> List[ModuleInventory]:
    """AST inventories of every certified module in the registry."""
    return [analyze_module(mod) for mod in _certified_modules()]


def kernel_inventories() -> Dict[str, KernelInventory]:
    """All certified kernel functions, keyed by bare function name.

    Names are unique across the certified modules (the coverage gate
    in :func:`verify_inventories` would flag a collision as a stale
    reachability table long before it became ambiguous here).
    """
    merged: Dict[str, KernelInventory] = {}
    for module in core_inventories():
        merged.update(module.kernels)
    return merged


def verify_inventories() -> List[SanitizerFinding]:
    """The static coverage gate over every certified module.

    Returns ``uncertified-kernel`` findings when a ``ctx`` function is
    missing from its module's ``__staticheck__`` annotation, when an
    annotation has gone stale, or when a real call edge between kernel
    functions is absent from the registry's merged reachability table.
    """
    findings: List[SanitizerFinding] = []
    merged = contracts.merged_reachability()
    for module in core_inventories():
        findings.extend(module.coverage_findings())
        findings.extend(module.check_call_edges(merged))
    return findings


def _gather_sites(
    reachable: Tuple[str, ...],
    inventories: Mapping[str, KernelInventory],
    pick,
) -> Tuple[Site, ...]:
    sites: List[Site] = []
    for name in reachable:
        inv = inventories.get(name)
        if inv is not None:
            sites.extend(pick(inv))
    return tuple(sorted(sites, key=lambda s: (s.function, s.line)))


@dataclass(frozen=True)
class KernelCertificate:
    """Static certificate of one kernel under one variant."""

    kernel: str
    variant: str
    bounds: KernelBounds
    #: shared-memory demand per block: allocation name -> symbolic slots
    shared_slots: Mapping[str, Expr]
    #: functions the variant's dispatch makes reachable from the kernel
    reachable: Tuple[str, ...]
    shared_atomic_sites: Tuple[Site, ...]
    global_atomic_sites: Tuple[Site, ...]
    barrier_sites: Tuple[Site, ...]
    divergence_sites: Tuple[Site, ...]
    coalesced_sites: Tuple[Site, ...]
    scattered_sites: Tuple[Site, ...]

    def shared_bytes(self, env: Mapping[str, float], id_bytes: int) -> int:
        """Evaluated per-block shared-memory demand in bytes."""
        slots = sum(expr.evaluate(env) for expr in self.shared_slots.values())
        return int(slots) * id_bytes

    def check_shared_fit(
        self, spec: DeviceSpec, env: Mapping[str, float]
    ) -> List[SanitizerFinding]:
        """``static-resource`` finding when the footprint cannot fit."""
        needed = self.shared_bytes(env, spec.id_bytes)
        if needed <= spec.shared_memory_per_block_bytes:
            return []
        detail = ", ".join(
            f"{name}={expr}" for name, expr in self.shared_slots.items()
        )
        return [
            SanitizerFinding(
                "static-resource",
                "error",
                f"{self.kernel}[{self.variant}]",
                f"static shared-memory footprint {needed} B exceeds the "
                f"device's {spec.shared_memory_per_block_bytes} B per block "
                f"({detail})",
            )
        ]

    def to_dict(self, env: Mapping[str, float] | None = None) -> Dict[str, object]:
        """JSON-friendly rendering (numeric bounds when ``env`` given)."""
        data: Dict[str, object] = {
            "kernel": self.kernel,
            "variant": self.variant,
            "bounds": {
                "issued": str(self.bounds.issued),
                "mem_transactions": str(self.bounds.mem_transactions),
                "barriers": str(self.bounds.barriers),
            },
            "shared_slots": {
                name: str(expr) for name, expr in self.shared_slots.items()
            },
            "reachable": list(self.reachable),
            "sites": {
                "shared_atomic": len(self.shared_atomic_sites),
                "global_atomic": len(self.global_atomic_sites),
                "barrier": len(self.barrier_sites),
                "divergence": len(self.divergence_sites),
                "coalesced": len(self.coalesced_sites),
                "scattered": len(self.scattered_sites),
            },
        }
        if env is not None:
            data["evaluated"] = self.bounds.evaluate(env)
        return data


@dataclass(frozen=True)
class VariantCertificate:
    """One program's kernel certificates plus its memory bound.

    ``kernel_certs`` is an open mapping keyed by kernel name — any
    registered program fits, not just the scan/loop pair.  The
    :attr:`scan` / :attr:`loop` properties and the per-kernel-name
    keys of :meth:`to_dict` are the JSON-compat shim that keeps the
    committed k-core baselines (and their consumers) valid.
    """

    variant: str
    config: VariantConfig
    #: certificate per member kernel, in the program's launch order
    kernel_certs: Mapping[str, KernelCertificate]
    #: exact peak device global memory, in id-sized words (multiply by
    #: ``id_bytes`` and add ``context_overhead_bytes``; see bounds.py)
    device_memory_words: Expr
    #: owning program contract
    program: str = "kcore"

    @property
    def scan(self) -> KernelCertificate:
        """Compat shim: the k-core scan kernel's certificate."""
        return self.certificate_for("scan_kernel")

    @property
    def loop(self) -> KernelCertificate:
        """Compat shim: the k-core loop kernel's certificate."""
        return self.certificate_for("loop_kernel")

    @property
    def kernels(self) -> Tuple[KernelCertificate, ...]:
        return tuple(self.kernel_certs.values())

    def certificate_for(self, kernel: str) -> KernelCertificate:
        try:
            return self.kernel_certs[kernel]
        except KeyError:
            raise KeyError(
                f"variant {self.variant!r} has no certificate "
                f"for kernel {kernel!r}"
            ) from None

    def device_memory_bytes(
        self, env: Mapping[str, float], spec: DeviceSpec
    ) -> int:
        words = self.device_memory_words.evaluate(env)
        return int(words) * spec.id_bytes + spec.context_overhead_bytes

    def check_fit(
        self, spec: DeviceSpec, env: Mapping[str, float]
    ) -> List[SanitizerFinding]:
        """Shared-memory fit findings of every member kernel."""
        findings: List[SanitizerFinding] = []
        for cert in self.kernels:
            findings.extend(cert.check_shared_fit(spec, env))
        return findings

    def to_dict(self, env: Mapping[str, float] | None = None) -> Dict[str, object]:
        data: Dict[str, object] = {"variant": self.variant}
        for name, cert in self.kernel_certs.items():
            data[name] = cert.to_dict(env)
        data["device_memory_words"] = str(self.device_memory_words)
        return data


def _kernel_certificate(
    kernel: str,
    cfg: VariantConfig,
    inventories: Mapping[str, KernelInventory],
) -> KernelCertificate:
    reachable = reachable_functions(kernel, cfg)
    return KernelCertificate(
        kernel=kernel,
        variant=cfg.name,
        bounds=kernel_bounds(kernel, cfg),
        shared_slots=shared_footprint(kernel, cfg),
        reachable=reachable,
        shared_atomic_sites=_gather_sites(
            reachable, inventories, lambda i: i.shared_atomic_sites
        ),
        global_atomic_sites=_gather_sites(
            reachable, inventories, lambda i: i.global_atomic_sites
        ),
        barrier_sites=_gather_sites(
            reachable, inventories, lambda i: i.barrier_sites
        ),
        divergence_sites=_gather_sites(
            reachable, inventories, lambda i: i.divergence_sites
        ),
        coalesced_sites=_gather_sites(
            reachable, inventories, lambda i: i.coalesced_sites
        ),
        scattered_sites=_gather_sites(
            reachable, inventories, lambda i: i.scattered_sites
        ),
    )


def certify_variant(
    cfg: VariantConfig,
    inventories: Mapping[str, KernelInventory] | None = None,
    program: str = "kcore",
) -> VariantCertificate:
    """Build the static certificate of one program variant.

    Raises ``ValueError`` for configs whose kernel contracts declare no
    static bound (the k-core ring-buffer variants; see
    :func:`repro.staticheck.bounds.kernel_bounds`).
    """
    if inventories is None:
        inventories = kernel_inventories()
    prog = contracts.program_contract(program)
    return VariantCertificate(
        variant=cfg.name,
        config=cfg,
        kernel_certs={
            kernel: _kernel_certificate(kernel, cfg, inventories)
            for kernel in prog.kernels
        },
        device_memory_words=prog.device_memory(cfg),
        program=program,
    )


def all_variant_configs() -> Dict[str, VariantConfig]:
    """The eleven bounds-certifiable k-core variants: Table II's nine
    plus vw2/vw4 (the contract's declared-honest ring configs, which
    have no static bound, are excluded)."""
    return _certifiable_configs("kcore")


def _certifiable_configs(program: str) -> Dict[str, VariantConfig]:
    prog = contracts.program_contract(program)
    honest = [
        contracts.kernel_contract(kernel).honest_unproven
        for kernel in prog.kernels
    ]
    return {
        name: cfg
        for name, cfg in prog.variants().items()
        if not any(pred(cfg) for pred in honest)
    }


def certify_program(
    program: str,
    inventories: Mapping[str, KernelInventory] | None = None,
) -> Dict[str, VariantCertificate]:
    """Certificates for one program's bounds-certifiable variants."""
    if inventories is None:
        inventories = kernel_inventories()
    return {
        name: certify_variant(cfg, inventories, program=program)
        for name, cfg in _certifiable_configs(program).items()
    }


def certify_all(
    inventories: Mapping[str, KernelInventory] | None = None,
) -> Dict[str, VariantCertificate]:
    """K-core certificates for all eleven variants, keyed by name."""
    return certify_program("kcore", inventories)


def render_certificates(certs: Mapping[str, VariantCertificate]) -> str:
    """Human-readable certificate dump (the ``--staticheck`` listing)."""
    lines: List[str] = [
        f"static resource certificates ({len(certs)} variants; see "
        "docs/STATIC_ANALYSIS.md for the parameter table)"
    ]
    for name in certs:
        cert = certs[name]
        lines.append(f"\nvariant {name}:")
        lines.append(
            f"  device memory (id-words): {cert.device_memory_words}"
        )
        for kc in cert.kernels:
            shared = ", ".join(
                f"{alloc}={expr}" for alloc, expr in kc.shared_slots.items()
            )
            lines.extend([
                f"  {kc.kernel}:",
                f"    issued           <= {kc.bounds.issued}",
                f"    mem_transactions <= {kc.bounds.mem_transactions}",
                f"    barriers         <= {kc.bounds.barriers}",
                f"    shared slots: {shared}",
                f"    sites: {len(kc.shared_atomic_sites)} shared-atomic, "
                f"{len(kc.global_atomic_sites)} global-atomic, "
                f"{len(kc.barrier_sites)} barrier, "
                f"{len(kc.divergence_sites)} divergence, "
                f"{len(kc.coalesced_sites)} coalesced, "
                f"{len(kc.scattered_sites)} scattered",
            ])
    return "\n".join(lines)
