"""Closed-form launch bounds for the peeling kernels.

This module is the *semantic* half of the abstract interpretation: for
each kernel x :class:`~repro.core.variants.VariantConfig` it derives
symbolic upper bounds — :class:`~repro.staticheck.symbolic.Expr` over
the launch environment of :func:`launch_env` — on the three events the
scheduler measures per launch (:class:`~repro.gpusim.scheduler.
KernelStats`): warp-instructions ``issued``, 128-byte
``mem_transactions`` and barrier generations ``barriers``.

The derivation splits cleanly into

* **trip-count invariants** (the loop bounds of the interpretation),
  justified inline below and mirrored by the ``__staticheck__``
  annotations in the kernel modules themselves:

  - scan: every warp strides ``[base, n)`` with stride ``G*W*S``, so
    it makes at most ``ceil(n / (G*W*S))`` trips (EC pads to at least
    one trip so its per-trip barriers line up);
  - loop: each block drains at most ``F = min(P, n)`` buffer slots,
    where ``P = cap + scap`` is the hard capacity (a slot past ``P``
    raises ``BufferOverflowError`` before it is ever processed) and
    ``n`` is the append-once refinement from the dataflow pass
    (:mod:`repro.staticheck.dataflow`): the scan phase collects each
    ``deg == k`` vertex exactly once, and the loop phase appends a
    vertex only on the unique decrement that observes ``old == k+1``
    (the degree-restore walk of Fig. 6 can never raise a degree back
    to ``k+1``), so a block's buffer holds at most ``n`` distinct
    slots per launch.  Every block iteration advances the head by at
    least one slot (Warp 0 advances it by up to ``W``, but the
    trickle worst case is one fresh append per iteration), so there
    are at most ``F + 2`` iterations (``2F + 3`` for VP, whose
    pipeline may interleave one drain iteration per fetch iteration);
  - an adjacency sweep makes ``ceil(deg(v) / lane_width)`` trips,
    bounded by ``ceil(dmax / lane_width)``;

* **per-trip instruction masses**, itemised from the site inventory
  (every ``ctx`` access issues exactly one warp-instruction; ``charge``
  literals add their constants) — the numbers in ``_SCAN_TRIP`` /
  ``_SWEEP_BASE`` / ``_APPEND`` below, each annotated with the call
  sites it covers.

The bounds are *sound, not tight*: every constant rounds up (a 32-lane
gather is charged 32 transactions even when it coalesces; a branch
costs its worst side).  Tightness is the differential checker's
problem — :mod:`repro.staticheck.differential` asserts per launch that
these bounds dominate the dynamic measurement, and the hypothesis
property suite asserts it across random graphs for all variants.

The certified ordering story of Table II falls out statically: the
per-trip masses satisfy ``ours < BC < EC`` for both kernels, which is
exactly the instruction-overhead argument of the paper's ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.variants import EXTENSION_VARIANTS, VARIANTS, VariantConfig
from repro.gpusim.costmodel import CostModel
from repro.gpusim.spec import DeviceSpec
from repro.staticheck import contracts
from repro.staticheck.symbolic import CeilDiv, Const, Expr, Max, Min, Param

__all__ = [
    "KernelBounds",
    "KernelFloors",
    "launch_env",
    "scan_bounds",
    "loop_bounds",
    "scan_floors",
    "loop_floors",
    "kernel_bounds",
    "shared_footprint",
    "device_memory_bound",
    "cycles_bound",
    "ms_bound",
    "floor_cycles",
    "REACHABILITY",
    "reachable_functions",
]

# parameters (see repro.staticheck.symbolic for the catalogue)
_N = Param("n")
_ADJ = Param("adj")
_DMAX = Param("dmax")
_G = Param("G")
_W = Param("W")
_S = Param("S")
_CAP = Param("cap")
_SCAP = Param("scap")
_P = Param("P")
_T = Param("T")

#: the occupancy-aware buffer-fill refinement: a block's buffer never
#: holds more than ``min(P, n)`` slots per launch (hard capacity vs the
#: dataflow pass's append-once argument — see the module docstring)
_FILL: Expr = Min(_P, _N)


def launch_env(
    num_vertices: int,
    adjacency_len: int,
    max_degree: int,
    spec: DeviceSpec,
    cfg: VariantConfig,
    buffer_capacity: int | None = None,
) -> Dict[str, float]:
    """The evaluation environment for one graph x device x variant."""
    cap = buffer_capacity or spec.block_buffer_capacity
    scap = spec.shared_buffer_capacity if cfg.shared_buffer else 0
    return {
        "n": float(num_vertices),
        "adj": float(adjacency_len),
        "dmax": float(max_degree),
        "G": float(spec.default_grid_dim),
        "W": float(spec.warps_per_block),
        "S": float(spec.warp_size),
        "cap": float(cap),
        "scap": float(scap),
        "P": float(cap + scap),
        "R": float(max_degree + 2),
        # words per 128-byte global-memory transaction at 4-byte ids —
        # mirrors gpusim.context's coalescing granularity
        "T": 32.0,
    }


@dataclass(frozen=True)
class KernelBounds:
    """Symbolic per-launch upper bounds on the measured events."""

    issued: Expr
    mem_transactions: Expr
    barriers: Expr

    def evaluate(self, env: Mapping[str, float]) -> Dict[str, float]:
        return {
            "issued": self.issued.evaluate(env),
            "mem_transactions": self.mem_transactions.evaluate(env),
            "barriers": self.barriers.evaluate(env),
        }


# -- per-trip instruction masses (itemised from the site inventory) ---------

#: scan kernel, per warp per strided trip:
#:   _hit_flags: charge(4) + gload deg (1) + charge(1)            =  6
#:   none:   smem_atomic_add e (1) + view.write gstore (1)        = +2
#:   ballot: ballot(1)+popc(1)+charge(1) + atomic(1)+shfl(1)
#:           +charge(1) + gstore(1)                               = +7
#:   block:  Hillis-Steele charge(11) + sstore counts (1)
#:           + Warp0 [sload(1)+charge(<=12)+atomic(1)+sstore(1)]
#:           + stage 4 sload(1) + gstore(1)                       = +29
_SCAN_TRIP = {"none": 8, "ballot": 13, "block": 35}

#: loop kernel, per adjacency-sweep trip, before the append:
#:   sync_warp(1) + gload neighbors(1) + gload deg(1) + charge(4)
#:   + atomicSub(1) + restore atomicAdd(1)                        =  9
_SWEEP_BASE = 9

#: Line 23 append, per sweep trip.  ``plain`` writes straight to the
#: global buffer (gstore 1); ``shared`` is the SM position translation
#: of Fig. 7 (smem_get e_init + charge(4) + sstore + gstore = 7).
#:   none:   smem_atomic_add(1) + write
#:   ballot: ballot scan(3) + atomic(1) + shfl(1) + charge(1) + write
#:   block:  Hillis-Steele(11) + atomic(1) + shfl(1) + charge(1) + write
_APPEND = {"none": 2, "ballot": 7, "block": 15}
_WRITE_SHARED_EXTRA = 6  # Fig. 7 translation on the write path

#: fetching one buffer slot: plain gload(1); SM translation adds
#: smem_get(1) + charge(4) + sload/gload(1) (Fig. 7 read path), and
#: every fetched vertex costs one offsets gload for its bounds.
_FETCH = {"plain": 2, "shared": 7}

#: per block-iteration, per warp: smem_get s,e (2) + charge(3) +
#: Warp-0 head advance smem_set (1)
_ITER_OVERHEAD = 6
#: VP adds per iteration: Warp 0 charge(2) + read_batch gload(1) +
#: sstore pref(1) + smem_set s/pn_next (2), processors sload pref(1),
#: Warp 0 pn_cur/pn_next handoff (2) — take the union as the bound
_ITER_OVERHEAD_VP = 12
#: virtual warping adds the per-iteration batch fetch: read_batch
#: gload(1) + bounds gload(1)
_ITER_OVERHEAD_VW = 8

#: prologue + epilogue, per warp (Warp 0 does the most: tails gload +
#: up to 5 smem_set on entry; smem_get + count atomic on exit)
_PRO_EPI = 8

#: worst-case 128-byte transactions per adjacency-sweep trip: a
#: 32-lane gather of degrees (S), the atomicSub (S), the restore (S),
#: the coalesced neighbor read (2) and the buffer append (2)
def _sweep_mem(lane_gather: Expr | int = 0) -> Expr:
    base = Const(4) + Const(3) * _S
    if isinstance(lane_gather, int) and lane_gather == 0:
        return base
    return base + lane_gather


# -- scan kernel -------------------------------------------------------------


def scan_bounds(cfg: VariantConfig) -> KernelBounds:
    """Per-launch bounds for ``scan(k)`` under ``cfg``."""
    trips: Expr = CeilDiv(_N, _G * _W * _S)
    if cfg.compaction == "block":
        trips = Max(Const(1), trips)
    per_trip = Const(_SCAN_TRIP[cfg.compaction])
    issued = _G * _W * (Const(3) + per_trip * trips)
    # per trip: deg gload (<=2 segments) + buffer gstore (<=2); plus
    # Warp 0's tails write-back (1 per block)
    mem = _G * (_W * (Const(4) * trips) + Const(1))
    if cfg.compaction == "block":
        barriers = _G * (Const(2) + Const(3) * trips)
    else:
        barriers = _G * Const(2)
    return KernelBounds(issued, mem, barriers)


# -- loop kernel -------------------------------------------------------------


def loop_bounds(cfg: VariantConfig) -> KernelBounds:
    """Per-launch bounds for ``loop(k)`` under ``cfg``."""
    if cfg.virtual_warps > 1:
        return _loop_bounds_virtual(cfg)
    if cfg.prefetch:
        iters: Expr = Const(2) * _FILL + Const(3)
        overhead = _ITER_OVERHEAD_VP
        fetch = _FETCH["plain"]
        barrier_per_iter = 3
    else:
        iters = _FILL + Const(2)
        overhead = _ITER_OVERHEAD
        fetch = _FETCH["shared" if cfg.shared_buffer else "plain"]
        barrier_per_iter = 2
    sweep = _SWEEP_BASE + _APPEND[cfg.compaction]
    if cfg.shared_buffer:
        sweep += _WRITE_SHARED_EXTRA
    sweeps_per_vertex = CeilDiv(_DMAX, _S)
    per_block = (
        _W * (Const(_PRO_EPI) + Const(overhead) * iters)
        + _FILL * (Const(fetch) + Const(sweep) * sweeps_per_vertex)
    )
    issued = _G * per_block
    mem = _G * (
        Const(2)  # tails gload + count atomic
        + Const(2) * iters  # VP batch fetch / iteration slack
        + _FILL * (Const(3) + _sweep_mem() * sweeps_per_vertex)
    )
    barriers = _G * (Const(barrier_per_iter) * iters + Const(2))
    return KernelBounds(issued, mem, barriers)


def _loop_bounds_virtual(cfg: VariantConfig) -> KernelBounds:
    vw = cfg.virtual_warps
    lane_width = 32 // vw
    iters = _FILL + Const(2)
    #: per sweep trip over a batch of vw adjacency lists: sync(1) +
    #: gload u(1) + gload deg(1) + charge(4) + atomicSub(1) +
    #: restore(1) + append atomic(1) + write(1)
    sweep = Const(11)
    sweeps = CeilDiv(_DMAX, Const(lane_width))
    per_block = (
        _W * (Const(_PRO_EPI) + Const(_ITER_OVERHEAD_VW) * iters)
        + _FILL * (Const(2) + sweep * sweeps)
    )
    issued = _G * per_block
    # batch bounds gload touches 2*vw scattered offsets per instance
    mem = _G * (
        Const(2)
        + Const(2) * iters
        + _FILL * (Const(2 + 2 * vw) + _sweep_mem(Const(2 * vw)) * sweeps)
    )
    barriers = _G * (Const(2) * iters + Const(2))
    return KernelBounds(issued, mem, barriers)


def kernel_bounds(kernel: str, cfg: VariantConfig) -> KernelBounds:
    """Bounds for one kernel by scheduler name, via its registered
    :class:`~repro.staticheck.contracts.KernelContract`."""
    try:
        contract = contracts.kernel_contract(kernel)
    except KeyError:
        raise KeyError(f"no certified bounds for kernel {kernel!r}") from None
    return contract.bounds(cfg)


def _reject_ring(cfg: VariantConfig) -> None:
    """The k-core kernels' honest refusal for ring configs."""
    if cfg.ring_buffer:
        raise ValueError(
            "ring-buffer variants have no static buffer-slot bound "
            "(the tail may lap the head); certificates cover the "
            "Table II matrix and the virtual-warp extensions"
        )


def _certified_scan_bounds(cfg: VariantConfig) -> KernelBounds:
    _reject_ring(cfg)
    return scan_bounds(cfg)


def _certified_loop_bounds(cfg: VariantConfig) -> KernelBounds:
    _reject_ring(cfg)
    return loop_bounds(cfg)


# -- resource footprints -----------------------------------------------------


def shared_footprint(kernel: str, cfg: VariantConfig) -> Dict[str, Expr]:
    """Static per-block shared-memory demand, in vertex-ID slots.

    Maps allocation name -> symbolic slot count; scalars are one slot
    each.  Evaluating the sum against
    ``DeviceSpec.shared_memory_per_block_bytes`` is the fit check.
    Resolved through the kernel's registered contract.
    """
    try:
        contract = contracts.kernel_contract(kernel)
    except KeyError:
        raise KeyError(
            f"no shared-footprint model for kernel {kernel!r}"
        ) from None
    return dict(contract.shared_layout(cfg))


def _scan_shared_layout(cfg: VariantConfig) -> Dict[str, Expr]:
    slots: Dict[str, Expr] = {"e": Const(1)}
    if cfg.compaction == "block":
        slots["warp_counts"] = _W
        slots["warp_offsets"] = _W
    return slots


def _loop_shared_layout(cfg: VariantConfig) -> Dict[str, Expr]:
    slots: Dict[str, Expr] = {"s": Const(1), "e": Const(1)}
    if cfg.shared_buffer:
        slots["e_init"] = Const(1)
        slots["B"] = _SCAP
    if cfg.prefetch:
        slots["pn_cur"] = Const(1)
        slots["pn_next"] = Const(1)
        slots["pref0"] = _W
        slots["pref1"] = _W
    if cfg.compaction == "block":
        slots["warp_counts"] = _W  # block_scan_offsets staging
    return slots


def device_memory_bound(cfg: VariantConfig) -> Expr:
    """Exact peak device global memory of the host program, in bytes
    per ``id_byte`` — multiply by ``DeviceSpec.id_bytes`` and add
    ``context_overhead_bytes`` to get Table V's figure.

    offsets (n+1) + neighbors (adj) + deg (n) + per-block buffers
    (G*cap) + tails (G) + count (1) + the BC/EC vid/p/a staging arrays
    (3 * G * W * S).  SM and VP buffer in *shared* memory, which is why
    Ours/SM/VP tie at the smallest footprint in Table V.
    """
    base = (_N + Const(1)) + _ADJ + _N + _G * _CAP + _G + Const(1)
    if cfg.compaction != "none":
        base = base + Const(3) * _G * _W * _S
    return base


# -- cost-model combination --------------------------------------------------


def cycles_bound(
    bounds: KernelBounds, cost: CostModel, env: Mapping[str, float]
) -> float:
    """Numeric upper bound on one launch's kernel cycles.

    Sound over-approximation of the roofline: the busiest SM is at most
    the sum over blocks, ``max(compute, memory, path)`` at most their
    sum, and every issued instruction stalls for at most the worst
    single-instruction stall the cost model can charge.
    """
    values = bounds.evaluate(env)
    warp_size = env["S"]
    worst_stall = max(
        cost.global_load_latency,
        cost.shared_access_cycles,
        cost.global_atomic_base + cost.global_atomic_conflict * (warp_size - 1),
        cost.shared_atomic_base + cost.shared_atomic_conflict * (warp_size - 1),
    )
    return (
        values["issued"] * (1.0 / cost.issue_width + 1.0 + worst_stall)
        + values["mem_transactions"] * cost.mem_transaction_cycles
        + values["barriers"] * cost.barrier_cycles
    )


def ms_bound(
    bounds: KernelBounds, cost: CostModel, env: Mapping[str, float]
) -> float:
    """Numeric upper bound on one launch's simulated milliseconds."""
    return (
        cost.cycles_to_ms(cycles_bound(bounds, cost, env))
        + cost.kernel_launch_us / 1000.0
    )


# -- lower bounds (floor certificates) ---------------------------------------


@dataclass(frozen=True)
class KernelFloors:
    """Symbolic *lower* bounds on the measured events — the dual of
    :class:`KernelBounds`.

    Where the upper bounds certify "the kernel can never cost more than
    this", a floor certifies "no counterfactual can cost less": work the
    algorithm is obliged to do regardless of atomics, coalescing or
    barriers.  The critical-path analyzer (:mod:`repro.obs.critpath`)
    uses floors to bracket its what-if projections from below, so a
    projection that undershoots its floor is a bug in the projection,
    not an optimisation opportunity.

    ``per_launch=True`` floors scale with the launch count (e.g. every
    ``scan(k)`` must re-read all ``n`` degrees); ``per_launch=False``
    floors hold once over the whole run (e.g. the peeling loop sweeps
    each adjacency row exactly once — when its owner is removed — no
    matter how many launches that takes).
    """

    issued: Expr
    mem_transactions: Expr
    per_launch: bool = True

    def evaluate(self, env: Mapping[str, float]) -> Dict[str, float]:
        return {
            "issued": self.issued.evaluate(env),
            "mem_transactions": self.mem_transactions.evaluate(env),
        }


def scan_floors(cfg: VariantConfig) -> KernelFloors:
    """Per-launch floors for ``scan(k)``: every launch reads all ``n``
    degrees.

    ``n`` lane-reads need at least ``ceil(n / S)`` warp instructions
    (a warp instruction covers at most ``S`` lanes) and at least
    ``ceil(n / T)`` 128-byte transactions (a transaction covers at most
    ``T`` words) — independent of compaction strategy, shared buffers,
    or any what-if scenario.
    """
    return KernelFloors(
        issued=CeilDiv(_N, _S),
        mem_transactions=CeilDiv(_N, _T),
    )


def loop_floors(cfg: VariantConfig) -> KernelFloors:
    """Run-level floors for ``loop(k)``: a completed peel removes every
    vertex exactly once and its remover sweeps the full adjacency row.

    ``adj`` neighbor lane-reads across the whole run need at least
    ``ceil(adj / S)`` warp instructions and ``ceil(adj / T)``
    transactions, however the rows are split over launches, warps or
    virtual warps (``per_launch=False``).
    """
    return KernelFloors(
        issued=CeilDiv(_ADJ, _S),
        mem_transactions=CeilDiv(_ADJ, _T),
        per_launch=False,
    )


def floor_cycles(
    floors: KernelFloors, cost: CostModel, env: Mapping[str, float],
    num_sms: int,
) -> float:
    """Numeric lower bound on kernel cycles (one launch, or the whole
    run when ``floors.per_launch`` is False).

    Sound under-approximation of the roofline: the busiest SM carries
    at least the mean load (total block busy / ``num_sms``), each
    block's busy time is at least ``max(compute, memory)`` of its own
    work, and summing over blocks bounds each term by the totals —
    ``sum_i max(c_i, m_i) >= max(sum c_i, sum m_i)``.  Latency, barrier
    and atomic terms are dropped (they are exactly what the what-if
    scenarios are allowed to erase).
    """
    values = floors.evaluate(env)
    return max(
        values["issued"] / cost.issue_width,
        values["mem_transactions"] * cost.mem_transaction_cycles,
    ) / float(max(1, num_sms))


# -- reachability ------------------------------------------------------------

#: the declared call graph the certifier reasons over; the AST pass
#: (:meth:`repro.staticheck.absint.ModuleInventory.check_call_edges`)
#: verifies every real kernel->kernel call edge appears here, so a new
#: helper cannot be reached without being certified
REACHABILITY: Dict[str, Tuple[str, ...]] = {
    "scan_kernel": ("_scan_strided", "_scan_block_compaction"),
    "_scan_strided": ("_hit_flags", "warp_compact_ballot"),
    "_scan_block_compaction": (
        "_hit_flags",
        "warp_compact_hillis_steele",
        "block_scan_offsets",
    ),
    "_hit_flags": (),
    "loop_kernel": ("_drain", "_drain_virtual", "_drain_prefetched"),
    "_drain": ("_process_vertex",),
    "_drain_virtual": ("_process_vertices_virtual",),
    "_drain_prefetched": ("_process_vertex",),
    "_process_vertex": ("_append",),
    "_process_vertices_virtual": (),
    "_append": ("warp_compact_ballot", "warp_compact_hillis_steele"),
    "warp_compact_ballot": ("hillis_steele_exclusive",),
    "warp_compact_hillis_steele": ("hillis_steele_exclusive",),
    "block_scan_offsets": ("hillis_steele_exclusive",),
    "hillis_steele_exclusive": (),
}


def _kcore_prune(callee: str, cfg: VariantConfig) -> bool:
    """The abstract interpretation of the dispatch branches in
    ``scan_kernel`` / ``loop_kernel``: False = edge dead under ``cfg``."""
    if callee == "_scan_block_compaction" and cfg.compaction != "block":
        return False
    if callee == "_scan_strided" and cfg.compaction == "block":
        return False
    if callee == "_drain_prefetched" and not cfg.prefetch:
        return False
    if callee == "_drain_virtual" and cfg.virtual_warps == 1:
        return False
    if callee == "_drain" and (cfg.prefetch or cfg.virtual_warps > 1):
        return False
    if callee == "warp_compact_ballot" and cfg.compaction != "ballot":
        return False
    if callee == "warp_compact_hillis_steele" and cfg.compaction != "block":
        return False
    return True


def reachable_functions(kernel: str, cfg: VariantConfig) -> Tuple[str, ...]:
    """Transitive closure of the kernel contract's declared call graph
    from its entry, pruned by the contract's variant-dispatch rules."""
    contract = contracts.kernel_contract(kernel)
    seen: Dict[str, None] = {}
    frontier = [contract.entry]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen[name] = None
        frontier.extend(
            callee
            for callee in contract.reachability.get(name, ())
            if contract.prune(callee, cfg)
        )
    return tuple(seen)


# -- the built-in k-core contracts -------------------------------------------

#: the launch parameters of :func:`launch_env` the k-core bounds use
_KCORE_PARAMS = ("n", "adj", "dmax", "G", "W", "S", "cap", "scap", "P")

#: ring-buffer representatives whose wraparound aliasing the dataflow
#: tier *declares* unprovable (the honest-unproven set of the
#: admission gate; ``scripts/check_dataflow.py`` pins the same pair)
_RING_REPRESENTATIVES = ("ours", "bc")


def _kcore_variants() -> Dict[str, VariantConfig]:
    """The certified matrix (Table II + vw2/vw4) plus the declared
    ring representatives — the full dataflow-analyzable space."""
    configs: Dict[str, VariantConfig] = dict(VARIANTS)
    configs.update(EXTENSION_VARIANTS)
    for base in _RING_REPRESENTATIVES:
        ring = VARIANTS[base].with_ring_buffer()
        configs[ring.name] = ring
    return configs


def _ring_is_honest(cfg: VariantConfig) -> bool:
    """Ring wraparound has no static slot bound and no aliasing axiom:
    missing bounds and unproven obligations are the *correct* answer."""
    return cfg.ring_buffer


_KCORE_RACE_ARGUMENTS = (
    "read-only",
    "atomic-only",
    "barrier-separated",
    "same-warp",
    "single-instance",
    "warp-slot",
    "double-buffer-parity",
    "reservation-disjoint",
    "head-tail",
    "block-private",
)

contracts.register_kernel_contract(contracts.KernelContract(
    name="scan_kernel",
    program="kcore",
    module="repro.core.scan_kernel",
    entry="scan_kernel",
    bounds=_certified_scan_bounds,
    shared_layout=_scan_shared_layout,
    reachability=REACHABILITY,
    variants=_kcore_variants,
    prune=_kcore_prune,
    params=_KCORE_PARAMS,
    helper_modules=("repro.core.compaction", "repro.core.buffers"),
    engine_module="repro.core.fastsim",
    race_arguments=_KCORE_RACE_ARGUMENTS,
    honest_unproven=_ring_is_honest,
    floors=scan_floors,
))

contracts.register_kernel_contract(contracts.KernelContract(
    name="loop_kernel",
    program="kcore",
    module="repro.core.loop_kernel",
    entry="loop_kernel",
    bounds=_certified_loop_bounds,
    shared_layout=_loop_shared_layout,
    reachability=REACHABILITY,
    variants=_kcore_variants,
    prune=_kcore_prune,
    params=_KCORE_PARAMS,
    helper_modules=("repro.core.compaction", "repro.core.buffers"),
    engine_module="repro.core.fastsim",
    race_arguments=_KCORE_RACE_ARGUMENTS,
    honest_unproven=_ring_is_honest,
    floors=loop_floors,
))

contracts.register_program_contract(contracts.ProgramContract(
    name="kcore",
    kernels=("scan_kernel", "loop_kernel"),
    device_memory=device_memory_bound,
    variants=_kcore_variants,
    description="k-core peeling: scan(k) collects the k-shell, loop(k) "
                "drains and cascades it (Algorithms 2/3)",
))
