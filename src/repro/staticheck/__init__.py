"""Static kernel cost certifier (see ``docs/STATIC_ANALYSIS.md``).

An abstract-interpretation pass over the kernel ASTs that derives, per
kernel x variant, a **static resource certificate**: closed-form upper
bounds on the events the simulator measures (issued warp-instructions,
memory transactions, barrier generations), the shared-memory footprint
against the device capacity, the exact device-global-memory bound of
Table V, and site inventories (atomics shared vs global, divergence,
coalesced vs scattered access).  A differential checker asserts on
every traced launch that the certificate dominates the dynamic
measurement, and ``scripts/check_static_bounds.py`` gates CI on the
certificates against the committed bench JSON.

Package layout:

* :mod:`~repro.staticheck.contracts` — the kernel-admission registry:
  declarative :class:`~repro.staticheck.contracts.KernelContract` /
  :class:`~repro.staticheck.contracts.ProgramContract` records that
  every analyzer below iterates instead of hardcoding kernel names;
* :mod:`~repro.staticheck.symbolic` — the expression language bounds
  are written in;
* :mod:`~repro.staticheck.absint` — the AST site-inventory pass and
  the ``__staticheck__`` coverage gate;
* :mod:`~repro.staticheck.bounds` — the closed-form bounds per kernel
  x variant and the variant-reachability table;
* :mod:`~repro.staticheck.certificate` — certificate assembly;
* :mod:`~repro.staticheck.differential` — the launch-time checker;
* :mod:`~repro.staticheck.dataflow` — the dataflow tier:
  lane-uniformity abstract interpretation, barrier-epoch race-freedom
  certificates, divergence/coalescing brackets, and the static engine
  precondition analysis (with :mod:`~repro.staticheck.fixtures`
  holding the known-bad detector self-test inputs).
"""

from repro.staticheck.absint import (
    KernelInventory,
    ModuleInventory,
    SharedAlloc,
    Site,
    WAIVE_MARK,
    analyze_file,
    analyze_module,
    analyze_source,
)
from repro.staticheck.bounds import (
    KernelBounds,
    REACHABILITY,
    cycles_bound,
    device_memory_bound,
    kernel_bounds,
    launch_env,
    loop_bounds,
    ms_bound,
    reachable_functions,
    scan_bounds,
    shared_footprint,
)
from repro.staticheck.certificate import (
    KernelCertificate,
    VariantCertificate,
    all_variant_configs,
    certify_all,
    certify_program,
    certify_variant,
    core_inventories,
    kernel_inventories,
    render_certificates,
    verify_inventories,
)
from repro.staticheck.contracts import (
    KernelContract,
    ProgramContract,
    all_kernel_contracts,
    all_program_contracts,
    certified_module_paths,
    kernel_contract,
    load_contracts,
    merged_reachability,
    program_contract,
    register_kernel_contract,
    register_program_contract,
)
from repro.staticheck.dataflow import (
    DataflowCertificate,
    DataflowChecker,
    EfficiencyBracket,
    FallbackRule,
    RaceObligation,
    RaceProof,
    Uniformity,
    analyze_function,
    analyze_kernel,
    certified_combos,
    dataflow_report,
    engine_preconditions,
    predicted_tier,
    render_dataflow_certificates,
)
from repro.staticheck.differential import DifferentialChecker
from repro.staticheck.symbolic import (
    Add,
    CeilDiv,
    Const,
    Expr,
    Max,
    Min,
    Mul,
    Param,
    as_expr,
)

__all__ = [
    # contracts
    "KernelContract", "ProgramContract", "register_kernel_contract",
    "register_program_contract", "kernel_contract", "program_contract",
    "all_kernel_contracts", "all_program_contracts",
    "certified_module_paths", "merged_reachability", "load_contracts",
    # symbolic
    "Expr", "Const", "Param", "Add", "Mul", "Max", "Min", "CeilDiv",
    "as_expr",
    # absint
    "Site", "SharedAlloc", "KernelInventory", "ModuleInventory",
    "analyze_source", "analyze_file", "analyze_module", "WAIVE_MARK",
    # bounds
    "KernelBounds", "launch_env", "scan_bounds", "loop_bounds",
    "kernel_bounds", "shared_footprint", "device_memory_bound",
    "cycles_bound", "ms_bound", "REACHABILITY", "reachable_functions",
    # certificates
    "KernelCertificate", "VariantCertificate", "core_inventories",
    "kernel_inventories", "verify_inventories", "certify_variant",
    "certify_all", "certify_program", "all_variant_configs",
    "render_certificates",
    # differential
    "DifferentialChecker",
    # dataflow
    "DataflowCertificate", "DataflowChecker", "EfficiencyBracket",
    "FallbackRule", "RaceObligation", "RaceProof", "Uniformity",
    "analyze_function", "analyze_kernel", "certified_combos",
    "dataflow_report", "engine_preconditions", "predicted_tier",
    "render_dataflow_certificates",
]
