"""Command-line interface: ``python -m repro``.

Decompose an edge-list file (or a named dataset analogue) with any
registered algorithm and print core numbers or summary statistics —
the workflow a graph analyst uses the released KCoreGPU binaries for.

``--profile [FILE]`` installs a process-wide tracer (see
:mod:`repro.obs`) for the run and writes a Chrome-trace JSON (default
``trace.json``) loadable in Perfetto; every simulated device and CPU
machine the chosen algorithm builds feeds the same timeline.

``--sanitize`` runs the kernel sanitizer (see ``docs/SANITIZER.md``)
over the run: the simulated-GPU algorithms get the dynamic race
detector on every kernel launch, the system emulations and the fast
path get the static lint sweep.  The report is printed after the
summary and error findings make the exit status 1.

``--staticheck`` engages the static resource certifier (see
``docs/STATIC_ANALYSIS.md``).  On its own (no input) it prints the
symbolic certificates of all eleven kernel variants.  Combined with a
graph and a ``gpu-*`` algorithm it additionally runs the differential
checker — every launch's measured stats are asserted against the
certificate — and prints that report; error findings exit 1.

``--dataflow`` engages the static dataflow analyzer (the second tier
of ``docs/STATIC_ANALYSIS.md``).  On its own (no input) it prints the
race-freedom certificates, divergence/coalescing brackets and engine
preconditions of every kernel variant; explicit unproven obligations
exit 1.  Combined with a graph and a ``gpu-*`` algorithm it checks
every launch against the certificates — the measured efficiency must
fall inside the static bracket and the serving engine tier must match
the static prediction — and prints that report; error findings exit 1.

``--ncu [FILE]`` profiles the run with the kernel profiler (see
:mod:`repro.profile` and the "Profiling" section of
``docs/OBSERVABILITY.md``) and prints an Nsight-Compute-style
speed-of-light table — per-kernel bound classification, pipeline
utilisation, occupancy and efficiency figures.  With a ``FILE``
argument the full ``repro.profile/v1`` JSON report is written there
too (a sibling ``FILE.folded`` gets the flamegraph stacks).  The
single-GPU ``gpu-*`` peeling algorithms get per-launch roofline
attribution; the system emulations get coarse ``source="charge"``
records of their logical kernels.

``--memtrace [FILE]`` records memory telemetry (see
:mod:`repro.memtrace` and the "Memory telemetry" section of
``docs/OBSERVABILITY.md``) and prints the allocation timeline with an
exact attribution breakdown of the memory peak.  With a ``FILE``
argument the ``repro.memtrace/v1`` JSON report is written there too.
Error findings (double-free, use-after-free) make the exit status 1.
Supported for everything that allocates simulated device memory
(``repro.api.MEMTRACEABLE``).

``--critpath [FILE]`` runs the causal critical-path analyzer (see the
"Critical path & what-if" section of ``docs/OBSERVABILITY.md``) and
prints the per-track slack accounting plus the ranked what-if
speedup-ceiling table — which counterfactual (free atomics, perfect
coalescing, zero barriers, infinite interconnect) buys the most, each
projection bracketed by the measured time above and the static floor
certificates below.  For the multi-GPU algorithms every sub-round is
additionally classified compute-, straggler-, or exchange-bound.
With a ``FILE`` argument the ``repro.critpath/v1`` JSON record is
written there too.  The validator re-derives the whole record exactly;
violations exit 1.  Supported for the simulated peeling algorithms
(``repro.api.CRITPATHABLE``).

``--engine NAME`` selects the simulator execution engine for the
``gpu-*`` algorithms (``repro.api.ENGINEABLE``): ``reference``,
``vectorized`` (the default) or ``jit``.  Engines are byte-identical
by contract — the same simulated milliseconds, counters and memory
peaks — so the flag only changes host wall-clock time; see
``docs/SIMULATOR.md``.

``--report [FILE]`` runs every requested algorithm with full telemetry
(trace, profile, memtrace — whatever each supports), merges the
results into one unified ``repro.runreport/v1`` record (see the "Run
reports" section of ``docs/OBSERVABILITY.md``), validates its
cross-layer consistency invariants, and prints the rendered summary.
With a ``FILE`` argument the JSON artifact is written there too.  Only
with ``--report`` may ``--algorithm`` be a comma-separated list, so a
single invocation can cover the GPU kernels, a multicore baseline and
the semi-external disk path side by side.  Invariant violations exit
1.  ``--report`` subsumes the other telemetry flags and cannot be
combined with them.

``repro obs diff OLD NEW`` compares two run-report artifacts section
by section and prints what changed (simulated time, device cycles,
memory peak, bound-class flips); regressions exit 1.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

import numpy as np

from repro.api import (
    CRITPATHABLE,
    DATAFLOWABLE,
    ENGINEABLE,
    MEMTRACEABLE,
    PROFILABLE,
    SANITIZABLE,
    STATICHECKABLE,
    algorithm_names,
    decompose,
)
from repro.graph import datasets
from repro.gpusim.engine import DEFAULT_ENGINE, available_engines
from repro.graph.io import read_edgelist

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-core decomposition (ICDE 2023 KCoreGPU reproduction)",
    )
    # not argparse-required: a bare ``--staticheck`` needs no source
    # (main() enforces the requirement for every other invocation)
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--input", "-i", metavar="FILE",
        help="edge-list file (SNAP/KONECT format, optionally .gz)",
    )
    source.add_argument(
        "--dataset", "-d", metavar="NAME",
        help="a Table I dataset analogue "
             f"({', '.join(datasets.dataset_names()[:3])}, ...)",
    )
    source.add_argument(
        "--list-datasets", action="store_true",
        help="print the dataset registry and exit",
    )
    source.add_argument(
        "--list-algorithms", action="store_true",
        help="print the algorithm registry and exit",
    )
    parser.add_argument(
        "--algorithm", "-a", default="fast",
        help="program to run (default: fast; see --list-algorithms)",
    )
    parser.add_argument(
        "--output", "-o", metavar="FILE",
        help="write 'vertex core' lines here instead of a summary",
    )
    parser.add_argument(
        "--shells", action="store_true",
        help="print the size of every k-shell",
    )
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="print the N vertices with the deepest core numbers",
    )
    parser.add_argument(
        "--engine", choices=available_engines(), default=None,
        metavar="NAME",
        help="simulator execution engine for the gpu-* algorithms "
             f"({', '.join(available_engines())}; default: "
             f"{DEFAULT_ENGINE}); engines are byte-identical, only "
             "host wall-clock time differs (see docs/SIMULATOR.md)",
    )
    parser.add_argument(
        "--profile", nargs="?", const="trace.json", default=None,
        metavar="FILE",
        help="trace the run and write a Chrome-trace/Perfetto JSON "
             "timeline here (default: trace.json)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the kernel sanitizer (race/barrier/lint checks) over "
             "the run and print its report; error findings exit 1",
    )
    parser.add_argument(
        "--ncu", nargs="?", const="-", default=None, metavar="FILE",
        help="profile the run (gpu-* algorithms only) and print the "
             "speed-of-light table; with FILE, also write the "
             "repro.profile/v1 JSON report there and the flamegraph "
             "stacks to FILE.folded",
    )
    parser.add_argument(
        "--memtrace", nargs="?", const="-", default=None, metavar="FILE",
        help="record memory telemetry (allocation lifetimes, exact peak "
             "attribution) and print the timeline; with FILE, also "
             "write the repro.memtrace/v1 JSON report there; "
             "double-free/use-after-free findings exit 1",
    )
    parser.add_argument(
        "--critpath", nargs="?", const="-", default=None, metavar="FILE",
        help="analyze the run's causal critical path and print the "
             "slack accounting and ranked what-if speedup ceilings "
             "(multi-GPU runs also get per-round straggler/exchange "
             "attribution); with FILE, also write the repro.critpath/v1 "
             "JSON record there; validation failures exit 1",
    )
    parser.add_argument(
        "--staticheck", action="store_true",
        help="print the static resource certificates of every kernel "
             "variant; with an input graph and a gpu-* algorithm, also "
             "check every launch against its certificate (differential "
             "check); error findings exit 1",
    )
    parser.add_argument(
        "--dataflow", action="store_true",
        help="print the dataflow certificates (race-freedom proofs, "
             "divergence/coalescing brackets, engine preconditions) of "
             "every kernel variant; with an input graph and a gpu-* "
             "algorithm, also check every launch against them; error "
             "findings exit 1",
    )
    parser.add_argument(
        "--report", nargs="?", const="-", default=None, metavar="FILE",
        help="run with full telemetry, merge every vertical into one "
             "validated repro.runreport/v1 record and print it; with "
             "FILE, also write the JSON artifact there; --algorithm "
             "may be a comma-separated list; invariant violations "
             "exit 1",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="with --staticheck/--dataflow/--sanitize, also write the "
             "findings as a machine-readable repro.findings/v1 "
             "artifact (the schema CI's gate scripts upload)",
    )
    return parser


def _summarise(args, graph, result) -> None:
    print(f"vertices: {graph.num_vertices}")
    print(f"edges: {graph.num_edges}")
    print(f"k_max (degeneracy): {result.kmax}")
    print(f"algorithm: {result.algorithm}")
    print(f"rounds: {result.rounds}")
    if result.simulated_ms:
        print(f"simulated time: {result.simulated_ms:.3f} ms")
    if result.peak_memory_bytes:
        print(f"peak device memory: "
              f"{result.peak_memory_bytes / (1024 * 1024):.2f} MB")
    if args.shells:
        print("shell sizes:")
        for k, count in enumerate(result.shell_sizes()):
            if count:
                print(f"  k={k}: {int(count)}")
    if args.top:
        order = np.argsort(-result.core)[: args.top]
        print(f"top {args.top} vertices by core number:")
        for v in order:
            print(f"  {int(v)}: core {int(result.core[v])}")


def _write_file(path: str, write: Callable[[str], None], label: str) -> bool:
    """Write an output artifact, creating parent directories.

    Returns False (after a clear stderr message, no traceback) when the
    path is unwritable.  Delegates to the shared
    :func:`repro.obs.export.write_artifact` sink the CI gates use.
    """
    from repro.obs.export import write_artifact

    return write_artifact(path, write, label=label)


def _emit_findings(json_path: "str | None", tool: str, report) -> bool:
    """Write the ``repro.findings/v1`` artifact when ``--json`` asked."""
    if not json_path:
        return True
    from repro.sanitize.findings import write_findings

    if not _write_file(
        json_path, lambda p: write_findings(p, tool, report), "findings"
    ):
        return False
    print(f"wrote {tool} findings to {json_path}")
    return True


def _print_certificates(json_path: "str | None" = None) -> int:
    """The standalone ``--staticheck`` listing; exit 1 on coverage gaps."""
    from repro.sanitize.report import SanitizerReport
    from repro.staticheck import (
        certify_all, render_certificates, verify_inventories,
    )

    print(render_certificates(certify_all()))
    findings = verify_inventories()
    report = SanitizerReport()
    report.extend(findings)
    if not _emit_findings(json_path, "cli-staticheck", report):
        return 1
    if findings:
        print(f"\nstaticheck: {len(findings)} coverage finding(s)",
              file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        return 1
    return 0


def _print_dataflow_certificates(json_path: "str | None" = None) -> int:
    """The standalone ``--dataflow`` listing; exit 1 on unproven pairs.

    Both the listing and the unproven count iterate the contract
    registry (every admitted kernel over its own variant space), so a
    newly registered kernel is covered without touching the CLI.
    """
    from repro.staticheck.dataflow import (
        dataflow_report, render_dataflow_certificates,
    )

    print(render_dataflow_certificates())
    report = dataflow_report()
    if not _emit_findings(json_path, "cli-dataflow", report):
        return 1
    if report.findings:
        print(f"\ndataflow: {len(report.findings)} unproven race "
              "obligation(s)", file=sys.stderr)
        return 1
    return 0


def _obs_diff(argv: Sequence[str]) -> int:
    """``repro obs diff OLD NEW`` — compare two run-report artifacts."""
    import json

    from repro.obs.runreport import diff_runreports, validate_runreport

    if len(argv) != 2:
        print("usage: repro obs diff OLD.json NEW.json", file=sys.stderr)
        return 2
    reports = []
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read run report {path!r}: {exc}",
                  file=sys.stderr)
            return 2
        for problem in validate_runreport(record):
            print(f"warning: {path}: {problem}", file=sys.stderr)
        reports.append(record)
    rendered, regressions = diff_runreports(reports[0], reports[1])
    print(rendered)
    return 1 if regressions else 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:2] == ["obs", "diff"]:
        return _obs_diff(argv[2:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if not (args.input or args.dataset or args.list_datasets
            or args.list_algorithms):
        if args.staticheck:
            return _print_certificates(args.json)
        if args.dataflow:
            return _print_dataflow_certificates(args.json)
        parser.error(
            "one of --input/--dataset/--list-datasets/--list-algorithms "
            "is required (or bare --staticheck/--dataflow for the "
            "certificate dumps)"
        )
    if args.list_datasets:
        for name in datasets.dataset_names():
            spec = datasets.get_spec(name)
            print(f"{name}\t{spec.category}")
        return 0
    if args.list_algorithms:
        for name in sorted(algorithm_names()):
            print(name)
        return 0

    report_algorithms: list[str] = []
    if args.report is not None:
        incompatible = [flag for flag, on in (
            ("--profile", args.profile is not None),
            ("--sanitize", args.sanitize),
            ("--staticheck", args.staticheck),
            ("--dataflow", args.dataflow),
            ("--ncu", args.ncu is not None),
            ("--memtrace", args.memtrace is not None),
            ("--critpath", args.critpath is not None),
            ("--engine", args.engine is not None),
        ) if on]
        if incompatible:
            print("error: --report already merges every telemetry "
                  "vertical and cannot be combined with "
                  f"{', '.join(incompatible)}", file=sys.stderr)
            return 2
        report_algorithms = [a for a in args.algorithm.split(",") if a]
        unknown = [a for a in report_algorithms
                   if a not in algorithm_names()]
        if not report_algorithms or unknown:
            bad = ", ".join(repr(a) for a in unknown) or "none given"
            print(f"error: unknown algorithm(s) for --report: {bad} "
                  f"(see --list-algorithms)", file=sys.stderr)
            return 2
    elif args.algorithm not in algorithm_names():
        hint = (" (comma-separated lists need --report)"
                if "," in args.algorithm else " (see --list-algorithms)")
        print(f"error: unknown algorithm {args.algorithm!r}{hint}",
              file=sys.stderr)
        return 2
    if args.sanitize and args.algorithm not in SANITIZABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--sanitize (supported: {', '.join(sorted(SANITIZABLE))})",
              file=sys.stderr)
        return 2
    if args.staticheck and args.algorithm not in STATICHECKABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--staticheck (supported: "
              f"{', '.join(sorted(STATICHECKABLE))})",
              file=sys.stderr)
        return 2
    if args.dataflow and args.algorithm not in DATAFLOWABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--dataflow (supported: "
              f"{', '.join(sorted(DATAFLOWABLE))})",
              file=sys.stderr)
        return 2
    if args.ncu is not None and args.algorithm not in PROFILABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--ncu (supported: {', '.join(sorted(PROFILABLE))})",
              file=sys.stderr)
        return 2
    if args.engine is not None and args.algorithm not in ENGINEABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--engine (supported: {', '.join(sorted(ENGINEABLE))})",
              file=sys.stderr)
        return 2
    if args.memtrace is not None and args.algorithm not in MEMTRACEABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--memtrace (supported: {', '.join(sorted(MEMTRACEABLE))})",
              file=sys.stderr)
        return 2
    if args.critpath is not None and args.algorithm not in CRITPATHABLE:
        print(f"error: algorithm {args.algorithm!r} does not support "
              f"--critpath (supported: {', '.join(sorted(CRITPATHABLE))})",
              file=sys.stderr)
        return 2
    if args.dataset:
        try:
            graph = datasets.load(args.dataset)
        except Exception:
            print(f"error: unknown dataset {args.dataset!r} "
                  f"(see --list-datasets)", file=sys.stderr)
            return 2
    else:
        graph = read_edgelist(args.input)

    if args.report is not None:
        from repro.obs.runreport import collect_run_report

        report, _results = collect_run_report(
            graph, report_algorithms,
            dataset=args.dataset or args.input,
        )
        print(report.render())
        problems = report.validate()
        if args.report != "-":
            if not _write_file(args.report, report.write, "run report"):
                return 1
            print(f"wrote run report ({len(report.sections)} section(s)) "
                  f"to {args.report}")
        if problems:
            print(f"runreport: {len(problems)} invariant violation(s)",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        return 0

    run_kwargs = {}
    if args.engine is not None:
        run_kwargs["engine"] = args.engine
    if args.sanitize:
        run_kwargs["sanitize"] = True
    if args.staticheck:
        run_kwargs["staticheck"] = True
    if args.dataflow:
        run_kwargs["dataflow"] = True
    if args.ncu is not None:
        run_kwargs["profile"] = True
    if args.memtrace is not None:
        run_kwargs["memtrace"] = True
    if args.critpath is not None:
        run_kwargs["critpath"] = True
    if args.profile:
        from repro.obs import start_tracing, stop_tracing

        tracer = start_tracing()
        wall_start = time.perf_counter()
        try:
            result = decompose(graph, args.algorithm, **run_kwargs)
        finally:
            stop_tracing()
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
        tracer.span(f"decompose {args.algorithm}", 0.0, wall_ms,
                    cat="cli", track="wall", args={"clock": "wall"})
        if not _write_file(args.profile, tracer.write, "trace"):
            return 1
        print(f"wrote trace ({len(tracer.events)} events, "
              f"{len(tracer.counters)} counters) to {args.profile}")
        if tracer.counters:
            print("counters:")
            for name in sorted(tracer.counters):
                print(f"  {name}: {tracer.counters[name]:g}")
    else:
        result = decompose(graph, args.algorithm, **run_kwargs)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for v, c in enumerate(result.core):
                handle.write(f"{v}\t{int(c)}\n")
        print(f"wrote {result.num_vertices} core numbers to {args.output}")
    else:
        _summarise(args, graph, result)
    if args.sanitize:
        report = result.sanitizer
        if report is None:
            print("sanitizer: no report produced", file=sys.stderr)
            return 1
        print(report.summary())
        if not _emit_findings(args.json, "cli-sanitize", report):
            return 1
        if report.errors:
            return 1
    if args.staticheck or args.dataflow:
        report = result.staticheck
        if report is None:
            print("staticheck: no report produced", file=sys.stderr)
            return 1
        print(report.summary(label="staticheck"))
        tool = "cli-staticheck" if args.staticheck else "cli-dataflow"
        if not args.sanitize:  # --sanitize already claimed the file
            if not _emit_findings(args.json, tool, report):
                return 1
        if report.errors:
            return 1
    if args.ncu is not None:
        profile = result.profile
        if profile is None:
            print("ncu: no profile produced", file=sys.stderr)
            return 1
        print(profile.render())
        if args.ncu != "-":
            if not _write_file(args.ncu, profile.write, "profile"):
                return 1
            folded = args.ncu + ".folded"
            if not _write_file(folded, profile.write_folded, "flamegraph"):
                return 1
            print(f"wrote profile ({len(profile.launches)} launches) to "
                  f"{args.ncu} and flamegraph stacks to {folded}")
    if args.memtrace is not None:
        memtrace = result.memtrace
        if memtrace is None:
            print("memtrace: no report produced", file=sys.stderr)
            return 1
        print(memtrace.render())
        if args.memtrace != "-":
            if not _write_file(args.memtrace, memtrace.write, "memtrace"):
                return 1
            print(f"wrote memtrace ({memtrace.peak_bytes} peak bytes) to "
                  f"{args.memtrace}")
        if memtrace.errors:
            return 1
    if args.critpath is not None:
        critpath = result.critpath
        if critpath is None:
            print("critpath: no report produced", file=sys.stderr)
            return 1
        print(critpath.render())
        if args.critpath != "-":
            if not _write_file(args.critpath, critpath.write, "critpath"):
                return 1
            print(f"wrote critical-path record "
                  f"({len(critpath.record['nodes'])} node(s)) to "
                  f"{args.critpath}")
        problems = critpath.validate()
        if problems:
            print(f"critpath: {len(problems)} invariant violation(s)",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
