"""Warp-level execution contexts for the SIMT simulator.

A kernel is a Python *generator function* ``kernel(ctx, ...)`` executed
once per warp.  Inside, the 32 lanes of the warp advance in lockstep —
lane-parallel work is expressed with numpy arrays indexed by
``ctx.lanes`` and divergence with boolean masks, which mirrors how the
hardware masks inactive lanes.  The context provides:

* global-memory loads/stores with coalescing-aware transaction counts,
* global and shared atomics with correct duplicate-address semantics
  (each lane observes a distinct intermediate value, like the hardware),
* per-block shared memory (named scalars and arrays with capacity
  accounting),
* warp primitives (``__ballot_sync``, ``__popc``, ``__shfl_sync``), and
* cost accounting feeding :class:`~repro.gpusim.costmodel.BlockTiming`.

Control transfers back to the scheduler only at explicit ``yield``
points: ``ctx.BARRIER`` (``__syncthreads``) and ``ctx.STEP`` (a
reschedule point, e.g. one trip of a loop).  Between yields a warp runs
uninterrupted, so races are exercised by yielding — the optional
``preempt`` hook injects extra reschedule points to fuzz atomic
interleavings.

Observability
-------------

Every event the cost model charges is also *counted* in the block's
:class:`~repro.gpusim.costmodel.BlockTiming`: warp-instructions in
``issued``, coalescing-aware 128-byte transactions in
``mem_transactions``, barrier generations in ``barriers``, and atomic
lane-conflicts (lanes beyond the first hitting one address in a single
warp atomic, global and shared combined) in ``atomic_conflicts``.  The
scheduler folds these into per-launch
:class:`~repro.gpusim.scheduler.KernelStats`, which the device's
tracer hook (see :mod:`repro.obs`) exports as span arguments and flat
counters.  Counting is unconditional — it is a handful of float adds
the simulator performs anyway — while trace *events* are emitted only
when a tracer is installed.

Every individual charge is an integer or quarter-integer (shared
atomics serialise at ``0.25`` cycles per conflicting lane) of
magnitude far below 2^50, so accumulated ``issued``/``path``/metric
totals are *exact* in IEEE doubles and independent of summation
order.  This is the foundation of the execution-engine byte-identity
contract (``docs/SIMULATOR.md``): the vectorized engine may bulk-fold
the very same charges in any grouping and still reproduce these
totals bit for bit.  Keep new charges on the quarter-integer grid, or
cross-engine equality breaks.

Sanitizing
----------

Every access method additionally carries a racecheck hook: when the
launch runs under a :class:`~repro.sanitize.racecheck.LaunchMonitor`
(``Device(sanitize=True)``), the access is mirrored into shadow logs
keyed by exact location and barrier epoch, from which the sanitizer
derives cross-warp race, barrier-divergence and ballot-hazard findings
(``docs/SANITIZER.md``).  Recording never charges cycles, and with the
monitor absent each hook is a single ``is not None`` test — the same
cold-path discipline as the tracer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.errors import SharedMemoryExhaustedError
from repro.gpusim.costmodel import BlockTiming, CostModel
from repro.gpusim.memory import DeviceArray
from repro.gpusim.spec import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memtrace.tracker import MemoryTracker
    from repro.sanitize.racecheck import LaunchMonitor

__all__ = ["BARRIER", "STEP", "BlockState", "WarpContext"]

#: Yield this to synchronise all warps of the block (``__syncthreads``).
BARRIER = "barrier"
#: Yield this to let other warps/blocks run (a scheduling point).
STEP = "step"

#: Words per 128-byte global-memory transaction at 4-byte IDs.
_WORDS_PER_TRANSACTION = 32


class BlockState:
    """Mutable per-block state: shared memory plus timing counters."""

    def __init__(
        self,
        block_idx: int,
        num_warps: int,
        spec: DeviceSpec,
        memtracker: "MemoryTracker | None" = None,
    ) -> None:
        self.block_idx = block_idx
        self.num_warps = num_warps
        self.spec = spec
        self.timing = BlockTiming()
        self.scalars: Dict[str, int] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.shared_bytes_used = 0
        #: optional memory tracker (see :mod:`repro.memtrace`) notified
        #: of shared-memory allocations; observability-only
        self.memtracker = memtracker
        # scheduler bookkeeping
        self.active_warps = num_warps
        self.waiting: list = []

    def alloc_shared(self, name: str, size: int) -> np.ndarray:
        """Allocate a named shared-memory array of ``size`` IDs.

        Raises :class:`~repro.errors.SharedMemoryExhaustedError` when
        the block's shared-memory capacity would be exceeded.
        """
        if name in self.arrays:
            return self.arrays[name]
        needed = size * self.spec.id_bytes
        if self.shared_bytes_used + needed > self.spec.shared_memory_per_block_bytes:
            raise SharedMemoryExhaustedError(
                self.block_idx, name, needed, self.shared_bytes_used,
                self.spec.shared_memory_per_block_bytes,
            )
        self.shared_bytes_used += needed
        if self.memtracker is not None:
            self.memtracker.on_shared_alloc(self.block_idx, name, needed)
        array = np.zeros(size, dtype=np.int64)
        self.arrays[name] = array
        return array


class WarpContext:
    """Execution context of one warp; see the module docstring."""

    BARRIER = BARRIER
    STEP = STEP

    def __init__(
        self,
        block: BlockState,
        warp_id: int,
        grid_dim: int,
        block_dim: int,
        spec: DeviceSpec,
        cost: CostModel,
        rng: np.random.Generator | None = None,
        preempt_prob: float = 0.0,
        monitor: "LaunchMonitor | None" = None,
    ) -> None:
        self.block = block
        self.warp_id = warp_id
        self.grid_dim = grid_dim
        self.block_dim = block_dim
        self.spec = spec
        self.cost = cost
        self.lanes = np.arange(spec.warp_size, dtype=np.int64)
        self._rng = rng
        self._preempt_prob = preempt_prob
        #: attached racecheck monitor, or ``None`` (sanitizing off)
        self._monitor = monitor
        # per-warp counters (folded into the block at kernel teardown)
        self.issued = 0.0
        self.path = 0.0

    # -- identity ----------------------------------------------------------

    @property
    def block_idx(self) -> int:
        """``blockIdx.x`` of this warp's block."""
        return self.block.block_idx

    @property
    def warps_per_block(self) -> int:
        """``BLK_DIM >> 5``."""
        return self.block.num_warps

    @property
    def global_warp_id(self) -> int:
        """Warp index across the whole grid."""
        return self.block_idx * self.warps_per_block + self.warp_id

    @property
    def num_threads(self) -> int:
        """NUM_THREADS = BLK_NUM * BLK_DIM of the launch."""
        return self.grid_dim * self.block_dim

    @property
    def warp_size(self) -> int:
        return self.spec.warp_size

    # -- cost accounting -----------------------------------------------------

    def charge(self, instructions: float) -> None:
        """Charge ``instructions`` warp-instructions of compute."""
        self.issued += instructions
        self.path += instructions

    def _count_transactions(self, idx: np.ndarray) -> int:
        segments = np.unique(idx // _WORDS_PER_TRANSACTION)
        return int(segments.size)

    def _note_global_access(self, idx_arr: np.ndarray) -> None:
        """Tally one global-memory warp access into the block's timing.

        ``mem_transactions`` feeds the cost model; the remaining fields
        are observability-only (profiler divergence / coalescing
        efficiency) and never influence simulated time.
        """
        timing = self.block.timing
        timing.mem_transactions += self._count_transactions(idx_arr)
        n = int(idx_arr.size)
        timing.mem_accesses += max(1, -(-n // self.spec.warp_size))
        timing.mem_active_lanes += n
        timing.mem_ideal_transactions += -(-n // _WORDS_PER_TRANSACTION)

    # -- global memory -------------------------------------------------------

    def gload(
        self, array: DeviceArray, idx: int | np.ndarray, dependent: bool = True
    ) -> np.ndarray | int:
        """Load ``array[idx]`` from global memory.

        ``dependent=True`` (the default) stalls the warp on the result —
        the common case of pointer-chasing loads (fetch a vertex, then
        its offsets, then its neighbors).  Independent loads only occupy
        memory bandwidth.
        """
        scalar = np.isscalar(idx)
        idx_arr = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        mon = self._monitor
        if mon is not None:
            mon.global_access(self, "read", array, idx_arr)
        self._note_global_access(idx_arr)
        self.charge(1)
        if dependent:
            self.path += self.cost.global_load_latency
        values = array.data[idx_arr]
        return int(values[0]) if scalar else values

    def gstore(
        self, array: DeviceArray, idx: int | np.ndarray, values: int | np.ndarray
    ) -> None:
        """Store ``values`` to ``array[idx]`` in global memory."""
        idx_arr = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        mon = self._monitor
        if mon is not None:
            mon.global_access(self, "write", array, idx_arr)
        self._note_global_access(idx_arr)
        self.charge(1)
        array.data[idx_arr] = values

    def atomic_global(
        self, array: DeviceArray, idx: int | np.ndarray, delta: int
    ) -> np.ndarray | int:
        """``atomicAdd`` on global memory; returns each lane's old value.

        Duplicate addresses within the warp serialise: each lane sees a
        distinct intermediate value, exactly like the hardware (the
        property Fig. 6's redundancy-avoidance argument relies on).
        """
        scalar = np.isscalar(idx)
        idx_arr = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        n = idx_arr.size
        if n == 0:
            return np.empty(0, dtype=np.int64)
        mon = self._monitor
        if mon is not None:
            mon.global_access(self, "atomic", array, idx_arr)
        self._note_global_access(idx_arr)
        order = np.argsort(idx_arr, kind="stable")
        sorted_idx = idx_arr[order]
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        boundaries[1:] = sorted_idx[1:] != sorted_idx[:-1]
        distinct = int(boundaries.sum())
        # exclusive rank of each lane within its address group
        group_id = np.cumsum(boundaries) - 1
        rank = np.arange(n) - np.flatnonzero(boundaries)[group_id]
        old_sorted = array.data[sorted_idx] + delta * rank
        old = np.empty(n, dtype=np.int64)
        old[order] = old_sorted
        np.add.at(array.data, idx_arr, delta)
        conflicts = n - distinct
        self.block.timing.atomic_conflicts += conflicts
        self.issued += 1
        atomic_cycles = (
            self.cost.global_atomic_base
            + self.cost.global_atomic_conflict * conflicts
        )
        self.path += atomic_cycles
        self.block.timing.atomic_cycles += atomic_cycles
        return int(old[0]) if scalar else old

    # -- shared memory ---------------------------------------------------------

    def smem_get(self, name: str, default: int | None = None) -> int:
        """Read a named shared-memory scalar."""
        mon = self._monitor
        if mon is not None:
            mon.shared_scalar_access(self, "read", name)
        self.path += self.cost.shared_access_cycles
        self.issued += 1
        if default is not None:
            return self.block.scalars.get(name, default)
        return self.block.scalars[name]

    def smem_set(self, name: str, value: int) -> None:
        """Write a named shared-memory scalar."""
        mon = self._monitor
        if mon is not None:
            mon.shared_scalar_access(self, "write", name)
        self.path += self.cost.shared_access_cycles
        self.issued += 1
        self.block.scalars[name] = int(value)

    def smem_atomic_add(self, name: str, amount: int, lanes: int = 1) -> int:
        """``atomicAdd`` on a shared scalar; returns the old value.

        ``lanes`` is how many lanes of the warp participate; a warp
        whose 32 lanes each ``atomicAdd(e, 1)`` calls this once with
        ``amount=32, lanes=32`` and the returned base is each lane's
        reservation start (lane ``j`` writes at ``old + j``) — identical
        observable behaviour to 32 serialised hardware atomics.
        """
        mon = self._monitor
        if mon is not None:
            mon.shared_scalar_access(self, "atomic", name)
        old = self.block.scalars.get(name, 0)
        self.block.scalars[name] = old + int(amount)
        self.block.timing.atomic_conflicts += max(0, lanes - 1)
        self.issued += 1
        atomic_cycles = (
            self.cost.shared_atomic_base
            + self.cost.shared_atomic_conflict * max(0, lanes - 1)
        )
        self.path += atomic_cycles
        self.block.timing.atomic_cycles += atomic_cycles
        return old

    def smem_array(self, name: str, size: int) -> np.ndarray:
        """Allocate (or fetch) a named shared-memory array."""
        return self.block.alloc_shared(name, size)

    def sload(self, array: np.ndarray, idx: int | np.ndarray) -> np.ndarray | int:
        """Load from a shared-memory array."""
        mon = self._monitor
        if mon is not None:
            mon.shared_array_access(self, "read", array, idx)
        self.path += self.cost.shared_access_cycles
        self.issued += 1
        values = array[idx]
        return int(values) if np.isscalar(idx) else values

    def sstore(
        self, array: np.ndarray, idx: int | np.ndarray, values: int | np.ndarray
    ) -> None:
        """Store to a shared-memory array."""
        mon = self._monitor
        if mon is not None:
            mon.shared_array_access(self, "write", array, idx)
        self.path += self.cost.shared_access_cycles
        self.issued += 1
        array[idx] = values

    # -- warp primitives -----------------------------------------------------

    def ballot(self, mask: np.ndarray) -> int:
        """``__ballot_sync``: pack the lanes' predicates into a bitmap."""
        mon = self._monitor
        if mon is not None:
            mon.on_ballot(self)
        self.charge(1)
        bits = 0
        for lane in np.flatnonzero(mask):
            bits |= 1 << int(lane)
        return bits

    def popc(self, bits: int) -> int:
        """``__popc``: population count."""
        self.charge(1)
        return bin(bits).count("1")

    def shfl_broadcast(self, value: int) -> int:
        """``__shfl_sync`` broadcast from one lane to the whole warp."""
        self.charge(1)
        return int(value)

    def sync_warp(self) -> None:
        """``__syncwarp``: a no-op barrier, the warp is already lockstep."""
        self.charge(1)

    # -- race fuzzing ----------------------------------------------------------

    def should_preempt(self) -> bool:
        """True when the fuzzing schedule wants a reschedule point here.

        Kernels call this between a plain read and the atomic that
        depends on it (``if ctx.should_preempt(): yield ctx.STEP``) so
        that property tests can exercise cross-warp interleavings of the
        degree-restore logic.
        """
        if self._rng is None or self._preempt_prob <= 0.0:
            return False
        return bool(self._rng.random() < self._preempt_prob)
