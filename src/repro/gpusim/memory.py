"""Simulated device global memory.

Allocation mirrors the ``cudaMalloc`` / ``cudaFree`` lifecycle of a CUDA
host program and enforces the device capacity — exceeding it raises
:class:`~repro.errors.DeviceOutOfMemoryError`, which the benchmark
harness reports as "OOM" exactly like Tables III and V.

A :class:`DeviceArray` is backed by a host numpy array (int64 for
indexing convenience) but accounted at the device width (4-byte IDs by
default), matching how the paper stores graphs compactly.

Free semantics are typed: freeing a name that is not live raises
:class:`~repro.errors.InvalidFreeError`, distinguishing a *double free*
(the name was live once and already released) from an *unknown* name
(never allocated).  A freed :class:`DeviceArray` keeps its data but is
flagged ``freed``, so a later read-back can be diagnosed as a
use-after-free by the memory tracker.

Observability
-------------
:class:`GlobalMemory` itself stays tracer-free; the owning
:class:`~repro.gpusim.device.Device` wraps :meth:`GlobalMemory.malloc`
/ :meth:`GlobalMemory.free` and emits ``malloc <name>`` / ``free
<name>`` instant events (with byte counts and the running ``in_use``
watermark) on the ``device`` track when tracing is enabled — see
``docs/OBSERVABILITY.md``.  ``peak`` feeds the
``device.peak_memory_bytes`` figure reported by every result.  The
device likewise forwards each transition to an attached
:class:`~repro.memtrace.tracker.MemoryTracker`
(``Device(memtrace=True)``), which records allocation lifetimes and
snapshots the attribution breakdown whenever ``peak`` moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

import numpy as np

from repro.errors import DeviceOutOfMemoryError, InvalidFreeError

__all__ = ["DeviceArray", "GlobalMemory"]


@dataclass
class DeviceArray:
    """A named allocation in simulated global memory.

    ``freed`` flips when the allocation is released; the stale host
    copy survives (as the bytes of a real freed buffer would) so a
    use-after-free is observable rather than a hard crash.
    """

    name: str
    data: np.ndarray
    device_bytes: int
    freed: bool = False

    def __len__(self) -> int:
        return int(self.data.size)


class GlobalMemory:
    """Tracks allocations against a fixed device capacity.

    Attributes:
        capacity: usable global memory in bytes.
        in_use: currently allocated bytes.
        peak: high-water mark of ``in_use`` over the memory's lifetime.
    """

    def __init__(self, capacity: int, base_usage: int = 0) -> None:
        self.capacity = int(capacity)
        self.in_use = int(base_usage)
        self.peak = int(base_usage)
        self._arrays: Dict[str, DeviceArray] = {}
        self._freed: Set[str] = set()
        if base_usage > capacity:
            raise DeviceOutOfMemoryError(base_usage, 0, capacity)

    def malloc(
        self,
        name: str,
        size: int | np.ndarray,
        fill: int = 0,
        id_bytes: int = 4,
    ) -> DeviceArray:
        """Allocate ``size`` vertex-ID slots (or copy an array in).

        Passing an array mirrors ``cudaMalloc`` + ``cudaMemcpyHostToDevice``
        in one step; the host copy keeps int64 for indexing, the device
        accounting uses ``id_bytes`` per element.
        """
        if name in self._arrays:
            raise ValueError(f"device array {name!r} already allocated")
        if isinstance(size, np.ndarray):
            data = size.astype(np.int64, copy=True)
        else:
            data = np.full(int(size), fill, dtype=np.int64)
        device_bytes = int(data.size) * id_bytes
        if self.in_use + device_bytes > self.capacity:
            raise DeviceOutOfMemoryError(device_bytes, self.in_use, self.capacity)
        self.in_use += device_bytes
        self.peak = max(self.peak, self.in_use)
        array = DeviceArray(name, data, device_bytes)
        self._arrays[name] = array
        # re-allocating a previously freed name starts a fresh lifetime
        self._freed.discard(name)
        return array

    def free(self, name: str) -> None:
        """Release an allocation (``cudaFree``).

        Raises:
            InvalidFreeError: when ``name`` is not live — ``kind`` is
                ``"double"`` if it was already freed, ``"unknown"`` if
                it was never allocated.
        """
        array = self._arrays.pop(name, None)
        if array is None:
            kind = "double" if name in self._freed else "unknown"
            raise InvalidFreeError(name, kind)
        array.freed = True
        self._freed.add(name)
        self.in_use -= array.device_bytes

    def get(self, name: str) -> DeviceArray:
        """Look up a live allocation by name."""
        return self._arrays[name]

    def live(self) -> Tuple[str, ...]:
        """Names of the currently live allocations, oldest first."""
        return tuple(self._arrays)

    def free_all(self) -> None:
        """Release every allocation (end-of-program cleanup)."""
        for name in list(self._arrays):
            self.free(name)

    @property
    def available(self) -> int:
        """Bytes still allocatable."""
        return self.capacity - self.in_use
