"""Execution engines: pluggable strategies for running a kernel launch.

The simulator has exactly one *semantic* definition of a launch — the
reference interpreter of :mod:`repro.gpusim.scheduler`, which drives
every warp generator through one shared FIFO queue.  An
:class:`ExecutionEngine` is a strategy for producing that launch's
outcome (the :class:`~repro.gpusim.scheduler.KernelStats`, plus every
device-memory side effect) — and every engine is required to produce
**byte-identical** results: the same simulated cycles, the same
counters, the same array contents, the same Table V peaks.  Engines
may only differ in host wall-clock time.  See ``docs/SIMULATOR.md``
for the architecture and the equivalence argument.

Three engines ship:

* ``reference`` — the warp-generator interpreter
  (:func:`~repro.gpusim.scheduler.run_kernel`).  Always available,
  always authoritative; the cross-engine property tests treat its
  output as ground truth.
* ``vectorized`` — batched launch-level executors that replay the
  reference FIFO at *block* granularity and execute whole warp batches
  as numpy array operations (:mod:`repro.gpusim.vectorized` holds the
  accounting toolkit; the kernel-specific executors register
  themselves via :func:`register_vectorized_kernel`).  Falls back to
  the reference interpreter — per launch, before touching any device
  state — whenever exactness cannot be guaranteed structurally; see
  :meth:`VectorizedEngine.run` for the trigger list.
* ``jit`` — the vectorized engine with numba-compiled inner helpers
  when numba is importable.  When numba is absent (it is an optional
  dependency), the engine *degrades gracefully* to plain vectorized
  execution: construction succeeds, results are identical, only the
  extra compilation speedup is missing.

Hook contract
-------------

Observability and verification hooks attach *identically* under every
engine, because they attach at the launch boundary, not inside an
engine:

* the **sanitizer**'s :class:`~repro.sanitize.racecheck.LaunchMonitor`
  needs the per-access shadow log only the reference interpreter
  produces, so a monitored launch is routed to the reference engine —
  results are byte-identical by the engine contract, so the sanitizer
  observes exactly the run it would have observed anyway;
* the **profiler** consumes per-block
  :class:`~repro.gpusim.costmodel.BlockTiming` records
  (``collect_timings=True``), which every engine emits;
* the **memtracker** receives shared-memory allocation callbacks from
  :meth:`~repro.gpusim.context.BlockState.alloc_shared`, which every
  engine routes through the same ``BlockState`` objects.

With all hooks absent, the cold path stays a single ``is not None``
test per hook — the same discipline as the tracer.
"""

from __future__ import annotations

import dataclasses
import importlib
import importlib.util
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Sequence, Tuple

from repro.gpusim.costmodel import CostModel
from repro.gpusim.scheduler import KernelFn, KernelStats, run_kernel
from repro.gpusim.spec import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memtrace.tracker import MemoryTracker
    from repro.sanitize.racecheck import LaunchMonitor

__all__ = [
    "DEFAULT_ENGINE",
    "ExecutionEngine",
    "FallbackToReference",
    "JitEngine",
    "ReferenceEngine",
    "VectorLaunch",
    "VectorizedEngine",
    "available_engines",
    "get_engine",
    "has_vectorized_impl",
    "register_vectorized_kernel",
    "vectorized_kernel_names",
]

#: the engine a :class:`~repro.gpusim.device.Device` uses when none is
#: chosen explicitly.  Vectorized is the default because its results
#: are byte-identical to the reference interpreter by contract (and
#: pinned by the perf/memory regression gates), while being an order
#: of magnitude faster on the Table II bench.
DEFAULT_ENGINE = "vectorized"


class FallbackToReference(Exception):
    """Raised by a vectorized executor to decline a launch.

    Must be raised **before any device state is mutated** — the engine
    responds by re-running the whole launch on the reference
    interpreter, which assumes a pristine starting state.
    """


@dataclass(frozen=True)
class VectorLaunch:
    """Everything a launch-level vectorized executor needs.

    ``args``/``kwargs`` are the kernel arguments exactly as the caller
    passed them to :meth:`~repro.gpusim.device.Device.launch`; the
    executor binds them against the kernel signature itself.
    ``use_jit`` asks the executor to prefer numba-compiled inner
    helpers when numba is importable (the ``jit`` engine tier); the
    flag never changes results, only host speed.
    """

    spec: DeviceSpec
    cost: CostModel
    grid_dim: int
    block_dim: int
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    collect_timings: bool = False
    memtracker: "MemoryTracker | None" = None
    use_jit: bool = False


#: a launch-level executor: consumes a :class:`VectorLaunch`, performs
#: the launch's device-memory side effects, and returns its stats —
#: or raises :class:`FallbackToReference` before touching anything
VectorizedImpl = Callable[[VectorLaunch], KernelStats]

_VECTORIZED_KERNELS: Dict[KernelFn, VectorizedImpl] = {}


def register_vectorized_kernel(
    kernel_fn: KernelFn, impl: VectorizedImpl
) -> None:
    """Register ``impl`` as the vectorized executor for ``kernel_fn``.

    Kernel modules call this at import time (see
    ``repro.core.fastsim``), so any process that can *launch* a kernel
    has already registered its fast path.  Unregistered kernels simply
    run on the reference interpreter.
    """
    _VECTORIZED_KERNELS[kernel_fn] = impl


def has_vectorized_impl(kernel_fn: KernelFn) -> bool:
    """True when a vectorized executor is registered for ``kernel_fn``.

    The static engine-precondition analysis mirrors this table through
    each kernel's contract (``engine_module=None`` declares "no fast
    path, always reference") — this is the dynamic side of that
    prediction, used by tests and the admission gate to check the two
    agree.
    """
    return kernel_fn in _VECTORIZED_KERNELS


def vectorized_kernel_names() -> Tuple[str, ...]:
    """Sorted names of the kernels with a registered fast path."""
    return tuple(sorted(fn.__name__ for fn in _VECTORIZED_KERNELS))


class ExecutionEngine:
    """Strategy interface for executing one kernel launch.

    Subclasses implement :meth:`run` with the exact signature of
    :func:`~repro.gpusim.scheduler.run_kernel` and must honour the
    byte-identity contract of the module docstring.  ``name`` is the
    stable identifier recorded in ``DecompositionResult.counters``
    (``engine.<name>``), ``result.stats["engine"]`` and the kernel
    span arguments.
    """

    name = "abstract"

    def run(
        self,
        kernel_fn: KernelFn,
        spec: DeviceSpec,
        cost: CostModel,
        grid_dim: int,
        block_dim: int,
        args: Sequence[Any] = (),
        kwargs: "dict[str, Any] | None" = None,
        preempt_prob: float = 0.0,
        seed: int = 0,
        monitor: "LaunchMonitor | None" = None,
        collect_timings: bool = False,
        memtracker: "MemoryTracker | None" = None,
    ) -> KernelStats:
        """Execute one launch; see :func:`~repro.gpusim.scheduler.run_kernel`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceEngine(ExecutionEngine):
    """The warp-generator interpreter — always available, authoritative."""

    name = "reference"

    def run(
        self,
        kernel_fn: KernelFn,
        spec: DeviceSpec,
        cost: CostModel,
        grid_dim: int,
        block_dim: int,
        args: Sequence[Any] = (),
        kwargs: "dict[str, Any] | None" = None,
        preempt_prob: float = 0.0,
        seed: int = 0,
        monitor: "LaunchMonitor | None" = None,
        collect_timings: bool = False,
        memtracker: "MemoryTracker | None" = None,
    ) -> KernelStats:
        return run_kernel(
            kernel_fn, spec, cost, grid_dim, block_dim,
            args=args, kwargs=kwargs, preempt_prob=preempt_prob, seed=seed,
            monitor=monitor, collect_timings=collect_timings,
            memtracker=memtracker,
        )


class VectorizedEngine(ReferenceEngine):
    """Launch-level numpy executors with reference fallback.

    A launch is routed to the reference interpreter (inherited
    :meth:`ReferenceEngine.run`) whenever any of the following holds,
    so that exactness is structural rather than hopeful:

    * a sanitizer :class:`~repro.sanitize.racecheck.LaunchMonitor` is
      attached (it needs the per-access shadow log);
    * ``preempt_prob > 0`` (the race-fuzzing schedule must interleave
      at the reference interpreter's yield points);
    * the kernel has no registered vectorized executor;
    * the registered executor declines the launch by raising
      :class:`FallbackToReference` before mutating device state
      (ring-buffer and virtual-warp variants, predicted buffer
      overflow, unexpected launch geometry).

    Every other launch is executed by the registered batched executor,
    whose output the cross-engine property suite and the perf/memory
    regression gates pin against the reference interpreter.
    """

    name = "vectorized"
    _use_jit = False

    def run(
        self,
        kernel_fn: KernelFn,
        spec: DeviceSpec,
        cost: CostModel,
        grid_dim: int,
        block_dim: int,
        args: Sequence[Any] = (),
        kwargs: "dict[str, Any] | None" = None,
        preempt_prob: float = 0.0,
        seed: int = 0,
        monitor: "LaunchMonitor | None" = None,
        collect_timings: bool = False,
        memtracker: "MemoryTracker | None" = None,
    ) -> KernelStats:
        impl = _VECTORIZED_KERNELS.get(kernel_fn)
        if impl is None or monitor is not None or preempt_prob > 0.0:
            return super().run(
                kernel_fn, spec, cost, grid_dim, block_dim,
                args=args, kwargs=kwargs, preempt_prob=preempt_prob,
                seed=seed, monitor=monitor,
                collect_timings=collect_timings, memtracker=memtracker,
            )
        if block_dim % spec.warp_size:
            raise ValueError("block_dim must be a multiple of the warp size")
        launch = VectorLaunch(
            spec=spec, cost=cost, grid_dim=grid_dim, block_dim=block_dim,
            args=tuple(args), kwargs=dict(kwargs or {}),
            collect_timings=collect_timings, memtracker=memtracker,
            use_jit=self._use_jit,
        )
        try:
            stats = impl(launch)
            # per-launch serving attribution (metric-only): fallback
            # paths inherit the interpreter's "reference" stamp
            return dataclasses.replace(stats, served_by=self.name)
        except FallbackToReference:
            return super().run(
                kernel_fn, spec, cost, grid_dim, block_dim,
                args=args, kwargs=kwargs, preempt_prob=preempt_prob,
                seed=seed, monitor=monitor,
                collect_timings=collect_timings, memtracker=memtracker,
            )


class JitEngine(VectorizedEngine):
    """The vectorized engine with optional numba-compiled helpers.

    numba is an *optional* dependency: when it is not importable,
    construction still succeeds and the engine behaves exactly like
    ``vectorized`` (``jit_active`` is False).  Results are identical
    either way — the JIT tier only changes host wall-clock time.
    """

    name = "jit"
    _use_jit = True

    def __init__(self) -> None:
        self.jit_active = importlib.util.find_spec("numba") is not None


_ENGINES: Dict[str, Callable[[], ExecutionEngine]] = {
    "reference": ReferenceEngine,
    "vectorized": VectorizedEngine,
    "jit": JitEngine,
}

_CACHE: Dict[str, ExecutionEngine] = {}


def available_engines() -> Tuple[str, ...]:
    """The selectable engine names, reference first."""
    return tuple(_ENGINES)


def get_engine(engine: "str | ExecutionEngine | None" = None) -> ExecutionEngine:
    """Resolve an engine selection to an :class:`ExecutionEngine`.

    Accepts a name from :func:`available_engines`, an already-built
    engine (returned as-is, so callers can share or subclass one), or
    ``None`` for :data:`DEFAULT_ENGINE`.  Named engines are cached —
    they are stateless strategies, so one instance serves every device.

    Raises:
        ValueError: for an unknown engine name.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, ExecutionEngine):
        return engine
    factory = _ENGINES.get(engine)
    if factory is None:
        raise ValueError(
            f"unknown execution engine {engine!r}; "
            f"available: {', '.join(_ENGINES)}"
        )
    if engine not in _CACHE:
        _CACHE[engine] = factory()
    return _CACHE[engine]
