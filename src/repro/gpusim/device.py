"""The device facade: memory + launches + accumulated metrics.

A :class:`Device` plays the role of the GPU in the paper's host
programs: the host ``malloc``s input arrays, launches a series of
kernels, reads scalars back, and finally frees everything.  The device
accumulates simulated time (kernel cycles plus per-launch host
overhead) and tracks peak global-memory usage for Table V.

An optional ``time_budget_ms`` reproduces the paper's one-hour
force-termination: when accumulated simulated time crosses the budget,
the next launch raises
:class:`~repro.errors.SimulatedTimeLimitExceeded`.

Observability
-------------

The device is the central trace producer of the GPU stack (see
:mod:`repro.obs` and ``docs/OBSERVABILITY.md``).  At construction it
captures either an explicitly passed tracer or the process-wide one
installed by :func:`repro.obs.start_tracing`; when that attribute is
``None`` (the default) every hook below is a single ``is not None``
test — no event objects are allocated on the cold path.

With a tracer attached, the device emits, on the *simulated* timeline:

* one span per :meth:`launch` on the device's own track (``name=``,
  default ``"device"``; multi-GPU workers are ``gpu0``, ``gpu1``, ...),
  named after the kernel function, carrying the emitting device id and
  the launch's :class:`~repro.gpusim.scheduler.KernelStats` (cycles,
  issued warp-instructions, memory transactions, barriers, atomic
  conflicts, buffer high-water mark) as span arguments;
* one span per labelled :meth:`charge` — how the graph-parallel system
  emulations surface their logical kernels (supersteps, advance/filter
  iterations, vector passes);
* instant markers for :meth:`malloc` / :meth:`free` with the
  allocation size and the post-operation ``in_use`` figure;

and accumulates the flat device counters ``device.kernel_launches``,
``device.cycles``, ``device.mem_transactions``, ``device.barriers``
and ``device.atomic_conflicts``.

Sanitizing
----------

``Device(sanitize=True)`` attaches a
:class:`~repro.sanitize.racecheck.KernelSanitizer`; every
:meth:`launch` then runs under a fresh
:class:`~repro.sanitize.racecheck.LaunchMonitor` whose shadow access
logs feed the race/barrier/ballot detectors (see
``docs/SANITIZER.md``).  Recording charges no cycles, so a sanitized
run's simulated time is identical to an unsanitized one.  A shared
:class:`KernelSanitizer` instance may instead be passed via
``sanitizer=`` so several devices (multi-GPU peeling) fold their
findings into one report, available as ``device.sanitizer.report``.

Profiling
---------

``Device(profile=True)`` attaches a
:class:`~repro.profile.profiler.KernelProfiler`; every :meth:`launch`
then runs with ``collect_timings=True`` (the per-block
:class:`~repro.gpusim.costmodel.BlockTiming` records ride along on the
returned stats) and is folded into a speed-of-light
:class:`~repro.profile.profiler.LaunchProfile` — see
:mod:`repro.profile` and the "Profiling" section of
``docs/OBSERVABILITY.md``.  Like the tracer and sanitizer, the
profiler is observability-only: simulated time is byte-identical with
it on or off.  A shared :class:`KernelProfiler` may instead be passed
via ``profiler=`` (the explicit instance wins over the bool) so a host
program can annotate rounds and pull the final report.

With a profiler attached, labelled :meth:`charge` calls are also
recorded — as coarse ``source="charge"`` records with no per-block
attribution (the system emulations book logical-kernel time without
SIMT launches), so a profiled Gunrock/GSwitch/Medusa/VETGA run is no
longer invisible to ``--ncu``.

Memory tracing
--------------

``Device(memtrace=True)`` attaches a
:class:`~repro.memtrace.tracker.MemoryTracker`; every
:meth:`malloc` / :meth:`free` then records the allocation's lifetime
on the simulated timeline, invalid frees and read-backs of freed
arrays become ``double-free`` / ``use-after-free`` findings, kernel
launches scope in-flight shared-memory allocations, and the tracker
snapshots the exact attribution breakdown whenever ``GlobalMemory``
sets a new peak — see :mod:`repro.memtrace` and the "Memory telemetry"
section of ``docs/OBSERVABILITY.md``.  When both a tracer and a memory
tracker are attached, each transition additionally emits a
``memory.in_use`` counter-track sample, so the Chrome-trace export
gains a memory timeline.  A pre-built tracker may instead be passed
via ``memtracer=`` (multi-GPU peeling names one per worker).  Like
every other hook, tracking is observability-only: simulated time,
counters, and the peak itself are byte-identical with it on or off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import InvalidFreeError, SimulatedTimeLimitExceeded
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine, get_engine
from repro.gpusim.memory import DeviceArray, GlobalMemory
from repro.gpusim.scheduler import KernelFn, KernelStats
from repro.gpusim.spec import DeviceSpec
from repro.obs.tracer import active_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memtrace.tracker import MemoryTracker
    from repro.obs.tracer import Tracer
    from repro.profile.profiler import KernelProfiler
    from repro.sanitize.racecheck import KernelSanitizer

__all__ = ["Device"]


class Device:
    """A simulated GPU with memory, a cost model, and a launch queue."""

    def __init__(
        self,
        spec: DeviceSpec | None = None,
        cost_model: CostModel | None = None,
        time_budget_ms: float | None = None,
        preempt_prob: float = 0.0,
        seed: int = 0,
        tracer: "Tracer | None" = None,
        sanitize: bool = False,
        sanitizer: "KernelSanitizer | None" = None,
        profile: bool = False,
        profiler: "KernelProfiler | None" = None,
        memtrace: bool = False,
        memtracer: "MemoryTracker | None" = None,
        engine: "str | ExecutionEngine | None" = None,
        name: str = "device",
    ) -> None:
        #: the device's trace-track name.  Single-device hosts keep the
        #: default ``"device"``; multi-GPU peeling names one worker per
        #: device (``gpu0``, ``gpu1``, ...) so every span the worker
        #: emits is self-describing — consumers (Perfetto, the critical
        #: path DAG builder) separate workers by track, never by parsing
        #: span names.
        self.name = name
        self.spec = spec or DeviceSpec()
        self.spec.validate()
        self.cost_model = cost_model or CostModel()
        #: the execution engine every :meth:`launch` runs through —
        #: a name from :func:`repro.gpusim.engine.available_engines`,
        #: an :class:`~repro.gpusim.engine.ExecutionEngine` instance, or
        #: ``None`` for the default.  Engines are required to produce
        #: byte-identical results (see ``docs/SIMULATOR.md``), so the
        #: choice only changes host wall-clock time.
        self.engine = get_engine(engine)
        self.memory = GlobalMemory(
            self.spec.global_memory_bytes,
            base_usage=self.spec.context_overhead_bytes,
        )
        self.time_budget_ms = time_budget_ms
        self.preempt_prob = preempt_prob
        self._seed = seed
        self.kernel_launches = 0
        self.total_cycles = 0.0
        self.launch_log: list[KernelStats] = []
        #: the attached tracer, or ``None`` (tracing off); an explicit
        #: argument wins over the process-wide active tracer
        self.tracer = tracer if tracer is not None else active_tracer()
        #: the attached kernel sanitizer, or ``None`` (sanitizing off);
        #: an explicit instance wins over the ``sanitize`` switch so
        #: multiple devices can share one report
        if sanitizer is None and sanitize:
            from repro.sanitize.racecheck import KernelSanitizer

            sanitizer = KernelSanitizer()
        self.sanitizer = sanitizer
        #: the attached kernel profiler, or ``None`` (profiling off);
        #: an explicit instance wins over the ``profile`` switch so the
        #: host can annotate rounds and collect the report
        if profiler is None and profile:
            from repro.profile.profiler import KernelProfiler

            profiler = KernelProfiler()
        self.profiler = profiler
        #: the attached memory tracker, or ``None`` (memtrace off); an
        #: explicit instance wins over the ``memtrace`` switch so
        #: multi-GPU peeling can name one tracker per worker
        if memtracer is None and memtrace:
            from repro.memtrace.tracker import MemoryTracker

            memtracer = MemoryTracker()
        if memtracer is not None:
            memtracer.attach(self.spec.context_overhead_bytes)
        self.memtracer = memtracer

    # -- memory -------------------------------------------------------------

    def malloc(
        self, name: str, size: int | np.ndarray, fill: int = 0
    ) -> DeviceArray:
        """``cudaMalloc`` (optionally with a host-to-device copy)."""
        array = self.memory.malloc(
            name, size, fill=fill, id_bytes=self.spec.id_bytes
        )
        mt = self.memtracer
        if mt is not None:
            mt.on_malloc(name, array.device_bytes, self.elapsed_ms)
        tr = self.tracer
        if tr is not None:
            tr.instant(
                f"malloc {name}", self.elapsed_ms, cat="memory",
                track=self.name,
                args={"bytes": array.device_bytes,
                      "in_use": self.memory.in_use},
            )
            if mt is not None:
                tr.sample(
                    "memory.in_use", self.elapsed_ms, self.memory.in_use
                )
        return array

    def free(self, name: str) -> None:
        """``cudaFree``.

        Raises:
            InvalidFreeError: unknown name or double free; with a
                memory tracker attached the hazard is also recorded as
                a ``double-free`` finding before the raise.
        """
        mt = self.memtracer
        try:
            self.memory.free(name)
        except InvalidFreeError as exc:
            if mt is not None:
                mt.on_invalid_free(name, self.elapsed_ms, exc.kind)
            raise
        if mt is not None:
            mt.on_free(name, self.elapsed_ms)
        tr = self.tracer
        if tr is not None:
            tr.instant(
                f"free {name}", self.elapsed_ms, cat="memory",
                track=self.name, args={"in_use": self.memory.in_use},
            )
            if mt is not None:
                tr.sample(
                    "memory.in_use", self.elapsed_ms, self.memory.in_use
                )

    def free_all(self) -> None:
        """``cudaFree`` every live allocation (end-of-program cleanup).

        Goes through :meth:`free` so the tracer and memory tracker see
        each release individually.
        """
        for name in self.memory.live():
            self.free(name)

    def read_back(self, array: DeviceArray) -> np.ndarray:
        """``cudaMemcpyDeviceToHost``: a defensive copy of the data.

        Reading back a freed array still returns the stale bytes (as
        the real UB would) but is diagnosed as a ``use-after-free``
        finding when a memory tracker is attached.
        """
        mt = self.memtracer
        if mt is not None and array.freed:
            mt.on_use_after_free(array.name, self.elapsed_ms)
        return array.data.copy()

    # -- launches -----------------------------------------------------------

    def launch(
        self,
        kernel_fn: KernelFn,
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        grid_dim: int | None = None,
        block_dim: int | None = None,
    ) -> KernelStats:
        """Launch ``kernel_fn<<<grid_dim, block_dim>>>(*args)``.

        Accumulates the kernel's cycles and the host-side launch
        overhead into the device clock, then enforces the time budget.
        """
        tr = self.tracer
        launch_ts = self.elapsed_ms if tr is not None else 0.0
        grid = grid_dim if grid_dim is not None else self.spec.default_grid_dim
        block = (
            block_dim if block_dim is not None else self.spec.default_block_dim
        )
        san = self.sanitizer
        monitor = (
            san.begin_launch(getattr(kernel_fn, "__name__", "kernel"))
            if san is not None
            else None
        )
        prof = self.profiler
        mt = self.memtracer
        if mt is not None:
            mt.set_scope(getattr(kernel_fn, "__name__", "kernel"))
        stats = self.engine.run(
            kernel_fn,
            self.spec,
            self.cost_model,
            grid,
            block,
            args=args,
            kwargs=kwargs,
            preempt_prob=self.preempt_prob,
            seed=self._seed + self.kernel_launches,
            monitor=monitor,
            collect_timings=prof is not None,
            memtracker=mt,
        )
        if mt is not None:
            mt.set_scope(None)
        if san is not None:
            san.end_launch(monitor)
        if prof is not None:
            prof.record_launch(
                getattr(kernel_fn, "__name__", "kernel"), stats,
                grid, block, self.spec, self.cost_model,
            )
        self.kernel_launches += 1
        self.total_cycles += stats.cycles
        self.launch_log.append(stats)
        if tr is not None:
            tr.span(
                getattr(kernel_fn, "__name__", "kernel"),
                launch_ts,
                self.elapsed_ms - launch_ts,
                cat="kernel",
                track=self.name,
                args={
                    "device": self.name,
                    "grid_dim": grid, "block_dim": block,
                    "engine": self.engine.name,
                    "cycles": stats.cycles, "issued": stats.issued,
                    "mem_transactions": stats.mem_transactions,
                    "barriers": stats.barriers,
                    "atomic_conflicts": stats.atomic_conflicts,
                    "buffer_peak": stats.buffer_peak,
                },
            )
            tr.add("device.kernel_launches", 1)
            tr.add("device.cycles", stats.cycles)
            tr.add("device.mem_transactions", stats.mem_transactions)
            tr.add("device.barriers", stats.barriers)
            tr.add("device.atomic_conflicts", stats.atomic_conflicts)
        self._check_budget()
        return stats

    def charge(
        self,
        cycles: float = 0.0,
        launches: int = 0,
        label: str | None = None,
        args: dict | None = None,
    ) -> None:
        """Account for device work executed outside the SIMT scheduler.

        The graph-parallel system emulations compute their work (edges
        touched, vertices filtered, supersteps) at the logical level and
        convert it to cycles with their own tuning constants; this books
        that time against the device clock so the same time budget and
        metrics apply to every GPU program.

        ``label`` names the logical kernel for the tracer: when tracing
        is on, a labelled charge becomes a ``"device"``-track span
        covering the charged interval, with ``args`` attached.  With a
        profiler attached, a labelled charge is additionally recorded
        as a coarse ``source="charge"`` profile entry — cycles only, no
        per-block attribution.
        """
        tr = self.tracer
        charge_ts = self.elapsed_ms if tr is not None else 0.0
        self.total_cycles += cycles
        self.kernel_launches += launches
        prof = self.profiler
        if prof is not None and label is not None:
            prof.record_charge(
                label, cycles, launches=launches, args=args,
                spec=self.spec, cost=self.cost_model,
            )
        if tr is not None:
            if label is not None:
                tr.span(
                    label, charge_ts, self.elapsed_ms - charge_ts,
                    cat="system", track=self.name, args=args,
                )
            tr.add("device.kernel_launches", launches)
            tr.add("device.cycles", cycles)
        self._check_budget()

    # -- metrics --------------------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        """Total simulated milliseconds: kernel time + launch overhead."""
        kernel_ms = self.cost_model.cycles_to_ms(self.total_cycles)
        host_ms = self.kernel_launches * self.cost_model.kernel_launch_us / 1000.0
        return kernel_ms + host_ms

    @property
    def peak_memory_bytes(self) -> int:
        """High-water mark of device global memory."""
        return self.memory.peak

    def counters(self) -> dict[str, float]:
        """Flat device-level metrics over every launch so far.

        Computed on demand from the launch log (so it is available with
        tracing off too); keys match the tracer's ``device.*`` counters,
        plus the per-launch serving attribution ``engine.served.<tier>``
        (how many launches each engine tier actually executed — a
        vectorized engine's structural fallbacks show up under
        ``engine.served.reference``).
        """
        log = self.launch_log
        counters = {
            "device.kernel_launches": float(self.kernel_launches),
            "device.cycles": float(self.total_cycles),
            "device.mem_transactions": float(
                sum(s.mem_transactions for s in log)
            ),
            "device.barriers": float(sum(s.barriers for s in log)),
            "device.atomic_conflicts": float(
                sum(s.atomic_conflicts for s in log)
            ),
        }
        for stats in log:
            key = f"engine.served.{stats.served_by}"
            counters[key] = counters.get(key, 0.0) + 1.0
        return counters

    def _check_budget(self) -> None:
        if self.time_budget_ms is not None and self.elapsed_ms > self.time_budget_ms:
            raise SimulatedTimeLimitExceeded(self.elapsed_ms, self.time_budget_ms)
