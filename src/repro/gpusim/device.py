"""The device facade: memory + launches + accumulated metrics.

A :class:`Device` plays the role of the GPU in the paper's host
programs: the host ``malloc``s input arrays, launches a series of
kernels, reads scalars back, and finally frees everything.  The device
accumulates simulated time (kernel cycles plus per-launch host
overhead) and tracks peak global-memory usage for Table V.

An optional ``time_budget_ms`` reproduces the paper's one-hour
force-termination: when accumulated simulated time crosses the budget,
the next launch raises
:class:`~repro.errors.SimulatedTimeLimitExceeded`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import SimulatedTimeLimitExceeded
from repro.gpusim.costmodel import CostModel
from repro.gpusim.memory import DeviceArray, GlobalMemory
from repro.gpusim.scheduler import KernelFn, KernelStats, run_kernel
from repro.gpusim.spec import DeviceSpec

__all__ = ["Device"]


class Device:
    """A simulated GPU with memory, a cost model, and a launch queue."""

    def __init__(
        self,
        spec: DeviceSpec | None = None,
        cost_model: CostModel | None = None,
        time_budget_ms: float | None = None,
        preempt_prob: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.spec = spec or DeviceSpec()
        self.spec.validate()
        self.cost_model = cost_model or CostModel()
        self.memory = GlobalMemory(
            self.spec.global_memory_bytes,
            base_usage=self.spec.context_overhead_bytes,
        )
        self.time_budget_ms = time_budget_ms
        self.preempt_prob = preempt_prob
        self._seed = seed
        self.kernel_launches = 0
        self.total_cycles = 0.0
        self.launch_log: list[KernelStats] = []

    # -- memory -------------------------------------------------------------

    def malloc(
        self, name: str, size: int | np.ndarray, fill: int = 0
    ) -> DeviceArray:
        """``cudaMalloc`` (optionally with a host-to-device copy)."""
        return self.memory.malloc(name, size, fill=fill, id_bytes=self.spec.id_bytes)

    def free(self, name: str) -> None:
        """``cudaFree``."""
        self.memory.free(name)

    def read_back(self, array: DeviceArray) -> np.ndarray:
        """``cudaMemcpyDeviceToHost``: a defensive copy of the data."""
        return array.data.copy()

    # -- launches -----------------------------------------------------------

    def launch(
        self,
        kernel_fn: KernelFn,
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        grid_dim: int | None = None,
        block_dim: int | None = None,
    ) -> KernelStats:
        """Launch ``kernel_fn<<<grid_dim, block_dim>>>(*args)``.

        Accumulates the kernel's cycles and the host-side launch
        overhead into the device clock, then enforces the time budget.
        """
        stats = run_kernel(
            kernel_fn,
            self.spec,
            self.cost_model,
            grid_dim if grid_dim is not None else self.spec.default_grid_dim,
            block_dim if block_dim is not None else self.spec.default_block_dim,
            args=args,
            kwargs=kwargs,
            preempt_prob=self.preempt_prob,
            seed=self._seed + self.kernel_launches,
        )
        self.kernel_launches += 1
        self.total_cycles += stats.cycles
        self.launch_log.append(stats)
        self._check_budget()
        return stats

    def charge(self, cycles: float = 0.0, launches: int = 0) -> None:
        """Account for device work executed outside the SIMT scheduler.

        The graph-parallel system emulations compute their work (edges
        touched, vertices filtered, supersteps) at the logical level and
        convert it to cycles with their own tuning constants; this books
        that time against the device clock so the same time budget and
        metrics apply to every GPU program.
        """
        self.total_cycles += cycles
        self.kernel_launches += launches
        self._check_budget()

    # -- metrics --------------------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        """Total simulated milliseconds: kernel time + launch overhead."""
        kernel_ms = self.cost_model.cycles_to_ms(self.total_cycles)
        host_ms = self.kernel_launches * self.cost_model.kernel_launch_us / 1000.0
        return kernel_ms + host_ms

    @property
    def peak_memory_bytes(self) -> int:
        """High-water mark of device global memory."""
        return self.memory.peak

    def _check_budget(self) -> None:
        if self.time_budget_ms is not None and self.elapsed_ms > self.time_budget_ms:
            raise SimulatedTimeLimitExceeded(self.elapsed_ms, self.time_budget_ms)
