"""Cycle-level cost model for the simulated GPU.

The model is deliberately small: a handful of constants that map the
events the simulator counts (instructions issued, memory transactions,
dependent-load stalls, atomic conflicts, barriers) to cycles, plus a
roofline-style combiner for block and kernel time.  These are exactly
the quantities the paper's ablation discussion reasons about:

* shared-memory atomics are nearly free even under contention because
  the hardware aggregates them ("highly optimized by NVIDIA with native
  hardware support") — this is why the compaction variants (BC/EC) lose;
* extra instructions are *not* free — compaction's offset computations
  and the SM variant's position-translation branches show up directly;
* memory latency only dominates when there is little computation to
  hide it — the ``trackers`` case where prefetching (VP) wins.

Block time is the maximum of three pipeline occupancies (issue
throughput, memory throughput, and the slowest single warp's serial
path) plus barrier overhead; kernel time is the busiest SM.

Two numeric disciplines keep the model exact across execution engines
(``docs/SIMULATOR.md``):

* every *per-event* charge a kernel accumulates (instruction counts,
  load stalls, atomic serialisation) is an integer or quarter-integer,
  so warp/block totals are exact, order-independent ``float64`` sums —
  any engine may fold the same charges in any grouping;
* non-dyadic constants (``mem_transaction_cycles = 0.3``) are only
  ever applied *once*, to a block's folded totals inside
  :meth:`CostModel.block_cycles` — never accumulated per event — so
  they cannot introduce order-dependent rounding either.

When adding constants, keep per-event charges on the quarter-integer
grid and leave scaling factors to the final combination step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["CostModel", "BlockTiming"]


@dataclass(frozen=True)
class CostModel:
    """Constants mapping simulator events to cycles and cycles to time.

    Defaults are calibrated (see EXPERIMENTS.md) so that the ablation
    of Table II reproduces the paper's shape.
    """

    #: warp-instructions the SM can issue per cycle across its warps
    issue_width: float = 4.0
    #: cycles of memory-pipeline occupancy per 128-byte global
    #: transaction (throughput term, latency is separate).  Scattered
    #: degree-array accesses on the real device are largely absorbed by
    #: the L2 cache, which the simulator does not model; the small
    #: per-transaction cost stands in for that hit rate.
    mem_transaction_cycles: float = 0.3
    #: stall cycles a warp pays for a *dependent* global load (one it
    #: must wait for before its next instruction).  This is an
    #: *effective* latency: raw DRAM latency divided by the warps an SM
    #: typically overlaps, so well-balanced compute-rich blocks end up
    #: issue-bound while skewed, low-degree workloads stay latency-bound
    #: (the ``trackers`` regime of Table II).
    global_load_latency: float = 14.0
    #: cycles per shared-memory access
    shared_access_cycles: float = 1.0
    #: base cycles of a shared-memory atomic (hardware accelerated)
    shared_atomic_base: float = 2.0
    #: extra cycles per additional lane hitting the same shared address
    #: in one warp-instruction (hardware aggregation keeps this tiny)
    shared_atomic_conflict: float = 0.25
    #: base cycles of a global-memory atomic
    global_atomic_base: float = 6.0
    #: extra cycles per additional lane hitting the same global address
    global_atomic_conflict: float = 2.0
    #: cycles a block barrier (__syncthreads) costs each participant
    barrier_cycles: float = 8.0
    #: host-side overhead per kernel launch, microseconds.  Real CUDA
    #: launches cost a few microseconds; this is scaled down by the
    #: same factor as the datasets so that per-round kernel work keeps
    #: its paper-scale ratio to launch overhead.
    kernel_launch_us: float = 0.02
    #: device clock in GHz (cycles -> microseconds)
    clock_ghz: float = 1.0

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert device cycles to simulated milliseconds."""
        return cycles / (self.clock_ghz * 1e6)

    def block_cycles(self, timing: "BlockTiming") -> float:
        """Roofline combination of one block's pipeline occupancies."""
        compute, memory, path = self.pipeline_terms(timing)
        return max(compute, memory, path) + timing.barriers * self.barrier_cycles

    def pipeline_terms(
        self, timing: "BlockTiming"
    ) -> "tuple[float, float, float]":
        """The three roofline occupancies of one block, in cycles.

        Returns ``(compute, memory, latency)`` — the very terms
        :meth:`block_cycles` max-combines.  The profiler
        (:mod:`repro.profile`) reads these to attribute each launch to
        the pipeline that bounded it, so keep any change here and in
        :meth:`block_cycles` in lockstep.
        """
        compute = timing.issued / self.issue_width
        memory = timing.mem_transactions * self.mem_transaction_cycles
        return compute, memory, timing.max_warp_path

    def kernel_cycles(
        self, block_timings: Sequence["BlockTiming"], num_sms: int
    ) -> float:
        """Kernel duration: blocks are assigned to SMs round-robin and
        the kernel ends when the busiest SM drains."""
        if not block_timings:
            return 0.0
        sm_load = [0.0] * max(1, num_sms)
        for i, timing in enumerate(block_timings):
            sm_load[i % len(sm_load)] += self.block_cycles(timing)
        return max(sm_load)


@dataclass
class BlockTiming:
    """Raw per-block event totals the cost model combines.

    The first four fields feed :meth:`CostModel.block_cycles`; the last
    two are *observability-only* tallies (they never influence time —
    their cost is already inside ``max_warp_path``/``issued``) that the
    scheduler aggregates into
    :class:`~repro.gpusim.scheduler.KernelStats` for the tracer.

    Every execution engine emits these records — the reference
    interpreter by accumulating them turn by turn, the vectorized
    engine by bulk folds that reproduce the same totals bit for bit —
    so the profiler's per-block attribution is engine-invariant.
    """

    #: total warp-instructions issued by all warps of the block
    issued: float = 0.0
    #: total 128-byte global-memory transactions
    mem_transactions: float = 0.0
    #: serial-path cycles of the slowest warp (instructions + stalls +
    #: atomic serialisation of that one warp)
    max_warp_path: float = 0.0
    #: number of block-barrier generations the block executed
    barriers: int = 0
    #: atomic lane-conflicts: lanes beyond the first hitting the same
    #: address in one warp atomic, global + shared combined (metric only)
    atomic_conflicts: float = 0.0
    #: high-water mark of the block's vertex-buffer fill, in logical
    #: buffer positions (metric only; tracked by ``BlockBufferView``)
    buffer_peak: float = 0.0
    #: serialisation cycles all warps of the block spent inside atomics
    #: (base + conflict cycles; already part of each warp's path —
    #: metric only, never added to time again)
    atomic_cycles: float = 0.0
    #: global-memory warp-instructions (loads + stores + atomics) the
    #: block issued (metric only; feeds divergence efficiency)
    mem_accesses: float = 0.0
    #: lanes that actively participated in those accesses, summed
    #: (metric only; ``mem_active_lanes / (mem_accesses * 32)`` is the
    #: profiler's divergence efficiency)
    mem_active_lanes: float = 0.0
    #: the transactions a perfectly coalesced layout would have needed
    #: for the same accesses (metric only;
    #: ``mem_ideal_transactions / mem_transactions`` is the profiler's
    #: coalescing efficiency)
    mem_ideal_transactions: float = 0.0
