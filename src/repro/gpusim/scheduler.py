"""Cooperative scheduler: runs a kernel grid of warp generators.

Execution model (blocks ▸ warps ▸ lanes): a launch instantiates the
kernel generator once per warp — ``grid_dim`` blocks of
``block_dim / 32`` warps, each warp advancing its 32 lanes in numpy
lockstep.  All warps of all blocks share one round-robin run queue, so
work from different blocks interleaves — cross-block races on global
memory (the scenario of the paper's Fig. 6) actually occur.
``__syncthreads`` (yielding :data:`~repro.gpusim.context.BARRIER`)
parks a warp until every still-running warp of its block arrives,
matching CUDA semantics where exited threads no longer participate; a
block whose warps can never all arrive raises
:class:`~repro.errors.KernelDeadlockError`.

Cost-model units: each warp accumulates *warp-instructions* (``issued``)
and *serial-path cycles* (``path``: instructions + dependent-load
stalls + atomic serialisation); blocks additionally count 128-byte
memory transactions and barrier generations.  At teardown these fold
into one :class:`~repro.gpusim.costmodel.BlockTiming` per block, the
roofline cost model combines them into kernel cycles, and the whole
launch is summarised as a :class:`KernelStats` — the record the
device-level tracer hook (:mod:`repro.obs`) attaches to each kernel
span.

This interpreter is the ``reference`` execution engine
(:mod:`repro.gpusim.engine`): the semantic ground truth every other
engine must match byte for byte.  Two scheduling invariants of the
single FIFO are load-bearing for that contract (the ``vectorized``
engine's phase-locked replay is *proved* against them, see
``docs/SIMULATOR.md``):

* a barrier release re-queues the whole block atomically and in warp
  order (``_release_if_complete`` extends the queue in ``waiting``
  arrival order), so a block's warps stay contiguous in the queue;
* ``STEP`` re-appends to the tail, so blocks advance through their
  barrier-delimited phases in lockstep, in stable block order.

Change the queueing discipline and the replay's assumptions break —
the cross-engine property suite (``tests/properties/test_engines.py``)
will catch it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Sequence

import numpy as np

from repro.errors import KernelDeadlockError
from repro.gpusim.context import BARRIER, STEP, BlockState, WarpContext
from repro.gpusim.costmodel import BlockTiming, CostModel
from repro.gpusim.spec import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memtrace.tracker import MemoryTracker
    from repro.sanitize.racecheck import LaunchMonitor

__all__ = ["KernelStats", "run_kernel"]

KernelFn = Callable[..., Generator[str, None, None]]


@dataclass(frozen=True)
class KernelStats:
    """Aggregated outcome of one kernel launch.

    ``atomic_conflicts`` and ``buffer_peak`` are observability-only
    tallies (see :class:`~repro.gpusim.costmodel.BlockTiming`):
    conflicts sum over all blocks, ``buffer_peak`` is the fullest
    single block buffer in logical positions.  The ``atomic_cycles`` /
    ``mem_*`` fields are likewise metric-only block-timing sums that
    feed the profiler's efficiency figures (:mod:`repro.profile`).

    ``block_timings`` carries the raw per-block
    :class:`~repro.gpusim.costmodel.BlockTiming` records when the
    launch ran with ``collect_timings=True`` (a profiler was attached);
    it is ``None`` otherwise and never influences simulated time.

    ``served_by`` names the engine tier that actually executed the
    launch: ``"reference"`` for the interpreter (this module), or the
    engine name (``"vectorized"``/``"jit"``) when a registered batched
    executor served it.  A vectorized engine that routes a launch to
    the interpreter — structural fallback, attached monitor, preemption
    — leaves the field at ``"reference"``, which is how the
    per-launch attribution (``engine.served.<tier>`` counters, the
    static engine-precondition checker of
    :mod:`repro.staticheck.dataflow`) observes the routing decision.
    Metric-only: never influences simulated results.
    """

    cycles: float
    issued: float
    mem_transactions: float
    barriers: int
    max_warp_path: float
    atomic_conflicts: float = 0.0
    buffer_peak: float = 0.0
    atomic_cycles: float = 0.0
    mem_accesses: float = 0.0
    mem_active_lanes: float = 0.0
    mem_ideal_transactions: float = 0.0
    block_timings: "tuple[BlockTiming, ...] | None" = None
    served_by: str = "reference"

    def milliseconds(self, cost: CostModel) -> float:
        """Kernel duration in simulated milliseconds (device time only)."""
        return cost.cycles_to_ms(self.cycles)


@dataclass
class _Runner:
    block: BlockState
    ctx: WarpContext
    gen: Generator[str, None, None]


def run_kernel(
    kernel_fn: KernelFn,
    spec: DeviceSpec,
    cost: CostModel,
    grid_dim: int,
    block_dim: int,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    preempt_prob: float = 0.0,
    seed: int = 0,
    monitor: "LaunchMonitor | None" = None,
    collect_timings: bool = False,
    memtracker: "MemoryTracker | None" = None,
) -> KernelStats:
    """Execute ``kernel_fn`` over a ``grid_dim x block_dim`` launch.

    ``kernel_fn(ctx, *args, **kwargs)`` must be a generator function;
    it is instantiated once per warp.  Returns the kernel's
    :class:`KernelStats` under the given cost model.

    Callers normally go through
    :meth:`~repro.gpusim.device.Device.launch`, which routes through
    the device's execution engine; this function *is* the
    ``reference`` engine and the fallback target of the others.

    ``monitor`` is an optional racecheck shadow logger (see
    :mod:`repro.sanitize.racecheck`): it is threaded into every warp
    context, and the scheduler reports each warp's barrier arrivals
    and its exit so the sanitizer can diagnose barrier divergence.
    Monitoring never changes costs or scheduling.

    ``collect_timings=True`` attaches the per-block
    :class:`~repro.gpusim.costmodel.BlockTiming` records to the
    returned stats (``stats.block_timings``) for the profiler; the
    records are produced either way, so collection never perturbs the
    run.

    ``memtracker`` is an optional memory tracker (see
    :mod:`repro.memtrace`): it is handed to every
    :class:`~repro.gpusim.context.BlockState` so per-block
    shared-memory allocations are attributed to the launch.  Tracking
    never changes costs or scheduling.
    """
    if block_dim % spec.warp_size:
        raise ValueError("block_dim must be a multiple of the warp size")
    kwargs = kwargs or {}
    warps_per_block = block_dim // spec.warp_size
    rng = np.random.default_rng(seed) if preempt_prob > 0 else None

    blocks = [
        BlockState(b, warps_per_block, spec, memtracker=memtracker)
        for b in range(grid_dim)
    ]
    queue: deque[_Runner] = deque()
    for block in blocks:
        for w in range(warps_per_block):
            ctx = WarpContext(
                block, w, grid_dim, block_dim, spec, cost,
                rng=rng, preempt_prob=preempt_prob, monitor=monitor,
            )
            queue.append(_Runner(block, ctx, kernel_fn(ctx, *args, **kwargs)))

    def _release_if_complete(block: BlockState) -> None:
        if block.waiting and len(block.waiting) == block.active_warps:
            block.timing.barriers += 1
            queue.extend(block.waiting)
            block.waiting.clear()

    max_paths = [0.0] * grid_dim
    while queue:
        runner = queue.popleft()
        block = runner.block
        try:
            token = next(runner.gen)
        except StopIteration:
            block.active_warps -= 1
            max_paths[block.block_idx] = max(
                max_paths[block.block_idx], runner.ctx.path
            )
            block.timing.issued += runner.ctx.issued
            if monitor is not None:
                monitor.on_warp_exit(runner.ctx)
            _release_if_complete(block)
            continue
        if token == STEP:
            queue.append(runner)
        elif token == BARRIER:
            block.waiting.append(runner)
            if monitor is not None:
                monitor.on_barrier_arrival(runner.ctx)
            _release_if_complete(block)
        else:
            raise ValueError(f"kernel yielded unknown token {token!r}")

    for block in blocks:
        if block.waiting:
            raise KernelDeadlockError(
                f"block {block.block_idx}: {len(block.waiting)} warps stuck "
                f"at __syncthreads with {block.active_warps} still active"
            )

    timings: list[BlockTiming] = []
    for block in blocks:
        block.timing.max_warp_path = max_paths[block.block_idx]
        timings.append(block.timing)
    cycles = cost.kernel_cycles(timings, spec.num_sms)
    return KernelStats(
        cycles=cycles,
        issued=sum(t.issued for t in timings),
        mem_transactions=sum(t.mem_transactions for t in timings),
        barriers=sum(t.barriers for t in timings),
        max_warp_path=max(t.max_warp_path for t in timings) if timings else 0.0,
        atomic_conflicts=sum(t.atomic_conflicts for t in timings),
        buffer_peak=max(t.buffer_peak for t in timings) if timings else 0.0,
        atomic_cycles=sum(t.atomic_cycles for t in timings),
        mem_accesses=sum(t.mem_accesses for t in timings),
        mem_active_lanes=sum(t.mem_active_lanes for t in timings),
        mem_ideal_transactions=sum(
            t.mem_ideal_transactions for t in timings
        ),
        block_timings=tuple(timings) if collect_timings else None,
    )
