"""Accounting toolkit for launch-level vectorized executors.

The vectorized engine (:mod:`repro.gpusim.engine`) replaces the
reference interpreter's per-warp generator stepping with *batched*
executors that compute a whole launch's side effects and event counts
with numpy.  Those executors (registered per kernel; see
``repro.core.fastsim``) still need to reproduce the reference
accounting **bit-for-bit**, and this module centralises the pieces
that are kernel-agnostic:

* closed-form 128-byte transaction counts for contiguous and
  scattered index sets, exactly matching
  :meth:`~repro.gpusim.context.WarpContext._count_transactions`;
* per-group distinct-segment counting for batching many warp accesses
  into one ``np.unique`` pass;
* the end-of-launch fold from per-warp accumulators and per-block
  :class:`~repro.gpusim.costmodel.BlockTiming` records into a
  :class:`~repro.gpusim.scheduler.KernelStats`, mirroring
  :func:`~repro.gpusim.scheduler.run_kernel`'s epilogue;
* optional numba compilation (:func:`maybe_jit`) for the ``jit``
  engine tier, degrading to the plain function when numba is absent.

Why bit-for-bit equality is attainable with batch sums: every cycle
term the context accumulates (``1`` per instruction, ``14`` per
dependent load, ``2 + 0.25*c`` per shared atomic, ``6 + 2*c`` per
global atomic, ``8`` per barrier) is an integer or quarter-integer,
hence exact in binary floating point; sums of exact values are
order-independent below 2**52, so a closed-form total equals the
event-by-event total exactly.  The only non-representable constant
(``0.3`` cycles per transaction) is applied *once* per block in
:meth:`~repro.gpusim.costmodel.CostModel.block_cycles`, identically
under every engine.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple, TypeVar

import numpy as np

from repro.gpusim.costmodel import BlockTiming, CostModel
from repro.gpusim.scheduler import KernelStats
from repro.gpusim.spec import DeviceSpec

__all__ = [
    "WORDS_PER_TRANSACTION",
    "assemble_stats",
    "contiguous_transactions",
    "grouped_distinct_segments",
    "jit_available",
    "maybe_jit",
    "scattered_transactions",
]

#: words per 128-byte transaction at 4-byte IDs — must track
#: ``repro.gpusim.context._WORDS_PER_TRANSACTION``
WORDS_PER_TRANSACTION = 32


def contiguous_transactions(start: int, length: int) -> int:
    """Transactions of one warp access to ``[start, start + length)``.

    Equals ``len(np.unique(idx // 32))`` for a contiguous index range:
    the count of 32-word segments the range touches.
    """
    if length <= 0:
        return 0
    first = start // WORDS_PER_TRANSACTION
    last = (start + length - 1) // WORDS_PER_TRANSACTION
    return last - first + 1


def scattered_transactions(idx: np.ndarray) -> int:
    """Transactions of one warp access to arbitrary indices."""
    if idx.size == 0:
        return 0
    return int(np.unique(idx // WORDS_PER_TRANSACTION).size)


def grouped_distinct_segments(
    group_keys: np.ndarray, idx: np.ndarray, num_groups: int
) -> np.ndarray:
    """Distinct 32-word segments per group, for many accesses at once.

    ``group_keys[i]`` assigns element ``idx[i]`` to one warp access
    (e.g. a ``(job, trip)`` pair encoded as an integer in
    ``[0, num_groups)``); the result's ``g``-th entry is what the
    reference interpreter's
    :meth:`~repro.gpusim.context.WarpContext._count_transactions`
    would have returned for group ``g``'s indices.  One sort replaces
    ``num_groups`` separate ``np.unique`` calls.
    """
    counts = np.zeros(num_groups, dtype=np.int64)
    if idx.size == 0:
        return counts
    segs = idx // WORDS_PER_TRANSACTION
    # unique (group, segment) pairs == per-group distinct segments
    combo = group_keys * np.int64(2**40) + segs
    unique_combo = np.unique(combo)
    groups = unique_combo // np.int64(2**40)
    np.add.at(counts, groups, 1)
    return counts


def assemble_stats(
    timings: Sequence[BlockTiming],
    max_paths: Sequence[float],
    cost: CostModel,
    spec: DeviceSpec,
    collect_timings: bool,
) -> KernelStats:
    """Fold per-block timings into launch stats.

    Mirrors the epilogue of :func:`~repro.gpusim.scheduler.run_kernel`
    exactly: ``max_paths[b]`` is the serial-path maximum over block
    ``b``'s warps, written into the timing record before the roofline
    combination.  Callers must already have folded each warp's
    ``issued`` into its block's timing.
    """
    for timing, path in zip(timings, max_paths):
        timing.max_warp_path = path
    cycles = cost.kernel_cycles(timings, spec.num_sms)
    return KernelStats(
        cycles=cycles,
        issued=sum(t.issued for t in timings),
        mem_transactions=sum(t.mem_transactions for t in timings),
        barriers=sum(t.barriers for t in timings),
        max_warp_path=max(
            (t.max_warp_path for t in timings), default=0.0
        ) if timings else 0.0,
        atomic_conflicts=sum(t.atomic_conflicts for t in timings),
        buffer_peak=max(
            (t.buffer_peak for t in timings), default=0.0
        ) if timings else 0.0,
        atomic_cycles=sum(t.atomic_cycles for t in timings),
        mem_accesses=sum(t.mem_accesses for t in timings),
        mem_active_lanes=sum(t.mem_active_lanes for t in timings),
        mem_ideal_transactions=sum(
            t.mem_ideal_transactions for t in timings
        ),
        block_timings=tuple(timings) if collect_timings else None,
    )


_F = TypeVar("_F", bound=Callable[..., Any])

_NUMBA_CHECKED = False
_NUMBA_NJIT: "Callable[..., Any] | None" = None


def jit_available() -> bool:
    """True when numba is importable (the ``jit`` tier can compile)."""
    global _NUMBA_CHECKED, _NUMBA_NJIT
    if not _NUMBA_CHECKED:
        _NUMBA_CHECKED = True
        try:  # optional dependency — never required
            from numba import njit  # type: ignore[import-not-found]

            _NUMBA_NJIT = njit
        except Exception:
            _NUMBA_NJIT = None
    return _NUMBA_NJIT is not None


def maybe_jit(fn: _F, use_jit: bool) -> _F:
    """Return a numba-compiled ``fn`` when requested *and* possible.

    The ``jit`` engine passes ``use_jit=True`` through
    :class:`~repro.gpusim.engine.VectorLaunch`; when numba is absent
    the original function is returned unchanged, so the tier degrades
    gracefully instead of failing.  Compilation must never change
    results — only host wall-clock time.
    """
    if not use_jit or not jit_available():
        return fn
    assert _NUMBA_NJIT is not None
    compiled: _F = _NUMBA_NJIT(cache=False)(fn)
    return compiled
