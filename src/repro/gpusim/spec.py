"""Simulated-device specification.

The defaults describe "SimP100", a scaled-down stand-in for the NVIDIA
Tesla P100 the paper runs on (56 SMs, 16 GB global memory, launches of
108 blocks x 1024 threads, 1M-entry per-block buffers, 10k-entry
shared-memory buffers).  Everything is scaled by roughly three orders
of magnitude to match the scaled dataset analogues, keeping the
*ratios* that drive the paper's findings: buffers dwarf per-block
shared memory, the grid has as many blocks as SMs, and each block runs
many warps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceSpecError

__all__ = ["DeviceSpec", "PAPER_SCALE_NOTE"]

PAPER_SCALE_NOTE = (
    "paper: Tesla P100, 108 blocks x 1024 threads, 16 GB global memory, "
    "1M-entry block buffers, 10k-entry shared buffers; "
    "SimP100 scales all of these by ~2^7 to match the scaled datasets"
)


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware parameters of the simulated GPU."""

    name: str = "SimP100"
    #: number of streaming multiprocessors; blocks are assigned
    #: round-robin, so with ``grid_dim == num_sms`` each block owns an SM
    #: (the paper launches exactly one block per SM: 108 blocks).
    num_sms: int = 8
    warp_size: int = 32
    #: device global memory (paper: 16 GB, scaled by the same ~2^12
    #: factor as the datasets so that the programs that exhaust a P100
    #: on billion-edge graphs also exhaust SimP100 on their analogues)
    global_memory_bytes: int = int(3.2 * 1024 * 1024)
    #: per-block shared memory (paper: 48-96 KB per SM)
    shared_memory_per_block_bytes: int = 48 * 1024
    #: BLK_NUM of the paper's kernel launches (paper: 108)
    default_grid_dim: int = 4
    #: BLK_DIM of the paper's kernel launches (paper: 1024 = 32 warps)
    default_block_dim: int = 512
    #: per-block global-memory vertex buffer capacity in vertex IDs
    #: (paper: 1,000,000)
    block_buffer_capacity: int = 16384
    #: per-block shared-memory vertex buffer capacity in vertex IDs,
    #: used by the SM variant.  The paper's 10,000-entry buffer is a
    #: *small fraction* of its per-round k-shells; the scaled value
    #: keeps that ratio against the scaled datasets.
    shared_buffer_capacity: int = 32
    #: bytes per vertex ID in device memory (the paper stores 32-bit IDs)
    id_bytes: int = 4
    #: baseline device allocation (CUDA context, kernel images, ...) so
    #: that small graphs still show a memory floor, as in Table V
    context_overhead_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        """Static fit check, at construction time.

        The most shared-memory-hungry kernel any variant can launch
        needs, per block: the SM variant's buffer ``B`` (``scap``
        slots) plus its three scalars, the EC scan's two ``W``-sized
        staging arrays (which also cover VP's two ``W``-sized prefetch
        slots and its two scalars), and one slot of slack for the
        remaining scalars — all at ``id_bytes`` per slot (matching
        ``BlockState.alloc_shared``).  A spec whose shared memory
        cannot hold that would fail mid-run with
        :class:`~repro.errors.SharedMemoryExhaustedError` on the first
        SM/EC launch; failing here is the typed, eager version.
        """
        if self.default_block_dim > 0 and self.warp_size > 0:
            staging_slots = 2 * (self.default_block_dim // self.warp_size)
        else:
            staging_slots = 0  # dimension errors are validate()'s job
        worst_slots = self.shared_buffer_capacity + staging_slots + 4
        needed = worst_slots * self.id_bytes
        if needed > self.shared_memory_per_block_bytes:
            raise DeviceSpecError(
                f"spec {self.name!r}: per-block shared buffers plus "
                f"variant staging need {needed} B ({worst_slots} slots x "
                f"{self.id_bytes} B) but shared_memory_per_block_bytes is "
                f"{self.shared_memory_per_block_bytes} B; shrink "
                f"shared_buffer_capacity or the block dimension"
            )

    @property
    def warps_per_block(self) -> int:
        """Warps per thread block (``BLK_DIM >> 5``)."""
        return self.default_block_dim // self.warp_size

    @property
    def total_threads(self) -> int:
        """NUM_THREADS of a default launch (``BLK_NUM * BLK_DIM``)."""
        return self.default_grid_dim * self.default_block_dim

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent parameters."""
        if self.default_block_dim % self.warp_size:
            raise ValueError("block_dim must be a multiple of the warp size")
        if self.default_grid_dim <= 0 or self.default_block_dim <= 0:
            raise ValueError("grid and block dimensions must be positive")
        shared_needed = self.shared_buffer_capacity * self.id_bytes
        if shared_needed > self.shared_memory_per_block_bytes:
            raise ValueError(
                "shared_buffer_capacity exceeds per-block shared memory"
            )
