"""SIMT GPU simulator: the substrate the paper's CUDA kernels run on.

See DESIGN.md section 2 for why a simulator substitutes for the Tesla
P100 and what it preserves.  Public entry points:

* :class:`~repro.gpusim.device.Device` — memory + kernel launches +
  accumulated simulated time,
* :class:`~repro.gpusim.spec.DeviceSpec` — hardware parameters,
* :class:`~repro.gpusim.costmodel.CostModel` — cycle cost constants,
* :class:`~repro.gpusim.context.WarpContext` — the API kernels program
  against (loads, stores, atomics, shared memory, warp primitives),
* :func:`~repro.gpusim.engine.get_engine` /
  :func:`~repro.gpusim.engine.available_engines` — the pluggable
  execution engines (``"reference"``, ``"vectorized"``, ``"jit"``);
  see ``docs/SIMULATOR.md`` for the architecture.
"""

from repro.gpusim.context import BARRIER, STEP, WarpContext
from repro.gpusim.costmodel import BlockTiming, CostModel
from repro.gpusim.device import Device
from repro.gpusim.engine import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    FallbackToReference,
    JitEngine,
    ReferenceEngine,
    VectorizedEngine,
    available_engines,
    get_engine,
    has_vectorized_impl,
    register_vectorized_kernel,
    vectorized_kernel_names,
)
from repro.gpusim.memory import DeviceArray, GlobalMemory
from repro.gpusim.scheduler import KernelStats, run_kernel
from repro.gpusim.spec import DeviceSpec

__all__ = [
    "BARRIER",
    "STEP",
    "WarpContext",
    "BlockTiming",
    "CostModel",
    "DEFAULT_ENGINE",
    "Device",
    "DeviceArray",
    "ExecutionEngine",
    "FallbackToReference",
    "GlobalMemory",
    "JitEngine",
    "KernelStats",
    "ReferenceEngine",
    "VectorizedEngine",
    "available_engines",
    "get_engine",
    "has_vectorized_impl",
    "register_vectorized_kernel",
    "run_kernel",
    "vectorized_kernel_names",
    "DeviceSpec",
]
