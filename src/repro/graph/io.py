"""Edge-list input/output.

Supports the plain-text formats the paper's datasets ship in:

* SNAP-style edge lists — one ``u<whitespace>v`` pair per line, ``#``
  comment lines, optionally gzip-compressed;
* KONECT-style lists — ``%`` comment lines, optional edge weights
  (ignored);
* our own ``write_edgelist`` output, which round-trips losslessly.

Directed inputs are made undirected by ignoring edge direction, exactly
as the paper does for its directed datasets ("Some graphs are directed
and we make them undirected by ignoring the edge direction").
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterator, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.recode import recode_edge_array

__all__ = ["read_edgelist", "write_edgelist", "iter_edgelist_lines"]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_edgelist_lines(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Yield ``(u, v)`` integer pairs from an edge-list file.

    Comment lines and blank lines are skipped; extra columns (weights,
    timestamps) are ignored.  Raises :class:`GraphFormatError` on a line
    that does not start with two integers.
    """
    with _open_text(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected two columns, got {line!r}"
                )
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex ID in {line!r}"
                ) from exc


def read_edgelist(path: PathLike, recode: bool = True) -> CSRGraph:
    """Load an undirected :class:`CSRGraph` from an edge-list file.

    Args:
        path: text or ``.gz`` file in SNAP/KONECT edge-list format.
        recode: densify vertex IDs (recommended; the CSR layout needs
            dense IDs, and real SNAP files often have gaps).  With
            ``recode=False`` the original integer IDs are kept and must
            already be dense and non-negative.
    """
    pairs = list(iter_edgelist_lines(path))
    edges = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
    if recode and edges.size:
        edges, _ = recode_edge_array(edges)
    return CSRGraph.from_edges(edges)


def write_edgelist(graph: CSRGraph, path: PathLike, header: str = "") -> None:
    """Write each undirected edge once as ``u\\tv`` lines.

    An optional ``header`` is emitted as ``#``-prefixed comment lines so
    the file stays readable by :func:`read_edgelist`.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as handle:
        for line in header.splitlines():
            handle.write(f"# {line}\n")
        handle.write(f"# vertices: {graph.num_vertices}\n")
        handle.write(f"# edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
