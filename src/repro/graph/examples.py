"""Small didactic graphs with known ground truth.

``fig1_graph`` reconstructs the structure of the paper's Fig. 1 — a
graph whose 1-, 2- and 3-shells are all non-empty and where a vertex
(``A``) has degree 3 yet core number 2 because its neighbor ``B`` cannot
survive into the 3-core.  These graphs anchor the unit tests and the
quickstart example.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.csr import CSRGraph

__all__ = ["fig1_graph", "FIG1_NAMES", "triangle", "k_clique", "path_graph"]

#: Human-readable vertex names for :func:`fig1_graph`, index-aligned.
FIG1_NAMES: Tuple[str, ...] = (
    "R1", "R2", "R3", "R4",  # red: the 3-core (a K4)
    "A", "B",                 # yellow: A has degree 3 but core 2
    "Y1", "Y2", "Y3",         # yellow: a triangle in the 2-shell
    "G1", "G2", "G3",         # green: degree-1 leaves, the 1-shell
)


def fig1_graph() -> Tuple[CSRGraph, Dict[int, int]]:
    """The Fig. 1 style example and its expected core numbers.

    Returns ``(graph, expected)`` where ``expected[v]`` is the core
    number of vertex ``v``.  Vertices 0-3 form a ``K4`` (core 3);
    vertex 4 (``A``) has degree exactly 3 — neighbors ``B``, ``R1``,
    ``R2`` — but core number 2, exactly as in the paper's running
    example (B cannot survive into the 3-core, so neither can A);
    vertex 5 (``B``) has degree 2; vertices 6-8 are a triangle (core 2);
    vertices 9-11 are leaves (core 1).
    """
    r1, r2, r3, r4, a, b, y1, y2, y3, g1, g2, g3 = range(12)
    edges = [
        # K4 on the red vertices: the 3-core
        (r1, r2), (r1, r3), (r1, r4), (r2, r3), (r2, r4), (r3, r4),
        # A touches the 3-core twice plus B, so deg(A) = 3 but core(A) = 2
        (a, r1), (a, r2), (a, b),
        # B bridges A to the core with degree 2
        (b, r3),
        # a yellow triangle: core 2
        (y1, y2), (y2, y3), (y1, y3),
        # green leaves: core 1
        (g1, y1), (g2, r4), (g3, y3),
    ]
    graph = CSRGraph.from_edges(edges, num_vertices=12)
    expected = {
        r1: 3, r2: 3, r3: 3, r4: 3,
        a: 2, b: 2, y1: 2, y2: 2, y3: 2,
        g1: 1, g2: 1, g3: 1,
    }
    return graph, expected


def triangle() -> CSRGraph:
    """K3 — every vertex has core number 2."""
    return CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])


def k_clique(k: int) -> CSRGraph:
    """Complete graph on ``k`` vertices — every core number is ``k - 1``."""
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    return CSRGraph.from_edges(edges, num_vertices=k)


def path_graph(n: int) -> CSRGraph:
    """Path on ``n`` vertices — every core number is 1 (0 if ``n == 1``)."""
    if n <= 1:
        return CSRGraph.empty(n)
    return CSRGraph.from_edges([(i, i + 1) for i in range(n - 1)])
