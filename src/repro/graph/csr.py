"""Compressed sparse row (CSR) graph — the in-memory representation used
by every algorithm in this repository.

The layout mirrors Section IV of the paper exactly: an undirected graph
``G = (V, E)`` is held as three dense arrays

* ``neighbors`` — the concatenation of all adjacency lists,
* ``offsets`` — ``offsets[i]`` is where vertex ``i``'s list starts
  (length ``|V| + 1`` so that ``offsets[i + 1]`` is the end), and
* ``degrees`` — ``degrees[i] == offsets[i + 1] - offsets[i]``.

Vertex IDs are dense integers ``0 .. n-1``; use
:func:`repro.graph.recode.recode_ids` to densify arbitrary labels first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.errors import GraphValidationError

__all__ = ["CSRGraph", "build_csr_arrays"]


def build_csr_arrays(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Build ``(offsets, neighbors)`` from symmetric edge endpoint arrays.

    ``sources``/``targets`` must already contain both directions of every
    undirected edge.  Adjacency lists come out sorted by neighbor ID,
    which gives deterministic iteration order everywhere downstream.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets.copy()


@dataclass(frozen=True)
class CSRGraph:
    """An immutable undirected graph in CSR form.

    Construct with one of the ``from_*`` classmethods rather than calling
    the constructor directly; they normalise the input (deduplicate
    edges, drop self-loops, symmetrise) and validate the invariants.
    """

    offsets: np.ndarray
    neighbors: np.ndarray

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """Build a simple undirected graph from an iterable of pairs.

        Self-loops are dropped, parallel/duplicate edges are merged, and
        each edge is stored in both directions.  ``num_vertices`` may be
        given to include trailing isolated vertices; otherwise it is
        ``max endpoint + 1``.
        """
        edge_array = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if edge_array.size == 0:
            n = int(num_vertices or 0)
            return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphValidationError(
                f"edge array must have shape (m, 2), got {edge_array.shape}"
            )
        if edge_array.min() < 0:
            raise GraphValidationError("vertex IDs must be non-negative")

        n = int(edge_array.max()) + 1
        if num_vertices is not None:
            if num_vertices < n:
                raise GraphValidationError(
                    f"num_vertices={num_vertices} smaller than max ID + 1 = {n}"
                )
            n = int(num_vertices)

        u, v = edge_array[:, 0], edge_array[:, 1]
        keep = u != v  # drop self-loops
        u, v = u[keep], v[keep]
        # Canonicalise to (min, max) and deduplicate parallel edges.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        packed = np.unique(lo * np.int64(n) + hi)
        lo = packed // n
        hi = packed % n
        sources = np.concatenate([lo, hi])
        targets = np.concatenate([hi, lo])
        offsets, neighbors = build_csr_arrays(n, sources, targets)
        return cls(offsets, neighbors)

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "CSRGraph":
        """Build from a list of adjacency lists (symmetrised for safety)."""
        edges = [
            (u, v) for u, nbrs in enumerate(adjacency) for v in nbrs
        ]
        return cls.from_edges(edges, num_vertices=len(adjacency))

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "CSRGraph":
        """A graph with ``num_vertices`` isolated vertices and no edges."""
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    # -- validation -------------------------------------------------------

    def __post_init__(self) -> None:
        offsets = np.asarray(self.offsets, dtype=np.int64)
        neighbors = np.asarray(self.neighbors, dtype=np.int64)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "neighbors", neighbors)
        if offsets.ndim != 1 or offsets.size == 0:
            raise GraphValidationError("offsets must be a 1-D array of size >= 1")
        if offsets[0] != 0 or offsets[-1] != neighbors.size:
            raise GraphValidationError(
                "offsets must start at 0 and end at len(neighbors)"
            )
        if np.any(np.diff(offsets) < 0):
            raise GraphValidationError("offsets must be non-decreasing")
        if neighbors.size and (
            neighbors.min() < 0 or neighbors.max() >= self.num_vertices
        ):
            raise GraphValidationError("neighbor IDs out of range")
        offsets.setflags(write=False)
        neighbors.setflags(write=False)

    # -- basic accessors --------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return int(self.offsets.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (each stored twice)."""
        return int(self.neighbors.size // 2)

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array (read-only view)."""
        return np.diff(self.offsets)

    def degree(self, vertex: int) -> int:
        """Degree of a single vertex."""
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def neighbors_of(self, vertex: int) -> np.ndarray:
        """Sorted neighbor IDs of ``vertex`` (a read-only view)."""
        return self.neighbors[self.offsets[vertex] : self.offsets[vertex + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge ``{u, v}`` is present."""
        nbrs = self.neighbors_of(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors_of(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v``."""
        sources = np.repeat(np.arange(self.num_vertices), self.degrees)
        mask = sources < self.neighbors
        return np.column_stack([sources[mask], self.neighbors[mask]])

    # -- statistics & derived graphs ---------------------------------------

    @property
    def max_degree(self) -> int:
        """Largest vertex degree (0 for an empty graph)."""
        degs = self.degrees
        return int(degs.max()) if degs.size else 0

    @property
    def average_degree(self) -> float:
        """Mean vertex degree (0.0 for an empty graph)."""
        degs = self.degrees
        return float(degs.mean()) if degs.size else 0.0

    @property
    def degree_std(self) -> float:
        """Standard deviation of the degree distribution."""
        degs = self.degrees
        return float(degs.std()) if degs.size else 0.0

    def induced_subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Subgraph induced by ``vertices``, relabelled to ``0..len-1``.

        The returned graph's vertex ``i`` corresponds to the ``i``-th
        entry of the (sorted, deduplicated) ``vertices`` array.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        keep = np.zeros(self.num_vertices, dtype=bool)
        keep[vertices] = True
        relabel = np.full(self.num_vertices, -1, dtype=np.int64)
        relabel[vertices] = np.arange(vertices.size)

        sources = np.repeat(np.arange(self.num_vertices), self.degrees)
        mask = keep[sources] & keep[self.neighbors]
        new_sources = relabel[sources[mask]]
        new_targets = relabel[self.neighbors[mask]]
        offsets, neighbors = build_csr_arrays(
            vertices.size, new_sources, new_targets
        )
        return CSRGraph(offsets, neighbors)

    def memory_bytes(self, id_bytes: int = 4) -> int:
        """Device-memory footprint of the three CSR arrays in bytes.

        The paper stores vertex IDs as 32-bit integers on the GPU; we use
        64-bit host arrays for convenience but model the device footprint
        with ``id_bytes`` per entry (offsets, neighbors, and the mutable
        ``deg`` array).
        """
        return id_bytes * (self.offsets.size + self.neighbors.size + self.num_vertices)

    # -- dunder -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"d_avg={self.average_degree:.1f}, d_max={self.max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return bool(
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.neighbors, other.neighbors)
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges, self.neighbors.tobytes()))
