"""Registry of the paper's 20 datasets as scaled-down synthetic analogues.

The paper evaluates on 20 public graphs up to 1.15 billion edges
(Table I).  With no network access and a pure-Python GPU *simulator* as
the substrate, we regenerate each dataset as a seeded synthetic analogue
about three orders of magnitude smaller that preserves the properties
the paper's analysis turns on:

* the **category** and qualitative degree shape (near-regular
  co-purchasing, heavy-tailed social networks, hub-dominated trackers,
  dense collaboration cores, high-``k_max`` web crawls);
* the **relative ordering** of size, density, skew and ``k_max`` across
  datasets — e.g. ``trackers`` keeps the most extreme degree standard
  deviation, ``hollywood`` the highest average degree, ``indochina``
  the highest ``k_max``, ``webbase`` the most vertices.

Each entry also records the original Table I statistics so the Table I
benchmark can print paper-vs-analogue rows side by side.  If a user has
the real SNAP/KONECT files on disk, :func:`load_real` reads them with
:func:`repro.graph.io.read_edgelist` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.errors import UnknownDatasetError
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.io import read_edgelist

__all__ = [
    "PaperStats",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "get_spec",
    "load",
    "load_real",
    "small_dataset_names",
]


@dataclass(frozen=True)
class PaperStats:
    """The Table I row for a dataset, as published."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    degree_std: float
    max_degree: int
    kmax: int


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: its paper statistics plus the analogue builder."""

    name: str
    category: str
    paper: PaperStats
    builder: Callable[[], CSRGraph]

    def build(self) -> CSRGraph:
        """Generate the synthetic analogue (deterministic)."""
        return self.builder()


def _skewed_web(
    n: int,
    rmat_scale: int,
    edge_factor: float,
    core_size: int,
    core_degree: int,
    seed: int,
    tail_degree: float = 2.0,
) -> CSRGraph:
    """Web-crawl analogue: R-MAT skeleton + planted dense nucleus.

    The planted nucleus controls ``k_max`` (the number of peel rounds);
    the R-MAT part supplies the skewed, community-rich bulk.
    """
    web = gen.rmat(rmat_scale, edge_factor=edge_factor, seed=seed)
    core = gen.planted_core(
        n, core_size=core_size, core_degree=core_degree,
        background_degree=tail_degree, seed=seed + 1,
    )
    return gen.union_graphs(web, core)


def _social(
    n: int, attach: int, core_size: int, core_degree: int, seed: int
) -> CSRGraph:
    """Social-network analogue: preferential attachment + dense nucleus."""
    social = gen.barabasi_albert(n, attach=attach, seed=seed)
    core = gen.planted_core(
        n, core_size=core_size, core_degree=core_degree,
        background_degree=0.0, seed=seed + 1,
    )
    return gen.union_graphs(social, core)


def _tracker(n: int, seed: int) -> CSRGraph:
    """Tracker analogue (paper: avg degree 10.2, std 2,774, max degree
    11.57M): one enormous hub for the extreme skew, several medium hubs,
    and a low-degree tail that keeps per-vertex computation small — the
    regime where the paper finds vertex prefetching (VP) pays off —
    plus a moderately deep nucleus."""
    hubs = gen.hub_and_spokes(
        n, num_hubs=10, hub_degree_fraction=0.3, tail_degree=8.0, seed=seed
    )
    mega = gen.hub_and_spokes(
        n, num_hubs=1, hub_degree_fraction=0.7, tail_degree=0.0, seed=seed + 2
    )
    core = gen.planted_core(
        n, core_size=220, core_degree=45, background_degree=0.0, seed=seed + 1
    )
    return gen.union_graphs(hubs, mega, core)


_P = PaperStats

#: The 20 datasets of Table I, in the paper's ascending-|E| order.
DATASETS: Dict[str, DatasetSpec] = {}


def _register(
    name: str, category: str, paper: PaperStats, builder: Callable[[], CSRGraph]
) -> None:
    DATASETS[name] = DatasetSpec(name, category, paper, builder)


_register(
    "amazon0601", "Co-purchasing",
    _P(403_394, 3_387_388, 16.8, 15, 2_752, 10),
    lambda: gen.erdos_renyi(1_500, avg_degree=16.0, seed=101),
)
_register(
    "wiki-Talk", "Communication",
    _P(2_394_385, 5_021_410, 4.2, 103, 100_029, 131),
    lambda: gen.union_graphs(
        gen.hub_and_spokes(6_000, num_hubs=3, hub_degree_fraction=0.4,
                           tail_degree=1.6, seed=102),
        gen.planted_core(6_000, core_size=140, core_degree=34,
                         background_degree=0.0, seed=103),
    ),
)
_register(
    "web-Google", "Web Graph",
    _P(875_713, 5_105_039, 11.7, 39, 6_332, 44),
    lambda: _skewed_web(2_500, rmat_scale=11, edge_factor=5.0,
                        core_size=90, core_degree=18, seed=104),
)
_register(
    "web-BerkStan", "Web Graph",
    _P(685_230, 7_600_595, 22.2, 285, 84_230, 201),
    lambda: _skewed_web(2_200, rmat_scale=11, edge_factor=8.0,
                        core_size=120, core_degree=40, seed=105),
)
_register(
    "as-Skitter", "Internet Topology",
    _P(1_696_415, 11_095_298, 13.1, 137, 35_455, 111),
    lambda: gen.union_graphs(
        gen.power_law_configuration(4_500, exponent=2.2, d_min=2,
                                    d_max=900, seed=106),
        gen.planted_core(4_500, core_size=110, core_degree=28,
                         background_degree=0.0, seed=107),
    ),
)
_register(
    "patentcite", "Citation Network",
    _P(3_774_768, 16_518_948, 8.8, 10, 793, 64),
    lambda: gen.union_graphs(
        gen.erdos_renyi(8_000, avg_degree=8.0, seed=108),
        gen.planted_core(8_000, core_size=160, core_degree=22,
                         background_degree=0.0, seed=109),
    ),
)
_register(
    "in-2004", "Web Graph",
    _P(1_382_908, 16_917_053, 24.5, 147, 21_869, 488),
    lambda: _skewed_web(3_500, rmat_scale=11, edge_factor=14.0,
                        core_size=200, core_degree=58, seed=110),
)
_register(
    "dblp-author", "Collaboration",
    _P(5_624_219, 24_564_102, 8.7, 11, 1_389, 14),
    lambda: gen.barabasi_albert(12_000, attach=4, seed=111),
)
_register(
    "wb-edu", "Web Graph",
    _P(9_845_725, 57_156_537, 11.6, 49, 25_781, 448),
    lambda: _skewed_web(16_000, rmat_scale=13, edge_factor=4.0,
                        core_size=220, core_degree=52, seed=112),
)
_register(
    "soc-LiveJournal1", "Social Network",
    _P(4_847_571, 68_993_773, 28.5, 52, 20_333, 372),
    lambda: _social(6_000, attach=12, core_size=190, core_degree=46,
                    seed=113),
)
_register(
    "wikipedia-link-de", "Web Graph",
    _P(3_603_726, 96_865_851, 53.8, 498, 434_234, 837),
    lambda: _skewed_web(4_000, rmat_scale=12, edge_factor=23.0,
                        core_size=240, core_degree=66, seed=114),
)
_register(
    "hollywood-2009", "Collaboration",
    _P(1_139_905, 113_891_327, 199.8, 272, 11_467, 2_208),
    lambda: gen.union_graphs(
        gen.erdos_renyi(1_800, avg_degree=85.0, seed=115),
        gen.planted_core(1_800, core_size=260, core_degree=95,
                         background_degree=0.0, seed=116),
    ),
)
_register(
    "com-Orkut", "Social Network",
    _P(3_072_441, 117_185_083, 76.3, 155, 33_313, 253),
    lambda: _social(3_600, attach=30, core_size=180, core_degree=48,
                    seed=117),
)
_register(
    "trackers", "Web Graph",
    _P(27_665_730, 140_613_762, 10.2, 2_774, 11_571_953, 438),
    lambda: _tracker(22_000, seed=118),
)
_register(
    "indochina-2004", "Web Graph",
    _P(7_414_866, 194_109_311, 52.4, 391, 256_425, 6_869),
    lambda: _skewed_web(5_500, rmat_scale=12, edge_factor=31.0,
                        core_size=360, core_degree=120, seed=119),
)
_register(
    "uk-2002", "Web Graph",
    _P(18_520_486, 298_113_762, 32.2, 145, 194_955, 943),
    lambda: _skewed_web(12_000, rmat_scale=13, edge_factor=15.0,
                        core_size=260, core_degree=68, seed=120),
)
_register(
    "arabic-2005", "Web Graph",
    _P(22_744_080, 639_999_458, 56.3, 555, 575_628, 3_247),
    lambda: _skewed_web(9_000, rmat_scale=13, edge_factor=20.0,
                        core_size=330, core_degree=92, seed=121),
)
_register(
    "uk-2005", "Web Graph",
    _P(39_459_925, 936_364_282, 47.5, 1_536, 1_776_858, 588),
    lambda: gen.union_graphs(
        _skewed_web(16_000, rmat_scale=13, edge_factor=20.0,
                    core_size=230, core_degree=56, seed=122),
        gen.hub_and_spokes(16_000, num_hubs=2, hub_degree_fraction=0.35,
                           tail_degree=0.0, seed=123),
    ),
)
_register(
    "webbase-2001", "Web Graph",
    _P(118_142_155, 1_019_903_190, 17.3, 76, 263_176, 1_506),
    lambda: _skewed_web(36_000, rmat_scale=14, edge_factor=9.5,
                        core_size=300, core_degree=74, seed=124),
)
_register(
    "it-2004", "Web Graph",
    _P(41_291_594, 1_150_725_436, 55.7, 883, 1_326_744, 3_224),
    lambda: _skewed_web(11_000, rmat_scale=13, edge_factor=28.0,
                        core_size=340, core_degree=88, seed=125),
)


def dataset_names() -> Tuple[str, ...]:
    """All registered dataset names, in the paper's Table I order."""
    return tuple(DATASETS)


def small_dataset_names(limit: int = 8) -> Tuple[str, ...]:
    """The ``limit`` smallest analogues (by generated edge count proxy:
    registry order, which follows the paper's ascending-|E| order)."""
    return tuple(DATASETS)[:limit]


def get_spec(name: str) -> DatasetSpec:
    """Dataset spec by name; raises :class:`UnknownDatasetError`."""
    try:
        return DATASETS[name]
    except KeyError:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASETS)}"
        ) from None


@lru_cache(maxsize=None)
def load(name: str) -> CSRGraph:
    """Generate (and cache) the synthetic analogue for ``name``."""
    return get_spec(name).build()


def load_real(name: str, directory: str | Path) -> CSRGraph:
    """Load the *real* dataset from ``directory/<name>.txt[.gz]``.

    For users who have downloaded the original SNAP/KONECT files; the
    registry itself never touches the network.
    """
    get_spec(name)  # validate the name
    directory = Path(directory)
    for suffix in (".txt", ".txt.gz", ".edges", ".edges.gz"):
        candidate = directory / f"{name}{suffix}"
        if candidate.exists():
            return read_edgelist(candidate)
    raise FileNotFoundError(
        f"no edge-list file for {name!r} under {directory}"
    )
