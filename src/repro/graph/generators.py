"""Seeded synthetic graph generators.

These produce the scaled-down analogues of the paper's 20 datasets
(Table I).  Each generator controls the characteristics that drive the
paper's per-dataset behaviour:

* **average degree** and **degree skew** (standard deviation / hubs) —
  decide warp load balance and whether memory latency or computation
  dominates (the ``trackers`` effect in Table II);
* **k_max** — the number of peel rounds, hence kernel-launch counts and
  the round-to-lowest-core crossover (``indochina-2004`` runs 6,870
  rounds in the paper);
* **core density** — how much of the edge mass survives into deep cores.

All generators are deterministic given ``seed`` and return a simple
undirected :class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "power_law_configuration",
    "planted_core",
    "hub_and_spokes",
    "ring_of_cliques",
    "grid_2d",
    "random_tree",
    "union_graphs",
]


def _dedup_to_graph(edges: np.ndarray, num_vertices: int) -> CSRGraph:
    return CSRGraph.from_edges(edges, num_vertices=num_vertices)


def erdos_renyi(n: int, avg_degree: float, seed: int = 0) -> CSRGraph:
    """G(n, m) random graph with expected average degree ``avg_degree``.

    Samples ``m = n * avg_degree / 2`` endpoint pairs uniformly (with
    duplicate/self-loop cleanup by the CSR builder, so the realised
    average degree is marginally below the target).
    """
    rng = np.random.default_rng(seed)
    m = max(0, int(round(n * avg_degree / 2)))
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return _dedup_to_graph(edges, n)


def barabasi_albert(n: int, attach: int, seed: int = 0) -> CSRGraph:
    """Preferential-attachment graph: each new vertex attaches to
    ``attach`` existing vertices chosen proportionally to degree.

    Produces a heavy-tailed degree distribution like the paper's social
    and collaboration networks.
    """
    if n <= attach:
        raise ValueError(f"need n > attach, got n={n}, attach={attach}")
    rng = np.random.default_rng(seed)
    # Repeated-endpoint list: sampling uniformly from it is sampling
    # proportionally to degree (the standard BA trick).
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    seed_clique = attach + 1
    for u in range(seed_clique):
        for v in range(u + 1, seed_clique):
            edges.append((u, v))
            repeated.extend((u, v))
    for u in range(seed_clique, n):
        picks = {
            repeated[int(i)]
            for i in rng.integers(0, len(repeated), size=attach)
        }
        for v in picks:
            edges.append((u, v))
            repeated.extend((u, v))
    return _dedup_to_graph(np.asarray(edges, dtype=np.int64), n)


def rmat(
    scale: int,
    edge_factor: float = 8.0,
    probabilities: Sequence[float] = (0.57, 0.19, 0.19, 0.05),
    seed: int = 0,
) -> CSRGraph:
    """Recursive-matrix (R-MAT) generator: ``2**scale`` vertices and
    ``edge_factor * n`` directed samples made undirected.

    The default quadrant probabilities are the Graph500 values and give
    the skewed, community-rich structure of web crawls.
    """
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("R-MAT probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = int(round(edge_factor * n))
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # quadrant choice per edge per bit, vectorised
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        rows = (rows << 1) | go_down
        cols = (cols << 1) | go_right
    edges = np.column_stack([rows, cols])
    return _dedup_to_graph(edges, n)


def power_law_configuration(
    n: int,
    exponent: float = 2.5,
    d_min: int = 1,
    d_max: int | None = None,
    seed: int = 0,
) -> CSRGraph:
    """Configuration-model graph with power-law degrees
    ``P(d) ~ d**-exponent`` clipped to ``[d_min, d_max]``.

    Stubs are paired uniformly at random; self-loops and multi-edges are
    dropped by the CSR builder, so realised degrees are approximate.
    """
    rng = np.random.default_rng(seed)
    if d_max is None:
        d_max = max(d_min + 1, int(np.sqrt(n)))
    # inverse-CDF sampling of a discrete power law
    u = rng.random(n)
    lo = float(d_min) ** (1.0 - exponent)
    hi = float(d_max) ** (1.0 - exponent)
    degrees = np.floor((lo + u * (hi - lo)) ** (1.0 / (1.0 - exponent))).astype(
        np.int64
    )
    degrees = np.clip(degrees, d_min, d_max)
    if degrees.sum() % 2:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    edges = stubs.reshape(-1, 2)
    return _dedup_to_graph(edges, n)


def planted_core(
    n: int,
    core_size: int,
    core_degree: int,
    background_degree: float = 4.0,
    seed: int = 0,
) -> CSRGraph:
    """Graph with a planted dense nucleus, controlling ``k_max``.

    Vertices ``0 .. core_size-1`` form a random subgraph where each
    vertex picks ``core_degree`` partners within the nucleus, so the
    nucleus survives peeling to roughly ``k = core_degree`` and drives
    ``k_max``.  The remaining vertices form a sparse Erdős–Rényi
    background attached to the nucleus.
    """
    if core_size > n:
        raise ValueError("core_size must be <= n")
    rng = np.random.default_rng(seed)
    pieces = []
    if core_size > 1:
        deg = min(core_degree, core_size - 1)
        src = np.repeat(np.arange(core_size, dtype=np.int64), deg)
        dst = rng.integers(0, core_size, size=src.size, dtype=np.int64)
        pieces.append(np.column_stack([src, dst]))
    m_bg = int(round(n * background_degree / 2))
    if m_bg:
        pieces.append(rng.integers(0, n, size=(m_bg, 2), dtype=np.int64))
    edges = np.concatenate(pieces) if pieces else np.empty((0, 2), dtype=np.int64)
    return _dedup_to_graph(edges, n)


def hub_and_spokes(
    n: int,
    num_hubs: int = 4,
    hub_degree_fraction: float = 0.5,
    tail_degree: float = 2.0,
    seed: int = 0,
) -> CSRGraph:
    """Extreme-skew graph modelled on the paper's ``trackers`` dataset
    (average degree 10.2, degree std 2,774, max degree 11.57M).

    A handful of hub vertices connect to a large random fraction of all
    vertices; everything else is a sparse random tail.  The resulting
    degree standard deviation is orders of magnitude above the mean.
    """
    rng = np.random.default_rng(seed)
    pieces = []
    for h in range(num_hubs):
        fan = rng.choice(
            n, size=int(hub_degree_fraction * n / (h + 1)), replace=False
        ).astype(np.int64)
        pieces.append(np.column_stack([np.full(fan.size, h, dtype=np.int64), fan]))
    m_tail = int(round(n * tail_degree / 2))
    if m_tail:
        pieces.append(rng.integers(0, n, size=(m_tail, 2), dtype=np.int64))
    return _dedup_to_graph(np.concatenate(pieces), n)


def ring_of_cliques(num_cliques: int, clique_size: int) -> CSRGraph:
    """``num_cliques`` copies of ``K_clique_size`` joined in a ring.

    Every clique vertex has core number ``clique_size - 1``; a handy
    deterministic ground-truth graph for tests.
    """
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % num_cliques) * clique_size
        if num_cliques > 1:
            edges.append((base, nxt))
    return CSRGraph.from_edges(edges, num_vertices=num_cliques * clique_size)


def grid_2d(rows: int, cols: int) -> CSRGraph:
    """4-neighbour grid graph; core number 2 everywhere for grids >= 2x2."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return CSRGraph.from_edges(edges, num_vertices=rows * cols)


def random_tree(n: int, seed: int = 0) -> CSRGraph:
    """Uniform random recursive tree; every vertex has core number 1."""
    rng = np.random.default_rng(seed)
    if n <= 1:
        return CSRGraph.empty(n)
    parents = np.array(
        [int(rng.integers(0, v)) for v in range(1, n)], dtype=np.int64
    )
    edges = np.column_stack([np.arange(1, n, dtype=np.int64), parents])
    return _dedup_to_graph(edges, n)


def union_graphs(*graphs: CSRGraph) -> CSRGraph:
    """Edge-union of graphs over the same (maximal) vertex set."""
    n = max(g.num_vertices for g in graphs)
    pieces = [g.edge_array() for g in graphs if g.num_edges]
    edges = (
        np.concatenate(pieces) if pieces else np.empty((0, 2), dtype=np.int64)
    )
    return CSRGraph.from_edges(edges, num_vertices=n)
