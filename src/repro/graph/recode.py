"""Vertex-ID recoding (densification).

The paper assumes densely indexed vertex IDs and points to ID recoding
as the preprocessing step when they are not (Section IV, citing Blogel).
This module provides that step for arbitrary hashable labels and for
sparse integer IDs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["IdRecoder", "recode_ids", "recode_edge_array"]


class IdRecoder:
    """Bidirectional mapping between arbitrary labels and dense IDs.

    Labels are assigned dense IDs ``0, 1, 2, ...`` in first-seen order,
    which keeps the mapping deterministic for a given input order.
    """

    def __init__(self) -> None:
        self._to_dense: Dict[Hashable, int] = {}
        self._to_label: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._to_label)

    def encode(self, label: Hashable) -> int:
        """Dense ID for ``label``, assigning a fresh one on first sight."""
        dense = self._to_dense.get(label)
        if dense is None:
            dense = len(self._to_label)
            self._to_dense[label] = dense
            self._to_label.append(label)
        return dense

    def decode(self, dense: int) -> Hashable:
        """Original label for a dense ID."""
        return self._to_label[dense]

    def decode_many(self, dense_ids: Iterable[int]) -> List[Hashable]:
        """Original labels for a sequence of dense IDs."""
        return [self._to_label[i] for i in dense_ids]

    @property
    def labels(self) -> Sequence[Hashable]:
        """All labels in dense-ID order (read-only)."""
        return tuple(self._to_label)


def recode_ids(
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> Tuple[np.ndarray, IdRecoder]:
    """Recode labelled edges to a dense ``(m, 2)`` int64 edge array.

    Returns the edge array plus the :class:`IdRecoder` needed to map
    results (e.g. core numbers) back to the original labels.
    """
    recoder = IdRecoder()
    encoded = [(recoder.encode(u), recoder.encode(v)) for u, v in edges]
    if not encoded:
        return np.empty((0, 2), dtype=np.int64), recoder
    return np.asarray(encoded, dtype=np.int64), recoder


def recode_edge_array(edges: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Densify a sparse *integer* edge array.

    Returns ``(dense_edges, original_ids)`` where ``original_ids[d]`` is
    the original ID of dense vertex ``d``.  IDs keep their relative
    order, so results stay reproducible regardless of edge order.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2), np.empty(0, dtype=np.int64)
    original_ids = np.unique(edges)
    dense = np.searchsorted(original_ids, edges)
    return dense, original_ids
