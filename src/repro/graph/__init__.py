"""Graph substrate: CSR storage, IO, recoding, generators and datasets."""

from repro.graph.csr import CSRGraph
from repro.graph.io import read_edgelist, write_edgelist
from repro.graph.recode import IdRecoder, recode_edge_array, recode_ids

__all__ = [
    "CSRGraph",
    "read_edgelist",
    "write_edgelist",
    "IdRecoder",
    "recode_ids",
    "recode_edge_array",
]
