"""Live export surfaces for the obs stack.

Three consumers of a :class:`~repro.obs.tracer.Tracer` that do not go
through the Chrome-trace file format:

* **Artifact writer** — :func:`write_artifact` is the one shared sink
  for every CLI/gate JSON artifact (``--profile``, ``--ncu``,
  ``--memtrace``, ``--report``, the CI gates).  It creates parent
  directories and converts ``OSError`` into a clean one-line error on
  stderr instead of a traceback, returning ``False`` so callers can
  choose their exit code.
* **JSONL event stream** — :func:`events_to_jsonl` /
  :func:`write_jsonl` serialise the tracer's event list one JSON object
  per line (a format ``tail -f`` and log shippers understand), and
  :class:`JsonlSink` attaches to a tracer as a *live* sink so events
  stream out as they are recorded rather than at the end of the run.
* **Prometheus exposition** — :func:`prometheus_text` renders the flat
  counter registry in the Prometheus text format (one ``# TYPE`` line
  and one sample per counter), and :func:`start_metrics_server` serves
  it from a background thread at ``/metrics`` so a long-running
  process (the streaming/serving arc of the roadmap) can be scraped.

Everything here is observability-only: nothing mutates the tracer, and
a tracer with no sinks attached pays a single ``if not self._sinks``
test per event.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, IO, Iterable, Mapping, Optional

from repro.obs.tracer import Tracer, active_tracer

__all__ = [
    "write_artifact",
    "events_to_jsonl",
    "write_jsonl",
    "JsonlSink",
    "prometheus_text",
    "MetricsServer",
    "start_metrics_server",
]


# -- shared artifact writer --------------------------------------------------

def write_artifact(
    path: str, write: Callable[[str], None], label: str = "artifact"
) -> bool:
    """Run ``write(path)`` after creating parent directories.

    Returns ``True`` on success.  On ``OSError`` (unwritable directory,
    permission denied, disk full) prints a one-line ``error:`` message
    to stderr and returns ``False`` — callers turn that into their exit
    code instead of surfacing a traceback to the user.
    """
    try:
        parent = os.path.dirname(path)
        if parent and parent != ".":
            os.makedirs(parent, exist_ok=True)
        write(path)
    except OSError as exc:
        print(f"error: cannot write {label} to {path!r}: {exc}",
              file=sys.stderr)
        return False
    return True


# -- JSONL event stream ------------------------------------------------------

def _event_line(event: Mapping[str, Any]) -> str:
    """One event as a compact single-line JSON object."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def events_to_jsonl(events: Iterable[Mapping[str, Any]]) -> str:
    """Serialise ``events`` as newline-delimited JSON (one per line)."""
    lines = [_event_line(event) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path: str) -> None:
    """Write all of ``tracer``'s recorded events to ``path`` as JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(tracer.events))


class JsonlSink:
    """A live tracer sink that appends one JSON line per event.

    Attach with :meth:`~repro.obs.tracer.Tracer.add_sink`; events
    stream to the file *as they are recorded*.  Use as a context
    manager to pair attach/detach::

        tr = Tracer()
        with JsonlSink(tr, "events.jsonl"):
            ... run traced work ...
    """

    def __init__(self, tracer: Tracer, path: str) -> None:
        self.tracer = tracer
        self.path = path
        self._handle: Optional[IO[str]] = None

    def __call__(self, event: Mapping[str, Any]) -> None:
        if self._handle is not None:
            self._handle.write(_event_line(event) + "\n")
            self._handle.flush()

    def open(self) -> "JsonlSink":
        """Open the file and attach to the tracer."""
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
            self.tracer.add_sink(self)
        return self

    def close(self) -> None:
        """Detach from the tracer and close the file (idempotent)."""
        if self._handle is not None:
            self.tracer.remove_sink(self)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self.open()

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- Prometheus text exposition ----------------------------------------------

def _metric_name(counter: str, prefix: str) -> str:
    """``device.cycles`` -> ``repro_device_cycles`` (Prometheus rules)."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in counter
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{prefix}_{safe}" if prefix else safe


def prometheus_text(
    counters: Mapping[str, float], prefix: str = "repro"
) -> str:
    """Render a flat counter registry in the Prometheus text format.

    Counter names are sanitised (``.`` and other illegal characters
    become ``_``) and prefixed; every metric is exposed as a gauge
    because the registry holds point-in-time values (peaks, totals of a
    finished run).  Output is sorted by original counter name so the
    exposition is deterministic.
    """
    out: list[str] = []
    for name in sorted(counters):
        metric = _metric_name(name, prefix)
        value = float(counters[name])
        out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric} {value!r}")
    return "\n".join(out) + ("\n" if out else "")


# -- /metrics HTTP endpoint --------------------------------------------------

class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (Prometheus text) and ``/healthz``."""

    server: "_MetricsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] == "/metrics":
            # explicit None test: a tracer with counters but no events
            # yet is falsy (``__len__`` counts events) but must be used
            tracer = self.server.tracer
            if tracer is None:
                tracer = active_tracer()
            counters: Mapping[str, float] = (
                tracer.counters if tracer is not None else {}
            )
            body = prometheus_text(counters).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
        elif self.path.split("?", 1)[0] == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = b"not found\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request logging (it would pollute CLI output)."""


class _MetricsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the tracer for the handler."""

    daemon_threads = True

    def __init__(self, addr: tuple[str, int],
                 tracer: Optional[Tracer]) -> None:
        super().__init__(addr, _MetricsHandler)
        self.tracer = tracer


class MetricsServer:
    """A background ``/metrics`` endpoint over a tracer's counters.

    Serves the Prometheus text exposition of ``tracer.counters`` (or of
    the process-wide active tracer when constructed with
    ``tracer=None``, so counters recorded *after* the server starts are
    still visible).  The listening port is ``server.port`` — pass
    ``port=0`` to let the OS choose a free one.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _MetricsHTTPServer((host, port), tracer)
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """The ``/metrics`` URL this server answers on."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and join the background thread (idempotent)."""
        if self._thread.is_alive():
            self._server.shutdown()
            self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def start_metrics_server(
    tracer: Optional[Tracer] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> MetricsServer:
    """Start a background :class:`MetricsServer`; caller must ``close()``."""
    return MetricsServer(tracer=tracer, host=host, port=port)
