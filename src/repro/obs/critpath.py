"""Causal critical-path analysis with what-if projections.

The rest of the observability stack (tracer, profiler, memory tracker,
run reports) is *descriptive*: it reports where cycles went.  This
module is *causal*: it reconstructs the dependency DAG of one run —
host rounds -> kernel launches -> per-block timings, and per-worker
tracks for :func:`repro.core.multigpu.multi_gpu_peel` — computes the
critical path and per-span slack, and projects what the run *would*
have cost under counterfactuals ("what if atomics were free?  if every
access coalesced perfectly?  if the interconnect were infinite?").

Three properties make the analysis trustworthy rather than indicative:

**Exact accounting.**  Every figure in a ``repro.critpath/v1`` record
is re-derivable from the record itself, and :func:`validate_critpath`
re-derives all of them with *zero tolerance* — in the style of
:func:`repro.profile.validate_profile` and
:func:`repro.obs.runreport.validate_runreport`.  Exactness is achieved
by re-running the identical float operations in the identical order
the simulator used (the scheduler's round-robin SM fold, the device's
left-to-right cycle accumulation, the coordinator's bookkeeping
order), never by comparing algebraically-equivalent rearrangements.
In particular the per-track invariant *critical-path cycles + off-path
slack == elapsed* is enforced as ``off_path == elapsed - on_path`` —
the very subtraction that produced the stored slack.

**Bracketed projections.**  Every what-if projection is clamped below
the measured time (a counterfactual that removes work can only help)
and checked against a *static floor certificate*: the contract
registry (:mod:`repro.staticheck.contracts`) lets a kernel declare
:class:`~repro.staticheck.bounds.KernelFloors` — work no counterfactual
can erase — and the projection must stay above it.  A kernel without a
floor (e.g. BFS) gets zero, keeping the bracket trivially valid, so
every kernel admitted via the registry inherits the analyzer with zero
analyzer edits.

**Causal attribution for multi-GPU.**  Each ``multi_gpu_peel``
sub-round is classified by the component that dominated it —
``compute`` (mean worker load + the coordinator's frontier filter),
``straggler`` (the gap between the slowest and the mean worker), or
``exchange`` (partition seeding + frontier gather/broadcast + core
merge) — the communication attribution ROADMAP item 5 asks for before
the partitioned engine lands.

See the "Critical path & what-if" section of ``docs/OBSERVABILITY.md``
and the CI gate ``scripts/check_critpath.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gpusim.costmodel import CostModel
from repro.gpusim.scheduler import KernelStats
from repro.gpusim.spec import DeviceSpec

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIOS",
    "ROUND_BOUND_CLASSES",
    "CritPathCollector",
    "CritPathReport",
    "build_multi_critpath",
    "kernel_floor_cycles",
    "validate_critpath",
    "render_critpath",
]

SCHEMA_VERSION = "repro.critpath/v1"

#: the counterfactuals the projection engine understands, and which
#: cost-model term each erases (see ``_project_block``):
#:
#: * ``free_atomics`` — atomic serialisation leaves the warp critical
#:   path (``latency -= atomic_cycles``, floored at zero);
#: * ``perfect_coalescing`` — every access takes its ideal transaction
#:   count (``memory -> min(memory, ideal_memory)``);
#: * ``zero_barriers`` — barrier generations cost nothing;
#: * ``infinite_interconnect`` — multi-GPU partition seeding and
#:   frontier/core exchange are free (a no-op for single-device runs);
#: * ``speed_of_light`` — all of the above at once.
SCENARIOS = (
    "free_atomics",
    "perfect_coalescing",
    "zero_barriers",
    "infinite_interconnect",
    "speed_of_light",
)

#: what dominated one multi-GPU sub-round
ROUND_BOUND_CLASSES = ("compute", "straggler", "exchange")

_BLOCK_FIELDS = (
    "compute", "memory", "latency", "barrier", "atomic", "ideal_memory",
)


# -- shared primitives -------------------------------------------------------
#
# Builder and validator both go through these helpers, so "re-derive"
# means literally re-running the same code over the stored record.


def _blocks_from_stats(
    stats: KernelStats, cost: CostModel
) -> List[List[float]]:
    """Precompute each block's cycle terms, in block order.

    A stored block is ``[compute, memory, latency, barrier, atomic,
    ideal_memory]`` — the first three are
    :meth:`CostModel.pipeline_terms` verbatim, ``barrier`` is the
    block's barrier cost (``barriers * barrier_cycles``), and the last
    two are the terms the what-if scenarios may erase (atomic stall
    cycles inside ``latency``; the perfectly-coalesced memory cost).
    """
    if stats.block_timings is None:
        raise ValueError(
            "critpath needs per-block timings: launch with a profiler "
            "attached (critpath implies profile)"
        )
    blocks: List[List[float]] = []
    for timing in stats.block_timings:
        compute, memory, latency = cost.pipeline_terms(timing)
        blocks.append([
            compute,
            memory,
            latency,
            timing.barriers * cost.barrier_cycles,
            timing.atomic_cycles,
            timing.mem_ideal_transactions * cost.mem_transaction_cycles,
        ])
    return blocks


def _scenario_flags(scenario: str) -> Tuple[bool, bool, bool, bool]:
    """``(free_atomics, perfect_coalescing, zero_barriers,
    infinite_interconnect)`` for one scenario name."""
    sol = scenario == "speed_of_light"
    return (
        sol or scenario == "free_atomics",
        sol or scenario == "perfect_coalescing",
        sol or scenario == "zero_barriers",
        sol or scenario == "infinite_interconnect",
    )


def _project_block(
    block: Sequence[float], atomics: bool, coalesce: bool, barriers: bool
) -> float:
    """One block's busy cycles under a counterfactual.

    With every flag off this reproduces
    :meth:`CostModel.block_cycles` bit for bit (same terms, same
    ``max``, same addition); each flag only ever shrinks a term, so the
    projection is monotonically below the measurement.
    """
    compute, memory, latency, barrier, atomic, ideal = block
    if atomics:
        latency = latency - atomic
        if latency < 0.0:
            latency = 0.0
    if coalesce and ideal < memory:
        memory = ideal
    if barriers:
        barrier = 0.0
    return max(compute, memory, latency) + barrier


def _fold_lanes(busies: Sequence[float], num_sms: int) -> List[float]:
    """The scheduler's round-robin SM assignment, verbatim
    (:meth:`CostModel.kernel_cycles`)."""
    lanes = [0.0] * max(1, num_sms)
    for i, busy in enumerate(busies):
        lanes[i % len(lanes)] += busy
    return lanes


def _project_launch(
    blocks: Sequence[Sequence[float]],
    num_sms: int,
    atomics: bool,
    coalesce: bool,
    barriers: bool,
) -> float:
    """One launch's kernel cycles under a counterfactual."""
    if not blocks:
        return 0.0
    return max(_fold_lanes(
        [_project_block(b, atomics, coalesce, barriers) for b in blocks],
        num_sms,
    ))


def _fold(values: Any) -> float:
    """Left-to-right float accumulation — the only summation this
    module uses, matching the simulator's ``+=`` loops."""
    acc = 0.0
    for value in values:
        acc += value
    return acc


def _classify_round(
    filter_cycles: float,
    seed_cycles: Sequence[float],
    worker_cycles: Sequence[float],
    exchange_cycles: float,
    num_devices: int,
) -> Dict[str, Any]:
    """Attribute one multi-GPU sub-round to its dominating component.

    * ``compute``  = mean worker load + the coordinator's frontier
      filter — the work an ideal, perfectly balanced, zero-exchange
      cluster would still do;
    * ``straggler`` = slowest worker minus the mean — pure imbalance;
    * ``exchange`` = partition seeding + frontier gather/broadcast +
      core merge — pure communication.

    The bound class is the argmax, ties resolved in that priority
    order.  Builder and validator share this function, so the gate's
    "pin each round's class" check is a re-derivation, not a heuristic.
    """
    mean = _fold(worker_cycles) / float(num_devices)
    peak = max(worker_cycles)
    compute = mean + filter_cycles
    straggler = peak - mean
    exchange = _fold(seed_cycles) + exchange_cycles
    bound = "compute"
    best = compute
    if straggler > best:
        bound, best = "straggler", straggler
    if exchange > best:
        bound, best = "exchange", exchange
    return {
        "compute_cycles": compute,
        "straggler_cycles": straggler,
        "exchange_total_cycles": exchange,
        "bound": bound,
        "critical_worker": list(worker_cycles).index(peak),
    }


def kernel_floor_cycles(
    name: str,
    cfg: Any,
    env: Optional[Mapping[str, float]],
    cost: CostModel,
    num_sms: int,
    launches: int,
) -> float:
    """Static floor (in cycles) for ``launches`` launches of kernel
    ``name`` — via the contract registry, so any admitted kernel that
    declares :class:`~repro.staticheck.bounds.KernelFloors` is floored
    and every other kernel gets the trivial zero."""
    if cfg is None or env is None:
        return 0.0
    from repro.staticheck import contracts
    from repro.staticheck.bounds import floor_cycles

    try:
        contract = contracts.kernel_contract(name)
    except KeyError:
        return 0.0
    if contract.floors is None:
        return 0.0
    floors = contract.floors(cfg)
    value = floor_cycles(floors, cost, env, num_sms)
    return value * float(launches) if floors.per_launch else value


# -- what-if projection (shared by builder and validator) --------------------


def _project_single(
    record: Mapping[str, Any], scenario: str
) -> Tuple[float, Dict[str, Dict[str, float]]]:
    """Projected total cycles + per-kernel breakdown for one scenario
    over a single-device record's nodes."""
    atomics, coalesce, barriers, _ = _scenario_flags(scenario)
    num_sms = int(record["clock"]["num_sms"])
    transform = atomics or coalesce or barriers
    # fold from the device's pre-run cycles, mirroring its own
    # accumulator, so an identity scenario reproduces the measured
    # clock bit for bit
    total = record["base"]["cycles"]
    per_kernel: Dict[str, Dict[str, float]] = {}
    for node in record["nodes"]:
        measured = node["cycles"]
        if transform:
            projected = _project_launch(
                node["blocks"], num_sms, atomics, coalesce, barriers
            )
            if projected > measured:
                projected = measured
        else:
            projected = measured
        total += projected
        agg = per_kernel.setdefault(
            node["name"],
            {"measured_cycles": 0.0, "projected_cycles": 0.0},
        )
        agg["measured_cycles"] += measured
        agg["projected_cycles"] += projected
    return total, per_kernel


def _project_multi(
    record: Mapping[str, Any], scenario: str
) -> Tuple[float, Dict[str, Dict[str, float]]]:
    """Projected coordinator cycles + per-kernel breakdown for one
    scenario over a multi-GPU record's rounds.

    Follows the coordinator's accumulation order exactly (filter,
    seeds, exchange, slowest worker), dropping the seeding and exchange
    terms under ``infinite_interconnect`` and re-timing each worker's
    kernel under the block-level flags.  A worker's launch overhead
    (its cycles beyond the kernel) is preserved; the projection is
    clamped at the measurement.
    """
    atomics, coalesce, barriers, interconnect = _scenario_flags(scenario)
    num_sms = int(record["clock"]["num_sms"])
    transform = atomics or coalesce or barriers
    total = 0.0
    per_kernel: Dict[str, Dict[str, float]] = {}
    for rnd in record["rounds"]:
        total += rnd["filter_cycles"]
        projected_workers: List[float] = []
        for worker, measured in enumerate(rnd["worker_cycles"]):
            launch = rnd["launches"][worker]
            if launch is None:
                projected_workers.append(measured)
                continue
            if transform:
                kernel = _project_launch(
                    launch["blocks"], num_sms, atomics, coalesce, barriers
                )
                residual = measured - launch["cycles"]
                if residual < 0.0:
                    residual = 0.0
                projected = residual + kernel
                if projected > measured:
                    projected = measured
            else:
                kernel = launch["cycles"]
                projected = measured
            projected_workers.append(projected)
            agg = per_kernel.setdefault(
                launch["kernel"],
                {"measured_cycles": 0.0, "projected_cycles": 0.0},
            )
            agg["measured_cycles"] += launch["cycles"]
            agg["projected_cycles"] += kernel
        if not interconnect:
            for seed in rnd["seed_cycles"]:
                total += seed
            total += rnd["exchange_cycles"]
        if projected_workers:
            total += max(projected_workers)
    return total, per_kernel


def _whatif_table(
    record: Mapping[str, Any],
    kernels: Mapping[str, Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """The ranked speedup-ceiling table, one row per scenario."""
    single = record["kind"] == "single"
    clock = record["clock"]
    measured_ms = record["elapsed_ms"]
    rows: List[Dict[str, Any]] = []
    floor_fold = _fold(agg["floor_cycles"] for agg in kernels.values())
    for scenario in SCENARIOS:
        if single:
            cycles, per_kernel = _project_single(record, scenario)
            projected_ms = (
                cycles / (clock["clock_ghz"] * 1e6)
                + record["kernel_launches"]
                * clock["kernel_launch_us"] / 1000.0
            )
            floor_ms = (
                (record["base"]["cycles"] + floor_fold)
                / (clock["clock_ghz"] * 1e6)
                + record["kernel_launches"]
                * clock["kernel_launch_us"] / 1000.0
            )
        else:
            cycles, per_kernel = _project_multi(record, scenario)
            projected_ms = cycles / (clock["clock_ghz"] * 1e6)
            floor_ms = floor_fold / (clock["clock_ghz"] * 1e6)
        for name, agg in per_kernel.items():
            agg["floor_cycles"] = kernels[name]["floor_cycles"]
        rows.append({
            "scenario": scenario,
            "measured_ms": measured_ms,
            "projected_cycles": cycles,
            "projected_ms": projected_ms,
            "floor_ms": floor_ms,
            "speedup_ceiling": (
                measured_ms / projected_ms if projected_ms > 0.0 else 1.0
            ),
            "per_kernel": per_kernel,
        })
    rows.sort(key=lambda row: (-row["speedup_ceiling"], row["scenario"]))
    return rows


# -- single-device collector -------------------------------------------------


@dataclass
class CritPathCollector:
    """Accumulates the causal record of one single-device host run.

    The host calls :meth:`observe_launch` after every
    :meth:`~repro.gpusim.device.Device.launch` (with a profiler
    attached, so per-block timings ride along on the stats) and
    :meth:`build` once the device clock is final.  ``cfg``/``env`` feed
    the contract registry's floor certificates; without them every
    floor is zero.
    """

    spec: DeviceSpec
    cost: CostModel
    algorithm: str
    variant: str
    track: str = "device"
    cfg: Any = None
    env: Optional[Mapping[str, float]] = None
    base_cycles: float = 0.0
    base_launches: int = 0
    _nodes: List[Dict[str, Any]] = field(default_factory=list)

    def observe_launch(
        self, name: str, stats: KernelStats, round_index: Any = None
    ) -> None:
        """Record one kernel launch as the next node of the serial
        dependency chain."""
        node_id = len(self._nodes)
        self._nodes.append({
            "id": node_id,
            "kind": "kernel",
            "name": name,
            "round": round_index,
            "track": self.track,
            "deps": [node_id - 1] if node_id else [],
            "cycles": stats.cycles,
            "blocks": _blocks_from_stats(stats, self.cost),
        })

    def build(self, elapsed_ms: float, kernel_launches: int) -> "CritPathReport":
        """Finalise the record: lanes, slack, accounting, floors and
        the ranked what-if table."""
        num_sms = self.spec.num_sms
        window = 0.0
        total = self.base_cycles
        lane_slack_total = 0.0
        kernels: Dict[str, Dict[str, Any]] = {}
        for node in self._nodes:
            cycles = node["cycles"]
            lanes = _fold_lanes(
                [max(b[0], b[1], b[2]) + b[3] for b in node["blocks"]],
                num_sms,
            )
            node["lanes"] = [
                {
                    "sm": sm,
                    "cycles": lane,
                    "slack_cycles": cycles - lane,
                    "critical": lane == cycles,
                }
                for sm, lane in enumerate(lanes)
            ]
            node["lane_slack_cycles"] = _fold(
                cycles - lane for lane in lanes
            )
            # the chain is serial: every launch gates the next, so every
            # node is on the path and inter-node slack is zero — the
            # interesting slack lives inside the launch, across SM lanes
            node["critical"] = True
            node["slack_cycles"] = 0.0
            window += cycles
            total += cycles
            lane_slack_total += node["lane_slack_cycles"]
            agg = kernels.setdefault(node["name"], {
                "launches": 0, "cycles": 0.0, "lane_slack_cycles": 0.0,
            })
            agg["launches"] += 1
            agg["cycles"] += cycles
            agg["lane_slack_cycles"] += node["lane_slack_cycles"]
        for name, agg in kernels.items():
            agg["floor_cycles"] = kernel_floor_cycles(
                name, self.cfg, self.env, self.cost, num_sms,
                agg["launches"],
            )
        record: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "kind": "single",
            "algorithm": self.algorithm,
            "variant": self.variant,
            "elapsed_ms": elapsed_ms,
            "kernel_launches": kernel_launches,
            "base": {
                "cycles": self.base_cycles,
                "launches": self.base_launches,
            },
            "clock": {
                "clock_ghz": self.cost.clock_ghz,
                "kernel_launch_us": self.cost.kernel_launch_us,
                "issue_width": self.cost.issue_width,
                "mem_transaction_cycles": self.cost.mem_transaction_cycles,
                "barrier_cycles": self.cost.barrier_cycles,
                "num_sms": num_sms,
            },
            "nodes": self._nodes,
            "critical_path": [node["id"] for node in self._nodes],
            "tracks": [{
                "track": self.track,
                "busy_cycles": window,
                "idle_cycles": window - window,
                "on_path_cycles": window,
                "off_path_cycles": window - window,
            }],
            "accounting": {
                "window_cycles": window,
                "total_cycles": total,
                "lane_slack_cycles": lane_slack_total,
            },
            "kernels": kernels,
            "rounds": [],
        }
        record["whatif"] = _whatif_table(record, kernels)
        return CritPathReport(record)


# -- multi-GPU builder -------------------------------------------------------


def _multi_nodes(
    rounds: Sequence[Mapping[str, Any]], num_devices: int
) -> Tuple[List[Dict[str, Any]], List[int]]:
    """The causal DAG of a multi-GPU run, derived from its rounds.

    Per sub-round: a coordinator ``filter`` node, one ``seed`` node per
    worker (the coordinator is serial, so these chain), one ``worker``
    node per device (gated by its seed; only the slowest is on the
    path), and an ``exchange`` join node gated by every worker.
    """
    nodes: List[Dict[str, Any]] = []
    path: List[int] = []

    def add(node: Dict[str, Any], on_path: bool) -> int:
        node["id"] = len(nodes)
        nodes.append(node)
        if on_path:
            path.append(node["id"])
        return node["id"]

    prev_master = -1
    for rnd in rounds:
        k = rnd["k"]
        peak = max(rnd["worker_cycles"])
        critical_worker = rnd["critical_worker"]
        prev_master = add({
            "kind": "filter",
            "name": f"filter k={k}",
            "round": k,
            "track": "master",
            "deps": [prev_master] if prev_master >= 0 else [],
            "cycles": rnd["filter_cycles"],
            "critical": True,
            "slack_cycles": 0.0,
        }, on_path=True)
        worker_ids: List[int] = []
        for worker in range(num_devices):
            launch = rnd["launches"][worker]
            track = (
                launch["device"] if launch is not None else f"gpu{worker}"
            )
            prev_master = add({
                "kind": "seed",
                "name": f"seed {track} k={k}",
                "round": k,
                "track": "master",
                "worker": worker,
                "deps": [prev_master],
                "cycles": rnd["seed_cycles"][worker],
                "critical": True,
                "slack_cycles": 0.0,
            }, on_path=True)
            worker_ids.append(add({
                "kind": "worker",
                "name": (
                    f"{launch['kernel']} k={k}" if launch is not None
                    else f"idle k={k}"
                ),
                "round": k,
                "track": track,
                "worker": worker,
                "deps": [prev_master],
                "cycles": rnd["worker_cycles"][worker],
                "critical": worker == critical_worker,
                "slack_cycles": peak - rnd["worker_cycles"][worker],
            }, on_path=False))
        path.append(worker_ids[critical_worker])
        prev_master = add({
            "kind": "exchange",
            "name": f"exchange k={k}",
            "round": k,
            "track": "master",
            "deps": [prev_master] + worker_ids,
            "cycles": rnd["exchange_cycles"],
            "critical": True,
            "slack_cycles": 0.0,
        }, on_path=True)
    return nodes, path


def _multi_accounting(
    rounds: Sequence[Mapping[str, Any]]
) -> float:
    """The coordinator's cycle accumulation, re-folded in its exact
    bookkeeping order: filter, seeds, exchange, slowest worker."""
    total = 0.0
    for rnd in rounds:
        total += rnd["filter_cycles"]
        for seed in rnd["seed_cycles"]:
            total += seed
        total += rnd["exchange_cycles"]
        worker_cycles = rnd["worker_cycles"]
        if worker_cycles:
            total += max(worker_cycles)
    return total


def _multi_tracks(
    rounds: Sequence[Mapping[str, Any]],
    num_devices: int,
    total: float,
    worker_names: Sequence[str],
) -> List[Dict[str, Any]]:
    """Per-track busy/idle and on-/off-path accounting."""
    master_busy = 0.0
    worker_busy = [0.0] * num_devices
    worker_on_path = [0.0] * num_devices
    for rnd in rounds:
        master_busy += rnd["filter_cycles"]
        for seed in rnd["seed_cycles"]:
            master_busy += seed
        master_busy += rnd["exchange_cycles"]
        for worker, cycles in enumerate(rnd["worker_cycles"]):
            worker_busy[worker] += cycles
            if worker == rnd["critical_worker"]:
                worker_on_path[worker] += cycles
    tracks = [{
        "track": "master",
        "busy_cycles": master_busy,
        "idle_cycles": total - master_busy,
        "on_path_cycles": master_busy,
        "off_path_cycles": total - master_busy,
    }]
    for worker in range(num_devices):
        tracks.append({
            "track": worker_names[worker],
            "busy_cycles": worker_busy[worker],
            "idle_cycles": total - worker_busy[worker],
            "on_path_cycles": worker_on_path[worker],
            "off_path_cycles": total - worker_on_path[worker],
        })
    return tracks


def build_multi_critpath(
    *,
    algorithm: str,
    variant: str,
    num_devices: int,
    rounds: Sequence[Dict[str, Any]],
    elapsed_ms: float,
    spec: DeviceSpec,
    cost: CostModel,
    transfer_cycles_per_word: float,
    reduce_cycles_per_word: float,
    worker_names: Sequence[str],
    cfg: Any = None,
    env: Optional[Mapping[str, float]] = None,
) -> "CritPathReport":
    """Finalise the causal record of one ``multi_gpu_peel`` run.

    ``rounds`` carries, per sub-round, the coordinator's raw cost
    components (``k``, ``frontier``, ``filter_cycles``,
    ``seed_cycles``, ``worker_cycles``, ``exchange_cycles``) and per
    worker either ``None`` or ``{"device", "kernel", "stats"}`` under
    ``"launches"`` — the builder converts the stats into stored block
    terms, classifies every round, and assembles DAG, tracks,
    accounting and the what-if table.
    """
    kernels: Dict[str, Dict[str, Any]] = {}
    for rnd in rounds:
        rnd.update(_classify_round(
            rnd["filter_cycles"], rnd["seed_cycles"],
            rnd["worker_cycles"], rnd["exchange_cycles"], num_devices,
        ))
        launches: List[Optional[Dict[str, Any]]] = []
        for raw in rnd["launches"]:
            if raw is None:
                launches.append(None)
                continue
            stats = raw["stats"]
            launches.append({
                "device": raw["device"],
                "kernel": raw["kernel"],
                "cycles": stats.cycles,
                "blocks": _blocks_from_stats(stats, cost),
            })
            agg = kernels.setdefault(raw["kernel"], {
                "launches": 0, "cycles": 0.0, "lane_slack_cycles": 0.0,
            })
            agg["launches"] += 1
            agg["cycles"] += stats.cycles
        rnd["launches"] = launches
    for name, agg in kernels.items():
        # a D-way partition sweeps the same total adjacency, so the
        # makespan floor is the run-level work floor spread over D
        # workers (busiest worker >= mean)
        agg["floor_cycles"] = kernel_floor_cycles(
            name, cfg, env, cost, spec.num_sms, agg["launches"],
        ) / float(num_devices)
    total = _multi_accounting(rounds)
    nodes, path = _multi_nodes(rounds, num_devices)
    histogram = {cls: 0 for cls in ROUND_BOUND_CLASSES}
    for rnd in rounds:
        histogram[rnd["bound"]] += 1
    record: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": "multi",
        "algorithm": algorithm,
        "variant": variant,
        "num_devices": num_devices,
        "elapsed_ms": elapsed_ms,
        "clock": {
            "clock_ghz": cost.clock_ghz,
            "kernel_launch_us": cost.kernel_launch_us,
            "issue_width": cost.issue_width,
            "mem_transaction_cycles": cost.mem_transaction_cycles,
            "barrier_cycles": cost.barrier_cycles,
            "num_sms": spec.num_sms,
            "transfer_cycles_per_word": transfer_cycles_per_word,
            "reduce_cycles_per_word": reduce_cycles_per_word,
        },
        "rounds": list(rounds),
        "round_bounds": histogram,
        "nodes": nodes,
        "critical_path": path,
        "tracks": _multi_tracks(
            rounds, num_devices, total, worker_names
        ),
        "accounting": {
            "window_cycles": total,
            "total_cycles": total,
        },
        "kernels": kernels,
    }
    record["whatif"] = _whatif_table(record, kernels)
    return CritPathReport(record)


# -- validation --------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_whatif(
    record: Mapping[str, Any], problems: List[str]
) -> None:
    rows = record.get("whatif")
    if not isinstance(rows, list):
        problems.append("whatif must be a list")
        return
    seen = [row.get("scenario") for row in rows]
    if sorted(seen) != sorted(SCENARIOS):
        problems.append(
            f"whatif must cover exactly {SCENARIOS}, got {seen}"
        )
        return
    ceilings = [row["speedup_ceiling"] for row in rows]
    if ceilings != sorted(ceilings, reverse=True):
        problems.append("whatif rows must be ranked by speedup ceiling")
    kernels = record["kernels"]
    floor_fold = _fold(agg["floor_cycles"] for agg in kernels.values())
    clock = record["clock"]
    for row in rows:
        scenario = row["scenario"]
        where = f"whatif[{scenario}]"
        if row["measured_ms"] != record["elapsed_ms"]:
            problems.append(
                f"{where}: measured_ms != record elapsed_ms"
            )
        if record["kind"] == "single":
            cycles, per_kernel = _project_single(record, scenario)
            projected_ms = (
                cycles / (clock["clock_ghz"] * 1e6)
                + record["kernel_launches"]
                * clock["kernel_launch_us"] / 1000.0
            )
            floor_ms = (
                (record["base"]["cycles"] + floor_fold)
                / (clock["clock_ghz"] * 1e6)
                + record["kernel_launches"]
                * clock["kernel_launch_us"] / 1000.0
            )
        else:
            cycles, per_kernel = _project_multi(record, scenario)
            projected_ms = cycles / (clock["clock_ghz"] * 1e6)
            floor_ms = floor_fold / (clock["clock_ghz"] * 1e6)
        if row["projected_cycles"] != cycles:
            problems.append(
                f"{where}: projected_cycles {row['projected_cycles']!r} "
                f"!= re-derived {cycles!r}"
            )
        if row["projected_ms"] != projected_ms:
            problems.append(
                f"{where}: projected_ms {row['projected_ms']!r} != "
                f"re-derived {projected_ms!r}"
            )
        if row["floor_ms"] != floor_ms:
            problems.append(
                f"{where}: floor_ms {row['floor_ms']!r} != re-derived "
                f"{floor_ms!r}"
            )
        if row["projected_ms"] > row["measured_ms"]:
            problems.append(
                f"{where}: projection {row['projected_ms']!r} exceeds "
                f"measured {row['measured_ms']!r}"
            )
        if row["floor_ms"] > row["projected_ms"]:
            problems.append(
                f"{where}: projection {row['projected_ms']!r} "
                f"undershoots static floor {row['floor_ms']!r}"
            )
        expected_ceiling = (
            row["measured_ms"] / row["projected_ms"]
            if row["projected_ms"] > 0.0 else 1.0
        )
        if row["speedup_ceiling"] != expected_ceiling:
            problems.append(
                f"{where}: speedup_ceiling != measured/projected"
            )
        stored_pk = row["per_kernel"]
        for name, agg in per_kernel.items():
            agg["floor_cycles"] = kernels[name]["floor_cycles"]
        if stored_pk != per_kernel:
            problems.append(
                f"{where}: per-kernel breakdown does not re-derive"
            )


def _validate_single(
    record: Mapping[str, Any], problems: List[str]
) -> None:
    clock = record["clock"]
    num_sms = int(clock["num_sms"])
    nodes = record["nodes"]
    window = 0.0
    total = record["base"]["cycles"]
    lane_slack_total = 0.0
    kernels: Dict[str, Dict[str, Any]] = {}
    for i, node in enumerate(nodes):
        where = f"nodes[{i}]"
        if node["id"] != i or node["deps"] != ([i - 1] if i else []):
            problems.append(f"{where}: broken serial dependency chain")
        if not node["critical"] or node["slack_cycles"] != 0.0:
            problems.append(
                f"{where}: a serial launch chain has every node on the "
                "path with zero slack"
            )
        cycles = node["cycles"]
        lanes = _fold_lanes(
            [max(b[0], b[1], b[2]) + b[3] for b in node["blocks"]],
            num_sms,
        )
        if cycles != max(lanes):
            problems.append(
                f"{where}: cycles {cycles!r} != busiest SM lane "
                f"{max(lanes)!r} re-derived from block terms"
            )
        stored_lanes = node["lanes"]
        if len(stored_lanes) != len(lanes):
            problems.append(f"{where}: lane count mismatch")
        else:
            for sm, lane in enumerate(lanes):
                stored = stored_lanes[sm]
                if (
                    stored["cycles"] != lane
                    or stored["slack_cycles"] != cycles - lane
                    or stored["critical"] != (lane == cycles)
                ):
                    problems.append(
                        f"{where}: lane {sm} does not re-derive"
                    )
                    break
        lane_slack = _fold(cycles - lane for lane in lanes)
        if node["lane_slack_cycles"] != lane_slack:
            problems.append(f"{where}: lane_slack_cycles mismatch")
        window += cycles
        total += cycles
        lane_slack_total += lane_slack
        agg = kernels.setdefault(node["name"], {
            "launches": 0, "cycles": 0.0, "lane_slack_cycles": 0.0,
        })
        agg["launches"] += 1
        agg["cycles"] += cycles
        agg["lane_slack_cycles"] += lane_slack
    if record["critical_path"] != [node["id"] for node in nodes]:
        problems.append(
            "critical_path must chain every launch of a serial run"
        )
    accounting = record["accounting"]
    if accounting["window_cycles"] != window:
        problems.append(
            f"accounting.window_cycles {accounting['window_cycles']!r} "
            f"!= re-folded launch cycles {window!r}"
        )
    if accounting["total_cycles"] != total:
        problems.append(
            f"accounting.total_cycles {accounting['total_cycles']!r} "
            f"!= base + re-folded launch cycles {total!r}"
        )
    if accounting["lane_slack_cycles"] != lane_slack_total:
        problems.append("accounting.lane_slack_cycles mismatch")
    launches = record["base"]["launches"] + len(nodes)
    if record["kernel_launches"] != launches:
        problems.append(
            f"kernel_launches {record['kernel_launches']} != base + "
            f"observed nodes {launches}"
        )
    elapsed = (
        total / (clock["clock_ghz"] * 1e6)
        + record["kernel_launches"] * clock["kernel_launch_us"] / 1000.0
    )
    if record["elapsed_ms"] != elapsed:
        problems.append(
            f"elapsed_ms {record['elapsed_ms']!r} != re-derived kernel "
            f"time + launch overhead {elapsed!r}"
        )
    stored_kernels = record["kernels"]
    if set(stored_kernels) != set(kernels):
        problems.append("kernels table does not match observed launches")
    else:
        for name, agg in kernels.items():
            stored = stored_kernels[name]
            agg["floor_cycles"] = stored.get("floor_cycles")
            if stored != agg:
                problems.append(
                    f"kernels[{name}]: aggregates do not re-derive"
                )
            if not _is_number(stored.get("floor_cycles")) or (
                stored["floor_cycles"] < 0.0
            ):
                problems.append(
                    f"kernels[{name}]: floor_cycles must be a "
                    "non-negative number"
                )
    tracks = record["tracks"]
    if len(tracks) != 1:
        problems.append("a single-device record has exactly one track")
    else:
        track = tracks[0]
        expected = {
            "track": track["track"],
            "busy_cycles": window,
            "idle_cycles": window - window,
            "on_path_cycles": window,
            "off_path_cycles": window - window,
        }
        if track != expected:
            problems.append(
                "track accounting does not re-derive (busy == on_path "
                "== window, idle == off_path == 0)"
            )


def _validate_multi(
    record: Mapping[str, Any], problems: List[str]
) -> None:
    clock = record["clock"]
    num_sms = int(clock["num_sms"])
    num_devices = record["num_devices"]
    rounds = record["rounds"]
    if not rounds:
        problems.append("a multi-GPU record needs at least one round")
        return
    kernels: Dict[str, Dict[str, Any]] = {}
    histogram = {cls: 0 for cls in ROUND_BOUND_CLASSES}
    for i, rnd in enumerate(rounds):
        where = f"rounds[{i}]"
        for key in ("seed_cycles", "worker_cycles", "launches"):
            if len(rnd[key]) != num_devices:
                problems.append(
                    f"{where}: {key} must have one entry per device"
                )
                return
        derived = _classify_round(
            rnd["filter_cycles"], rnd["seed_cycles"],
            rnd["worker_cycles"], rnd["exchange_cycles"], num_devices,
        )
        for key, value in derived.items():
            if rnd.get(key) != value:
                problems.append(
                    f"{where}: {key} {rnd.get(key)!r} != re-derived "
                    f"{value!r}"
                )
        if rnd["bound"] not in ROUND_BOUND_CLASSES:
            problems.append(f"{where}: unclassified round")
        else:
            histogram[rnd["bound"]] += 1
        for worker, launch in enumerate(rnd["launches"]):
            if launch is None:
                continue
            lanes = _fold_lanes(
                [
                    max(b[0], b[1], b[2]) + b[3]
                    for b in launch["blocks"]
                ],
                num_sms,
            )
            if launch["cycles"] != max(lanes):
                problems.append(
                    f"{where}: worker {worker} launch cycles do not "
                    "re-derive from block terms"
                )
            agg = kernels.setdefault(launch["kernel"], {
                "launches": 0, "cycles": 0.0, "lane_slack_cycles": 0.0,
            })
            agg["launches"] += 1
            agg["cycles"] += launch["cycles"]
    if record.get("round_bounds") != histogram:
        problems.append(
            f"round_bounds {record.get('round_bounds')!r} != recounted "
            f"histogram {histogram!r}"
        )
    total = _multi_accounting(rounds)
    accounting = record["accounting"]
    if accounting["total_cycles"] != total:
        problems.append(
            f"accounting.total_cycles {accounting['total_cycles']!r} "
            f"!= coordinator re-fold {total!r}"
        )
    if accounting["window_cycles"] != total:
        problems.append("accounting.window_cycles != total_cycles")
    elapsed = total / (clock["clock_ghz"] * 1e6)
    if record["elapsed_ms"] != elapsed:
        problems.append(
            f"elapsed_ms {record['elapsed_ms']!r} != re-derived "
            f"coordinator time {elapsed!r}"
        )
    worker_names = [t["track"] for t in record["tracks"][1:]]
    nodes, path = _multi_nodes(rounds, num_devices)
    if record["nodes"] != nodes:
        problems.append("nodes do not re-derive from the round records")
    if record["critical_path"] != path:
        problems.append(
            "critical_path does not re-derive from the round records"
        )
    expected_tracks = _multi_tracks(
        rounds, num_devices, total, worker_names
    )
    if record["tracks"] != expected_tracks:
        problems.append(
            "track accounting does not re-derive (busy/idle and "
            "on-/off-path folds)"
        )
    stored_kernels = record["kernels"]
    if set(stored_kernels) != set(kernels):
        problems.append("kernels table does not match worker launches")
    else:
        for name, agg in kernels.items():
            stored = stored_kernels[name]
            agg["floor_cycles"] = stored.get("floor_cycles")
            if stored != agg:
                problems.append(
                    f"kernels[{name}]: aggregates do not re-derive"
                )
            if not _is_number(stored.get("floor_cycles")) or (
                stored["floor_cycles"] < 0.0
            ):
                problems.append(
                    f"kernels[{name}]: floor_cycles must be a "
                    "non-negative number"
                )


def validate_critpath(record: Mapping[str, Any]) -> List[str]:
    """Re-derive every figure of a ``repro.critpath/v1`` record.

    Returns human-readable problem strings (empty == valid).  All
    checks are **exact**: the validator re-runs the simulator's own
    float operations in their original order over the stored raw terms
    (per-block cycle terms, per-round coordinator components) and
    requires bit-equality — no tolerance anywhere.
    """
    problems: List[str] = []
    if record.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema must be {SCHEMA_VERSION!r}, got "
            f"{record.get('schema')!r}"
        )
        return problems
    kind = record.get("kind")
    if kind not in ("single", "multi"):
        problems.append(f"kind must be 'single' or 'multi', got {kind!r}")
        return problems
    clock = record.get("clock")
    required_clock = [
        "clock_ghz", "kernel_launch_us", "issue_width",
        "mem_transaction_cycles", "barrier_cycles", "num_sms",
    ]
    if kind == "multi":
        required_clock += [
            "transfer_cycles_per_word", "reduce_cycles_per_word",
        ]
    if not isinstance(clock, dict) or not all(
        _is_number(clock.get(key)) for key in required_clock
    ):
        problems.append(
            f"clock must carry numeric {required_clock}"
        )
        return problems
    if not _is_number(record.get("elapsed_ms")):
        problems.append("elapsed_ms must be a number")
        return problems
    try:
        if kind == "single":
            _validate_single(record, problems)
        else:
            _validate_multi(record, problems)
        _check_whatif(record, problems)
    except (KeyError, TypeError, IndexError) as exc:
        problems.append(
            f"malformed record: {type(exc).__name__}: {exc}"
        )
    return problems


# -- rendering ---------------------------------------------------------------


def render_critpath(record: Mapping[str, Any]) -> str:
    """A terminal-friendly summary of one critpath record."""
    lines: List[str] = []
    kind = record["kind"]
    lines.append(
        f"critical path — {record['algorithm']} "
        f"(variant {record['variant']}, {kind})"
    )
    lines.append(
        f"  elapsed {record['elapsed_ms']:.6f} ms simulated, "
        f"{len(record['nodes'])} node(s), "
        f"{len(record['critical_path'])} on the critical path"
    )
    for track in record["tracks"]:
        lines.append(
            f"  track {track['track']:>8}: "
            f"{track['on_path_cycles']:>14.1f} cycles on path, "
            f"{track['off_path_cycles']:>12.1f} off-path slack, "
            f"{track['idle_cycles']:>12.1f} idle"
        )
    lines.append("  kernel                launches          cycles"
                 "     static floor      lane slack")
    for name, agg in record["kernels"].items():
        lines.append(
            f"  {name:<22}{agg['launches']:>8}"
            f"{agg['cycles']:>16.1f}{agg['floor_cycles']:>17.1f}"
            f"{agg['lane_slack_cycles']:>16.1f}"
        )
    if kind == "multi":
        histogram = record["round_bounds"]
        total_rounds = len(record["rounds"])
        lines.append(
            f"  round attribution ({record['num_devices']} workers, "
            f"{total_rounds} sub-round(s)): "
            + ", ".join(
                f"{histogram[cls]} {cls}-bound"
                for cls in ROUND_BOUND_CLASSES
            )
        )
    lines.append(
        f"what-if speedup ceilings (measured "
        f"{record['elapsed_ms']:.6f} ms):"
    )
    for rank, row in enumerate(record["whatif"], start=1):
        note = ""
        if kind == "single" and row["scenario"] == "infinite_interconnect":
            note = "  (single device: no interconnect)"
        lines.append(
            f"  {rank}. {row['scenario']:<22}"
            f"{row['projected_ms']:>12.6f} ms   "
            f"{row['speedup_ceiling']:>7.3f}x ceiling   "
            f"(floor {row['floor_ms']:.6f} ms){note}"
        )
    return "\n".join(lines)


# -- report facade -----------------------------------------------------------


@dataclass(frozen=True)
class CritPathReport:
    """The finished analysis: a ``repro.critpath/v1`` record plus
    validation, rendering and export, attached to results as
    ``result.critpath``."""

    record: Dict[str, Any]

    @property
    def elapsed_ms(self) -> float:
        return float(self.record["elapsed_ms"])

    @property
    def whatif(self) -> List[Dict[str, Any]]:
        return list(self.record["whatif"])

    @property
    def rounds(self) -> List[Dict[str, Any]]:
        return list(self.record["rounds"])

    def to_json(self) -> Dict[str, Any]:
        return self.record

    def validate(self) -> List[str]:
        return validate_critpath(self.record)

    def render(self) -> str:
        return render_critpath(self.record)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.record, indent=1) + "\n", encoding="utf-8"
        )
