"""Chrome-trace ("Trace Event Format") schema validation.

The exporter in :mod:`repro.obs.tracer` emits the *JSON object format*:
``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}``
with complete (``X``), instant (``i``), counter (``C``) and metadata
(``M``) events — the subset both ``chrome://tracing`` and Perfetto
load.  :func:`validate_chrome_trace` checks an exported object against
that subset so tests (and the bench JSON validator) can fail fast on a
malformed export instead of producing a file Perfetto silently drops
events from.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["validate_chrome_trace"]

#: event phases the exporter emits
_PHASES = {"X", "i", "C", "M", "B", "E"}

_NUMERIC = (int, float)


def _check_event(event: Any, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing or empty 'name'")
    ph = event.get("ph")
    if ph not in _PHASES:
        errors.append(f"{where}: 'ph' must be one of {sorted(_PHASES)}, "
                      f"got {ph!r}")
        return
    if ph == "M":
        if not isinstance(event.get("args"), dict):
            errors.append(f"{where}: metadata event needs an 'args' object")
        return
    ts = event.get("ts")
    if not isinstance(ts, _NUMERIC) or isinstance(ts, bool):
        errors.append(f"{where}: 'ts' must be a number, got {ts!r}")
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{where}: {key!r} must be an integer")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, _NUMERIC) or isinstance(dur, bool):
            errors.append(f"{where}: complete event needs numeric 'dur'")
        elif dur < 0:
            errors.append(f"{where}: negative 'dur' {dur}")
    if ph == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"{where}: counter event needs non-empty 'args'")
        else:
            for key, value in args.items():
                if not isinstance(value, _NUMERIC) or isinstance(value, bool):
                    errors.append(
                        f"{where}: counter series {key!r} is not numeric"
                    )


def validate_chrome_trace(trace: Any) -> List[str]:
    """Validate an exported trace object; returns a list of problems.

    An empty list means the object conforms to the subset of the Trace
    Event Format documented in the module docstring.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object (the object format)"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace must have a 'traceEvents' list"]
    for index, event in enumerate(events):
        _check_event(event, index, errors)
    other = trace.get("otherData")
    if other is not None:
        if not isinstance(other, dict):
            errors.append("'otherData' must be an object")
        else:
            counters = other.get("counters")
            if counters is not None and not isinstance(counters, dict):
                errors.append("'otherData.counters' must be an object")
    return errors
