"""repro.obs — structured tracing & metrics for the simulated GPU stack.

The observability layer has two halves:

* :class:`~repro.obs.tracer.Tracer` — a low-overhead span/event/counter
  recorder.  Producers (the gpusim device, the host peel loop, the
  multicore CPU machine, the system emulations) emit spans on the
  *simulated* timeline and accumulate flat named counters; consumers
  read ``tracer.counters`` or export a Chrome-trace JSON timeline via
  :meth:`~repro.obs.tracer.Tracer.to_chrome_trace` /
  :meth:`~repro.obs.tracer.Tracer.write` and open it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
* module-level activation — ``start_tracing()`` installs a process-wide
  tracer that every subsequently created :class:`~repro.gpusim.device.
  Device` and :class:`~repro.multicore.machine.SimulatedMulticore`
  picks up, which is how ``python -m repro --profile`` traces any
  registered algorithm without threading a tracer through every
  signature.  ``KCoreDecomposer(trace=True)`` instead builds a private
  tracer per run and attaches it to the returned result.

Every hook is zero-cost when tracing is off: producers hold a single
``tracer`` attribute that is ``None`` by default, and every hot-path
hook is guarded by one ``is not None`` test — no event objects, no
string formatting, no allocation happens on the cold path.

See ``docs/OBSERVABILITY.md`` for the span/counter model, the full
counter catalogue, and a worked Perfetto example.
"""

from repro.obs.chrome import validate_chrome_trace
from repro.obs.critpath import (
    CritPathCollector,
    CritPathReport,
    build_multi_critpath,
    render_critpath,
    validate_critpath,
)
from repro.obs.export import (
    JsonlSink,
    MetricsServer,
    events_to_jsonl,
    prometheus_text,
    start_metrics_server,
    write_artifact,
    write_jsonl,
)
from repro.obs.runreport import (
    RunReport,
    collect_run_report,
    diff_runreports,
    render_runreport,
    validate_runreport,
)
from repro.obs.tracer import (
    Tracer,
    active_tracer,
    start_tracing,
    stop_tracing,
    tracing,
)

__all__ = [
    "CritPathCollector",
    "CritPathReport",
    "JsonlSink",
    "MetricsServer",
    "RunReport",
    "Tracer",
    "active_tracer",
    "build_multi_critpath",
    "collect_run_report",
    "diff_runreports",
    "events_to_jsonl",
    "prometheus_text",
    "render_critpath",
    "render_runreport",
    "start_metrics_server",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "validate_chrome_trace",
    "validate_critpath",
    "validate_runreport",
    "write_artifact",
    "write_jsonl",
]
