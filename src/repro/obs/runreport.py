"""The unified ``repro.runreport/v1`` per-run artifact.

A :class:`RunReport` merges every observability vertical — trace
counters, the roofline profile, the multicore epoch profile, memory
telemetry, sanitizer/staticheck findings, disk-I/O counters, and
engine/serving attribution — into one JSON record per run, with one
*section* per :class:`~repro.result.DecompositionResult`.  A single
report can therefore cover a GPU peel, a multicore baseline, and the
semi-external disk path side by side (``python -m repro --report
--algorithm gpu-ours,pkc,semi-external``).

What makes the report more than a bundle is
:func:`validate_runreport`: the validator re-derives every figure that
two layers report independently and requires them to agree **exactly**
(no tolerance).  The invariants only compare quantities produced by
the *same* float operations in the *same* order (or integer-valued
quantities), so exact equality is the correct contract — any drift
means an instrumentation bug, not rounding:

* ``memtrace.peak_bytes == peak_memory_bytes`` (and the embedded
  memtrace/profile records must pass their own validators);
* per-kernel profile cycles == the host's ``kernel.<k>.cycles``
  counters == the summed kernel-span cycles in the trace;
* scan+loop launch counters == ``device.kernel_launches`` == the sum
  of the per-tier ``engine.served.*`` attribution;
* multicore epochs tile ``[0, simulated_ms)`` contiguously, each
  epoch's end re-derives from its start + straggler terms + sync fee,
  and its bound class re-derives from the same terms;
* ``disk.page_in_bytes == disk.passes * disk.resident_peak_bytes``,
  and the traced ``disk.resident_bytes`` counter track peaks at
  exactly the resident high-water counter.

``repro obs diff OLD.json NEW.json`` (see :func:`diff_runreports`)
compares two reports section by section and flags regressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "RunReport",
    "section_from_result",
    "validate_runreport",
    "render_runreport",
    "diff_runreports",
    "collect_run_report",
]

SCHEMA_VERSION = "repro.runreport/v1"

#: multicore epoch bound classes, in tie-break priority order (must
#: match :data:`repro.multicore.profile.BOUND_CLASSES`)
_EPOCH_BOUNDS = ("compute", "atomic", "sync")


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and tuples to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _findings_summary(report: Any) -> Dict[str, Any]:
    """Compress a SanitizerReport-shaped object into counts."""
    record = report.to_dict()
    findings = record.get("findings", [])
    return {
        "clean": bool(record.get("clean", not findings)),
        "findings": len(findings),
        "errors": sum(1 for f in findings if f.get("severity") == "error"),
        "detectors": sorted({f["detector"] for f in findings}),
    }


def _trace_summary(trace: Any) -> Dict[str, Any]:
    """Fold a Tracer's events into the cross-checkable totals.

    ``kernel_span_cycles`` accumulates each kernel's span ``cycles``
    args in emission order — the same left-fold the host loop uses for
    its ``kernel.*.cycles`` counters, so the validator can require
    exact equality.  ``counter_track_peaks`` keeps the max sample per
    counter track (e.g. ``disk.resident_bytes``).
    """
    spans = 0
    kernel_cycles: Dict[str, float] = {}
    track_peaks: Dict[str, float] = {}
    for event in trace.events:
        kind = event["kind"]
        if kind == "span":
            spans += 1
            if event.get("cat") == "kernel":
                name = event["name"]
                cycles = event["args"].get("cycles")
                if cycles is not None:
                    kernel_cycles[name] = (
                        kernel_cycles.get(name, 0.0) + cycles
                    )
        elif kind == "counter":
            name = event["name"]
            value = float(event["value"])
            if name not in track_peaks or value > track_peaks[name]:
                track_peaks[name] = value
    return {
        "events": len(trace.events),
        "spans": spans,
        "kernel_span_cycles": kernel_cycles,
        "counter_track_peaks": track_peaks,
    }


def section_from_result(result: Any) -> Dict[str, Any]:
    """One report section from a :class:`~repro.result.
    DecompositionResult` — pure observation, no re-computation."""
    counters = {str(k): float(v) for k, v in result.counters.items()}
    section: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "simulated_ms": float(result.simulated_ms),
        "peak_memory_bytes": int(result.peak_memory_bytes),
        "rounds": int(result.rounds),
        "num_vertices": int(result.num_vertices),
        "kmax": int(result.kmax),
        "counters": counters,
        "stats": _jsonable(dict(result.stats)),
        "profile": None,
        "multicore": None,
        "memtrace": None,
        "sanitizer": None,
        "staticheck": None,
        "trace": None,
        "engine": None,
        "critpath": None,
    }
    profile = result.profile
    if profile is not None:
        record = profile.to_json()
        if record.get("schema") == "repro.cpu-epochs/v1":
            section["multicore"] = record
        else:
            section["profile"] = record
    if result.memtrace is not None:
        section["memtrace"] = result.memtrace.to_json()
    if result.critpath is not None:
        section["critpath"] = result.critpath.to_json()
    if result.sanitizer is not None:
        section["sanitizer"] = _findings_summary(result.sanitizer)
    if result.staticheck is not None:
        section["staticheck"] = _findings_summary(result.staticheck)
    if result.trace is not None:
        section["trace"] = _trace_summary(result.trace)
    served = {
        name.split("engine.served.", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("engine.served.")
    }
    engine_name = result.stats.get("engine") if result.stats else None
    if engine_name is not None or served:
        section["engine"] = {"name": engine_name, "served": served}
    return section


@dataclass(frozen=True)
class RunReport:
    """The unified per-run artifact; see the module docstring."""

    dataset: Optional[str] = None
    sections: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def from_result(
        cls, result: Any, dataset: Optional[str] = None
    ) -> "RunReport":
        """A single-section report for one result."""
        return cls.from_results([result], dataset=dataset)

    @classmethod
    def from_results(
        cls, results: Sequence[Any], dataset: Optional[str] = None
    ) -> "RunReport":
        """One section per result, in order."""
        return cls(
            dataset=dataset,
            sections=tuple(section_from_result(r) for r in results),
        )

    def section(self, algorithm: str) -> Optional[Dict[str, Any]]:
        """The first section for ``algorithm``, or ``None``."""
        for sec in self.sections:
            if sec["algorithm"] == algorithm:
                return sec
        return None

    def to_json(self) -> Dict[str, Any]:
        """The ``repro.runreport/v1`` record."""
        return {
            "schema": SCHEMA_VERSION,
            "dataset": self.dataset,
            "sections": [dict(sec) for sec in self.sections],
        }

    def validate(self) -> List[str]:
        """Problems with this report (empty == every invariant holds)."""
        return validate_runreport(self.to_json())

    def write(self, path: str) -> None:
        """Serialise :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)

    def render(self) -> str:
        """The ``--report`` console rendering."""
        return render_runreport(self.to_json())


# -- validation ---------------------------------------------------------------

def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_gpu_section(
    sec: Dict[str, Any], where: str, errors: List[str]
) -> None:
    """Cross-layer invariants of a GPU peel section (all exact)."""
    counters = sec["counters"]
    profile = sec.get("profile")
    trace = sec.get("trace")
    for phase in ("scan", "loop"):
        cycles = counters.get(f"kernel.{phase}.cycles")
        if cycles is None:
            continue
        kernel = f"{phase}_kernel"
        if profile is not None:
            agg = profile.get("kernels", {}).get(kernel)
            if agg is None:
                errors.append(
                    f"{where}: profile has no kernel {kernel!r} despite "
                    f"counter kernel.{phase}.cycles"
                )
            elif agg["cycles"] != cycles:
                errors.append(
                    f"{where}: profile cycles for {kernel!r} "
                    f"({agg['cycles']!r}) != counter kernel.{phase}."
                    f"cycles ({cycles!r})"
                )
        if trace is not None:
            span_cycles = trace.get("kernel_span_cycles", {}).get(kernel)
            if span_cycles != cycles:
                errors.append(
                    f"{where}: traced span cycles for {kernel!r} "
                    f"({span_cycles!r}) != counter kernel.{phase}."
                    f"cycles ({cycles!r})"
                )
    launches = counters.get("device.kernel_launches")
    if launches is not None:
        scan = counters.get("kernel.scan.launches")
        loop = counters.get("kernel.loop.launches")
        if scan is not None and loop is not None and scan + loop != launches:
            errors.append(
                f"{where}: kernel.scan.launches + kernel.loop.launches "
                f"({scan + loop!r}) != device.kernel_launches "
                f"({launches!r})"
            )
        served = [
            value for name, value in counters.items()
            if name.startswith("engine.served.")
        ]
        if served and sum(served) != launches:
            errors.append(
                f"{where}: engine.served.* sums to {sum(served)!r}, "
                f"device.kernel_launches is {launches!r}"
            )
    total = counters.get("frontier.total")
    if total is not None and total != sec["num_vertices"]:
        errors.append(
            f"{where}: frontier.total ({total!r}) != num_vertices "
            f"({sec['num_vertices']})"
        )
    if (
        profile is not None
        and counters.get("device.cycles") is not None
        and profile.get("launches")
        and all(l.get("source") == "simt" for l in profile["launches"])
    ):
        summary_cycles = profile.get("summary", {}).get("cycles")
        if summary_cycles != counters["device.cycles"]:
            errors.append(
                f"{where}: profile summary cycles ({summary_cycles!r}) "
                f"!= device.cycles ({counters['device.cycles']!r})"
            )


def _check_multicore_section(
    sec: Dict[str, Any], where: str, errors: List[str]
) -> None:
    """Epoch-timeline invariants of a multicore section (all exact)."""
    record = sec["multicore"]
    counters = sec["counters"]
    epochs = record.get("epochs", [])
    sync_us = record.get("sync_us", 0.0)
    threads = counters.get("cpu.threads")
    if threads is not None and threads != record.get("threads"):
        errors.append(
            f"{where}: cpu.threads counter ({threads!r}) != multicore "
            f"profile threads ({record.get('threads')!r})"
        )
    clock = 0.0
    for i, epoch in enumerate(epochs):
        here = f"{where}.multicore.epochs[{i}]"
        if epoch.get("index") != i:
            errors.append(f"{here}: index {epoch.get('index')!r} != {i}")
        start = epoch.get("start_ms")
        if start != clock:
            errors.append(
                f"{here}: starts at {start!r}, previous epoch ended at "
                f"{clock!r} (epochs must tile the timeline)"
            )
        end = start + (epoch["compute_ns"] + epoch["atomic_ns"]) / 1e6
        if epoch.get("sync"):
            end += sync_us / 1e3
        if end != epoch.get("end_ms"):
            errors.append(
                f"{here}: end_ms {epoch.get('end_ms')!r} does not "
                f"re-derive from start + straggler terms ({end!r})"
            )
        sync_ns = sync_us * 1000.0 if epoch.get("sync") else 0.0
        terms = (
            ("compute", epoch["compute_ns"]),
            ("atomic", epoch["atomic_ns"]),
            ("sync", sync_ns),
        )
        bound = max(terms, key=lambda kv: kv[1])[0]
        if epoch.get("bound") != bound:
            errors.append(
                f"{here}: bound {epoch.get('bound')!r} != re-derived "
                f"{bound!r}"
            )
        if epoch.get("bound") not in _EPOCH_BOUNDS:
            errors.append(
                f"{here}: unknown bound class {epoch.get('bound')!r}"
            )
        clock = epoch.get("end_ms", end)
    if epochs and clock != record.get("elapsed_ms"):
        errors.append(
            f"{where}: last epoch ends at {clock!r}, profile elapsed_ms "
            f"is {record.get('elapsed_ms')!r}"
        )
    if epochs and record.get("elapsed_ms") != sec["simulated_ms"]:
        errors.append(
            f"{where}: multicore elapsed_ms ({record.get('elapsed_ms')!r})"
            f" != section simulated_ms ({sec['simulated_ms']!r})"
        )
    barriers = counters.get("cpu.barriers")
    if barriers is not None:
        syncs = sum(1 for e in epochs if e.get("sync"))
        if syncs != barriers:
            errors.append(
                f"{where}: {syncs} sync epoch(s) but cpu.barriers is "
                f"{barriers!r}"
            )
    hist = record.get("bound_histogram")
    if hist is not None:
        derived: Dict[str, int] = {name: 0 for name in _EPOCH_BOUNDS}
        for epoch in epochs:
            bound = epoch.get("bound")
            if bound in derived:
                derived[bound] += 1
        if hist != derived:
            errors.append(
                f"{where}: bound_histogram {hist!r} != re-derived "
                f"{derived!r}"
            )


def _check_critpath_section(
    sec: Dict[str, Any], where: str, errors: List[str]
) -> None:
    """Critical-path invariants of a section (all exact): the embedded
    ``repro.critpath/v1`` record must pass its own validator, agree
    with the section clock, and re-state the host's per-kernel cycle
    and launch counters bit-for-bit (both sides accumulate the same
    per-launch ``stats.cycles`` in the same order)."""
    record = sec["critpath"]
    from repro.obs.critpath import validate_critpath

    for problem in validate_critpath(record):
        errors.append(f"{where}: critpath: {problem}")
    if record.get("elapsed_ms") != sec.get("simulated_ms"):
        errors.append(
            f"{where}: critpath elapsed_ms "
            f"({record.get('elapsed_ms')!r}) != section simulated_ms "
            f"({sec.get('simulated_ms')!r})"
        )
    counters = sec.get("counters", {})
    for name, agg in record.get("kernels", {}).items():
        short = name[: -len("_kernel")] if name.endswith("_kernel") else name
        cycles = counters.get(f"kernel.{short}.cycles")
        if cycles is not None and cycles != agg.get("cycles"):
            errors.append(
                f"{where}: critpath cycles for {name!r} "
                f"({agg.get('cycles')!r}) != counter kernel.{short}."
                f"cycles ({cycles!r})"
            )
        launches = counters.get(f"kernel.{short}.launches")
        if launches is not None and launches != agg.get("launches"):
            errors.append(
                f"{where}: critpath launches for {name!r} "
                f"({agg.get('launches')!r}) != counter kernel.{short}."
                f"launches ({launches!r})"
            )
    if record.get("kind") == "single":
        device_cycles = counters.get("device.cycles")
        total = record.get("accounting", {}).get("total_cycles")
        if device_cycles is not None and total != device_cycles:
            errors.append(
                f"{where}: critpath accounting total_cycles ({total!r}) "
                f"!= device.cycles ({device_cycles!r})"
            )
    else:
        stats = sec.get("stats", {})
        if "num_devices" in stats \
                and stats["num_devices"] != record.get("num_devices"):
            errors.append(
                f"{where}: critpath num_devices "
                f"({record.get('num_devices')!r}) != stats num_devices "
                f"({stats['num_devices']!r})"
            )


def _check_disk_section(
    sec: Dict[str, Any], where: str, errors: List[str]
) -> None:
    """Disk-I/O invariants of a semi-external section (all exact)."""
    counters = sec["counters"]
    passes = counters.get("disk.passes")
    page_in = counters.get("disk.page_in_bytes")
    resident = counters.get("disk.resident_peak_bytes")
    if passes is None or page_in is None or resident is None:
        errors.append(f"{where}: incomplete disk.* counters")
        return
    if page_in != passes * resident:
        errors.append(
            f"{where}: disk.page_in_bytes ({page_in!r}) != passes * "
            f"resident high-water ({passes * resident!r})"
        )
    stats = sec.get("stats", {})
    if "passes" in stats and stats["passes"] != passes:
        errors.append(
            f"{where}: disk.passes counter ({passes!r}) != stats passes "
            f"({stats['passes']!r})"
        )
    trace = sec.get("trace")
    if trace is not None:
        peak = trace.get("counter_track_peaks", {}).get(
            "disk.resident_bytes"
        )
        if peak is not None and peak != resident:
            errors.append(
                f"{where}: traced disk.resident_bytes peak ({peak!r}) "
                f"!= disk.resident_peak_bytes counter ({resident!r})"
            )


def validate_runreport(record: Any) -> List[str]:
    """Validate a parsed ``repro.runreport/v1`` record.

    Returns a list of problems; an empty list means the schema holds
    and every cross-layer consistency invariant holds **exactly**.
    """
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["run report must be a JSON object"]
    if record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION!r}, got "
            f"{record.get('schema')!r}"
        )
    dataset = record.get("dataset")
    if dataset is not None and not isinstance(dataset, str):
        errors.append("'dataset' must be a string or null")
    sections = record.get("sections")
    if not isinstance(sections, list) or not sections:
        errors.append("'sections' must be a non-empty list")
        return errors
    for index, sec in enumerate(sections):
        where = f"sections[{index}]"
        if not isinstance(sec, dict):
            errors.append(f"{where}: not an object")
            continue
        algorithm = sec.get("algorithm")
        if not isinstance(algorithm, str) or not algorithm:
            errors.append(f"{where}: missing 'algorithm'")
        else:
            where = f"sections[{index}] ({algorithm})"
        for key in ("simulated_ms", "peak_memory_bytes", "rounds",
                    "num_vertices", "kmax"):
            if not _is_number(sec.get(key)):
                errors.append(f"{where}: {key!r} must be a number")
        counters = sec.get("counters")
        if not isinstance(counters, dict):
            errors.append(f"{where}: 'counters' must be an object")
            continue
        for name, value in counters.items():
            if not _is_number(value):
                errors.append(
                    f"{where}: counter {name!r} is not numeric"
                )
        rounds = counters.get("host.rounds")
        if rounds is not None and rounds != sec.get("rounds"):
            errors.append(
                f"{where}: host.rounds counter ({rounds!r}) != rounds "
                f"({sec.get('rounds')!r})"
            )
        memtrace = sec.get("memtrace")
        if memtrace is not None:
            from repro.memtrace.report import validate_memtrace

            for problem in validate_memtrace(memtrace):
                errors.append(f"{where}: memtrace: {problem}")
            if memtrace.get("peak_bytes") != sec.get("peak_memory_bytes"):
                errors.append(
                    f"{where}: memtrace peak_bytes "
                    f"({memtrace.get('peak_bytes')!r}) != section "
                    f"peak_memory_bytes ({sec.get('peak_memory_bytes')!r})"
                )
        profile = sec.get("profile")
        if profile is not None:
            from repro.profile.report import validate_profile

            for problem in validate_profile(profile):
                errors.append(f"{where}: profile: {problem}")
        if "kernel.scan.cycles" in counters:
            _check_gpu_section(sec, where, errors)
        if sec.get("critpath") is not None:
            _check_critpath_section(sec, where, errors)
        if sec.get("multicore") is not None:
            _check_multicore_section(sec, where, errors)
        if "disk.passes" in counters:
            _check_disk_section(sec, where, errors)
    return errors


# -- rendering ----------------------------------------------------------------

def _fmt_bytes(nbytes: float) -> str:
    return f"{nbytes / (1024.0 * 1024.0):.2f} MB"


def render_runreport(record: Dict[str, Any]) -> str:
    """Console rendering of a run report (one block per section)."""
    dataset = record.get("dataset")
    title = "Run report"
    if dataset:
        title += f": {dataset}"
    lines = [title, "=" * max(24, len(title))]
    for sec in record.get("sections", []):
        counters = sec.get("counters", {})
        lines.append(
            f"\n[{sec.get('algorithm')}]  "
            f"{sec.get('simulated_ms', 0.0):.3f} ms simulated, "
            f"{sec.get('rounds')} round(s), kmax={sec.get('kmax')}, "
            f"peak {_fmt_bytes(sec.get('peak_memory_bytes', 0))}"
        )
        engine = sec.get("engine")
        if engine and engine.get("name"):
            served = engine.get("served", {})
            attribution = ", ".join(
                f"{tier}={int(count)}" for tier, count in sorted(
                    served.items()
                )
            )
            lines.append(
                f"  engine: {engine['name']}"
                + (f" (served: {attribution})" if attribution else "")
            )
        profile = sec.get("profile")
        if profile is not None:
            for name, agg in profile.get("kernels", {}).items():
                lines.append(
                    f"  kernel {name}: {agg['launches']} launch(es), "
                    f"{agg['cycles']:.0f} cycles, {agg['bound']}-bound"
                )
        multicore = sec.get("multicore")
        if multicore is not None:
            hist = multicore.get("bound_histogram", {})
            lines.append(
                f"  multicore: {multicore.get('threads')} thread(s), "
                f"{len(multicore.get('epochs', []))} epoch(s) — "
                + ", ".join(
                    f"{k}={v}" for k, v in hist.items()
                )
            )
        if "disk.passes" in counters:
            lines.append(
                "  disk: "
                f"{int(counters.get('disk.passes', 0))} pass(es), "
                f"{_fmt_bytes(counters.get('disk.page_in_bytes', 0))} "
                "paged in, "
                f"{_fmt_bytes(counters.get('disk.page_out_bytes', 0))} "
                "paged out, resident high-water "
                f"{_fmt_bytes(counters.get('disk.resident_peak_bytes', 0))}"
            )
        critpath = sec.get("critpath")
        if critpath is not None:
            whatif = critpath.get("whatif") or []
            top = whatif[0] if whatif else None
            line = (
                f"  critpath: {len(critpath.get('nodes', []))} node(s), "
                f"{len(critpath.get('critical_path', []))} on path"
            )
            if top is not None:
                line += (
                    f"; best ceiling {top['speedup_ceiling']:.3f}x "
                    f"({top['scenario']})"
                )
            lines.append(line)
            bounds = critpath.get("round_bounds")
            if bounds:
                lines.append(
                    "  round attribution: " + ", ".join(
                        f"{k}={v}" for k, v in bounds.items()
                    )
                )
        memtrace = sec.get("memtrace")
        if memtrace is not None:
            workers = memtrace.get("workers", [])
            allocs = sum(w.get("allocs", 0) for w in workers)
            lines.append(
                f"  memory: peak {_fmt_bytes(memtrace.get('peak_bytes', 0))}"
                f" across {len(workers)} worker(s), {allocs} allocation(s)"
            )
        for label in ("sanitizer", "staticheck"):
            summary = sec.get(label)
            if summary is not None:
                verdict = "clean" if summary.get("clean") else (
                    f"{summary.get('findings')} finding(s): "
                    + ", ".join(summary.get("detectors", []))
                )
                lines.append(f"  {label}: {verdict}")
        trace = sec.get("trace")
        if trace is not None:
            lines.append(
                f"  trace: {trace.get('events')} event(s), "
                f"{trace.get('spans')} span(s)"
            )
    return "\n".join(lines)


# -- diffing ------------------------------------------------------------------

def diff_runreports(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Tuple[str, bool]:
    """Compare two run reports; returns ``(rendered, has_regressions)``.

    A regression is any section where simulated time, device cycles or
    peak memory grew, or where a kernel/epoch bound class flipped.
    """
    lines: List[str] = []
    regressions = False
    old_secs = {s["algorithm"]: s for s in old.get("sections", [])}
    new_secs = {s["algorithm"]: s for s in new.get("sections", [])}
    for name in sorted(set(old_secs) | set(new_secs)):
        if name not in old_secs:
            lines.append(f"[{name}] only in NEW report")
            continue
        if name not in new_secs:
            lines.append(f"[{name}] only in OLD report")
            continue
        a, b = old_secs[name], new_secs[name]
        section_lines: List[str] = []
        metrics = [
            ("simulated_ms", a.get("simulated_ms"), b.get("simulated_ms"),
             "ms"),
            ("peak_memory_bytes", a.get("peak_memory_bytes"),
             b.get("peak_memory_bytes"), "B"),
            ("device.cycles", a.get("counters", {}).get("device.cycles"),
             b.get("counters", {}).get("device.cycles"), "cycles"),
            ("rounds", a.get("rounds"), b.get("rounds"), "rounds"),
        ]
        for label, old_v, new_v, unit in metrics:
            if old_v is None or new_v is None or old_v == new_v:
                continue
            pct = (
                100.0 * (new_v - old_v) / old_v if old_v else float("inf")
            )
            marker = "regressed" if new_v > old_v else "improved"
            if new_v > old_v:
                regressions = True
            section_lines.append(
                f"  {label}: {old_v!r} -> {new_v!r} {unit} "
                f"({pct:+.2f}%, {marker})"
            )
        old_bounds = {
            k: v.get("bound")
            for k, v in (a.get("profile") or {}).get("kernels", {}).items()
        }
        new_bounds = {
            k: v.get("bound")
            for k, v in (b.get("profile") or {}).get("kernels", {}).items()
        }
        for kernel in sorted(set(old_bounds) & set(new_bounds)):
            if old_bounds[kernel] != new_bounds[kernel]:
                regressions = True
                section_lines.append(
                    f"  kernel {kernel}: bound flipped "
                    f"{old_bounds[kernel]} -> {new_bounds[kernel]}"
                )
        old_whatif = {
            row["scenario"]: row.get("speedup_ceiling")
            for row in (a.get("critpath") or {}).get("whatif", [])
        }
        new_whatif = {
            row["scenario"]: row.get("speedup_ceiling")
            for row in (b.get("critpath") or {}).get("whatif", [])
        }
        for scenario in sorted(set(old_whatif) & set(new_whatif)):
            if old_whatif[scenario] != new_whatif[scenario]:
                # informational: a moved ceiling is a shifted bottleneck,
                # not by itself a regression
                section_lines.append(
                    f"  whatif {scenario}: ceiling "
                    f"{old_whatif[scenario]:.3f}x -> "
                    f"{new_whatif[scenario]:.3f}x"
                )
        old_rb = (a.get("critpath") or {}).get("round_bounds")
        new_rb = (b.get("critpath") or {}).get("round_bounds")
        if old_rb is not None and new_rb is not None and old_rb != new_rb:
            section_lines.append(
                f"  critpath round bounds: {old_rb!r} -> {new_rb!r}"
            )
        old_hist = (a.get("multicore") or {}).get("bound_histogram")
        new_hist = (b.get("multicore") or {}).get("bound_histogram")
        if old_hist is not None and new_hist is not None \
                and old_hist != new_hist:
            section_lines.append(
                f"  multicore bound histogram: {old_hist!r} -> "
                f"{new_hist!r}"
            )
        if section_lines:
            lines.append(f"[{name}]")
            lines.extend(section_lines)
        else:
            lines.append(f"[{name}] unchanged")
    if not lines:
        lines.append("no common sections")
    header = "Run-report diff" + (
        " — REGRESSIONS" if regressions else " — no regressions"
    )
    return "\n".join([header, "=" * len(header)] + lines), regressions


# -- collection ---------------------------------------------------------------

def collect_run_report(
    graph: Any,
    algorithms: Sequence[str],
    dataset: Optional[str] = None,
    trace: bool = True,
) -> Tuple["RunReport", List[Any]]:
    """Run ``algorithms`` over ``graph`` with full telemetry and merge
    the results into one report.

    Each algorithm gets every observability vertical it supports
    (profile, memtrace — per the :mod:`repro.api` capability sets),
    plus a fresh process-wide tracer per run when ``trace`` is on so
    the report's trace cross-checks are exercised; all of it is
    observability-only, so the results are byte-identical to plain
    runs.  Returns ``(report, results)``.
    """
    from repro import api  # lazy: api imports the world
    from repro.obs.tracer import start_tracing, stop_tracing

    results = []
    for name in algorithms:
        kwargs: Dict[str, Any] = {}
        if name in api.PROFILABLE:
            kwargs["profile"] = True
        if name in api.MEMTRACEABLE:
            kwargs["memtrace"] = True
        if name in api.CRITPATHABLE:
            kwargs["critpath"] = True
        if trace:
            start_tracing()  # a fresh tracer per run: no cross-talk
            try:
                results.append(api.decompose(graph, name, **kwargs))
            finally:
                stop_tracing()
        else:
            results.append(api.decompose(graph, name, **kwargs))
    return RunReport.from_results(results, dataset=dataset), results
