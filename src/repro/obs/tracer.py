"""The structured tracer: spans, instants, counter tracks, flat counters.

Model
-----

A :class:`Tracer` records *events on a timeline* plus *flat counters*:

* **span** — a named interval ``[ts, ts + dur)`` on one track.  Spans
  come from :meth:`Tracer.span` (a completed interval, the common case:
  the producer knows both clock readings) or a :meth:`Tracer.begin` /
  :meth:`Tracer.end` pair, which additionally enforces well-nested
  (LIFO) ordering per track — ending a span that is not the innermost
  open one on its track raises ``ValueError``.
* **instant** — a zero-duration marker (e.g. a ``malloc``).
* **counter sample** — a ``(name, ts, value)`` point; Perfetto renders
  these as a counter track (e.g. frontier size per peel round).
* **flat counters** — a ``name -> float`` dict accumulated with
  :meth:`Tracer.add` / :meth:`Tracer.peak`, independent of the
  timeline.  These are what producers fold into
  ``DecompositionResult.counters``.

Timeline and tracks
-------------------

``ts``/``dur`` are **simulated milliseconds** (the device or multicore
clock), not wall time — the trace answers "where did the simulated time
go", which is the quantity the paper's tables report.  Tracks are named
strings (``"device"``, ``"host"``, ``"cpu"``, ``"wall"``); the exporter
maps each distinct track to a Chrome-trace ``tid`` and emits metadata
events so Perfetto shows the names.

Activation
----------

``start_tracing()`` installs a module-global tracer that producers pick
up *at construction time*; ``stop_tracing()`` uninstalls and returns
it.  The :func:`tracing` context manager pairs the two.  Nothing in
this module is consulted on any hot path — producers cache the tracer
(or ``None``) in an attribute once.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Tracer",
    "SpanHandle",
    "active_tracer",
    "start_tracing",
    "stop_tracing",
    "tracing",
]

#: microseconds per simulated millisecond (Chrome-trace ``ts`` unit)
_US_PER_MS = 1000.0


class SpanHandle:
    """An open span returned by :meth:`Tracer.begin`; pass to ``end``."""

    __slots__ = ("name", "cat", "track", "ts_ms", "args")

    def __init__(
        self, name: str, cat: str, track: str, ts_ms: float,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.ts_ms = ts_ms
        self.args = args


class Tracer:
    """Span/counter recorder; see the module docstring for the model."""

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        #: recorded events, in emission order; each is a dict with at
        #: least ``kind`` (span | instant | counter), ``name``, ``ts``
        self._events: List[Dict[str, Any]] = []
        self._counters: Dict[str, float] = {}
        #: per-track stacks of open begin() spans, for nesting checks
        self._open: Dict[str, List[SpanHandle]] = {}
        #: live event sinks (e.g. a JSONL stream); empty on the hot path
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []

    # -- live sinks ----------------------------------------------------------

    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Attach ``sink``: called with each event dict as it is recorded."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Detach a previously attached sink (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def _emit(self, event: Dict[str, Any]) -> None:
        self._events.append(event)
        if self._sinks:
            for sink in self._sinks:
                sink(event)

    # -- spans ---------------------------------------------------------------

    def span(
        self,
        name: str,
        ts_ms: float,
        dur_ms: float,
        cat: str = "host",
        track: str = "host",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a completed interval ``[ts_ms, ts_ms + dur_ms)``."""
        self._emit({
            "kind": "span", "name": name, "cat": cat, "track": track,
            "ts": float(ts_ms), "dur": max(0.0, float(dur_ms)),
            "args": dict(args) if args else {},
        })

    def begin(
        self,
        name: str,
        ts_ms: float,
        cat: str = "host",
        track: str = "host",
        args: Optional[Dict[str, Any]] = None,
    ) -> SpanHandle:
        """Open a span; close it with :meth:`end` (LIFO per track)."""
        handle = SpanHandle(name, cat, track, float(ts_ms), args)
        self._open.setdefault(track, []).append(handle)
        return handle

    def end(
        self, handle: SpanHandle, ts_ms: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Close the innermost open span of ``handle``'s track.

        Raises ``ValueError`` if ``handle`` is not that span — spans
        opened with :meth:`begin` must nest.
        """
        stack = self._open.get(handle.track, [])
        if not stack or stack[-1] is not handle:
            raise ValueError(
                f"span {handle.name!r} is not the innermost open span "
                f"on track {handle.track!r}"
            )
        stack.pop()
        merged = dict(handle.args) if handle.args else {}
        if args:
            merged.update(args)
        self.span(
            handle.name, handle.ts_ms, float(ts_ms) - handle.ts_ms,
            cat=handle.cat, track=handle.track, args=merged,
        )

    def open_spans(self, track: Optional[str] = None) -> int:
        """Number of begin()-spans not yet ended (all tracks or one)."""
        if track is not None:
            return len(self._open.get(track, []))
        return sum(len(stack) for stack in self._open.values())

    # -- instants & counter samples ------------------------------------------

    def instant(
        self,
        name: str,
        ts_ms: float,
        cat: str = "host",
        track: str = "host",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker."""
        self._emit({
            "kind": "instant", "name": name, "cat": cat, "track": track,
            "ts": float(ts_ms), "args": dict(args) if args else {},
        })

    def sample(
        self, name: str, ts_ms: float, value: float, track: str = "host"
    ) -> None:
        """Record one point of a counter track (Chrome ``ph: "C"``)."""
        self._emit({
            "kind": "counter", "name": name, "track": track,
            "ts": float(ts_ms), "value": float(value),
        })

    # -- flat counters -------------------------------------------------------

    def add(self, name: str, value: float) -> None:
        """Accumulate ``value`` into the flat counter ``name``."""
        self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def peak(self, name: str, value: float) -> None:
        """Fold ``value`` into ``name`` keeping the maximum seen."""
        current = self._counters.get(name)
        if current is None or value > current:
            self._counters[name] = float(value)

    def put(self, name: str, value: float) -> None:
        """Set the flat counter ``name`` to ``value`` (last write wins)."""
        self._counters[name] = float(value)

    @property
    def counters(self) -> Dict[str, float]:
        """The flat metrics dict (a live reference, not a copy)."""
        return self._counters

    @property
    def events(self) -> Tuple[Dict[str, Any], ...]:
        """The recorded events, in emission order."""
        return tuple(self._events)

    def span_names(self) -> List[str]:
        """Names of all recorded spans, in emission order."""
        return [e["name"] for e in self._events if e["kind"] == "span"]

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Export as a Chrome-trace/Perfetto ``traceEvents`` JSON object.

        Spans become complete (``ph: "X"``) events, instants ``"i"``,
        counter samples ``"C"``; timestamps are converted from simulated
        milliseconds to the format's microseconds.  Each distinct track
        gets its own ``tid`` plus a ``thread_name`` metadata event.
        """
        pid = 1
        tids: Dict[str, int] = {}
        trace_events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": self.name},
        }]

        def tid_of(track: str) -> int:
            if track not in tids:
                tids[track] = len(tids) + 1
                trace_events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tids[track], "args": {"name": track},
                })
            return tids[track]

        for event in self._events:
            tid = tid_of(event["track"])
            ts = event["ts"] * _US_PER_MS
            if event["kind"] == "span":
                trace_events.append({
                    "name": event["name"], "cat": event["cat"], "ph": "X",
                    "ts": ts, "dur": event["dur"] * _US_PER_MS,
                    "pid": pid, "tid": tid, "args": event["args"],
                })
            elif event["kind"] == "instant":
                trace_events.append({
                    "name": event["name"], "cat": event["cat"], "ph": "i",
                    "ts": ts, "pid": pid, "tid": tid, "s": "t",
                    "args": event["args"],
                })
            else:  # counter sample
                trace_events.append({
                    "name": event["name"], "ph": "C", "ts": ts,
                    "pid": pid, "tid": tid,
                    "args": {"value": event["value"]},
                })
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.obs",
                "counters": dict(self._counters),
            },
        }

    def write(self, path: str) -> None:
        """Serialise :meth:`to_chrome_trace` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)

    def __len__(self) -> int:
        return len(self._events)


# -- module-level activation ------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The installed process-wide tracer, or ``None`` (tracing off)."""
    return _ACTIVE


def start_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer.

    Producers constructed *after* this call pick it up; already-built
    devices keep whatever they were constructed with.
    """
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def stop_tracing() -> Optional[Tracer]:
    """Uninstall and return the process-wide tracer (``None`` if off)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """``with tracing() as tr:`` — scoped :func:`start_tracing`."""
    installed = start_tracing(tracer)
    try:
        yield installed
    finally:
        stop_tracing()
