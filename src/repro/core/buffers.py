"""Per-block vertex buffers with the paper's addressing schemes.

Each thread block ``i`` owns a slice ``buf[i]`` of one big device
allocation (Fig. 4).  A :class:`BlockBufferView` is a per-warp handle
that translates logical buffer positions into physical locations under
the active variant:

* plain — position ``p`` lives at ``buf[i][p]``; ``p >= capacity``
  raises :class:`~repro.errors.BufferOverflowError` (the paper's assert);
* ring — positions wrap modulo the capacity (Section IV-C); overflow
  now means the tail catching up with the unprocessed head;
* SM — the first ``capacity_B`` positions *after* the scan phase's
  ``e_init`` entries live in the block's shared-memory buffer ``B``
  (Fig. 7), and later positions fall back to global memory shifted by
  ``capacity_B``.

Position *reservation* (who gets which slot) stays in the kernels —
that is exactly what the compaction variants change.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BufferOverflowError
from repro.gpusim.context import WarpContext
from repro.gpusim.memory import DeviceArray

__all__ = ["BlockBufferView"]


class BlockBufferView:
    """A warp's view of its block's vertex buffer (see module docs)."""

    def __init__(
        self,
        ctx: WarpContext,
        buf: DeviceArray,
        capacity: int,
        ring: bool = False,
        use_shared: bool = False,
        shared_capacity: int = 0,
    ) -> None:
        self._ctx = ctx
        self._buf = buf
        self._base = ctx.block_idx * capacity
        self._capacity = capacity
        self._ring = ring
        self._use_shared = use_shared
        self._shared_capacity = shared_capacity if use_shared else 0
        if use_shared:
            self._shared = ctx.smem_array("B", shared_capacity)
        else:
            self._shared = None

    # -- position translation ------------------------------------------------

    def _physical(self, global_positions: np.ndarray) -> np.ndarray:
        if self._ring:
            return self._base + global_positions % self._capacity
        if global_positions.size and int(global_positions.max()) >= self._capacity:
            raise BufferOverflowError(self._ctx.block_idx, self._capacity)
        return self._base + global_positions

    # -- access ----------------------------------------------------------------

    def read(self, position: int) -> int:
        """Fetch the vertex at one logical position (Alg. 3 Line 12)."""
        return int(self.read_batch(np.asarray([position], dtype=np.int64))[0])

    def read_batch(self, positions: np.ndarray) -> np.ndarray:
        """Fetch several logical positions, preserving order."""
        ctx = self._ctx
        positions = np.asarray(positions, dtype=np.int64)
        out = np.empty(positions.size, dtype=np.int64)
        if not self._use_shared:
            out[:] = ctx.gload(self._buf, self._physical(positions))
            return out
        e_init = ctx.smem_get("e_init")
        ctx.charge(4)  # Fig. 7 position translation: two compares + branch
        in_shared = (positions >= e_init) & (
            positions < e_init + self._shared_capacity
        )
        if np.any(in_shared):
            out[in_shared] = ctx.sload(
                self._shared, positions[in_shared] - e_init
            )
        if np.any(~in_shared):
            gpos = positions[~in_shared].copy()
            gpos[gpos >= e_init] -= self._shared_capacity
            out[~in_shared] = ctx.gload(self._buf, self._physical(gpos))
        return out

    def write(self, locations: np.ndarray, vertices: np.ndarray) -> None:
        """Append vertices at pre-reserved logical locations.

        Reservation (advancing ``e``) is the caller's job; overflow is
        checked here against the variant's effective capacity.
        """
        ctx = self._ctx
        locations = np.asarray(locations, dtype=np.int64)
        vertices = np.asarray(vertices, dtype=np.int64)
        self._check_overflow(locations)
        if locations.size:
            # observability: per-block fill high-water mark (metric only,
            # no cycles charged — see BlockTiming.buffer_peak)
            peak = float(int(locations.max()) + 1)
            timing = ctx.block.timing
            if peak > timing.buffer_peak:
                timing.buffer_peak = peak
        if not self._use_shared:
            ctx.gstore(self._buf, self._physical(locations), vertices)
            return
        e_init = ctx.smem_get("e_init")
        ctx.charge(4)  # Fig. 7 position translation: two compares + branch
        in_shared = (locations >= e_init) & (
            locations < e_init + self._shared_capacity
        )
        if np.any(in_shared):
            ctx.sstore(self._shared, locations[in_shared] - e_init,
                       vertices[in_shared])
        if np.any(~in_shared):
            gpos = locations[~in_shared].copy()
            gpos[gpos >= e_init] -= self._shared_capacity
            ctx.gstore(self._buf, self._physical(gpos), vertices[~in_shared])

    def _check_overflow(self, locations: np.ndarray) -> None:
        if locations.size == 0:
            return
        effective = self._capacity + self._shared_capacity
        if self._ring:
            # The tail may wrap, but must not lap the unprocessed head.
            head = self._ctx.block.scalars.get("s", 0)
            if int(locations.max()) - head >= effective:
                raise BufferOverflowError(self._ctx.block_idx, effective)
        elif int(locations.max()) >= effective:
            raise BufferOverflowError(self._ctx.block_idx, effective)
