"""The host program (Algorithm 1 of the paper).

Loads the CSR graph into simulated device memory, allocates the
per-block buffers, and alternates ``scan(k)`` / ``loop(k)`` kernel
launches until every vertex is removed.  The mutable device ``deg``
array converges to the core numbers and is read back at the end.

Observability: the host loop is the producer of the per-round signals
(``docs/OBSERVABILITY.md``).  It always collects the per-round frontier
sizes (``result.stats["frontier_per_round"]``) and folds the flat
``host.* / frontier.* / buffer.* / kernel.* / device.*`` counters into
``result.counters`` — these are cheap aggregates of quantities the
simulator tallies anyway, so they exist with tracing off and are
byte-identical to an untraced run.  With a tracer attached to the
device, each round additionally becomes a ``"host"``-track span
enclosing its two kernel spans, plus a ``frontier`` counter-track
sample — the per-round decay Perfetto plots directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

import repro.core.fastsim  # noqa: F401  (registers vectorized executors)
from repro.core.loop_kernel import loop_kernel
from repro.core.scan_kernel import scan_kernel
from repro.core.variants import VariantConfig, get_variant
from repro.errors import ReproError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.spec import DeviceSpec
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.result import DecompositionResult

if TYPE_CHECKING:
    from repro.sanitize.report import SanitizerReport

__all__ = ["gpu_peel", "GpuPeelOptions"]


def _attach_report(
    want_report: bool, result: DecompositionResult
) -> DecompositionResult:
    """Wrap ``result`` with its unified run report when requested."""
    if not want_report:
        return result
    from dataclasses import replace

    from repro.obs.runreport import RunReport

    return replace(result, report=RunReport.from_result(result))


@dataclass(frozen=True)
class GpuPeelOptions:
    """Tunables of a simulated-GPU peeling run."""

    #: kernel variant name or config (Table II column)
    variant: str | VariantConfig = "ours"
    #: per-block buffer capacity in vertex IDs; ``None`` = the device
    #: spec's default (the paper fixes 1M IDs per block)
    buffer_capacity: int | None = None
    #: simulated-time force-termination budget (Tables III/IV: "> 1hr")
    time_budget_ms: float | None = None
    #: probability of an extra scheduling point inside the read ->
    #: atomicSub window, to fuzz cross-block races (tests only)
    preempt_prob: float = 0.0
    #: RNG seed for the fuzzing schedule
    seed: int = 0
    #: run every kernel launch under the dynamic race detector and
    #: attach the :class:`~repro.sanitize.report.SanitizerReport` to the
    #: result (``docs/SANITIZER.md``); costs host time only — simulated
    #: time is unchanged
    sanitize: bool = False
    #: check every launch against the variant's static resource
    #: certificate and attach the differential-checker report to
    #: ``result.staticheck`` (``docs/STATIC_ANALYSIS.md``); like
    #: ``sanitize``, costs host time only — simulated time is unchanged
    staticheck: bool = False
    #: run the static dataflow analyzer (lane-uniformity abstract
    #: interpretation, :mod:`repro.staticheck.dataflow`) over both
    #: kernels for the chosen variant and check every launch against
    #: its certificates — race-freedom obligations, the
    #: divergence/coalescing bracket, and the engine-precondition
    #: prediction against ``KernelStats.served_by``.  Findings land on
    #: ``result.staticheck`` (merged with the differential checker's
    #: when both are enabled); host time only, simulated time unchanged
    dataflow: bool = False
    #: profile every launch (speed-of-light bound attribution, see
    #: :mod:`repro.profile`) and attach the
    #: :class:`~repro.profile.report.ProfileReport` to
    #: ``result.profile``; observability-only — simulated time is
    #: byte-identical with profiling on or off
    profile: bool = False
    #: record every device allocation's lifetime plus an exact
    #: attribution breakdown of the memory peak (see
    #: :mod:`repro.memtrace`) and attach the
    #: :class:`~repro.memtrace.report.MemtraceReport` to
    #: ``result.memtrace``; observability-only — simulated time,
    #: counters, and the peak itself are byte-identical with memory
    #: tracing on or off
    memtrace: bool = False
    #: execution engine for every kernel launch (``"reference"``,
    #: ``"vectorized"``, ``"jit"``, or ``None`` for the default); all
    #: engines produce byte-identical simulated results, so this only
    #: changes host wall-clock time — see ``docs/SIMULATOR.md``
    engine: "str | ExecutionEngine | None" = None
    #: merge every telemetry vertical into a unified, validated
    #: ``repro.runreport/v1`` record on ``result.report`` (see
    #: :mod:`repro.obs.runreport`); implies ``profile`` and
    #: ``memtrace``.  Observability-only — simulated time, counters,
    #: and core numbers are byte-identical with reporting on or off
    report: bool = False
    #: reconstruct the causal critical path of the run — per-launch
    #: DAG nodes with per-SM lane slack, exact cycle accounting, static
    #: floor certificates and the ranked what-if speedup-ceiling table
    #: (see :mod:`repro.obs.critpath`) — on ``result.critpath``.
    #: Implies ``profile`` (the analyzer needs per-block timings).
    #: Observability-only — simulated time, counters, and core numbers
    #: are byte-identical with the analyzer on or off.  Empty graphs
    #: launch no kernels and attach ``None``.
    critpath: bool = False


def gpu_peel(
    graph: CSRGraph,
    variant: str | VariantConfig = "ours",
    device: Device | None = None,
    spec: DeviceSpec | None = None,
    cost_model: CostModel | None = None,
    options: GpuPeelOptions | None = None,
    tracer: Tracer | None = None,
    sanitize: bool | None = None,
    staticheck: bool | None = None,
    dataflow: bool | None = None,
    profile: bool | None = None,
    memtrace: bool | None = None,
    engine: "str | ExecutionEngine | None" = None,
    report: bool | None = None,
    critpath: bool | None = None,
) -> DecompositionResult:
    """Run the paper's GPU peeling algorithm on the simulator.

    Args:
        graph: input graph in CSR form.
        variant: ablation variant (``"ours"``, ``"sm"``, ``"vp"``,
            ``"bc"``, ``"ec"``, combinations like ``"bc+sm"``), or a
            :class:`VariantConfig`.
        device: a pre-built device (so callers can share a memory pool
            or inspect metrics); otherwise one is created from ``spec``
            and ``cost_model``.
        options: further tunables; ``options.variant`` is overridden by
            the explicit ``variant`` argument when both are given.
        tracer: an explicit :class:`~repro.obs.tracer.Tracer` for this
            run (``KCoreDecomposer(trace=True)`` passes one); without
            it, a freshly created device still picks up the process-wide
            active tracer, and a pre-built ``device`` keeps its own.
        sanitize: run every launch under the dynamic race detector
            (overrides ``options.sanitize`` when given); the collected
            :class:`~repro.sanitize.report.SanitizerReport` lands on
            ``result.sanitizer``.
        staticheck: check every launch's measured ``KernelStats``
            against the variant's static resource certificate
            (overrides ``options.staticheck`` when given); the
            differential checker's report lands on
            ``result.staticheck``.  Not available for ring-buffer
            variants, whose buffers have no static slot bound.
        dataflow: check every launch against the static dataflow
            certificates (overrides ``options.dataflow`` when given):
            race-freedom proofs/obligations, the divergence/coalescing
            bracket, and the engine-precondition tier prediction (see
            :mod:`repro.staticheck.dataflow`).  Findings merge into
            ``result.staticheck``.  Unlike ``staticheck`` this *is*
            available for ring-buffer variants — their undischarged
            obligations surface as ``unproven-race-freedom`` warnings.
        profile: collect a speed-of-light profile of every launch
            (overrides ``options.profile`` when given); the
            :class:`~repro.profile.report.ProfileReport` — per-launch
            bound classification, per-kernel and per-round aggregation,
            flamegraph export — lands on ``result.profile``.
        memtrace: record the lifetime of every device allocation and
            attribute the memory peak exactly (overrides
            ``options.memtrace`` when given); the
            :class:`~repro.memtrace.report.MemtraceReport` lands on
            ``result.memtrace``.
        engine: execution engine for every kernel launch (overrides
            ``options.engine`` when given): ``"reference"``,
            ``"vectorized"``, ``"jit"``, an
            :class:`~repro.gpusim.engine.ExecutionEngine` instance, or
            ``None`` for the default.  Results are byte-identical
            across engines; only host wall-clock time changes.  Ignored
            when a pre-built ``device`` is passed — that device keeps
            its own engine.
        report: merge every enabled telemetry vertical into one
            validated ``repro.runreport/v1`` record on
            ``result.report`` (overrides ``options.report`` when
            given); implies ``profile`` and ``memtrace`` so the report
            always covers kernels, cycles and the memory peak.  See
            the "Run reports" section of ``docs/OBSERVABILITY.md``.
        critpath: reconstruct the run's causal critical path and
            what-if projections (overrides ``options.critpath`` when
            given); the validated
            :class:`~repro.obs.critpath.CritPathReport` lands on
            ``result.critpath``.  Implies ``profile``.  See the
            "Critical path & what-if" section of
            ``docs/OBSERVABILITY.md``.

    Returns:
        A :class:`DecompositionResult` whose ``simulated_ms`` /
        ``peak_memory_bytes`` come from the device cost model, whose
        ``stats`` include per-phase cycle splits for the ablation, and
        whose ``counters`` carry the documented observability metrics.
    """
    opts = options or GpuPeelOptions()
    chosen = variant
    if variant == "ours" and opts.variant != "ours":
        chosen = opts.variant  # explicit argument wins over options
    cfg = chosen if isinstance(chosen, VariantConfig) else get_variant(chosen)
    want_sanitize = opts.sanitize if sanitize is None else sanitize
    want_staticheck = opts.staticheck if staticheck is None else staticheck
    want_dataflow = opts.dataflow if dataflow is None else dataflow
    want_profile = opts.profile if profile is None else profile
    want_memtrace = opts.memtrace if memtrace is None else memtrace
    want_engine = opts.engine if engine is None else engine
    want_report = opts.report if report is None else report
    want_critpath = opts.critpath if critpath is None else critpath
    if want_report:
        # a run report always covers the kernel profile and the memory
        # peak attribution; both are observability-only
        want_profile = True
        want_memtrace = True
    if want_critpath:
        # the critical-path analyzer consumes per-block timings, which
        # only ride along with a profiler attached
        want_profile = True
    if want_staticheck and cfg.ring_buffer:
        raise ReproError(
            "staticheck is not available for ring-buffer variants: a "
            "wrapping buffer has no static slot bound (see "
            "docs/STATIC_ANALYSIS.md)"
        )

    if device is None:
        device = Device(
            spec=spec,
            cost_model=cost_model,
            time_budget_ms=opts.time_budget_ms,
            preempt_prob=opts.preempt_prob,
            seed=opts.seed,
            tracer=tracer,
            sanitize=want_sanitize,
            profile=want_profile,
            memtrace=want_memtrace,
            engine=want_engine,
        )
    else:
        if tracer is not None:
            device.tracer = tracer
        if want_sanitize and device.sanitizer is None:
            from repro.sanitize.racecheck import KernelSanitizer

            device.sanitizer = KernelSanitizer()
        if want_profile and device.profiler is None:
            from repro.profile.profiler import KernelProfiler

            device.profiler = KernelProfiler()
        if want_memtrace and device.memtracer is None:
            from repro.memtrace.tracker import MemoryTracker

            # late attach: anything already resident on the shared
            # device is opaque history, folded into the base
            mt = MemoryTracker()
            mt.attach(device.memory.in_use, ts_ms=device.elapsed_ms)
            device.memtracer = mt
    profiler = device.profiler
    if profiler is not None:
        profiler.annotate(variant=cfg.name, algorithm=f"gpu-{cfg.name}")
    memtracer = device.memtracer
    if memtracer is not None:
        memtracer.annotate(variant=cfg.name, algorithm=f"gpu-{cfg.name}")
    spec = device.spec
    if cfg.prefetch and spec.warps_per_block < 2:
        raise ReproError(
            "the VP variant needs at least 2 warps per block "
            f"(block_dim >= {2 * spec.warp_size})"
        )

    n = graph.num_vertices
    checker = None
    if want_staticheck:
        from repro.staticheck.differential import DifferentialChecker

        checker = DifferentialChecker(
            cfg, spec, n, len(graph.neighbors), graph.max_degree,
            buffer_capacity=opts.buffer_capacity,
        )
    dflow = None
    if want_dataflow:
        from repro.staticheck.dataflow import DataflowChecker

        dflow = DataflowChecker(
            cfg,
            engine=device.engine.name,
            monitored=device.sanitizer is not None,
            preempt_prob=opts.preempt_prob,
        )

    def _static_report() -> "SanitizerReport | None":
        if checker is None and dflow is None:
            return None
        if checker is None:
            return dflow.report
        if dflow is not None:
            checker.report.merge(dflow.report)
        return checker.report

    if n == 0:
        if memtracer is not None:
            memtracer.finish(device.elapsed_ms)
        return _attach_report(want_report, DecompositionResult(
            core=np.empty(0, dtype=np.int64),
            algorithm=f"gpu-{cfg.name}",
            sanitizer=(
                device.sanitizer.report
                if device.sanitizer is not None else None
            ),
            staticheck=_static_report(),
            profile=(
                profiler.report() if profiler is not None else None
            ),
            memtrace=(
                memtracer.report() if memtracer is not None else None
            ),
        ))

    cpath = None
    if want_critpath:
        from repro.obs.critpath import CritPathCollector
        from repro.staticheck.bounds import launch_env

        cpath = CritPathCollector(
            spec=spec,
            cost=device.cost_model,
            algorithm=f"gpu-{cfg.name}",
            variant=cfg.name,
            track=device.name,
            cfg=cfg,
            env=launch_env(
                n, len(graph.neighbors), graph.max_degree, spec, cfg,
                buffer_capacity=opts.buffer_capacity,
            ),
            # a shared device may carry prior work; the analyzer folds
            # its cycles from the same starting point the device does
            base_cycles=device.total_cycles,
            base_launches=device.kernel_launches,
        )

    grid_dim = spec.default_grid_dim
    capacity = opts.buffer_capacity or spec.block_buffer_capacity
    shared_capacity = spec.shared_buffer_capacity if cfg.shared_buffer else 0

    # Algorithm 1 Line 1: load G into device memory
    offsets_d = device.malloc("offsets", graph.offsets)
    neighbors_d = device.malloc("neighbors", graph.neighbors)
    deg_d = device.malloc("deg", graph.degrees)
    # Line 4: allocate the per-block buffers (Fig. 4)
    buf_d = device.malloc("buf", grid_dim * capacity)
    tails_d = device.malloc("buf_tails", grid_dim)
    count_d = device.malloc("gpu_count", 1)  # Lines 2-3
    if cfg.compaction != "none":
        # the compaction variants stage vid/p/a arrays per block; this
        # mirrors the constant extra footprint BC/EC show in Table V
        device.malloc(
            "compaction_scratch", 3 * grid_dim * spec.default_block_dim
        )

    tr = device.tracer
    scan_cycles = 0.0
    loop_cycles = 0.0
    buffer_peak = 0.0
    frontier_per_round: list[int] = []
    count = 0
    k = 0
    max_rounds = graph.max_degree + 2  # k_max <= max degree
    while count < n:  # Line 5
        if k > max_rounds:
            raise ReproError(
                f"peeling made no progress after {k} rounds "
                f"({count}/{n} vertices removed)"
            )
        round_span = (
            tr.begin(f"round k={k}", device.elapsed_ms, cat="round")
            if tr is not None else None
        )
        if profiler is not None:
            profiler.set_round(k)
        if memtracer is not None:
            memtracer.set_round(k)
        stats = device.launch(
            scan_kernel, args=(k, deg_d, buf_d, tails_d, n, capacity, cfg)
        )  # Line 6
        if checker is not None:
            checker.observe("scan_kernel", stats)
        if dflow is not None:
            dflow.observe("scan_kernel", stats)
        if cpath is not None:
            cpath.observe_launch("scan_kernel", stats, round_index=k)
        scan_cycles += stats.cycles
        if stats.buffer_peak > buffer_peak:
            buffer_peak = stats.buffer_peak
        stats = device.launch(
            loop_kernel,
            args=(
                k, offsets_d, neighbors_d, deg_d, buf_d, tails_d,
                count_d, capacity, shared_capacity, cfg,
            ),
        )  # Line 7
        if checker is not None:
            checker.observe("loop_kernel", stats)
        if dflow is not None:
            dflow.observe("loop_kernel", stats)
        if cpath is not None:
            cpath.observe_launch("loop_kernel", stats, round_index=k)
        loop_cycles += stats.cycles
        if stats.buffer_peak > buffer_peak:
            buffer_peak = stats.buffer_peak
        new_count = int(device.read_back(count_d)[0])  # Line 8
        frontier_per_round.append(new_count - count)
        if tr is not None:
            tr.end(round_span, device.elapsed_ms,
                   args={"k": k, "frontier": new_count - count,
                         "removed": new_count})
            tr.sample("frontier", device.elapsed_ms, new_count - count)
        count = new_count
        k += 1  # Line 9

    if profiler is not None:
        profiler.set_round(None)
    if memtracer is not None:
        memtracer.set_round(None)
    core = device.read_back(deg_d)  # Line 10
    if memtracer is not None:
        # release the run's arrays so every lifetime closes (the peak
        # is already booked); untraced devices keep their contents for
        # post-run inspection, as before
        device.free_all()
        memtracer.finish(device.elapsed_ms)
    effective_capacity = capacity + shared_capacity
    counters = {
        "host.rounds": float(k),
        "kernel.scan.launches": float(k),
        "kernel.loop.launches": float(k),
        "kernel.scan.cycles": scan_cycles,
        "kernel.loop.cycles": loop_cycles,
        "frontier.peak": float(max(frontier_per_round, default=0)),
        "frontier.total": float(count),
        "frontier.mean": float(count) / k if k else 0.0,
        "buffer.peak_fill": buffer_peak,
        "buffer.capacity": float(effective_capacity),
        "buffer.peak_occupancy": (
            buffer_peak / effective_capacity if effective_capacity else 0.0
        ),
        # engine attribution: which execution engine produced this run
        # (a tag, not a measurement — the values are engine-invariant)
        f"engine.{device.engine.name}": 1.0,
    }
    counters.update(device.counters())
    if tr is not None:
        for name, value in counters.items():
            if not name.startswith("device."):  # device.* already live
                tr.put(name, value)
    return _attach_report(want_report, DecompositionResult(
        core=core,
        algorithm=f"gpu-{cfg.name}",
        simulated_ms=device.elapsed_ms,
        peak_memory_bytes=device.peak_memory_bytes,
        rounds=k,
        stats={
            "kernel_launches": device.kernel_launches,
            "scan_cycles": scan_cycles,
            "loop_cycles": loop_cycles,
            "buffer_capacity": capacity,
            "grid_dim": grid_dim,
            "block_dim": spec.default_block_dim,
            "variant": cfg.name,
            "engine": device.engine.name,
            "frontier_per_round": frontier_per_round,
        },
        counters=counters,
        trace=tr,
        sanitizer=(
            device.sanitizer.report if device.sanitizer is not None else None
        ),
        staticheck=_static_report(),
        profile=profiler.report() if profiler is not None else None,
        memtrace=memtracer.report() if memtracer is not None else None,
        critpath=(
            cpath.build(
                elapsed_ms=device.elapsed_ms,
                kernel_launches=device.kernel_launches,
            )
            if cpath is not None else None
        ),
    ))
