"""The paper's contribution: GPU peeling kernels and their variants
(plus the frontier BFS kernel that proves the static-verification
pipeline is kernel-agnostic)."""

from repro.core.bfs_kernel import gpu_bfs
from repro.core.decomposer import KCoreDecomposer
from repro.core.fastpath import fast_decompose, peel_fast
from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.multigpu import MultiGpuOptions, multi_gpu_peel, partition_ranges
from repro.core.variants import VARIANTS, VariantConfig, get_variant, variant_names

__all__ = [
    "KCoreDecomposer",
    "MultiGpuOptions",
    "multi_gpu_peel",
    "partition_ranges",
    "fast_decompose",
    "peel_fast",
    "GpuPeelOptions",
    "gpu_bfs",
    "gpu_peel",
    "VARIANTS",
    "VariantConfig",
    "get_variant",
    "variant_names",
]
