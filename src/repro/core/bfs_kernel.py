"""A frontier BFS kernel: the contract registry's admission proof.

This module is deliberately *foreign* to the k-core pipeline — it
ships its own kernel, bounds, reachability table and host driver, and
is admitted to the full static-verification stack (site-inventory
coverage, closed-form bounds, dataflow race-freedom certificate,
differential checking) purely by registering a
:class:`~repro.staticheck.contracts.KernelContract` at import time.
No analyzer module names ``bfs_kernel``; if one did, the registry
refactor would have failed its point (``scripts/check_admission.py``
gates exactly this).

The kernel itself is a level-synchronous frontier expansion, shaped
like the peeling kernels so the same discharge catalogue applies:

* each warp strides the current frontier (one vertex per trip) and
  sweeps its adjacency list 32 lanes at a time;
* visitation is claimed with a global ``atomicAdd(visited[u], 1)`` —
  exactly one claimant per vertex ever sees ``old == 0``, which is the
  append-once argument (the frontier bound ``<= n`` of the bounds
  below);
* claimed vertices are appended to the block's slice of the
  next-frontier buffer through the same shared-tail reservation
  (``atomicAdd(e, ...)`` + :class:`~repro.core.buffers.BlockBufferView`)
  the scan kernel uses, so the reservation-disjointness proof carries
  over unchanged;
* the host assigns distances level by level from the read-back
  frontier — the device only ever touches ``visited`` atomically.

No vectorized executor is registered for this kernel
(``engine_module=None`` in the contract), so the dataflow tier's
engine-precondition certificate statically pins every launch to the
reference interpreter — and the differential checker verifies that
``KernelStats.served_by`` agrees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.buffers import BlockBufferView
from repro.core.variants import VariantConfig
from repro.errors import ReproError
from repro.gpusim.context import WarpContext
from repro.gpusim.memory import DeviceArray
from repro.staticheck import contracts
from repro.staticheck.bounds import KernelBounds
from repro.staticheck.symbolic import CeilDiv, Const, Expr, Param

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.costmodel import CostModel
    from repro.gpusim.device import Device
    from repro.gpusim.engine import ExecutionEngine
    from repro.gpusim.spec import DeviceSpec
    from repro.graph.csr import CSRGraph
    from repro.obs.tracer import Tracer
    from repro.result import DecompositionResult
    from repro.sanitize.report import SanitizerReport

__all__ = ["bfs_kernel", "gpu_bfs", "bfs_bounds", "BFS_REACHABILITY"]

#: static-certificate coverage map (see ``docs/STATIC_ANALYSIS.md``):
#: every ``ctx`` function here must be named, with the bound that
#: accounts for its cost; the AST pass in ``repro.staticheck.absint``
#: fails an ``uncertified-kernel`` finding otherwise.
__staticheck__ = {
    "bfs_kernel": "repro.core.bfs_kernel.bfs_bounds (entry point)",
    "_bfs_expand": "5 issued/frontier trip + 8 per adjacency-sweep trip",
}


def bfs_kernel(
    ctx: WarpContext,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    visited: DeviceArray,
    frontier: DeviceArray,
    frontier_len: int,
    buf: DeviceArray,
    tails: DeviceArray,
    capacity: int,
    cfg: VariantConfig,
) -> Generator[str, None, None]:
    """One BFS level: expand ``frontier`` into the per-block buffers.

    Each warp owns every ``total_warps``-th frontier slot; claimed
    neighbors land in the warp's block buffer, whose fill count the
    block backs up to ``tails`` for the host to harvest.
    """
    if ctx.warp_id == 0:
        ctx.smem_set("e", 0)  # next-frontier tail for this block
    yield ctx.BARRIER

    view = BlockBufferView(ctx, buf, capacity, ring=cfg.ring_buffer)
    stride = ctx.num_threads // ctx.warp_size  # one vertex per warp trip
    for s in range(ctx.global_warp_id, frontier_len, stride):
        v = int(ctx.gload(frontier, s))  # coalesced: one word per warp
        yield from _bfs_expand(ctx, view, v, offsets, neighbors, visited)
        yield ctx.STEP

    yield ctx.BARRIER
    if ctx.warp_id == 0:
        # back up e to tails in global memory for the host harvest
        ctx.gstore(tails, ctx.block_idx, ctx.smem_get("e"))


def _bfs_expand(
    ctx: WarpContext,
    view: BlockBufferView,
    v: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    visited: DeviceArray,
) -> Generator[str, None, None]:
    """The 32 lanes sweep ``v``'s adjacency list, claiming neighbors."""
    bounds = ctx.gload(offsets, np.asarray([v, v + 1]))
    pos_s, pos_e = int(bounds[0]), int(bounds[1])
    ctx.charge(3)  # loop counter, frontier index arithmetic, branch
    while pos_s < pos_e:
        ctx.sync_warp()
        pos = pos_s + ctx.lanes
        in_range = pos < pos_e
        u = ctx.gload(neighbors, pos[in_range])
        ctx.charge(3)  # position arithmetic, range test, claim filter
        if ctx.should_preempt():
            # fuzzing hook: cross-block interleavings of the claim
            yield ctx.STEP
        # claim: exactly one claimant across the grid ever sees old == 0
        old = ctx.atomic_global(visited, u, 1)
        fresh = u[old == 0]
        if fresh.size:
            loc = ctx.smem_atomic_add("e", int(fresh.size),
                                      lanes=int(fresh.size))
            view.write(loc + np.arange(fresh.size), fresh)
        pos_s += ctx.warp_size


# ---------------------------------------------------------------------------
# the contract: bounds, layout, reachability, registration
# ---------------------------------------------------------------------------

_N = Param("n")
_ADJ = Param("adj")
_DMAX = Param("dmax")
_G = Param("G")
_W = Param("W")
_S = Param("S")
_CAP = Param("cap")

#: per warp per frontier trip: frontier gload(1) + offsets gload(1)
#: + charge(3) = 5
_BFS_TRIP = 5
#: per adjacency-sweep trip: sync_warp(1) + neighbors gload(1) +
#: charge(3) + visited atomic(1) + tail atomic(1) + view.write gstore(1)
#: = 8
_BFS_SWEEP = 8
#: prologue + epilogue (Warp 0): smem_set e + smem_get e + tails gstore
_BFS_PRO_EPI = 3


def bfs_bounds(cfg: VariantConfig) -> KernelBounds:
    """Per-launch bounds for one BFS level under ``cfg``.

    Trip-count invariants: the ``visited`` claim admits each vertex to
    exactly one frontier ever, so a launch's frontier holds at most
    ``n`` slots and each warp makes at most ``ceil(n / (G*W))`` trips;
    an adjacency sweep makes at most ``ceil(dmax / S)`` trips.
    """
    trips: Expr = CeilDiv(_N, _G * _W)
    sweeps: Expr = CeilDiv(_DMAX, _S)
    issued = _G * _W * (
        Const(_BFS_PRO_EPI)
        + (Const(_BFS_TRIP) + Const(_BFS_SWEEP) * sweeps) * trips
    )
    # per trip: frontier word (1) + offsets window (<=2 segments); per
    # sweep: neighbors window (<=2) + visited gather (<=S) + buffer
    # append (<=S, contiguous but unaligned); plus Warp 0's tails
    # write-back (1 per block)
    mem = _G * (
        _W * (Const(3) + (Const(2) + Const(2) * _S) * sweeps) * trips
        + Const(1)
    )
    barriers = _G * Const(2)
    return KernelBounds(issued, mem, barriers)


def _bfs_shared_layout(cfg: VariantConfig) -> dict[str, Expr]:
    return {"e": Const(1)}


def bfs_device_memory(cfg: VariantConfig) -> Expr:
    """Peak device memory of :func:`gpu_bfs`, in id-sized words:
    offsets (n+1) + neighbors (adj) + visited (n) + frontier (<= n) +
    per-block buffers (G*cap) + tails (G)."""
    return (_N + Const(1)) + _ADJ + _N + _N + _G * _CAP + _G


#: the declared call graph the certifier reasons over (the AST pass
#: verifies every real kernel->kernel call edge appears here)
BFS_REACHABILITY: dict[str, tuple[str, ...]] = {
    "bfs_kernel": ("_bfs_expand",),
    "_bfs_expand": (),
}


def _bfs_variants() -> dict[str, VariantConfig]:
    return {"bfs-base": VariantConfig("bfs-base")}


contracts.register_kernel_contract(contracts.KernelContract(
    name="bfs_kernel",
    program="bfs",
    module="repro.core.bfs_kernel",
    entry="bfs_kernel",
    bounds=bfs_bounds,
    shared_layout=_bfs_shared_layout,
    reachability=BFS_REACHABILITY,
    variants=_bfs_variants,
    params=("n", "adj", "dmax", "G", "W", "S", "cap"),
    helper_modules=("repro.core.buffers",),
    engine_module=None,  # no vectorized executor: reference only
    race_arguments=(
        "read-only",
        "atomic-only",
        "barrier-separated",
        "same-warp",
        "reservation-disjoint",
        "block-private",
    ),
))

contracts.register_program_contract(contracts.ProgramContract(
    name="bfs",
    kernels=("bfs_kernel",),
    device_memory=bfs_device_memory,
    variants=_bfs_variants,
    description="level-synchronous frontier BFS: one kernel launch per "
                "level, host-side distance assignment",
))


# ---------------------------------------------------------------------------
# host driver
# ---------------------------------------------------------------------------


def gpu_bfs(
    graph: "CSRGraph",
    source: int = 0,
    device: "Device | None" = None,
    spec: "DeviceSpec | None" = None,
    cost_model: "CostModel | None" = None,
    tracer: "Tracer | None" = None,
    sanitize: bool = False,
    staticheck: bool = False,
    dataflow: bool = False,
    profile: bool = False,
    memtrace: bool = False,
    engine: "str | ExecutionEngine | None" = None,
    buffer_capacity: int | None = None,
    critpath: bool = False,
) -> "DecompositionResult":
    """Run level-synchronous BFS from ``source`` on the simulator.

    The same observability and verification options as
    :func:`~repro.core.host.gpu_peel`: ``sanitize`` runs every launch
    under the dynamic race detector, ``staticheck`` arms the
    differential checker with the ``bfs`` program's certificate,
    ``dataflow`` checks every launch against the kernel's dataflow
    certificate, and ``profile``/``memtrace``/``engine`` behave as for
    peeling.  ``critpath`` builds the causal critical-path analysis of
    :mod:`repro.obs.critpath` on ``result.critpath`` (implies
    ``profile``); the ``bfs`` contract declares no ``floors``, so the
    analyzer brackets its projections against a zero static floor —
    admission alone is enough, no analyzer edits.  Returns a
    :class:`~repro.result.DecompositionResult` whose ``core`` array
    holds BFS levels (``-1`` = unreachable).
    """
    from repro.gpusim.device import Device
    from repro.result import DecompositionResult

    n = graph.num_vertices
    if n and not 0 <= source < n:
        raise ReproError(
            f"BFS source {source} out of range for {n} vertices"
        )
    cfg = _bfs_variants()["bfs-base"]
    want_profile = profile or critpath  # the analyzer needs block timings
    if device is None:
        device = Device(
            spec=spec,
            cost_model=cost_model,
            tracer=tracer,
            sanitize=sanitize,
            profile=want_profile,
            memtrace=memtrace,
            engine=engine,
        )
    elif tracer is not None:
        device.tracer = tracer
    if want_profile and device.profiler is None:
        from repro.profile.profiler import KernelProfiler

        device.profiler = KernelProfiler()
    spec = device.spec
    profiler = device.profiler
    if profiler is not None:
        profiler.annotate(variant=cfg.name, algorithm="gpu-bfs")
    memtracer = device.memtracer
    if memtracer is not None:
        memtracer.annotate(variant=cfg.name, algorithm="gpu-bfs")

    checker = None
    if staticheck:
        from repro.staticheck.certificate import certify_variant
        from repro.staticheck.differential import DifferentialChecker

        checker = DifferentialChecker(
            cfg, spec, n, len(graph.neighbors), graph.max_degree,
            buffer_capacity=buffer_capacity,
            certificate=certify_variant(cfg, program="bfs"),
        )
    dflow = None
    if dataflow:
        from repro.staticheck.dataflow import DataflowChecker

        dflow = DataflowChecker(
            cfg,
            engine=device.engine.name,
            monitored=device.sanitizer is not None,
            program="bfs",
        )

    def _static_report() -> "SanitizerReport | None":
        if checker is None:
            return dflow.report if dflow is not None else None
        if dflow is not None:
            checker.report.merge(dflow.report)
        return checker.report

    dist = np.full(n, -1, dtype=np.int64)
    if n == 0:
        if memtracer is not None:
            memtracer.finish(device.elapsed_ms)
        return DecompositionResult(
            core=dist,
            algorithm="gpu-bfs",
            sanitizer=(
                device.sanitizer.report
                if device.sanitizer is not None else None
            ),
            staticheck=_static_report(),
            profile=profiler.report() if profiler is not None else None,
            memtrace=memtracer.report() if memtracer is not None else None,
        )

    cpath = None
    if critpath:
        from repro.obs.critpath import CritPathCollector
        from repro.staticheck.bounds import launch_env

        cpath = CritPathCollector(
            spec=spec,
            cost=device.cost_model,
            algorithm="gpu-bfs",
            variant=cfg.name,
            track=device.name,
            cfg=cfg,
            env=launch_env(
                n, len(graph.neighbors), graph.max_degree, spec, cfg,
                buffer_capacity=buffer_capacity,
            ),
            base_cycles=device.total_cycles,
            base_launches=device.kernel_launches,
        )

    grid_dim = spec.default_grid_dim
    capacity = buffer_capacity or spec.block_buffer_capacity

    offsets_d = device.malloc("offsets", graph.offsets)
    neighbors_d = device.malloc("neighbors", graph.neighbors)
    visited = np.zeros(n, dtype=np.int64)
    visited[source] = 1  # the source claims itself
    visited_d = device.malloc("visited", visited)
    buf_d = device.malloc("buf", grid_dim * capacity)
    tails_d = device.malloc("buf_tails", grid_dim)

    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    frontier_per_level: list[int] = []
    level = 0
    tr = device.tracer
    while frontier.size:
        frontier_per_level.append(int(frontier.size))
        if profiler is not None:
            profiler.set_round(level)
        if memtracer is not None:
            memtracer.set_round(level)
        span = (
            tr.begin(f"level {level}", device.elapsed_ms, cat="round")
            if tr is not None else None
        )
        frontier_d = device.malloc("frontier", frontier)
        stats = device.launch(
            bfs_kernel,
            args=(
                offsets_d, neighbors_d, visited_d, frontier_d,
                int(frontier.size), buf_d, tails_d, capacity, cfg,
            ),
        )
        if checker is not None:
            checker.observe("bfs_kernel", stats)
        if dflow is not None:
            dflow.observe("bfs_kernel", stats)
        if cpath is not None:
            cpath.observe_launch("bfs_kernel", stats, round_index=level)
        tails = device.read_back(tails_d)
        chunks = device.read_back(buf_d)
        nxt = np.concatenate([
            chunks[b * capacity: b * capacity + int(tails[b])]
            for b in range(grid_dim)
        ]) if tails.any() else np.empty(0, dtype=np.int64)
        device.free("frontier")
        if tr is not None:
            tr.end(span, device.elapsed_ms,
                   args={"level": level, "frontier": int(frontier.size)})
            tr.sample("frontier", device.elapsed_ms, int(frontier.size))
        level += 1
        dist[nxt] = level
        frontier = nxt

    if profiler is not None:
        profiler.set_round(None)
    if memtracer is not None:
        memtracer.set_round(None)
        device.free_all()
        memtracer.finish(device.elapsed_ms)
    counters = {
        "host.levels": float(level),
        "kernel.bfs.launches": float(level),
        "frontier.peak": float(max(frontier_per_level, default=0)),
        "frontier.total": float(sum(frontier_per_level)),
        f"engine.{device.engine.name}": 1.0,
    }
    counters.update(device.counters())
    return DecompositionResult(
        core=dist,
        algorithm="gpu-bfs",
        simulated_ms=device.elapsed_ms,
        peak_memory_bytes=device.peak_memory_bytes,
        rounds=level,
        stats={
            "kernel_launches": device.kernel_launches,
            "variant": cfg.name,
            "engine": device.engine.name,
            "frontier_per_round": frontier_per_level,
        },
        counters=counters,
        trace=tr,
        sanitizer=(
            device.sanitizer.report if device.sanitizer is not None else None
        ),
        staticheck=_static_report(),
        profile=profiler.report() if profiler is not None else None,
        memtrace=memtracer.report() if memtracer is not None else None,
        critpath=(
            cpath.build(
                elapsed_ms=device.elapsed_ms,
                kernel_launches=device.kernel_launches,
            )
            if cpath is not None else None
        ),
    )
