"""High-level public API for k-core decomposition.

:class:`KCoreDecomposer` is the front door most users want: pick an
execution mode once, then decompose graphs.

* ``mode="fast"`` (default) — the vectorised native path; answers in
  real milliseconds, no cost model.
* ``mode="simulate"`` — runs the paper's CUDA kernels on the SIMT
  simulator, producing simulated time/memory metrics and honouring the
  chosen ablation variant.

Pass ``trace=True`` to record each ``decompose`` call with a fresh
:class:`~repro.obs.tracer.Tracer` (see ``docs/OBSERVABILITY.md``): the
returned result carries the tracer as ``result.trace`` — export a
Perfetto timeline with ``result.trace.write("trace.json")`` — and its
flat metrics in ``result.counters``.  In ``simulate`` mode the trace
has one span per kernel launch and per host round on the simulated
timeline; in ``fast`` mode it degrades to a single wall-clock span
(there is no simulated clock to trace against).

Pass ``sanitize=True`` to check the run with the kernel sanitizer (see
``docs/SANITIZER.md``): in ``simulate`` mode every kernel launch runs
under the dynamic race detector; in ``fast`` mode (no kernels execute)
it degrades to the static lint pass over the shipped kernel sources.
Either way ``result.sanitizer`` carries the
:class:`~repro.sanitize.report.SanitizerReport`.

Pass ``staticheck=True`` to check the run against the static resource
certifier (see ``docs/STATIC_ANALYSIS.md``): in ``simulate`` mode every
launch's measured stats are asserted against the variant's closed-form
certificate and ``result.staticheck`` carries the differential
checker's report; in ``fast`` mode (no kernels execute) it degrades to
the purely static checks — certificate coverage and shared-memory fit.

Pass ``profile=True`` to profile the run (see the "Profiling" section
of ``docs/OBSERVABILITY.md``): in ``simulate`` mode every kernel launch
gets a speed-of-light bound attribution and ``result.profile`` carries
the :class:`~repro.profile.report.ProfileReport`; in ``fast`` mode
there are no kernel launches to profile, so ``result.profile`` stays
``None``.

Pass ``memtrace=True`` to record memory telemetry (see the "Memory
telemetry" section of ``docs/OBSERVABILITY.md``): in ``simulate`` mode
every device allocation's lifetime is recorded and the memory peak gets
an exact attribution breakdown on ``result.memtrace``; in ``fast`` mode
there is no simulated device memory to trace, so ``result.memtrace``
stays ``None``.

Pass ``report=True`` to merge every enabled telemetry vertical into a
unified, validated ``repro.runreport/v1`` record on ``result.report``
(see the "Run reports" section of ``docs/OBSERVABILITY.md``): in
``simulate`` mode this implies ``profile`` and ``memtrace``, so the
report covers kernels, cycles, and the exact memory-peak attribution;
in ``fast`` mode it degrades to a minimal section (timings and stats —
there is no device telemetry to merge).

Pass ``critpath=True`` to run the causal critical-path analyzer (see
the "Critical path & what-if" section of ``docs/OBSERVABILITY.md``):
in ``simulate`` mode ``result.critpath`` carries the
:class:`~repro.obs.critpath.CritPathReport` — the causal DAG, exact
slack accounting, and the ranked what-if speedup-ceiling table; in
``fast`` mode there is no simulated timeline to analyze, so
``result.critpath`` stays ``None``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fastpath import fast_decompose
from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import VariantConfig
from repro.errors import ReproError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.spec import DeviceSpec
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.result import DecompositionResult

__all__ = ["KCoreDecomposer"]

_MODES = ("fast", "simulate")


class KCoreDecomposer:
    """Reusable decomposition front end; see the module docstring.

    Example:
        >>> from repro.graph.examples import fig1_graph
        >>> graph, expected = fig1_graph()
        >>> result = KCoreDecomposer().decompose(graph)
        >>> int(result.core[0])
        3
    """

    def __init__(
        self,
        mode: str = "fast",
        variant: str | VariantConfig = "ours",
        spec: DeviceSpec | None = None,
        cost_model: CostModel | None = None,
        options: GpuPeelOptions | None = None,
        trace: bool = False,
        sanitize: bool = False,
        staticheck: bool = False,
        profile: bool = False,
        memtrace: bool = False,
        engine: "str | ExecutionEngine | None" = None,
        report: bool = False,
        critpath: bool = False,
    ) -> None:
        if mode not in _MODES:
            raise ReproError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.variant = variant
        self.spec = spec
        self.cost_model = cost_model
        self.options = options
        self.trace = trace
        self.sanitize = sanitize
        self.staticheck = staticheck
        self.profile = profile
        self.memtrace = memtrace
        #: execution engine for ``simulate`` mode — ``"reference"``,
        #: ``"vectorized"`` (default), ``"jit"``, or a prebuilt
        #: :class:`~repro.gpusim.engine.ExecutionEngine`.  ``fast``
        #: mode runs no simulator kernels, so the engine is unused.
        self.engine = engine
        self.report = report
        #: run the causal critical-path analyzer in ``simulate`` mode
        #: (:mod:`repro.obs.critpath`); ``fast`` mode has no simulated
        #: timeline, so ``result.critpath`` stays ``None`` there
        self.critpath = critpath

    def decompose(self, graph: CSRGraph) -> DecompositionResult:
        """Compute the core number of every vertex of ``graph``."""
        tracer = Tracer() if self.trace else None
        if self.mode == "fast":
            # no kernels execute on this path, so "sanitize" degrades to
            # the static lint pass over the shipped kernel sources
            lint_report = None
            if self.sanitize:
                from repro.sanitize.lint import lint_repo

                lint_report = lint_repo()
            static_report = None
            if self.staticheck:
                # no launches to check dynamically: run the purely
                # static half (coverage + shared-memory fit)
                from repro.core.variants import get_variant
                from repro.staticheck.differential import DifferentialChecker

                cfg = (
                    self.variant
                    if isinstance(self.variant, VariantConfig)
                    else get_variant(self.variant)
                )
                static_report = DifferentialChecker(
                    cfg, self.spec or DeviceSpec(), graph.num_vertices,
                    len(graph.neighbors), graph.max_degree,
                ).report
            if (
                tracer is None
                and lint_report is None
                and static_report is None
                and not self.report
            ):
                return fast_decompose(graph)
            wall_start = time.perf_counter()
            result = fast_decompose(graph)
            wall_ms = (time.perf_counter() - wall_start) * 1000.0
            if tracer is not None:
                tracer.span("fast_decompose", 0.0, wall_ms, cat="host",
                            track="wall", args={"clock": "wall"})
                tracer.put("host.wall_ms", wall_ms)
            wrapped = DecompositionResult(
                core=result.core,
                algorithm=result.algorithm,
                simulated_ms=result.simulated_ms,
                peak_memory_bytes=result.peak_memory_bytes,
                rounds=result.rounds,
                stats=result.stats,
                counters=dict(tracer.counters) if tracer is not None else {},
                trace=tracer,
                sanitizer=lint_report,
                staticheck=static_report,
            )
            if self.report:
                from dataclasses import replace

                from repro.obs.runreport import RunReport

                wrapped = replace(
                    wrapped, report=RunReport.from_result(wrapped)
                )
            return wrapped
        return gpu_peel(
            graph,
            variant=self.variant,
            spec=self.spec,
            cost_model=self.cost_model,
            options=self.options,
            tracer=tracer,
            sanitize=self.sanitize,
            staticheck=self.staticheck,
            profile=self.profile,
            memtrace=self.memtrace,
            engine=self.engine,
            report=self.report,
            critpath=self.critpath,
        )

    def core_numbers(self, graph: CSRGraph) -> np.ndarray:
        """Convenience: just the core-number array."""
        return self.decompose(graph).core
