"""High-level public API for k-core decomposition.

:class:`KCoreDecomposer` is the front door most users want: pick an
execution mode once, then decompose graphs.

* ``mode="fast"`` (default) — the vectorised native path; answers in
  real milliseconds, no cost model.
* ``mode="simulate"`` — runs the paper's CUDA kernels on the SIMT
  simulator, producing simulated time/memory metrics and honouring the
  chosen ablation variant.
"""

from __future__ import annotations

from repro.core.fastpath import fast_decompose
from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import VariantConfig
from repro.errors import ReproError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.spec import DeviceSpec
from repro.graph.csr import CSRGraph
from repro.result import DecompositionResult

__all__ = ["KCoreDecomposer"]

_MODES = ("fast", "simulate")


class KCoreDecomposer:
    """Reusable decomposition front end; see the module docstring.

    Example:
        >>> from repro.graph.examples import fig1_graph
        >>> graph, expected = fig1_graph()
        >>> result = KCoreDecomposer().decompose(graph)
        >>> int(result.core[0])
        3
    """

    def __init__(
        self,
        mode: str = "fast",
        variant: str | VariantConfig = "ours",
        spec: DeviceSpec | None = None,
        cost_model: CostModel | None = None,
        options: GpuPeelOptions | None = None,
    ) -> None:
        if mode not in _MODES:
            raise ReproError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.variant = variant
        self.spec = spec
        self.cost_model = cost_model
        self.options = options

    def decompose(self, graph: CSRGraph) -> DecompositionResult:
        """Compute the core number of every vertex of ``graph``."""
        if self.mode == "fast":
            return fast_decompose(graph)
        return gpu_peel(
            graph,
            variant=self.variant,
            spec=self.spec,
            cost_model=self.cost_model,
            options=self.options,
        )

    def core_numbers(self, graph: CSRGraph):
        """Convenience: just the core-number array."""
        return self.decompose(graph).core
