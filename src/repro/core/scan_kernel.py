"""The scan-phase kernel (Algorithm 2 of the paper).

In peel round ``k``, the grid's threads stride over the vertex array
and collect every vertex whose current degree equals ``k`` into their
block's buffer ``buf[i]``.  The buffer tail ``e`` lives in the block's
shared memory (Fig. 4) and is advanced with shared-memory atomics; at
kernel end, Thread 0 of each block backs ``e`` up to global memory for
the loop kernel.

Three append schemes mirror the ablation variants:

* ``none`` (Ours) — each hitting lane does its own ``atomicAdd(e, 1)``;
* ``ballot`` (BC) — warp-level ballot compaction, one atomic per warp;
* ``block`` (EC) — the four-stage intra-block compaction of Fig. 9,
  one atomic per block per trip, at the price of three extra
  ``__syncthreads`` per trip and Warp-0-only stages.

Under tracing (``docs/OBSERVABILITY.md``) each launch of this kernel
appears as a ``scan_kernel`` span on the ``device`` track, annotated
with cycles, memory transactions, barriers and atomic conflicts.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.buffers import BlockBufferView
from repro.core.compaction import (
    block_scan_offsets,
    warp_compact_ballot,
    warp_compact_hillis_steele,
)
from repro.core.variants import VariantConfig
from repro.gpusim.context import WarpContext
from repro.gpusim.memory import DeviceArray

__all__ = ["scan_kernel"]

#: static-certificate coverage map (see ``docs/STATIC_ANALYSIS.md``):
#: every ``ctx`` function here must be named, with the bound that
#: accounts for its cost; the AST pass in ``repro.staticheck.absint``
#: fails an ``uncertified-kernel`` finding otherwise.
__staticheck__ = {
    "scan_kernel": "repro.staticheck.bounds.scan_bounds (entry point)",
    "_hit_flags": "6 issued/trip, folded into every scan trip constant",
    "_scan_strided": "scan trip constants: none=8, ballot=13",
    "_scan_block_compaction": "scan trip constant block=35, 3 barriers/trip",
}


def scan_kernel(
    ctx: WarpContext,
    k: int,
    deg: DeviceArray,
    buf: DeviceArray,
    tails: DeviceArray,
    num_vertices: int,
    capacity: int,
    cfg: VariantConfig,
    vertex_lo: int = 0,
) -> Generator[str, None, None]:
    """Kernel ``scan(k)``: collect initial k-shell vertices per block.

    ``vertex_lo``/``num_vertices`` bound the scanned ID range
    ``[vertex_lo, num_vertices)`` — the full graph for single-GPU runs,
    a partition for the multi-GPU extension.
    """
    if ctx.warp_id == 0:
        ctx.smem_set("e", 0)  # Line 1 (Thread 0 of the block)
    yield ctx.BARRIER  # Line 2: __syncthreads

    view = BlockBufferView(ctx, buf, capacity, ring=cfg.ring_buffer)
    stride = ctx.num_threads
    base = vertex_lo + ctx.global_warp_id * ctx.warp_size

    if cfg.compaction == "block":
        yield from _scan_block_compaction(
            ctx, k, deg, view, num_vertices, stride, base
        )
    else:
        yield from _scan_strided(ctx, k, deg, view, num_vertices, stride, base, cfg)

    yield ctx.BARRIER
    if ctx.warp_id == 0:
        # back up e to buf[i].e in global memory for the loop kernel
        ctx.gstore(tails, ctx.block_idx, ctx.smem_get("e"))


def _hit_flags(
    ctx: WarpContext, k: int, deg: DeviceArray, first_vertex: int, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """One trip of Lines 3-6: which of this warp's 32 vertices have
    degree exactly ``k``.  Returns ``(lane_flags, hit_vertices)``."""
    v = first_vertex + ctx.lanes
    mask = v < num_vertices  # Line 5
    flags = np.zeros(ctx.warp_size, dtype=np.int64)
    ctx.charge(4)  # loop counter, index arithmetic, bounds check, branch
    if np.any(mask):
        degs = ctx.gload(deg, v[mask], dependent=False)  # coalesced read
        hit_lanes = ctx.lanes[mask][degs == k]  # Line 6
        flags[hit_lanes] = 1
        ctx.charge(1)
    return flags, (first_vertex + np.flatnonzero(flags)).astype(np.int64)


def _scan_strided(
    ctx: WarpContext,
    k: int,
    deg: DeviceArray,
    view: BlockBufferView,
    num_vertices: int,
    stride: int,
    base: int,
    cfg: VariantConfig,
) -> Generator[str, None, None]:
    """Lines 3-9 with per-lane atomic appends (Ours) or BC compaction."""
    for s in range(base, num_vertices, stride):
        flags, hits = _hit_flags(ctx, k, deg, s, num_vertices)
        if cfg.compaction == "none":
            if hits.size:
                # Line 7: every hitting lane runs atomicAdd(e, 1); the
                # hardware serialises them and each lane gets its slot.
                pos = ctx.smem_atomic_add("e", hits.size, lanes=int(hits.size))
                view.write(pos + np.arange(hits.size), hits)  # Line 9
        else:
            # Warp-level ballot compaction (Fig. 8c).  The scan runs
            # unconditionally every trip — straight-line SIMT code has
            # no early-out when nothing appends, which is exactly the
            # instruction overhead the paper's ablation measures.
            offsets, total = warp_compact_ballot(ctx, flags)
            if total:
                pos = ctx.smem_atomic_add("e", total, lanes=1)
                pos = ctx.shfl_broadcast(pos)
                ctx.charge(1)  # per-lane write-location add
                view.write(pos + offsets[flags == 1], hits)
        yield ctx.STEP


def _scan_block_compaction(
    ctx: WarpContext,
    k: int,
    deg: DeviceArray,
    view: BlockBufferView,
    num_vertices: int,
    stride: int,
    base: int,
) -> Generator[str, None, None]:
    """Lines 3-9 with the four-stage intra-block compaction (Fig. 9).

    Every warp must make the same number of trips so the per-trip
    barriers line up; trailing trips may simply contribute zero hits.
    """
    span = num_vertices - (base - ctx.global_warp_id * ctx.warp_size)
    trips = max(1, -(-span // stride))
    counts = ctx.smem_array("warp_counts", ctx.warps_per_block)
    woffs = ctx.smem_array("warp_offsets", ctx.warps_per_block)
    warp_index = np.arange(ctx.warps_per_block)
    for t in range(trips):
        flags, hits = _hit_flags(ctx, k, deg, t * stride + base, num_vertices)
        # Stage 1: warp-local offsets via Hillis-Steele (Fig. 9 step 1)
        offsets, total = warp_compact_hillis_steele(ctx, flags)
        ctx.sstore(counts, ctx.warp_id, total)
        yield ctx.BARRIER
        # Stages 2-3: Warp 0 scans the 32 warp sums and reserves slots
        if ctx.warp_id == 0:
            exclusive, block_total = block_scan_offsets(ctx)
            base_e = ctx.smem_atomic_add("e", block_total, lanes=1)
            ctx.sstore(woffs, warp_index, exclusive + base_e)
        yield ctx.BARRIER
        # Stage 4: every warp writes its hits at its block-level offset
        if hits.size:
            my_off = ctx.sload(woffs, ctx.warp_id)
            view.write(my_off + offsets[flags == 1], hits)
        yield ctx.BARRIER  # protect warp_counts reuse next trip
