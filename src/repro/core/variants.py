"""The kernel-variant matrix of the paper's ablation study (Table II).

The basic algorithm ("Ours") can be combined with two families of
optimisations:

* buffering — ``SM`` (shared-memory buffer with position translation,
  Fig. 7) or ``VP`` (Warp-0 vertex-frontier prefetching);
* compaction — ``BC`` (warp-level ballot-scan compaction, Fig. 8c) or
  ``EC`` (block-level two-stage compaction in the scan kernel, Fig. 9,
  with Hillis–Steele warp compaction in the loop kernel).

Ring buffers (Section IV-C) are an orthogonal robustness option, off by
default as in the paper's ablation.

Variants are observable end to end: run any of them with
``KCoreDecomposer(mode="simulate", variant=..., trace=True)`` and the
per-launch spans and ``kernel.*`` counters (``docs/OBSERVABILITY.md``)
show exactly how the variant shifts work between atomics, barriers and
memory transactions — the mechanics behind Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import UnknownAlgorithmError

__all__ = ["VariantConfig", "VARIANTS", "get_variant", "variant_names"]

#: valid values of :attr:`VariantConfig.compaction`
_COMPACTION_MODES = ("none", "ballot", "block")


@dataclass(frozen=True)
class VariantConfig:
    """One cell of the ablation matrix."""

    name: str
    #: how new k-shell vertices are appended to the block buffer:
    #: ``none`` = per-lane atomicAdd (Ours), ``ballot`` = BC,
    #: ``block`` = EC
    compaction: str = "none"
    #: SM: buffer loop-phase vertices in shared memory (Fig. 7)
    shared_buffer: bool = False
    #: VP: Warp 0 prefetches the next frontier batch into shared memory
    prefetch: bool = False
    #: organise each block buffer as a ring buffer (Section IV-C)
    ring_buffer: bool = False
    #: virtual warping (Section III): logical warps per physical warp,
    #: each processing one vertex's adjacency list with 32/vw lanes —
    #: "mainly for those graphs with a low average degree"
    virtual_warps: int = 1

    def __post_init__(self) -> None:
        if self.compaction not in _COMPACTION_MODES:
            raise ValueError(
                f"compaction must be one of {_COMPACTION_MODES}, "
                f"got {self.compaction!r}"
            )
        if self.shared_buffer and self.prefetch:
            raise ValueError("SM and VP are alternative buffering schemes")
        if self.virtual_warps not in (1, 2, 4, 8):
            raise ValueError("virtual_warps must be 1, 2, 4 or 8")
        if self.virtual_warps > 1 and (
            self.compaction != "none" or self.prefetch or self.shared_buffer
        ):
            raise ValueError(
                "virtual warping is orthogonal to the other optimisations "
                "(Section III) and is only combined with the basic kernel"
            )

    def with_ring_buffer(self) -> "VariantConfig":
        """The same variant with ring-buffer wraparound enabled."""
        return replace(self, name=self.name + "+ring", ring_buffer=True)


def _build_registry() -> Dict[str, VariantConfig]:
    # Spell the nine Table II variants out explicitly — the table is the
    # spec, and nine literal entries beat a clever cross-product.
    registry: Dict[str, VariantConfig] = {}
    registry["ours"] = VariantConfig("ours")
    registry["sm"] = VariantConfig("sm", shared_buffer=True)
    registry["vp"] = VariantConfig("vp", prefetch=True)
    registry["bc"] = VariantConfig("bc", compaction="ballot")
    registry["bc+sm"] = VariantConfig("bc+sm", compaction="ballot", shared_buffer=True)
    registry["bc+vp"] = VariantConfig("bc+vp", compaction="ballot", prefetch=True)
    registry["ec"] = VariantConfig("ec", compaction="block")
    registry["ec+sm"] = VariantConfig("ec+sm", compaction="block", shared_buffer=True)
    registry["ec+vp"] = VariantConfig("ec+vp", compaction="block", prefetch=True)
    return registry


#: The nine program versions of Table II, keyed by their paper names
#: (lower-cased): ours, sm, vp, bc, bc+sm, bc+vp, ec, ec+sm, ec+vp.
VARIANTS: Dict[str, VariantConfig] = _build_registry()

#: Variants outside Table II's matrix: virtual warping (Section III),
#: which the paper describes for low-average-degree graphs but treats
#: as orthogonal to its techniques.
EXTENSION_VARIANTS: Dict[str, VariantConfig] = {
    "vw2": VariantConfig("vw2", virtual_warps=2),
    "vw4": VariantConfig("vw4", virtual_warps=4),
}


def variant_names() -> Tuple[str, ...]:
    """The Table II variant names, in the paper's column order."""
    return tuple(VARIANTS)


def get_variant(name: str) -> VariantConfig:
    """Variant config by (case-insensitive) name, covering both the
    Table II matrix and the extension variants."""
    key = name.lower()
    if key in VARIANTS:
        return VARIANTS[key]
    if key in EXTENSION_VARIANTS:
        return EXTENSION_VARIANTS[key]
    known = ", ".join([*VARIANTS, *EXTENSION_VARIANTS])
    raise UnknownAlgorithmError(
        f"unknown kernel variant {name!r}; known: {known}"
    ) from None
