"""The loop-phase kernel (Algorithm 3 of the paper).

Each block drains its buffer of k-shell vertices: warps fetch one
vertex each per block iteration (Fig. 5), decrement the degrees of its
neighbors with ``atomicSub`` and append neighbors whose degree drops to
exactly ``k`` — a parallel BFS over the k-shell.  Cross-block races on
a shared neighbor are resolved by the degree-restore trick of Fig. 6:
an over-decremented vertex (old value already ``<= k``) gets its
decrement cancelled on Line 24, so degrees converge to core numbers.

Variants change two things:

* *fetching* — SM reads recent frontier vertices from the block's
  shared-memory buffer (Fig. 7); VP lets Warp 0 prefetch the next
  frontier batch into shared memory while the other warps compute;
* *appending* — BC/EC batch appends with warp-level compaction instead
  of per-lane shared atomics.

Under tracing (``docs/OBSERVABILITY.md``) each launch of this kernel
appears as a ``loop_kernel`` span on the ``device`` track; its shared
and global atomic contention is tallied into the ``atomic_conflicts``
span argument, and buffer appends drive the ``buffer_peak`` watermark.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.buffers import BlockBufferView
from repro.core.compaction import warp_compact_ballot, warp_compact_hillis_steele
from repro.core.variants import VariantConfig
from repro.gpusim.context import WarpContext
from repro.gpusim.memory import DeviceArray

__all__ = ["loop_kernel"]

#: static-certificate coverage map (see ``docs/STATIC_ANALYSIS.md``):
#: every ``ctx`` function here must be named, with the bound that
#: accounts for its cost; the AST pass in ``repro.staticheck.absint``
#: fails an ``uncertified-kernel`` finding otherwise.
__staticheck__ = {
    "loop_kernel": "repro.staticheck.bounds.loop_bounds (entry point)",
    "_drain": "min(P,n)+2 iteration bound, 2 barriers/iteration",
    "_drain_virtual": "min(P,n)+2 iterations, ceil(dmax/(S/vw)) sweep trips",
    "_process_vertices_virtual": "11 issued per virtual sweep trip",
    "_drain_prefetched": "2*min(P,n)+3 iteration bound, 3 barriers/iteration",
    "_process_vertex": "sweep-trip constants: 9 base + append",
    "_append": "append constants: none=2, ballot=7, block=15 (+6 SM)",
}


def loop_kernel(
    ctx: WarpContext,
    k: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    deg: DeviceArray,
    buf: DeviceArray,
    tails: DeviceArray,
    gpu_count: DeviceArray,
    capacity: int,
    shared_capacity: int,
    cfg: VariantConfig,
    own_range: tuple[int, int] | None = None,
) -> Generator[str, None, None]:
    """Kernel ``loop(k)``: drain the k-shell by parallel BFS.

    ``own_range=(lo, hi)`` restricts buffer *appends* to vertices this
    device owns (multi-GPU partitioning); degree decrements still apply
    to every neighbor, with remote deltas aggregated by the host
    afterwards.  ``None`` (single-GPU) owns everything.
    """
    if ctx.warp_id == 0:  # Lines 1-2 (Thread 0 of the block)
        e0 = ctx.gload(tails, ctx.block_idx)
        ctx.smem_set("s", 0)
        ctx.smem_set("e", e0)
        if cfg.shared_buffer:
            ctx.smem_set("e_init", e0)
        if cfg.prefetch:
            ctx.smem_set("pn_cur", 0)
            ctx.smem_set("pn_next", 0)
    view = BlockBufferView(
        ctx,
        buf,
        capacity,
        ring=cfg.ring_buffer,
        use_shared=cfg.shared_buffer,
        shared_capacity=shared_capacity,
    )
    if cfg.prefetch:
        yield from _drain_prefetched(
            ctx, view, k, offsets, neighbors, deg, cfg, own_range
        )
    elif cfg.virtual_warps > 1:
        yield from _drain_virtual(
            ctx, view, k, offsets, neighbors, deg, cfg, own_range
        )
    else:
        yield from _drain(ctx, view, k, offsets, neighbors, deg, cfg, own_range)

    yield ctx.BARRIER  # Line 25
    if ctx.warp_id == 0:  # Line 26
        ctx.atomic_global(gpu_count, 0, ctx.smem_get("e"))


def _drain(
    ctx: WarpContext,
    view: BlockBufferView,
    k: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    deg: DeviceArray,
    cfg: VariantConfig,
    own_range: tuple[int, int] | None = None,
) -> Generator[str, None, None]:
    """Lines 3-24: the basic per-warp fetch loop (also used by SM)."""
    while True:  # Line 3
        yield ctx.BARRIER  # Line 4
        s = ctx.smem_get("s")
        e = ctx.smem_get("e")
        ctx.charge(3)  # emptiness test, warp-offset arithmetic, branch
        if s == e:  # Line 5
            break
        s_prime = s + ctx.warp_id  # Line 6
        e_prime = e
        yield ctx.BARRIER  # Line 7
        if ctx.warp_id == 0:  # Lines 9-10 (Thread 0)
            ctx.smem_set("s", min(s + ctx.warps_per_block, e))
        if s_prime >= e_prime:  # Line 8
            continue
        v = view.read(s_prime)  # Line 12
        yield from _process_vertex(
            ctx, view, v, k, offsets, neighbors, deg, cfg, own_range
        )
        yield ctx.STEP


def _drain_virtual(
    ctx: WarpContext,
    view: BlockBufferView,
    k: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    deg: DeviceArray,
    cfg: VariantConfig,
    own_range: tuple[int, int] | None = None,
) -> Generator[str, None, None]:
    """Virtual warping (Section III): each physical warp runs ``vw``
    logical warps of ``32 / vw`` lanes, so it fetches and processes
    ``vw`` frontier vertices per block iteration.  Low-degree vertices
    no longer leave most of the warp's lanes idle — the win the paper
    attributes to the technique on low-average-degree graphs."""
    vw = cfg.virtual_warps
    lane_width = ctx.warp_size // vw
    while True:
        yield ctx.BARRIER  # Line 4
        s = ctx.smem_get("s")
        e = ctx.smem_get("e")
        ctx.charge(3)
        if s == e:  # Line 5
            break
        s_prime = s + ctx.warp_id * vw  # this warp's batch of vw slots
        e_prime = e
        yield ctx.BARRIER  # Line 7
        if ctx.warp_id == 0:
            ctx.smem_set("s", min(s + ctx.warps_per_block * vw, e))
        if s_prime >= e_prime:  # Line 8
            continue
        batch = view.read_batch(
            np.arange(s_prime, min(s_prime + vw, e_prime))
        )
        yield from _process_vertices_virtual(
            ctx, view, batch, lane_width, k, offsets, neighbors, deg,
            own_range,
        )
        yield ctx.STEP


def _process_vertices_virtual(
    ctx: WarpContext,
    view: BlockBufferView,
    batch: np.ndarray,
    lane_width: int,
    k: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    deg: DeviceArray,
    own_range: tuple[int, int] | None = None,
) -> Generator[str, None, None]:
    """Lines 13-24 for ``len(batch)`` vertices in lockstep: logical
    warp ``j`` sweeps ``batch[j]``'s adjacency list with ``lane_width``
    lanes; the physical warp's trip count is the *maximum* over its
    logical warps (lockstep SIMT)."""
    base = own_range[0] if own_range is not None else 0
    idx = np.concatenate([[v - base, v - base + 1] for v in batch])
    bounds = ctx.gload(offsets, idx)
    starts = bounds[0::2].copy()
    ends = bounds[1::2]
    trips = int(np.ceil((ends - starts).max() / lane_width)) if batch.size else 0
    for _ in range(trips):
        ctx.sync_warp()  # Line 15
        # gather each logical warp's next lane_width positions
        pieces = []
        for j in range(batch.size):
            width = min(lane_width, int(ends[j] - starts[j]))
            if width > 0:
                pieces.append(np.arange(starts[j], starts[j] + width))
                starts[j] += width
        if not pieces:
            break
        pos = np.concatenate(pieces)
        u = ctx.gload(neighbors, pos)
        du = ctx.gload(deg, u)
        ctx.charge(4)
        if ctx.should_preempt():
            yield ctx.STEP
        candidates = u[du > k]  # Line 20
        if candidates.size == 0:
            continue
        old = ctx.atomic_global(deg, candidates, -1)  # Line 21
        is_new = old == k + 1
        if own_range is not None:
            is_new &= (candidates >= own_range[0]) & (
                candidates < own_range[1]
            )
        newly = candidates[is_new]  # Line 22
        over_decremented = candidates[old <= k]  # Line 24
        if over_decremented.size:
            ctx.atomic_global(deg, over_decremented, +1)
        if newly.size:  # Line 23 (basic per-lane atomic appends)
            loc = ctx.smem_atomic_add("e", int(newly.size),
                                      lanes=int(newly.size))
            view.write(loc + np.arange(newly.size), newly)


def _drain_prefetched(
    ctx: WarpContext,
    view: BlockBufferView,
    k: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    deg: DeviceArray,
    cfg: VariantConfig,
    own_range: tuple[int, int] | None = None,
) -> Generator[str, None, None]:
    """The VP pipeline: Warp 0 fetches the next frontier batch into the
    shared arrays while warps ``1..W-1`` process the previous batch.

    Double-buffered ``pref`` arrays avoid a same-iteration read/write
    race; the pipeline drains when the buffer is empty *and* nothing is
    in flight.
    """
    warps = ctx.warps_per_block
    pref = (
        ctx.smem_array("pref0", warps),
        ctx.smem_array("pref1", warps),
    )
    iteration = 0
    while True:
        yield ctx.BARRIER
        s = ctx.smem_get("s")
        e = ctx.smem_get("e")
        in_flight = ctx.smem_get("pn_cur")
        ctx.charge(1)
        if s == e and in_flight == 0:
            break
        yield ctx.BARRIER  # snapshot (s, e, pn) before anyone updates
        if ctx.warp_id == 0:
            # prefetch up to W-1 vertices for the *next* iteration
            batch = min(warps - 1, e - s)
            ctx.charge(2)
            if batch > 0:
                frontier = view.read_batch(np.arange(s, s + batch))
                ctx.sstore(
                    pref[(iteration + 1) % 2],
                    1 + np.arange(batch),
                    frontier,
                )
            ctx.smem_set("s", s + batch)
            ctx.smem_set("pn_next", batch)
        elif ctx.warp_id <= in_flight:
            v = ctx.sload(pref[iteration % 2], ctx.warp_id)
            yield from _process_vertex(
                ctx, view, int(v), k, offsets, neighbors, deg, cfg, own_range
            )
        yield ctx.BARRIER
        if ctx.warp_id == 0:
            ctx.smem_set("pn_cur", ctx.smem_get("pn_next"))
        iteration += 1
        yield ctx.STEP


def _process_vertex(
    ctx: WarpContext,
    view: BlockBufferView,
    v: int,
    k: int,
    offsets: DeviceArray,
    neighbors: DeviceArray,
    deg: DeviceArray,
    cfg: VariantConfig,
    own_range: tuple[int, int] | None = None,
) -> Generator[str, None, None]:
    """Lines 13-24: the 32 lanes sweep ``v``'s adjacency list."""
    # partitioned workers store only their own slice of the CSR arrays,
    # indexed from own_range[0]
    base = own_range[0] if own_range is not None else 0
    bounds = ctx.gload(offsets, np.asarray([v - base, v - base + 1]))  # Line 13
    pos_s, pos_e = int(bounds[0]), int(bounds[1])
    while pos_s < pos_e:  # Lines 14/16
        ctx.sync_warp()  # Line 15
        pos = pos_s + ctx.lanes  # Line 17
        in_range = pos < pos_e  # Line 18
        u = ctx.gload(neighbors, pos[in_range])  # Line 19
        du = ctx.gload(deg, u)  # Line 20 (plain read)
        ctx.charge(4)  # position arithmetic, range test, degree compare
        if ctx.should_preempt():
            # fuzzing hook: widen the read->atomicSub race window
            yield ctx.STEP
        candidates = u[du > k]  # Line 20 (condition)
        newly = np.empty(0, dtype=np.int64)
        is_new = np.empty(0, dtype=bool)
        if candidates.size:
            old = ctx.atomic_global(deg, candidates, -1)  # Line 21
            is_new = old == k + 1
            if own_range is not None:
                # multi-GPU: only the owner collects a k-shell vertex;
                # remote crossings are found by the owner's next scan
                is_new &= (candidates >= own_range[0]) & (
                    candidates < own_range[1]
                )
            newly = candidates[is_new]  # Line 22
            over_decremented = candidates[old <= k]  # Line 24
            if over_decremented.size:
                ctx.atomic_global(deg, over_decremented, +1)
        # Line 23: appends.  The compaction variants execute their scan
        # sequence unconditionally each trip (straight-line SIMT code);
        # the basic variant only pays when a lane actually appends.
        if cfg.compaction != "none" or newly.size:
            _append(ctx, view, newly, in_range, du > k, is_new, cfg)
        pos_s += ctx.warp_size  # Line 17


def _append(
    ctx: WarpContext,
    view: BlockBufferView,
    newly: np.ndarray,
    in_range: np.ndarray,
    passed: np.ndarray,
    is_new: np.ndarray,
    cfg: VariantConfig,
) -> None:
    """Line 23 under the three append schemes.

    ``in_range``/``passed``/``is_new`` reconstruct which *lanes* append,
    which the compaction paths need for their lane flags.
    """
    count = int(newly.size)
    if cfg.compaction == "none":
        # per-lane atomicAdd(e, 1): serialised reservations
        loc = ctx.smem_atomic_add("e", count, lanes=count)
        view.write(loc + np.arange(count), newly)
        return
    flags = np.zeros(ctx.warp_size, dtype=np.int64)
    if count:
        appending_lanes = ctx.lanes[in_range][passed][is_new]
        flags[appending_lanes] = 1
    if cfg.compaction == "ballot":
        offsets, total = warp_compact_ballot(ctx, flags)
    else:  # EC uses plain Hillis-Steele warp compaction in the loop phase
        offsets, total = warp_compact_hillis_steele(ctx, flags)
    if total == 0:
        return
    loc = ctx.smem_atomic_add("e", total, lanes=1)
    loc = ctx.shfl_broadcast(loc)
    ctx.charge(1)
    view.write(loc + offsets[flags == 1], newly)
