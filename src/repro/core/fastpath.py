"""Vectorised "native" execution of the two-phase peeling algorithm.

This is the same scan/loop logic as the simulated kernels — per round
``k``, collect all degree-``k`` vertices, then BFS-propagate the
k-shell with batched degree decrements — expressed with whole-array
numpy operations so large graphs decompose in real milliseconds.  The
simulator path answers "what would the GPU do, cycle by cycle"; this
path answers "what are the core numbers" as fast as Python can.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.result import DecompositionResult

__all__ = ["peel_fast", "fast_decompose"]


def peel_fast(graph: CSRGraph) -> np.ndarray:
    """Core numbers via vectorised round-by-round peeling."""
    n = graph.num_vertices
    deg = graph.degrees.astype(np.int64).copy()
    offsets, neighbors = graph.offsets, graph.neighbors
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    k = 0
    while remaining > 0:
        # scan phase: all still-alive vertices whose degree is exactly k
        frontier = np.flatnonzero(alive & (deg <= k))
        while frontier.size:
            core[frontier] = k
            alive[frontier] = False
            remaining -= frontier.size
            # gather the concatenated adjacency lists of the frontier:
            # positions are starts[i] .. starts[i] + lengths[i] per vertex
            starts = offsets[frontier]
            lengths = offsets[frontier + 1] - starts
            total = int(lengths.sum())
            if total == 0:
                frontier = np.empty(0, dtype=np.int64)
                continue
            local = np.arange(total) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            touched = neighbors[np.repeat(starts, lengths) + local]
            # decrement each alive neighbor once per incident removal
            unique, counts = np.unique(touched, return_counts=True)
            live = alive[unique]
            affected = unique[live]
            deg[affected] -= counts[live]
            # neighbors whose degree dropped to k or below join the shell
            frontier = affected[deg[affected] <= k]
        k += 1
    return core


def fast_decompose(graph: CSRGraph) -> DecompositionResult:
    """:func:`peel_fast` wrapped as a :class:`DecompositionResult`."""
    core = peel_fast(graph)
    kmax = int(core.max()) if core.size else 0
    return DecompositionResult(
        core=core,
        algorithm="gpu-fast",
        rounds=kmax + 1,
        stats={"mode": "fast"},
    )
