"""Launch-level vectorized executors for the peeling kernels.

This module is the ``vectorized`` engine's fast path (see
:mod:`repro.gpusim.engine` and ``docs/SIMULATOR.md``).  Instead of
stepping one generator per warp through the reference scheduler, each
executor computes a whole launch — every device-memory side effect and
every cost-model tally — with batched numpy array operations, then
returns the same :class:`~repro.gpusim.scheduler.KernelStats` the
reference interpreter would have produced, byte for byte.

How exactness is preserved
--------------------------

*Scan* (:func:`~repro.core.scan_kernel.scan_kernel`) is closed-form:
no cross-block state is written, each block's buffer content is its
warps' hits ordered by ``(trip, warp, lane)``, and every per-trip cost
is a function of the trip's lane and hit counts alone.

*Loop* (:func:`~repro.core.loop_kernel.loop_kernel`) has cross-block
ordering semantics (concurrent ``atomicSub`` on shared neighbors), so
the executor replays the reference FIFO scheduler exactly — but at
*turn* granularity, with a few integer state updates per turn instead
of a generator resumption.  The expensive part of a turn (a warp's
whole adjacency sweep) is deferred into an ordered *event* list and
batched: when a block next reads its buffer tail ``e``, all pending
events are flushed in emission order with one numpy pass.  Candidacy
has a closed form under that order: the first ``deg0(u) - k`` touches
of a vertex ``u`` decrement it, and the touch with rank
``deg0(u) - k - 1`` observes ``k + 1`` and appends ``u`` (the
``newly`` set of Alg. 3 Line 22).  This is exact because, with no
preemption, a warp's read -> atomicSub window never interleaves
(events are atomic in the schedule), which also means the Fig. 6
restore path cannot fire — unless an adjacency list contains duplicate
neighbors, a case the executor detects up front and declines.

Fallback discipline
-------------------

All device side effects are *staged* (degree, buffer, tails, counter
copies plus staged shared-memory blocks) and committed only when the
launch completes, so an executor can decline a launch at any point by
raising :class:`~repro.gpusim.engine.FallbackToReference` with zero
observable effects — the engine then re-runs the launch on the
reference interpreter.  Declined launches: ring-buffer variants
(wraparound head/tail semantics), virtual warping (``vw > 1``),
duplicate in-adjacency neighbors, and predicted buffer overflow (the
reference run raises :class:`~repro.errors.BufferOverflowError` at the
exact offending write, with the exact partial state).  Shared-memory
exhaustion is *not* a fallback: the staged allocations replicate
:meth:`~repro.gpusim.context.BlockState.alloc_shared` order exactly,
fire the same memtracker callbacks, and raise the same
:class:`~repro.errors.SharedMemoryExhaustedError`.

The executors assume the CSR arrays (``offsets``/``neighbors``) are
immutable for the lifetime of the :class:`~repro.gpusim.memory.DeviceArray`
objects — true for every host program in this repository — so the
duplicate-neighbor pre-check can be cached per array pair.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.loop_kernel import loop_kernel
from repro.core.scan_kernel import scan_kernel
from repro.core.variants import VariantConfig
from repro.errors import SharedMemoryExhaustedError
from repro.gpusim.costmodel import BlockTiming
from repro.gpusim.engine import (
    FallbackToReference,
    VectorLaunch,
    register_vectorized_kernel,
)
from repro.gpusim.memory import DeviceArray
from repro.gpusim.scheduler import KernelStats
from repro.gpusim.vectorized import (
    assemble_stats,
    contiguous_transactions,
    grouped_distinct_segments,
    jit_available,
    maybe_jit,
)

__all__ = ["register"]


# ---------------------------------------------------------------------------
# shared accounting
# ---------------------------------------------------------------------------


class _Accounting:
    """Per-warp issue/path and per-block metric accumulators.

    Mirrors what :class:`~repro.gpusim.context.WarpContext` and
    :class:`~repro.gpusim.costmodel.BlockTiming` accumulate; every
    increment is an integer or quarter-integer, so sums are exact and
    order-independent (see :mod:`repro.gpusim.vectorized`).
    """

    def __init__(self, grid: int, warps: int) -> None:
        self.grid = grid
        self.warps = warps
        n = grid * warps
        self.issued = np.zeros(n, dtype=np.float64)
        self.path = np.zeros(n, dtype=np.float64)
        self.mem_transactions = np.zeros(grid, dtype=np.float64)
        self.mem_accesses = np.zeros(grid, dtype=np.float64)
        self.mem_active_lanes = np.zeros(grid, dtype=np.float64)
        self.mem_ideal_transactions = np.zeros(grid, dtype=np.float64)
        self.atomic_conflicts = np.zeros(grid, dtype=np.float64)
        self.atomic_cycles = np.zeros(grid, dtype=np.float64)
        self.buffer_peak = np.zeros(grid, dtype=np.float64)
        self.barriers = np.zeros(grid, dtype=np.int64)

    def warp_op(self, gwid: int, issued: float, path: float) -> None:
        self.issued[gwid] += issued
        self.path[gwid] += path

    def note_access(
        self, block: int, transactions: int, lanes: int
    ) -> None:
        """One warp global access: mirror ``_note_global_access``."""
        self.mem_transactions[block] += transactions
        self.mem_accesses[block] += max(1, -(-lanes // 32))
        self.mem_active_lanes[block] += lanes
        self.mem_ideal_transactions[block] += -(-lanes // 32)

    def finish(self, launch: VectorLaunch) -> KernelStats:
        w = self.warps
        block_issued = self.issued.reshape(self.grid, w).sum(axis=1)
        block_paths = self.path.reshape(self.grid, w).max(axis=1)
        timings = [
            BlockTiming(
                issued=float(block_issued[b]),
                mem_transactions=float(self.mem_transactions[b]),
                barriers=int(self.barriers[b]),
                atomic_conflicts=float(self.atomic_conflicts[b]),
                buffer_peak=float(self.buffer_peak[b]),
                atomic_cycles=float(self.atomic_cycles[b]),
                mem_accesses=float(self.mem_accesses[b]),
                mem_active_lanes=float(self.mem_active_lanes[b]),
                mem_ideal_transactions=float(
                    self.mem_ideal_transactions[b]
                ),
            )
            for b in range(self.grid)
        ]
        max_paths = [float(block_paths[b]) for b in range(self.grid)]
        return assemble_stats(
            timings, max_paths, launch.cost, launch.spec,
            launch.collect_timings,
        )


class _StagedShared:
    """Staged per-block shared memory, replicating ``alloc_shared``.

    Allocations are recorded in order; memtracker callbacks fire only
    at :meth:`commit` (end of launch, or just before re-raising
    :class:`~repro.errors.SharedMemoryExhaustedError`), so a launch
    that falls back to the reference interpreter leaves no trace.
    """

    def __init__(self, launch: VectorLaunch) -> None:
        self._spec = launch.spec
        self._memtracker = launch.memtracker
        self.arrays: List[Dict[str, np.ndarray]] = [
            {} for _ in range(launch.grid_dim)
        ]
        self._bytes = [0] * launch.grid_dim
        self._log: List[Tuple[int, str, int]] = []

    def alloc(self, block: int, name: str, size: int) -> np.ndarray:
        arrays = self.arrays[block]
        if name in arrays:
            return arrays[name]
        needed = size * self._spec.id_bytes
        if (
            self._bytes[block] + needed
            > self._spec.shared_memory_per_block_bytes
        ):
            # match the reference exactly: earlier successful allocs
            # have already notified the memtracker when this raises
            self.commit()
            raise SharedMemoryExhaustedError(
                block, name, needed, self._bytes[block],
                self._spec.shared_memory_per_block_bytes,
            )
        self._bytes[block] += needed
        self._log.append((block, name, needed))
        array = np.zeros(size, dtype=np.int64)
        arrays[name] = array
        return array

    def commit(self) -> None:
        mt = self._memtracker
        if mt is not None:
            for block, name, needed in self._log:
                mt.on_shared_alloc(block, name, needed)
        self._log.clear()


class _StagedArrays:
    """Lazy staging copies of mutable device arrays."""

    def __init__(self) -> None:
        self._staged: Dict[int, Tuple[DeviceArray, np.ndarray]] = {}

    def data(self, array: DeviceArray) -> np.ndarray:
        entry = self._staged.get(id(array))
        if entry is None:
            entry = (array, array.data.copy())
            self._staged[id(array)] = entry
        return entry[1]

    def commit(self) -> None:
        for array, copy in self._staged.values():
            array.data[:] = copy


# ---------------------------------------------------------------------------
# small numeric helpers
# ---------------------------------------------------------------------------


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    out = np.zeros(values.size + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out


def _segmented_exclusive_cumsum(
    values: np.ndarray, group: np.ndarray
) -> np.ndarray:
    """Exclusive running sum of ``values`` within each ``group``.

    ``group`` need not be contiguous; the original order within a group
    is preserved (the emission order the simulator semantics fix).
    """
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(group, kind="stable")
    sorted_vals = values[order]
    sorted_group = group[order]
    cs = np.cumsum(sorted_vals) - sorted_vals
    starts = np.empty(values.size, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_group[1:] != sorted_group[:-1]
    base = np.where(starts, cs, 0)
    np.maximum.accumulate(base, out=base)
    seg = cs - base
    out = np.empty(values.size, dtype=np.int64)
    out[order] = seg
    return out


def _contig_trans_vec(start: np.ndarray, length: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.gpusim.vectorized.contiguous_transactions`."""
    out = (start + length - 1) // 32 - start // 32 + 1
    return np.where(length > 0, out, 0)


def _expand_edges_numpy(
    starts: np.ndarray, degs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand per-event CSR slices to per-edge (event, offset, position)."""
    total = int(degs.sum())
    eid = np.repeat(np.arange(degs.size, dtype=np.int64), degs)
    base = _exclusive_cumsum(degs)
    off = np.arange(total, dtype=np.int64) - base[eid]
    return eid, off, starts[eid] + off


def _expand_edges_loop(
    starts: np.ndarray,
    degs: np.ndarray,
    eid: np.ndarray,
    off: np.ndarray,
    pos: np.ndarray,
) -> None:  # pragma: no cover - exercised only under numba
    j = 0
    for e in range(degs.shape[0]):
        for o in range(degs[e]):
            eid[j] = e
            off[j] = o
            pos[j] = starts[e] + o
            j += 1


_JITTED_EXPAND: Any = None


def _expand_edges(
    starts: np.ndarray, degs: np.ndarray, use_jit: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge expansion; the ``jit`` engine compiles the scalar loop.

    Identical output either way — the JIT tier only changes host time.
    """
    if use_jit and jit_available():  # pragma: no cover - needs numba
        global _JITTED_EXPAND
        if _JITTED_EXPAND is None:
            _JITTED_EXPAND = maybe_jit(_expand_edges_loop, True)
        total = int(degs.sum())
        eid = np.empty(total, dtype=np.int64)
        off = np.empty(total, dtype=np.int64)
        pos = np.empty(total, dtype=np.int64)
        _JITTED_EXPAND(starts, degs, eid, off, pos)
        return eid, off, pos
    return _expand_edges_numpy(starts, degs)


def _adjacency_has_duplicates(
    offsets: DeviceArray, neighbors: DeviceArray
) -> bool:
    """True when any vertex's adjacency slice repeats a neighbor.

    Cached on the ``neighbors`` array (CSR arrays are immutable in
    every host program here); the cache key ties it to the paired
    ``offsets`` array so multi-GPU slices don't collide.
    """
    key = (id(offsets), offsets.data.size, neighbors.data.size)
    cached = getattr(neighbors, "_fastsim_dup", None)
    if cached is not None and cached[0] == key:
        return bool(cached[1])
    offs = offsets.data
    nbrs = neighbors.data
    nv = offs.size - 1
    if nbrs.size < 2 or nv <= 0:
        dup = False
    else:
        # fast path: consecutive-pair diffs, masking out pairs that
        # straddle a slice boundary.  A zero diff inside a slice is a
        # duplicate outright; strictly increasing slices (the common
        # sorted-CSR case) can hold none.  Only unsorted slices need
        # the full lexsort.
        d = np.diff(nbrs)
        idx = offs[1:-1] - 1
        d[idx[(idx >= 0) & (idx < d.size)]] = 1  # neutralise boundaries
        if bool(np.any(d == 0)):
            dup = True
        elif bool(np.all(d > 0)):
            dup = False
        else:
            vid = np.repeat(
                np.arange(nv, dtype=np.int64), np.diff(offs)
            )
            # per-vertex duplicate test: sort (vertex, neighbor) pairs
            # and look for equal consecutive pairs
            order = np.lexsort((nbrs, vid))
            sv = vid[order]
            sn = nbrs[order]
            dup = bool(
                np.any((sv[1:] == sv[:-1]) & (sn[1:] == sn[:-1]))
            )
    try:
        setattr(neighbors, "_fastsim_dup", (key, dup))
    except Exception:  # frozen/slots array: just skip the cache
        pass
    return dup


def _bind(
    names: Tuple[str, ...],
    defaults: Mapping[str, Any],
    args: Tuple[Any, ...],
    kwargs: Mapping[str, Any],
) -> Dict[str, Any]:
    bound: Dict[str, Any] = dict(defaults)
    if len(args) > len(names):
        raise FallbackToReference("unexpected extra positional arguments")
    bound.update(zip(names, args))
    for key, value in kwargs.items():
        if key not in names:
            raise FallbackToReference(f"unexpected keyword {key!r}")
        bound[key] = value
    missing = [n for n in names if n not in bound]
    if missing:
        raise FallbackToReference(f"missing arguments {missing!r}")
    return bound


# ---------------------------------------------------------------------------
# scan kernel: fully closed form
# ---------------------------------------------------------------------------

_SCAN_PARAMS = (
    "k", "deg", "buf", "tails", "num_vertices", "capacity", "cfg",
    "vertex_lo",
)


class _ScanSkeleton:
    """Round-invariant structure of one scan launch shape.

    A decomposition launches the scan kernel once per peel round with
    the same grid, vertex range, and capacity — only ``k`` and the
    degree array change.  Everything that does not depend on *which*
    vertices hit (the trip enumeration, the per-trip base charges, the
    append ordering, the prologue/epilogue/barrier totals) is computed
    once here and reused, leaving each launch only the hit-dependent
    work.
    """

    __slots__ = (
        "trips_per_warp", "total_trips", "trip_base", "trip_warp",
        "trip_block", "trip_first", "trip_lanes", "order", "ord_first",
        "w0",
        "issued0", "path0", "trans0", "acc0", "lanes0", "ideal0",
        "atomic0", "barriers0",
    )

    def __init__(
        self, compaction: str, grid: int, warps: int, nv: int,
        vertex_lo: int, stride: int, capacity: int,
    ) -> None:
        gw = grid * warps
        gwids = np.arange(gw, dtype=np.int64)
        base = vertex_lo + gwids * 32
        if compaction == "block":
            # every warp makes the same trip count (barriers must line up)
            span = max(0, nv - vertex_lo)
            trips_per_warp = np.full(
                gw, max(1, -(-span // stride)), dtype=np.int64
            )
        else:
            trips_per_warp = np.maximum(0, -(-(nv - base) // stride))
        self.trips_per_warp = trips_per_warp
        total_trips = int(trips_per_warp.sum())
        self.total_trips = total_trips
        trip_warp = np.repeat(gwids, trips_per_warp)
        trip_base = _exclusive_cumsum(trips_per_warp)
        trip_t = np.arange(total_trips, dtype=np.int64) - trip_base[trip_warp]
        trip_first = base[trip_warp] + trip_t * stride
        trip_lanes = np.clip(nv - trip_first, 0, 32)
        trip_block = trip_warp // warps
        self.trip_base = trip_base
        self.trip_warp = trip_warp
        self.trip_block = trip_block
        self.trip_first = trip_first
        self.trip_lanes = trip_lanes
        has_lanes = trip_lanes > 0

        # -- per-trip base charges (hit-independent) --------------------
        # _hit_flags charge(4) + coalesced degree read & hit-mask
        # charge(2) when lanes are in range; issued == path for every
        # base term, so one fold serves both
        t_base = 4.0 + np.where(has_lanes, 2.0, 0.0)
        if compaction == "ballot":
            t_base += 3.0  # ballot + popc + lane-mask charge, every trip
        elif compaction == "block":
            t_base += 12.0  # Hillis-Steele compaction + sstore(counts)
        warp_base = np.bincount(trip_warp, weights=t_base, minlength=gw)
        self.issued0 = warp_base.copy()
        self.path0 = warp_base.copy()
        deg_trans = np.where(
            has_lanes, _contig_trans_vec(trip_first, trip_lanes), 0
        ).astype(np.float64)
        hl = has_lanes.astype(np.float64)
        self.trans0 = np.bincount(trip_block, weights=deg_trans,
                                  minlength=grid) + 1.0  # + tails store
        self.acc0 = np.bincount(trip_block, weights=hl, minlength=grid) + 1.0
        self.lanes0 = np.bincount(
            trip_block, weights=trip_lanes.astype(np.float64), minlength=grid
        ) + 1.0
        self.ideal0 = self.acc0.copy()
        self.atomic0 = np.zeros(grid)
        self.barriers0 = np.full(grid, 2, dtype=np.int64)  # Line 2 + final
        w0 = np.arange(grid, dtype=np.int64) * warps
        self.w0 = w0
        if compaction == "block":
            # Warp 0 stages 2-3, every trip: sload(counts) + 2*log2(W)+2
            # scan charge + atomicAdd(e, total, lanes=1) + sstore(woffs)
            steps = max(1, int(np.log2(max(2, warps))))
            trips0 = trips_per_warp[w0]
            self.issued0[w0] += (1.0 + (2 * steps + 2) + 1.0 + 1.0) * trips0
            self.path0[w0] += (1.0 + (2 * steps + 2) + 2.0 + 1.0) * trips0
            self.atomic0 += 2.0 * trips0
            self.barriers0 += 3 * trips0  # three __syncthreads per trip
        # prologue smem_set("e", 0) + epilogue smem_get("e") + gstore
        self.issued0[w0] += 3.0
        self.path0[w0] += 3.0

        # -- append ordering (hit-independent) --------------------------
        # appends are ordered by (trip, warp) within each block under
        # all three schemes; hit lanes keep ascending order in a trip
        order_key = (
            trip_block * np.int64(1 << 40) + trip_t * gw + trip_warp % warps
        )
        order = np.argsort(order_key, kind="stable")
        self.order = order
        # ord_first[i]: ordered index of the first trip of the block
        # that ordered position i belongs to — turns the per-launch
        # segmented cumsum into two plain vector ops
        ob = trip_block[order]
        first = np.zeros(total_trips, dtype=np.int64)
        if total_trips:
            new_block = np.empty(total_trips, dtype=bool)
            new_block[0] = True
            new_block[1:] = ob[1:] != ob[:-1]
            idx = np.arange(total_trips, dtype=np.int64)
            first = np.maximum.accumulate(np.where(new_block, idx, 0))
        self.ord_first = first


_SCAN_SKELETONS: Dict[Tuple[Any, ...], _ScanSkeleton] = {}


def _scan_skeleton(
    compaction: str, grid: int, warps: int, nv: int, vertex_lo: int,
    stride: int, capacity: int,
) -> _ScanSkeleton:
    key = (compaction, grid, warps, nv, vertex_lo, stride, capacity)
    skel = _SCAN_SKELETONS.get(key)
    if skel is None:
        if len(_SCAN_SKELETONS) >= 32:
            _SCAN_SKELETONS.clear()
        skel = _ScanSkeleton(
            compaction, grid, warps, nv, vertex_lo, stride, capacity
        )
        _SCAN_SKELETONS[key] = skel
    return skel


def _scan_vectorized(launch: VectorLaunch) -> KernelStats:
    b = _bind(_SCAN_PARAMS, {"vertex_lo": 0}, launch.args, launch.kwargs)
    cfg: VariantConfig = b["cfg"]
    if cfg.ring_buffer:
        raise FallbackToReference("ring buffers wrap against a moving head")
    k = int(b["k"])
    deg: DeviceArray = b["deg"]
    buf: DeviceArray = b["buf"]
    tails: DeviceArray = b["tails"]
    nv = int(b["num_vertices"])
    capacity = int(b["capacity"])
    vertex_lo = int(b["vertex_lo"])

    grid = launch.grid_dim
    warps = launch.block_dim // launch.spec.warp_size
    gw = grid * warps
    stride = launch.grid_dim * launch.block_dim
    acc = _Accounting(grid, warps)
    shared = _StagedShared(launch)
    staged = _StagedArrays()
    skel = _scan_skeleton(
        cfg.compaction, grid, warps, nv, vertex_lo, stride, capacity
    )
    if cfg.compaction == "block":
        # EC allocates its two staging arrays per block, in block order,
        # before any trip writes (see docs/SIMULATOR.md)
        for blk in range(grid):
            shared.alloc(blk, "warp_counts", warps)
            shared.alloc(blk, "warp_offsets", warps)

    # -- fold in the precomputed hit-independent charges ----------------
    total_trips = skel.total_trips
    trip_warp = skel.trip_warp
    trip_block = skel.trip_block
    acc.issued += skel.issued0
    acc.path += skel.path0
    acc.mem_transactions += skel.trans0
    acc.mem_accesses += skel.acc0
    acc.mem_active_lanes += skel.lanes0
    acc.mem_ideal_transactions += skel.ideal0
    acc.atomic_cycles += skel.atomic0
    acc.barriers += skel.barriers0

    # -- hits -----------------------------------------------------------
    hit_rel = np.flatnonzero(deg.data[vertex_lo:nv] == k) if nv > vertex_lo \
        else np.zeros(0, dtype=np.int64)
    if hit_rel.size <= 4096:
        # Scalar fast path.  A trip covers exactly one 32-vertex chunk
        # (stride == gw * 32), and the append order within a block —
        # (trip, warp) ascending — is ascending chunk, i.e. ascending
        # vertex id.  So grouping the (already ascending) hit list by
        # chunk walks trips in append order: buffer slots are contiguous
        # per block and the peak is the final tail.  All charges are
        # quarter-integers summed in Python floats — exact, so folding
        # them in bulk is bit-identical to the vector path.
        hits = hit_rel.tolist()
        ti = [0.0] * gw
        tp = [0.0] * gw
        at_cyc = [0.0] * grid
        at_con = [0.0] * grid
        m_tr = [0.0] * grid
        m_acc = [0.0] * grid
        m_lan = [0.0] * grid
        pos = [0] * grid
        content: List[List[int]] = [[] for _ in range(grid)]
        comp = cfg.compaction
        i = 0
        n = len(hits)
        while i < n:
            chunk = hits[i] >> 5
            j = i + 1
            while j < n and hits[j] >> 5 == chunk:
                j += 1
            h = j - i
            wg = chunk % gw
            bidx = wg // warps
            if comp == "none":
                # atomicAdd(e, h): h serialised lanes + buffered gstore
                ti[wg] += 2.0
                sa = 2.0 + 0.25 * (h - 1)
                tp[wg] += sa + 1.0
                at_cyc[bidx] += sa
                at_con[bidx] += h - 1
            elif comp == "ballot":
                ti[wg] += 4.0  # atomic + shfl + charge(1) + gstore
                tp[wg] += 5.0
                at_cyc[bidx] += 2.0
            else:  # block (EC): sload(woffs) + gstore
                ti[wg] += 2.0
                tp[wg] += 2.0
            a0 = bidx * capacity + pos[bidx]
            m_tr[bidx] += (a0 + h - 1) // 32 - a0 // 32 + 1
            m_acc[bidx] += 1.0
            m_lan[bidx] += h
            pos[bidx] += h
            if vertex_lo:
                content[bidx].extend(v + vertex_lo for v in hits[i:j])
            else:
                content[bidx].extend(hits[i:j])
            i = j
        if max(pos, default=0) > capacity:
            raise FallbackToReference(
                "scan buffer overflow; reference raises"
            )
        acc.issued += np.asarray(ti)
        acc.path += np.asarray(tp)
        acc.atomic_cycles += np.asarray(at_cyc)
        acc.atomic_conflicts += np.asarray(at_con)
        acc.mem_transactions += np.asarray(m_tr)
        acc.mem_accesses += np.asarray(m_acc)
        acc.mem_active_lanes += np.asarray(m_lan)
        acc.mem_ideal_transactions += np.asarray(m_acc)
        np.maximum(
            acc.buffer_peak, np.asarray(pos, dtype=np.float64),
            out=acc.buffer_peak,
        )
        buf_staged = staged.data(buf)
        for bidx, vs in enumerate(content):
            if vs:
                buf_staged[
                    bidx * capacity : bidx * capacity + len(vs)
                ] = vs
        tails_staged = staged.data(tails)
        tails_staged[:grid] = pos
        stats = acc.finish(launch)
        shared.commit()
        staged.commit()
        return stats

    hit_v = hit_rel + vertex_lo
    hit_chunk = hit_rel // 32
    hit_warp = hit_chunk % gw
    hit_trip = skel.trip_base[hit_warp] + hit_chunk // gw
    trip_hits = np.bincount(hit_trip, minlength=total_trips).astype(np.int64)
    has_hits = trip_hits > 0
    hf = has_hits.astype(np.float64)

    # -- hit-dependent per-trip charges ---------------------------------
    if cfg.compaction == "none":
        # atomicAdd(e, h) with h serialised lanes + the buffered gstore
        t_issued = hf * 2.0
        sa = np.where(has_hits, 2.0 + 0.25 * (trip_hits - 1), 0.0)
        t_path = sa + hf
        acc.atomic_cycles += np.bincount(trip_block, weights=sa,
                                         minlength=grid)
        acc.atomic_conflicts += np.bincount(
            trip_block,
            weights=np.where(has_hits, trip_hits - 1, 0).astype(np.float64),
            minlength=grid,
        )
    elif cfg.compaction == "ballot":
        t_issued = hf * 4.0  # atomic + shfl + charge(1) + gstore
        t_path = hf * (2.0 + 1.0 + 1.0 + 1.0)
        acc.atomic_cycles += np.bincount(trip_block, weights=hf * 2.0,
                                         minlength=grid)
    else:  # block (EC)
        t_issued = hf * 2.0  # sload(woffs) + gstore
        t_path = hf * 2.0
    acc.issued += np.bincount(trip_warp, weights=t_issued, minlength=gw)
    acc.path += np.bincount(trip_warp, weights=t_path, minlength=gw)

    # -- buffer positions and contents ---------------------------------
    # positions: exclusive cumsum of hits in (block, t, w) order
    order = skel.order
    th_ord = trip_hits[order]
    cs = np.cumsum(th_ord) - th_ord
    pos_in_block = cs - cs[skel.ord_first]
    trip_pos = np.empty(total_trips, dtype=np.int64)
    trip_pos[order] = pos_in_block
    final_e = np.bincount(trip_block, weights=trip_hits, minlength=grid)
    final_e = final_e.astype(np.int64)
    if int(final_e.max(initial=0)) > capacity:
        raise FallbackToReference("scan buffer overflow; reference raises")

    wr_block = trip_block[has_hits]
    wr_pos = trip_pos[has_hits]
    wr_h = trip_hits[has_hits]
    wr_trans = _contig_trans_vec(wr_block * capacity + wr_pos, wr_h)
    acc.mem_transactions += np.bincount(
        wr_block, weights=wr_trans.astype(np.float64), minlength=grid
    )
    wr_per_block = np.bincount(wr_block, minlength=grid)
    acc.mem_accesses += wr_per_block
    acc.mem_active_lanes += np.bincount(
        wr_block, weights=wr_h.astype(np.float64), minlength=grid
    )
    acc.mem_ideal_transactions += wr_per_block
    np.maximum.at(
        acc.buffer_peak, wr_block, (wr_pos + wr_h).astype(np.float64)
    )

    # buffer content: each block's hit vertices in (trip, warp, lane)
    # order == ascending vertex id within that block's chunks
    buf_staged = staged.data(buf)
    hit_block = hit_warp // warps
    hit_slot = (
        trip_pos[hit_trip]
        + _segmented_exclusive_cumsum(
            np.ones(hit_v.size, dtype=np.int64), hit_trip
        )
    )
    buf_staged[hit_block * capacity + hit_slot] = hit_v

    tails_staged = staged.data(tails)
    tails_staged[:grid] = final_e

    stats = acc.finish(launch)
    shared.commit()
    staged.commit()
    return stats


# ---------------------------------------------------------------------------
# loop kernel: exact turn-level replay with batched event flushes
# ---------------------------------------------------------------------------

_LOOP_PARAMS = (
    "k", "offsets", "neighbors", "deg", "buf", "tails", "gpu_count",
    "capacity", "shared_capacity", "cfg", "own_range",
)

class _LoopBlock:
    """Per-block replay state (the kernel's shared scalars)."""

    __slots__ = (
        "idx", "s", "e", "e_init", "pn_cur", "pn_next", "parity",
        "head_s", "head_e", "head_pn", "pending", "pref",
    )

    def __init__(self, idx: int, warps: int) -> None:
        self.idx = idx
        self.s = 0
        self.e = 0
        self.e_init = 0
        self.pn_cur = 0
        self.pn_next = 0
        self.parity = 0
        self.head_s = 0
        self.head_e = 0
        self.head_pn = 0
        self.pending = 0
        self.pref: Tuple[np.ndarray, np.ndarray] | None = None


class _LoopRun:
    """One loop-kernel launch being replayed; owns staging + events."""

    def __init__(self, launch: VectorLaunch, bound: Dict[str, Any]) -> None:
        self.launch = launch
        self.cfg: VariantConfig = bound["cfg"]
        self.k = int(bound["k"])
        self.offsets: DeviceArray = bound["offsets"]
        self.neighbors: DeviceArray = bound["neighbors"]
        self.deg: DeviceArray = bound["deg"]
        self.buf: DeviceArray = bound["buf"]
        self.tails: DeviceArray = bound["tails"]
        self.gpu_count: DeviceArray = bound["gpu_count"]
        self.capacity = int(bound["capacity"])
        self.shared_capacity = int(bound["shared_capacity"])
        self.own_range: Optional[Tuple[int, int]] = bound["own_range"]
        self.base = self.own_range[0] if self.own_range is not None else 0
        self.grid = launch.grid_dim
        self.warps = launch.block_dim // launch.spec.warp_size
        self.acc = _Accounting(self.grid, self.warps)
        self.shared = _StagedShared(launch)
        self.staged = _StagedArrays()
        self.deg_staged = self.staged.data(self.deg)
        self.buf_staged = self.staged.data(self.buf)
        # scalar-flush support: the staged degree array doubles as a
        # Python list (built lazily, kept authoritative between vector
        # flushes) when the CSR is small enough for list mirroring
        self.scalar_ok = (
            self.offsets.data.size <= 200_000
            and self.neighbors.data.size <= 2_000_000
        )
        self.deg_list: Optional[List[int]] = None
        self.blocks = [_LoopBlock(i, self.warps) for i in range(self.grid)]
        # pending events, in emission order
        self.ev_block: List[int] = []
        self.ev_gwid: List[int] = []
        self.ev_slot: List[int] = []  # -1 for value events (VP)
        self.ev_value: List[int] = []

    # -- event plumbing -------------------------------------------------

    def emit(self, block: _LoopBlock, gwid: int, slot: int, value: int) -> None:
        self.ev_block.append(block.idx)
        self.ev_gwid.append(gwid)
        self.ev_slot.append(slot)
        self.ev_value.append(value)
        block.pending += 1

    def flush(self) -> None:
        if not self.ev_block:
            return
        if not _try_flush_scalar(self):
            _flush_events(self)
        self.ev_block.clear()
        self.ev_gwid.clear()
        self.ev_slot.clear()
        self.ev_value.clear()
        for block in self.blocks:
            block.pending = 0


def _resolve_slot_events(
    run: _LoopRun, ev_block: np.ndarray, ev_gwid: np.ndarray
) -> np.ndarray:
    """Resolve buffer reads for slot events + charge the read costs.

    Per-warp/per-block charges are folded with ``np.bincount`` rather
    than ``np.ufunc.at`` — both sum the same exact dyadic values, so
    the totals are bit-identical, but ``bincount`` is far cheaper on
    the small index sets a flush batch produces.
    """
    acc = run.acc
    grid = run.grid
    nwarps = grid * run.warps
    ev_slot = np.asarray(run.ev_slot, dtype=np.int64)
    values = np.asarray(run.ev_value, dtype=np.int64)
    is_slot = ev_slot >= 0
    if not np.any(is_slot):
        return values
    sl_block = ev_block[is_slot]
    sl_gwid = ev_gwid[is_slot]
    sl_slot = ev_slot[is_slot]
    if not run.cfg.shared_buffer:
        # plain view.read: one dependent gload of one word
        per_warp = np.bincount(sl_gwid, minlength=nwarps)
        acc.issued += per_warp
        acc.path += per_warp * (1.0 + run.launch.cost.global_load_latency)
        per_block = np.bincount(sl_block, minlength=grid)
        acc.mem_transactions += per_block
        acc.mem_accesses += per_block
        acc.mem_active_lanes += per_block
        acc.mem_ideal_transactions += per_block
        values[is_slot] = run.buf_staged[sl_block * run.capacity + sl_slot]
        return values
    # SM view.read: e_init fetch + Fig. 7 translation, then shared or
    # shifted-global access per event
    e_init = np.asarray(
        [run.blocks[i].e_init for i in range(run.grid)], dtype=np.int64
    )[sl_block]
    per_warp = np.bincount(sl_gwid, minlength=nwarps)
    acc.issued += per_warp * 5.0  # smem_get + charge(4)
    acc.path += per_warp * 5.0
    scap = run.shared_capacity
    in_shared = (sl_slot >= e_init) & (sl_slot < e_init + scap)
    resolved = np.empty(sl_slot.size, dtype=np.int64)
    if np.any(in_shared):
        sh_warp = np.bincount(sl_gwid[in_shared], minlength=nwarps)
        acc.issued += sh_warp  # sload
        acc.path += sh_warp
        sh_slots = sl_slot[in_shared] - e_init[in_shared]
        sh_blocks = sl_block[in_shared]
        resolved[in_shared] = np.asarray(
            [
                run.shared.arrays[blk]["B"][slot]
                for blk, slot in zip(sh_blocks, sh_slots)
            ],
            dtype=np.int64,
        ) if sh_blocks.size else np.zeros(0, dtype=np.int64)
    out_shared = ~in_shared
    if np.any(out_shared):
        g = sl_gwid[out_shared]
        blkk = sl_block[out_shared]
        gl_warp = np.bincount(g, minlength=nwarps)
        acc.issued += gl_warp
        acc.path += gl_warp * (1.0 + run.launch.cost.global_load_latency)
        gl_block = np.bincount(blkk, minlength=grid)
        acc.mem_transactions += gl_block
        acc.mem_accesses += gl_block
        acc.mem_active_lanes += gl_block
        acc.mem_ideal_transactions += gl_block
        gpos = sl_slot[out_shared].copy()
        gpos[gpos >= e_init[out_shared]] -= scap
        if int(gpos.max(initial=0)) >= run.capacity:
            raise FallbackToReference("loop buffer read overflow")
        resolved[out_shared] = run.buf_staged[blkk * run.capacity + gpos]
    values[is_slot] = resolved
    return values


#: flush batches touching at most this many edges take the scalar path
_SCALAR_EDGE_LIMIT = 4096


def _scalar_list(array: DeviceArray, attr: str) -> List[int]:
    """A device array as a cached Python list (scalar-read speed).

    Only used for the CSR arrays, which no kernel writes; the cache is
    keyed on size like the duplicate-adjacency cache.
    """
    key = array.data.size
    cached = getattr(array, attr, None)
    if cached is not None and cached[0] == key:
        return cached[1]  # type: ignore[no-any-return]
    lst: List[int] = array.data.tolist()
    try:
        setattr(array, attr, (key, lst))
    except AttributeError:
        pass
    return lst


def _try_flush_scalar(run: _LoopRun) -> bool:
    """Flush a small batch by direct sequential emulation.

    A flush batch holds at most one event per warp (≤ 64), so most
    batches sweep a few hundred edges — far below the scale where the
    vectorised closed forms in :func:`_flush_events` pay for their
    fixed numpy dispatch cost.  This path replays the batch the way
    the reference interpreter does — event by event, trip by trip,
    serialising the atomics in lane order — which is *trivially*
    order-identical, and every charge is the same dyadic rational the
    vector path folds, so the sums match bit for bit.

    First a cost-free peek resolves the frontier vertices and sizes
    the batch; batches over :data:`_SCALAR_EDGE_LIMIT` edges (or with
    anything the peek cannot cheaply validate) return ``False`` and
    fall through to the vector path, which also owns raising the
    fallback errors with the correct charges applied.
    """
    if not run.scalar_ok:
        return False
    cap = run.capacity
    cfg = run.cfg
    sm = cfg.shared_buffer
    scap = run.shared_capacity if sm else 0
    buf = run.buf_staged
    # -- peek: resolve values + bounds without charging ----------------
    vals: List[int] = []
    if sm:
        shared = run.shared.arrays
        for b, slot, val in zip(run.ev_block, run.ev_slot, run.ev_value):
            if slot < 0:
                vals.append(val)
                continue
            e_init = run.blocks[b].e_init
            if e_init <= slot < e_init + scap:
                vals.append(int(shared[b]["B"][slot - e_init]))
            else:
                gpos = slot - scap if slot >= e_init else slot
                if gpos >= cap:
                    return False  # vector path raises the fallback
                vals.append(int(buf[b * cap + gpos]))
    else:
        for b, slot, val in zip(run.ev_block, run.ev_slot, run.ev_value):
            vals.append(val if slot < 0 else int(buf[b * cap + slot]))
    offs = _scalar_list(run.offsets, "_fastsim_offs")
    osz = len(offs)
    base = run.base
    bounds: List[Tuple[int, int]] = []
    total = 0
    for v in vals:
        rel = v - base
        if rel < 0 or rel + 1 >= osz:
            return False  # vector path raises the fallback
        s = offs[rel]
        e = offs[rel + 1]
        bounds.append((s, e))
        total += e - s
    if total > _SCALAR_EDGE_LIMIT:
        return False
    _flush_scalar(run, vals, bounds)
    return True


def _flush_scalar(
    run: _LoopRun, vals: List[int], bounds: List[Tuple[int, int]]
) -> None:
    """Sequential (reference-order) execution of a small flush batch.

    Assumes the launch-level no-duplicate-adjacency guard: within one
    trip every touched vertex is distinct, so the pre-trip degree
    snapshot is the value each lane's atomic observes.  Charges are
    accumulated in Python scalars and folded into the accounting
    arrays in one vector step per metric.
    """
    acc = run.acc
    cost = run.launch.cost
    gll = cost.global_load_latency
    gab = cost.global_atomic_base
    k = run.k
    grid = run.grid
    nwarps = grid * run.warps
    cap = run.capacity
    cfg = run.cfg
    sm = cfg.shared_buffer
    scap = run.shared_capacity if sm else 0
    effective = cap + scap
    compaction = cfg.compaction
    scan_cost = 0.0 if compaction == "none" else (
        3.0 if compaction == "ballot" else 11.0
    )
    nbrs = _scalar_list(run.neighbors, "_fastsim_nbrs")
    if run.deg_list is None:
        run.deg_list = run.deg_staged.tolist()
    deg = run.deg_list
    buf = run.buf_staged
    own = run.own_range
    lo, hi = own if own is not None else (0, 0)
    wi = [0.0] * nwarps  # issued
    wp = [0.0] * nwarps  # path
    bt = [0.0] * grid  # mem_transactions
    ba = [0.0] * grid  # mem_accesses
    bl = [0.0] * grid  # mem_active_lanes
    bi = [0.0] * grid  # mem_ideal_transactions
    bat = [0.0] * grid  # atomic_cycles
    bcf = [0.0] * grid  # atomic_conflicts
    bpk = [0.0] * grid  # buffer_peak (running max)
    for i, (v, (s, e)) in enumerate(zip(vals, bounds)):
        b = run.ev_block[i]
        g = run.ev_gwid[i]
        blk = run.blocks[b]
        # -- the buffer read (charges only; value came from the peek) --
        if run.ev_slot[i] >= 0:
            if sm:
                wi[g] += 5.0  # smem_get(e_init) + charge(4)
                wp[g] += 5.0
                if blk.e_init <= run.ev_slot[i] < blk.e_init + scap:
                    wi[g] += 1.0  # sload
                    wp[g] += 1.0
                else:
                    wi[g] += 1.0  # shifted gload
                    wp[g] += 1.0 + gll
                    bt[b] += 1.0
                    ba[b] += 1.0
                    bl[b] += 1.0
                    bi[b] += 1.0
            else:
                wi[g] += 1.0  # plain gload of one word
                wp[g] += 1.0 + gll
                bt[b] += 1.0
                ba[b] += 1.0
                bl[b] += 1.0
                bi[b] += 1.0
        # -- Line 13: bounds load (two consecutive offsets words) ------
        rel = v - run.base
        wi[g] += 1.0
        wp[g] += 1.0 + gll
        bt[b] += float((rel + 1) // 32 - rel // 32 + 1)
        ba[b] += 1.0
        bl[b] += 2.0
        bi[b] += 1.0
        # -- the adjacency sweep, one 32-lane trip at a time -----------
        for pos0 in range(s, e, 32):
            l = min(32, e - pos0)
            u_list = nbrs[pos0 : pos0 + l]
            # sync_warp + neighbors gload + deg gload + charge(4)
            wi[g] += 7.0 + scan_cost
            wp[g] += 7.0 + 2.0 * gll + scan_cost
            segs = set()
            cand: List[int] = []
            newly: List[int] = []
            # every x in a trip is distinct (launch-level duplicate
            # guard), so in-loop writes never shadow a later read
            for x in u_list:
                segs.add(x >> 5)
                du = deg[x]
                if du > k:
                    cand.append(x)
                    deg[x] = du - 1
                    if du == k + 1 and (own is None or lo <= x < hi):
                        newly.append(x)
            bt[b] += float(
                (pos0 + l - 1) // 32 - pos0 // 32 + 1 + len(segs)
            )
            ba[b] += 2.0
            bl[b] += 2.0 * l
            bi[b] += 2.0
            c = len(cand)
            if c:
                # Line 21: atomicSub (distinct addresses: no conflicts)
                wi[g] += 1.0
                wp[g] += gab
                bat[b] += gab
                bt[b] += float(len({x >> 5 for x in cand}))
                ba[b] += 1.0
                bl[b] += float(c)
                bi[b] += 1.0
            nw = len(newly)
            if not nw:
                continue
            # -- append the newly-dead vertices ------------------------
            loc = blk.e
            if loc + nw > effective:
                raise FallbackToReference(
                    "loop buffer overflow; reference raises"
                )
            if compaction == "none":
                wi[g] += 1.0
                sa = 2.0 + 0.25 * (nw - 1)
                wp[g] += sa
                bat[b] += sa
                bcf[b] += float(nw - 1)
            else:
                wi[g] += 3.0  # atomic + shfl + charge
                wp[g] += 4.0
                bat[b] += 2.0
            if not sm:
                wi[g] += 1.0  # gstore
                wp[g] += 1.0
                start = b * cap + loc
                bt[b] += float((start + nw - 1) // 32 - start // 32 + 1)
                ba[b] += 1.0
                bl[b] += float(nw)
                bi[b] += 1.0
                buf[start : start + nw] = newly
            else:
                wi[g] += 5.0  # smem_get(e_init) + charge(4)
                wp[g] += 5.0
                n_sh = min(max(blk.e_init + scap - loc, 0), nw)
                if n_sh:
                    wi[g] += 1.0  # sstore
                    wp[g] += 1.0
                    window = run.shared.arrays[b]["B"]
                    for j in range(n_sh):
                        window[loc - blk.e_init + j] = newly[j]
                n_gl = nw - n_sh
                if n_gl:
                    wi[g] += 1.0  # gstore
                    wp[g] += 1.0
                    gl_start = b * cap + max(loc, blk.e_init + scap) - scap
                    bt[b] += float(
                        (gl_start + n_gl - 1) // 32 - gl_start // 32 + 1
                    )
                    ba[b] += 1.0
                    bl[b] += float(n_gl)
                    bi[b] += 1.0
                    buf[gl_start : gl_start + n_gl] = newly[n_sh:]
            if loc + nw > bpk[b]:
                bpk[b] = float(loc + nw)
            blk.e = loc + nw
    acc.issued += np.asarray(wi)
    acc.path += np.asarray(wp)
    acc.mem_transactions += np.asarray(bt)
    acc.mem_accesses += np.asarray(ba)
    acc.mem_active_lanes += np.asarray(bl)
    acc.mem_ideal_transactions += np.asarray(bi)
    acc.atomic_cycles += np.asarray(bat)
    acc.atomic_conflicts += np.asarray(bcf)
    np.maximum(acc.buffer_peak, np.asarray(bpk), out=acc.buffer_peak)


def _flush_events(run: _LoopRun) -> None:
    """Batch-execute all pending events in emission order.

    One event is one warp's full adjacency sweep of one frontier
    vertex (Alg. 3 Lines 12-24).  See the module docstring for why the
    rank closed form reproduces the reference order exactly.
    """
    acc = run.acc
    cost = run.launch.cost
    k = run.k
    grid = run.grid
    nwarps = grid * run.warps
    if run.deg_list is not None:
        # the scalar path left the Python list authoritative
        run.deg_staged[:] = run.deg_list
    ev_block = np.asarray(run.ev_block, dtype=np.int64)
    ev_gwid = np.asarray(run.ev_gwid, dtype=np.int64)
    v = _resolve_slot_events(run, ev_block, ev_gwid)

    # Line 13: the bounds load (two consecutive offsets words)
    rel = v - run.base
    offs = run.offsets.data
    if int(rel.min(initial=0)) < 0 or int(rel.max(initial=-1)) + 1 >= offs.size:
        raise FallbackToReference("frontier vertex outside CSR slice")
    starts = offs[rel]
    ends = offs[rel + 1]
    ev_per_warp = np.bincount(ev_gwid, minlength=nwarps)
    acc.issued += ev_per_warp
    acc.path += ev_per_warp * (1.0 + cost.global_load_latency)
    ev_per_block = np.bincount(ev_block, minlength=grid)
    acc.mem_transactions += np.bincount(
        ev_block,
        weights=_contig_trans_vec(
            rel, np.full(rel.size, 2, dtype=np.int64)
        ).astype(np.float64),
        minlength=grid,
    )
    acc.mem_accesses += ev_per_block
    acc.mem_active_lanes += 2.0 * ev_per_block
    acc.mem_ideal_transactions += ev_per_block

    degs = (ends - starts).astype(np.int64)
    if int(degs.sum()) == 0:
        return

    # -- expand every event's adjacency slice to edge granularity ------
    eid, off, pos = _expand_edges(starts, degs, run.launch.use_jit)
    u = run.neighbors.data[pos]

    # trips: 32 lanes per trip, in (event, trip, lane) order — exactly
    # the global touch order of the reference schedule
    trips_per_event = -(-degs // 32)
    trip_base = _exclusive_cumsum(trips_per_event)
    gtid = trip_base[eid] + off // 32
    total_trips = int(trips_per_event.sum())
    trip_event = np.repeat(
        np.arange(degs.size, dtype=np.int64), trips_per_event
    )
    tw = np.arange(total_trips, dtype=np.int64) - trip_base[trip_event]
    trip_pos0 = starts[trip_event] + 32 * tw
    trip_l = np.minimum(32, ends[trip_event] - trip_pos0).astype(np.int64)
    trip_gwid = ev_gwid[trip_event]
    trip_block = ev_block[trip_event]

    # -- candidacy by rank (see module docstring) ----------------------
    order = np.argsort(u, kind="stable")
    su = u[order]
    bounds = np.empty(su.size, dtype=bool)
    bounds[0] = True
    bounds[1:] = su[1:] != su[:-1]
    group = np.cumsum(bounds) - 1
    rank_sorted = (
        np.arange(su.size, dtype=np.int64) - np.flatnonzero(bounds)[group]
    )
    rank = np.empty(u.size, dtype=np.int64)
    rank[order] = rank_sorted
    d0 = run.deg_staged[u]
    cand = rank < (d0 - k)
    newly = cand & (rank == d0 - k - 1)
    if run.own_range is not None:
        lo, hi = run.own_range
        newly &= (u >= lo) & (u < hi)
    np.subtract.at(run.deg_staged, u[cand], 1)
    if run.deg_list is not None:
        run.deg_list = run.deg_staged.tolist()

    # -- per-trip costs -------------------------------------------------
    # sync_warp + neighbors gload + deg gload + charge(4), every trip
    t_issued = np.full(total_trips, 7.0)
    t_path = np.full(
        total_trips, 7.0 + 2 * cost.global_load_latency
    )
    nbr_trans = _contig_trans_vec(trip_pos0, trip_l)
    deg_trans = grouped_distinct_segments(gtid, u, total_trips)
    trips_per_block = np.bincount(trip_block, minlength=grid)
    acc.mem_transactions += np.bincount(
        trip_block, weights=(nbr_trans + deg_trans).astype(np.float64),
        minlength=grid,
    )
    acc.mem_accesses += 2.0 * trips_per_block
    acc.mem_active_lanes += 2.0 * np.bincount(
        trip_block, weights=trip_l.astype(np.float64), minlength=grid
    )
    acc.mem_ideal_transactions += 2.0 * trips_per_block

    csel = np.flatnonzero(cand)
    if csel.size:
        trip_c = np.bincount(gtid[csel], minlength=total_trips)
        has_c = trip_c > 0
        hcf = has_c.astype(np.float64)
        # Line 21: atomicSub on the candidates (distinct addresses: no
        # conflicts, base cycles only)
        at_trans = grouped_distinct_segments(
            gtid[csel], u[csel], total_trips
        )
        t_issued += hcf
        t_path += hcf * cost.global_atomic_base
        hc_per_block = np.bincount(trip_block, weights=hcf, minlength=grid)
        acc.atomic_cycles += hc_per_block * cost.global_atomic_base
        acc.mem_transactions += np.bincount(
            trip_block, weights=at_trans.astype(np.float64), minlength=grid
        )
        acc.mem_accesses += hc_per_block
        acc.mem_active_lanes += np.bincount(
            trip_block, weights=trip_c.astype(np.float64), minlength=grid
        )
        acc.mem_ideal_transactions += hc_per_block

    compaction = run.cfg.compaction
    if compaction != "none":
        # the warp-wide scan runs on every trip, appends or not
        scan_cost = 3.0 if compaction == "ballot" else 11.0
        t_issued += scan_cost
        t_path += scan_cost
    nsel = np.flatnonzero(newly)
    per_block_nw = None
    if nsel.size:
        trip_nw = np.bincount(gtid[nsel], minlength=total_trips)
        has_nw = trip_nw > 0
        hnf = has_nw.astype(np.float64)
        if compaction == "none":
            t_issued += hnf
            sa = np.where(has_nw, 2.0 + 0.25 * (trip_nw - 1), 0.0)
            t_path += sa
            acc.atomic_cycles += np.bincount(
                trip_block, weights=sa, minlength=grid
            )
            acc.atomic_conflicts += np.bincount(
                trip_block,
                weights=np.where(has_nw, trip_nw - 1, 0).astype(np.float64),
                minlength=grid,
            )
        else:
            t_issued += hnf * 3.0  # atomic + shfl + charge
            t_path += hnf * 4.0
            acc.atomic_cycles += np.bincount(
                trip_block, weights=hnf * 2.0, minlength=grid
            )

        # -- append locations ------------------------------------------
        e_before = np.asarray(
            [blk.e for blk in run.blocks], dtype=np.int64
        )
        seg = _segmented_exclusive_cumsum(trip_nw, trip_block)
        trip_loc = e_before[trip_block] + seg
        per_block_nw = np.bincount(
            trip_block, weights=trip_nw, minlength=run.grid
        ).astype(np.int64)
        scap = run.shared_capacity if run.cfg.shared_buffer else 0
        effective = run.capacity + scap
        if np.any(
            (trip_loc + trip_nw)[has_nw] > effective
        ):
            raise FallbackToReference("loop buffer overflow; reference raises")

        # write instruction + transaction accounting per appending trip
        wr = has_nw
        wr_gwid = trip_gwid[wr]
        wr_block = trip_block[wr]
        wr_loc = trip_loc[wr]
        wr_nw = trip_nw[wr]
        if not run.cfg.shared_buffer:
            wr_warp = np.bincount(wr_gwid, minlength=nwarps)
            acc.issued += wr_warp  # gstore
            acc.path += wr_warp
            wr_trans = _contig_trans_vec(
                wr_block * run.capacity + wr_loc, wr_nw
            )
            wr_per_block = np.bincount(wr_block, minlength=grid)
            acc.mem_transactions += np.bincount(
                wr_block, weights=wr_trans.astype(np.float64), minlength=grid
            )
            acc.mem_accesses += wr_per_block
            acc.mem_active_lanes += np.bincount(
                wr_block, weights=wr_nw.astype(np.float64), minlength=grid
            )
            acc.mem_ideal_transactions += wr_per_block
        else:
            e_init = np.asarray(
                [blk.e_init for blk in run.blocks], dtype=np.int64
            )[wr_block]
            wr_warp = np.bincount(wr_gwid, minlength=nwarps)
            acc.issued += wr_warp * 5.0  # smem_get(e_init) + charge(4)
            acc.path += wr_warp * 5.0
            # locations start at >= e_init, so the split is purely
            # "below the window top goes to shared, the rest shifts
            # down by scap"
            n_sh = np.clip(e_init + scap - wr_loc, 0, wr_nw)
            any_sh = n_sh > 0
            sh_warp = np.bincount(wr_gwid[any_sh], minlength=nwarps)
            acc.issued += sh_warp  # sstore
            acc.path += sh_warp
            n_gl = wr_nw - n_sh
            any_gl = n_gl > 0
            gl_warp = np.bincount(wr_gwid[any_gl], minlength=nwarps)
            acc.issued += gl_warp  # gstore
            acc.path += gl_warp
            gl_start = (
                wr_block * run.capacity
                + np.maximum(wr_loc, e_init + scap) - scap
            )
            gl_trans = _contig_trans_vec(gl_start, n_gl)
            gl_per_block = np.bincount(wr_block[any_gl], minlength=grid)
            acc.mem_transactions += np.bincount(
                wr_block[any_gl], weights=gl_trans[any_gl].astype(np.float64),
                minlength=grid,
            )
            acc.mem_accesses += gl_per_block
            acc.mem_active_lanes += np.bincount(
                wr_block[any_gl], weights=n_gl[any_gl].astype(np.float64),
                minlength=grid,
            )
            acc.mem_ideal_transactions += gl_per_block
        np.maximum.at(
            acc.buffer_peak, wr_block, (wr_loc + wr_nw).astype(np.float64)
        )

        # -- commit the appended vertices ------------------------------
        ap_u = u[nsel]
        ap_trip = gtid[nsel]
        ap_slot = trip_loc[ap_trip] + _segmented_exclusive_cumsum(
            np.ones(ap_u.size, dtype=np.int64), ap_trip
        )
        ap_block = trip_block[ap_trip]
        if scap:
            e_init_b = np.asarray(
                [blk.e_init for blk in run.blocks], dtype=np.int64
            )[ap_block]
            in_sh = ap_slot < e_init_b + scap
            for blk_idx, slot, vtx in zip(
                ap_block[in_sh], (ap_slot - e_init_b)[in_sh], ap_u[in_sh]
            ):
                run.shared.arrays[int(blk_idx)]["B"][int(slot)] = int(vtx)
            gl = ~in_sh
            run.buf_staged[
                ap_block[gl] * run.capacity + ap_slot[gl] - scap
            ] = ap_u[gl]
        else:
            run.buf_staged[ap_block * run.capacity + ap_slot] = ap_u

    acc.issued += np.bincount(trip_gwid, weights=t_issued, minlength=nwarps)
    acc.path += np.bincount(trip_gwid, weights=t_path, minlength=nwarps)
    if per_block_nw is not None:
        for blk in run.blocks:
            blk.e += int(per_block_nw[blk.idx])


def _loop_vectorized(launch: VectorLaunch) -> KernelStats:
    bound = _bind(
        _LOOP_PARAMS, {"own_range": None}, launch.args, launch.kwargs
    )
    cfg: VariantConfig = bound["cfg"]
    if cfg.ring_buffer:
        raise FallbackToReference("ring buffers wrap against a moving head")
    if cfg.virtual_warps > 1:
        raise FallbackToReference("virtual warping is not vectorized")
    if cfg.prefetch and cfg.shared_buffer:
        raise FallbackToReference("prefetch+shared-buffer combination")
    if _adjacency_has_duplicates(bound["offsets"], bound["neighbors"]):
        raise FallbackToReference(
            "duplicate in-adjacency neighbors can trigger the restore path"
        )
    run = _LoopRun(launch, bound)
    if cfg.prefetch:
        _replay_prefetched(run)
    else:
        _replay_drain(run)
    if run.deg_list is not None:
        run.deg_staged[:] = run.deg_list
    stats = run.acc.finish(launch)
    run.shared.commit()
    run.staged.commit()
    return stats


def _loop_init_turn(run: _LoopRun, gwid: int) -> None:
    """The first turn: Thread-0 prologue + buffer-view construction."""
    acc = run.acc
    blk = run.blocks[gwid // run.warps]
    wid = gwid % run.warps
    cfg = run.cfg
    if wid == 0:
        e0 = int(run.tails.data[blk.idx])
        acc.warp_op(gwid, 1.0, 1.0 + run.launch.cost.global_load_latency)
        acc.note_access(blk.idx, 1, 1)
        sets = 2 + (1 if cfg.shared_buffer else 0) + (2 if cfg.prefetch else 0)
        acc.warp_op(gwid, float(sets), float(sets))
        blk.s = 0
        blk.e = e0
        blk.e_init = e0
    if cfg.shared_buffer:
        run.shared.alloc(blk.idx, "B", run.shared_capacity)
    if cfg.prefetch:
        blk.pref = (
            run.shared.alloc(blk.idx, "pref0", run.warps),
            run.shared.alloc(blk.idx, "pref1", run.warps),
        )


def _final_turn(run: _LoopRun, gwid: int) -> None:
    """Line 26: Thread 0 folds the block tail into gpu_count, all exit."""
    blk = run.blocks[gwid // run.warps]
    if gwid % run.warps == 0:
        acc = run.acc
        cost = run.launch.cost
        acc.warp_op(gwid, 1.0, 1.0)  # smem_get("e")
        acc.warp_op(gwid, 1.0, cost.global_atomic_base)
        acc.atomic_cycles[blk.idx] += cost.global_atomic_base
        acc.note_access(blk.idx, 1, 1)
        run.staged.data(run.gpu_count)[0] += blk.e


def _replay_drain(run: _LoopRun) -> None:
    """Exact replay of ``_drain`` (Ours/SM/BC/EC fetch loop).

    The reference scheduler's FIFO keeps every block's warps contiguous
    (barrier releases extend the queue atomically, and BODY steppers
    re-append back to back), so blocks advance through the HEAD and
    BODY phases *in lockstep, in stable block order*.  That lets the
    replay iterate whole phases instead of simulating 64 queue turns
    per round.  Two reference behaviours survive the batching:

    * the flush trigger — the first block popped at HEAD with pending
      events flushes everyone, exactly as in the turn-level schedule;
    * within-block emission order — a warp that skipped a BODY round
      (``s + wid >= e``) re-arrives at the barrier *before* that
      round's emitters, so the block's pop order permutes; ``worder``
      tracks it, because the order in which warps emit (not the slots
      they emit) fixes the global candidacy ranks.

    Per-turn charges (identical +5/+5 per HEAD visit, +1/+1 per
    Thread-0 BODY turn) are counted in Python ints and folded in one
    vector step afterwards — sums of exact values are order-free, so
    this is bit-identical to charging per turn.
    """
    warps = run.warps
    head_rounds = [0] * run.grid  # every live warp charges 5/5 per HEAD
    body_w0 = [0] * run.grid
    barriers = [0] * run.grid
    ev_b = run.ev_block
    ev_g = run.ev_gwid
    ev_s = run.ev_slot
    ev_v = run.ev_value
    order = list(run.blocks)
    for blk in order:
        # only Thread 0 charges here, and shared allocs dedupe per
        # block, so one init turn per block covers every warp
        _loop_init_turn(run, blk.idx * warps)
        barriers[blk.idx] += 1  # the INIT arrival barrier
    worder = [list(range(warps)) for _ in range(run.grid)]
    while order:
        keep = []
        for blk in order:  # -- HEAD phase (Lines 4-8) ------------------
            if blk.pending:
                run.flush()
            head_rounds[blk.idx] += 1
            barriers[blk.idx] += 1
            if blk.s == blk.e:
                _final_turn(run, blk.idx * warps)  # Thread-0 only
            else:
                blk.head_s = blk.s
                blk.head_e = blk.e
                keep.append(blk)
        for blk in keep:  # -- BODY phase (Lines 9-12) ------------------
            body_w0[blk.idx] += 1
            s0 = blk.head_s
            e0 = blk.head_e
            blk.s = s0 + warps if s0 + warps < e0 else e0
            base = blk.idx * warps
            b = blk.idx
            wo = worder[b]
            if e0 - s0 >= warps:
                ev_b.extend([b] * warps)
                ev_g.extend([base + wid for wid in wo])
                ev_s.extend([s0 + wid for wid in wo])
                ev_v.extend([-1] * warps)
                blk.pending += warps
            else:
                stay = []
                stepped = []
                for wid in wo:
                    if s0 + wid < e0:
                        ev_b.append(b)
                        ev_g.append(base + wid)
                        ev_s.append(s0 + wid)
                        ev_v.append(-1)
                        stepped.append(wid)
                    else:
                        stay.append(wid)
                blk.pending += len(stepped)
                stay.extend(stepped)
                worder[b] = stay
            barriers[blk.idx] += 1
        order = keep
    acc = run.acc
    hr = np.repeat(np.asarray(head_rounds, dtype=np.float64), warps)
    acc.issued += 5.0 * hr
    acc.path += 5.0 * hr
    w0 = np.arange(run.grid, dtype=np.int64) * warps
    bw = np.asarray(body_w0, dtype=np.float64)
    acc.issued[w0] += bw
    acc.path[w0] += bw
    acc.barriers += np.asarray(barriers, dtype=np.int64)


def _replay_prefetched(run: _LoopRun) -> None:
    """Exact replay of ``_drain_prefetched`` (the VP pipeline).

    The same phase-lock argument as :func:`_replay_drain` applies, and
    here every warp re-queues every round (even idle lanes pass through
    the MID/TAIL phases), so the within-block pop order never permutes:
    consumers emit in plain warp order.  Each round is HEAD (flush
    check, exit test), MID (Thread-0 prefetches the next batch while
    warps 1..pn consume the previous one), TAIL (publish ``pn``, flip
    the double-buffer parity) — three barriers per round, exactly the
    reference's arrival counts.

    As in :func:`_replay_drain`, fixed per-turn charges (HEAD +4/+4,
    TAIL Thread-0 +2/+2, one sload per consumed prefetch value) are
    counted in Python ints and folded in bulk afterwards; only the
    data-dependent Thread-0 prefetch turn charges inline.
    """
    warps = run.warps
    head_rounds = [0] * run.grid
    mid_loads = [0] * (run.grid * warps)  # warps 1..head_pn: +1/+1 each
    mid_w0 = [0] * run.grid  # charge(2) + 2 smem_set: +4/+4 per MID turn
    batch_w0 = [0] * run.grid  # gload + sstore rounds: +2 / +(2+latency)
    mem_trans = [0] * run.grid
    mem_acc = [0] * run.grid
    mem_lanes = [0] * run.grid
    mem_ideal = [0] * run.grid
    tail_w0 = [0] * run.grid
    barriers = [0] * run.grid
    acc = run.acc
    cost = run.launch.cost
    ev_b = run.ev_block
    ev_g = run.ev_gwid
    ev_s = run.ev_slot
    ev_v = run.ev_value
    order = list(run.blocks)
    for blk in order:
        # Thread-0 charges + per-block shared allocs (deduped)
        _loop_init_turn(run, blk.idx * warps)
        barriers[blk.idx] += 1  # the INIT arrival barrier
    while order:
        keep = []
        for blk in order:  # -- HEAD phase --------------------------------
            if blk.pending:
                run.flush()
            head_rounds[blk.idx] += 1
            barriers[blk.idx] += 1
            if blk.s == blk.e and blk.pn_cur == 0:
                _final_turn(run, blk.idx * warps)  # Thread-0 only
            else:
                blk.head_s = blk.s
                blk.head_e = blk.e
                blk.head_pn = blk.pn_cur
                keep.append(blk)
        for blk in keep:  # -- MID phase ----------------------------------
            assert blk.pref is not None
            gwid0 = blk.idx * warps
            b = blk.idx
            batch = min(warps - 1, blk.head_e - blk.head_s)
            mid_w0[b] += 1  # charge(2) + smem_set(s) + smem_set(pn_next)
            if batch > 0:
                # read_batch: one dependent gload of `batch` words,
                # then one sstore into the prefetch buffer
                s0 = blk.head_s
                batch_w0[b] += 1
                mem_trans[b] += contiguous_transactions(
                    b * run.capacity + s0, batch
                )
                ideal = -(-batch // 32)
                mem_acc[b] += max(1, ideal)
                mem_lanes[b] += batch
                mem_ideal[b] += ideal
                blk.pref[1 - blk.parity][1 : 1 + batch] = run.buf_staged[
                    b * run.capacity + s0 : b * run.capacity + s0 + batch
                ]
            blk.s = blk.head_s + batch
            blk.pn_next = batch
            if blk.head_pn:
                vals = blk.pref[blk.parity][1 : blk.head_pn + 1].tolist()
                for wid, val in enumerate(vals, 1):
                    mid_loads[gwid0 + wid] += 1
                    ev_b.append(b)
                    ev_g.append(gwid0 + wid)
                    ev_s.append(-1)
                    ev_v.append(val)
                blk.pending += blk.head_pn
            barriers[b] += 1
        for blk in keep:  # -- TAIL phase ---------------------------------
            tail_w0[blk.idx] += 1  # smem_get + smem_set: +2/+2
            blk.pn_cur = blk.pn_next
            blk.parity ^= 1  # every warp advanced `iteration`
            barriers[blk.idx] += 1  # the STEPPED re-arrival barrier
        order = keep
    hv = np.repeat(np.asarray(head_rounds, dtype=np.float64), warps)
    ml = np.asarray(mid_loads, dtype=np.float64)
    acc.issued += 4.0 * hv + ml
    acc.path += 4.0 * hv + ml
    w0 = np.arange(run.grid, dtype=np.int64) * warps
    tw = np.asarray(tail_w0, dtype=np.float64)
    mw = np.asarray(mid_w0, dtype=np.float64)
    bw = np.asarray(batch_w0, dtype=np.float64)
    acc.issued[w0] += 2.0 * tw + 4.0 * mw + 2.0 * bw
    acc.path[w0] += (
        2.0 * tw + 4.0 * mw + bw * (2.0 + cost.global_load_latency)
    )
    acc.mem_transactions += np.asarray(mem_trans, dtype=np.float64)
    acc.mem_accesses += np.asarray(mem_acc, dtype=np.float64)
    acc.mem_active_lanes += np.asarray(mem_lanes, dtype=np.float64)
    acc.mem_ideal_transactions += np.asarray(mem_ideal, dtype=np.float64)
    acc.barriers += np.asarray(barriers, dtype=np.int64)


def register() -> None:
    """Register the executors (idempotent; runs at import)."""
    register_vectorized_kernel(scan_kernel, _scan_vectorized)
    register_vectorized_kernel(loop_kernel, _loop_vectorized)


register()
