"""Warp- and block-level stream-compaction primitives (Figs. 8 and 9).

These implement the prefix-sum machinery the BC and EC variants use to
batch buffer appends: the Hillis–Steele inclusive scan (Fig. 8b), the
ballot scan built on ``__ballot_sync``/``__popc`` (Fig. 8c), and the
two-stage intra-block scan of Sengupta et al. (Fig. 9).

Each helper computes the numerically correct offsets with numpy while
charging the *instruction costs* the hardware algorithm would incur —
the quantity the paper's ablation shows outweighing the saved atomic
contention on modern GPUs.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.gpusim.context import WarpContext

__all__ = [
    "hillis_steele_exclusive",
    "warp_compact_hillis_steele",
    "warp_compact_ballot",
    "block_scan_offsets",
]

#: static-certificate coverage map (see ``docs/STATIC_ANALYSIS.md``);
#: ``hillis_steele_exclusive`` is a pure host-side reference function
#: (no ``ctx``), so it needs no entry.
__staticheck__ = {
    "warp_compact_hillis_steele": "11 issued (2*log2(32)+1)",
    "warp_compact_ballot": "3 issued (ballot + popc + mask)",
    "block_scan_offsets": "<= 13 issued (sload + 2*log2(W)+2), Warp 0 only",
}


def hillis_steele_exclusive(flags: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pure-function exclusive prefix sum of ``flags`` (reference/tests).

    Returns ``(exclusive_prefix, total)``.  This is the value every
    compaction path must produce; the ``warp_*`` variants below add the
    hardware cost accounting on top.
    """
    flags = np.asarray(flags, dtype=np.int64)
    inclusive = np.cumsum(flags)
    total = int(inclusive[-1]) if flags.size else 0
    return inclusive - flags, total


def warp_compact_hillis_steele(
    ctx: WarpContext, flags: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Warp-level exclusive scan via Hillis–Steele (Fig. 8b).

    Runs ``log2(warp_size)`` shuffle-and-add iterations, each costing an
    add plus a lane shuffle, then one subtraction to convert the
    inclusive result to exclusive (the blue arrow of Fig. 8).
    """
    offsets, total = hillis_steele_exclusive(flags)
    steps = int(math.log2(ctx.warp_size))
    ctx.charge(2 * steps + 1)
    return offsets, total


def warp_compact_ballot(
    ctx: WarpContext, flags: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Warp-level exclusive scan via ballot (Fig. 8c).

    One ``__ballot_sync`` packs the predicates into a 32-bit bitmap;
    each lane masks the bits below it and ``__popc``s them — three
    warp-instructions total regardless of warp size, which is why the
    paper finds BC about twice as fast as EC.
    """
    bits = ctx.ballot(np.asarray(flags, dtype=bool))
    ctx.popc(bits)  # each lane's masked popcount (SIMD across lanes)
    ctx.charge(1)  # the lane mask computation
    offsets, total = hillis_steele_exclusive(flags)
    return offsets, total


def block_scan_offsets(ctx: WarpContext) -> Tuple[np.ndarray, int]:
    """Stage 2+3 of the intra-block scan (Fig. 9), run by Warp 0 only.

    The caller (scan kernel, EC variant) has already written each
    warp's element count into the shared array ``warp_counts``; Warp 0
    scans those ``warps_per_block`` sums with Hillis–Steele here (a
    ballot scan cannot be used — the counts are not 0/1 values) and
    returns ``(exclusive_offsets, block_total)``.  The caller adds the
    block-level base reservation and publishes the per-warp offsets.

    Only Warp 0 computes in these stages, so its serial path grows
    while the other warps idle at a barrier — the structural overhead
    the paper blames for EC's slowdown.
    """
    counts = ctx.smem_array("warp_counts", ctx.warps_per_block)
    values = ctx.sload(counts, np.arange(ctx.warps_per_block))
    exclusive, total = hillis_steele_exclusive(values)
    steps = max(1, int(math.log2(max(2, ctx.warps_per_block))))
    ctx.charge(2 * steps + 2)
    return exclusive, int(total)
